// FusionFS-style distributed file-system metadata on ZHT (§V.A): every
// node is a metadata server; directories are append-maintained lists, so
// concurrent creates in ONE directory need no distributed lock.
//
//   ./examples/fusionfs_metadata
#include <cstdio>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/local_cluster.h"
#include "fusionfs/metadata.h"

int main() {
  using namespace zht;
  using fusionfs::FileMetadata;
  using fusionfs::MetadataService;

  LocalClusterOptions options;
  options.num_instances = 8;
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return 1;

  ClientHandle root_client = (*cluster)->CreateClient();
  MetadataService fs(root_client.get());
  fs.Format();
  fs.MkDir("/experiments");
  fs.MkDir("/experiments/run-001");

  // The paper's stress case: many clients creating files in one directory
  // concurrently. Each create = parent stat + metadata insert + lock-free
  // append of the name into the parent's entry list.
  constexpr int kClients = 4;
  constexpr int kFilesEach = 250;
  Stopwatch watch(SystemClock::Instance());
  std::vector<std::thread> writers;
  for (int c = 0; c < kClients; ++c) {
    writers.emplace_back([&cluster, c] {
      ClientHandle client = (*cluster)->CreateClient();
      MetadataService service(client.get());
      for (int i = 0; i < kFilesEach; ++i) {
        FileMetadata meta;
        meta.size = 1024;
        meta.home_node = static_cast<std::uint32_t>(c);
        service.CreateFile("/experiments/run-001/out." + std::to_string(c) +
                               "." + std::to_string(i),
                           meta);
      }
    });
  }
  for (auto& writer : writers) writer.join();
  double elapsed_ms = watch.ElapsedMillis();

  auto listing = fs.ReadDir("/experiments/run-001");
  std::printf("created %zu files from %d concurrent clients in %.1f ms "
              "(%.0f creates/sec, no distributed lock)\n",
              listing->size(), kClients, elapsed_ms,
              1000.0 * static_cast<double>(listing->size()) / elapsed_ms);

  // Standard metadata operations.
  auto stat = fs.Stat("/experiments/run-001/out.0.0");
  std::printf("stat out.0.0: size=%llu home_node=%u\n",
              static_cast<unsigned long long>(stat->size), stat->home_node);

  fs.Rename("/experiments/run-001/out.0.0", "/experiments/first.dat");
  std::printf("renamed to /experiments/first.dat: %s\n",
              fs.Stat("/experiments/first.dat").ok() ? "ok" : "missing");

  fs.Unlink("/experiments/first.dat");
  listing = fs.ReadDir("/experiments");
  std::printf("/experiments now lists %zu entries\n", listing->size());
  return 0;
}
