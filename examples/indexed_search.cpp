// Content indexing on ZHT (§VI "Data Indexing"): posting lists are ZHT
// values maintained with lock-free appends, so many writers can index
// concurrently; queries fold the lists and intersect tags.
//
//   ./examples/indexed_search
#include <cstdio>
#include <thread>

#include "core/indexer.h"
#include "core/local_cluster.h"

int main() {
  using namespace zht;

  LocalClusterOptions options;
  options.num_instances = 4;
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return 1;

  // Four concurrent ingest workers tagging simulation outputs.
  const char* kKinds[] = {"checkpoint", "diagnostic", "viz", "log"};
  std::vector<std::thread> ingest;
  for (int w = 0; w < 4; ++w) {
    ingest.emplace_back([&cluster, &kKinds, w] {
      ClientHandle client = (*cluster)->CreateClient();
      Indexer indexer(client.get());
      for (int i = 0; i < 50; ++i) {
        std::string key = "run42/out/" + std::string(kKinds[w]) + "." +
                          std::to_string(i);
        std::vector<std::string> tags = {kKinds[w], "run42"};
        if (i % 10 == 0) tags.push_back("milestone");
        indexer.PutIndexed(key, "payload-bytes", tags);
      }
    });
  }
  for (auto& worker : ingest) worker.join();

  ClientHandle client = (*cluster)->CreateClient();
  Indexer indexer(client.get());

  auto all = indexer.FindByTag("run42");
  std::printf("tag run42           → %zu objects\n", all->size());
  auto checkpoints = indexer.FindByTag("checkpoint");
  std::printf("tag checkpoint      → %zu objects\n", checkpoints->size());
  auto milestones = indexer.FindByAllTags({"run42", "milestone"});
  std::printf("run42 ∧ milestone   → %zu objects, e.g. %s\n",
              milestones->size(),
              milestones->empty() ? "-" : milestones->front().c_str());

  // Retire the diagnostics, compact the churned posting list.
  auto diagnostics = indexer.FindByTag("diagnostic");
  for (const auto& key : *diagnostics) {
    indexer.RemoveIndexed(key, {"diagnostic", "run42"});
  }
  std::size_t before = client->Lookup("tag:run42")->size();
  indexer.CompactTag("run42");
  std::size_t after = client->Lookup("tag:run42")->size();
  std::printf("after retiring diagnostics: run42 → %zu objects "
              "(posting log %zu → %zu bytes after compaction)\n",
              indexer.FindByTag("run42")->size(), before, after);
  return 0;
}
