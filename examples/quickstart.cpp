// Quickstart: bring up an in-process ZHT cluster, exercise the four-call
// API (insert / lookup / remove / append), and peek at the zero-hop
// routing machinery.
//
//   ./examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "core/local_cluster.h"

int main() {
  using namespace zht;

  // Four instances with one replica per partition, wired over the
  // in-process loopback network. Swap `transport` to ClusterTransport::kTcp
  // for real sockets on localhost.
  LocalClusterOptions options;
  options.num_instances = 4;
  options.cluster.num_replicas = 1;
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster start failed: %s\n",
                 cluster.status().ToString().c_str());
    return 1;
  }

  ClientHandle client = (*cluster)->CreateClient();

  // The paper's API (§III.A): int insert(key, value); value lookup(key);
  // int remove(key); int append(key, value).
  Status status = client->Insert("/dataset/block-17", "node04:offset=1234");
  std::printf("insert  → %s\n", status.ToString().c_str());

  auto value = client->Lookup("/dataset/block-17");
  std::printf("lookup  → %s\n",
              value.ok() ? value->c_str() : value.status().ToString().c_str());

  // Append: lock-free concurrent modification. Two writers extend the same
  // directory-style value without a distributed lock.
  client->Append("/dataset/index", "block-17;");
  client->Append("/dataset/index", "block-18;");
  std::printf("append  → index = %s\n",
              client->Lookup("/dataset/index")->c_str());

  // Batched path: MultiInsert shards the keys by owner instance and sends
  // one BATCH envelope per instance instead of one round-trip per key.
  std::vector<KeyValue> blocks;
  for (int i = 0; i < 8; ++i) {
    blocks.push_back(KeyValue{"/dataset/chunk-" + std::to_string(i),
                              "node0" + std::to_string(i % 4)});
  }
  auto batch_statuses = client->MultiInsert(blocks);
  std::size_t batch_ok = 0;
  for (const Status& s : batch_statuses) batch_ok += s.ok() ? 1 : 0;
  std::printf("mput    → %zu/%zu OK in one batch\n", batch_ok,
              batch_statuses.size());

  status = client->Remove("/dataset/block-17");
  std::printf("remove  → %s\n", status.ToString().c_str());
  value = client->Lookup("/dataset/block-17");
  std::printf("lookup  → %s (after remove)\n",
              value.status().ToString().c_str());

  // Zero-hop routing: the client's full membership table maps any key to
  // its owner instance without asking anyone.
  const MembershipTable& table = client->table();
  std::printf("\nmembership: %zu instances, %u partitions, epoch %u\n",
              table.instance_count(), table.num_partitions(), table.epoch());
  for (const char* key : {"alpha", "bravo", "charlie"}) {
    PartitionId p = table.PartitionOfKey(key);
    std::printf("  key %-8s → partition %3u → instance %u (%s)\n", key, p,
                table.OwnerOf(p),
                table.Instance(table.OwnerOf(p)).address.ToString().c_str());
  }

  // Broadcast primitive (§VI): deliver one pair to every instance via a
  // spanning tree.
  client->Broadcast("config/version", "42");
  (*cluster)->FlushAllAsyncReplication();
  std::printf("\nbroadcast delivered; per-instance stats:\n");
  for (std::size_t i = 0; i < (*cluster)->instance_count(); ++i) {
    auto stats = (*cluster)->server(i)->stats();
    std::printf("  instance %zu: ops=%llu redirects=%llu broadcasts=%llu\n",
                i, static_cast<unsigned long long>(stats.ops),
                static_cast<unsigned long long>(stats.redirects),
                static_cast<unsigned long long>(stats.broadcasts));
  }
  return 0;
}
