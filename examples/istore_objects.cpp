// IStore (§V.B): erasure-coded object storage with chunk locations managed
// in ZHT. Writes disperse n chunks over n nodes; reads survive up to
// `parity` node failures.
//
//   ./examples/istore_objects
#include <cstdio>

#include "common/rng.h"
#include "core/local_cluster.h"
#include "istore/istore.h"
#include "net/loopback.h"

int main() {
  using namespace zht;
  using istore::ChunkServer;
  using istore::IStore;
  using istore::IStoreOptions;

  // Metadata tier: a ZHT cluster.
  LocalClusterOptions cluster_options;
  cluster_options.num_instances = 4;
  auto cluster = LocalCluster::Start(cluster_options);
  if (!cluster.ok()) return 1;
  ClientHandle metadata_client = (*cluster)->CreateClient();

  // Storage tier: 8 chunk servers.
  LoopbackNetwork chunk_network;
  std::vector<std::unique_ptr<ChunkServer>> servers;
  std::vector<NodeAddress> addresses;
  for (int i = 0; i < 8; ++i) {
    servers.push_back(std::make_unique<ChunkServer>());
    addresses.push_back(chunk_network.Register(servers.back()->AsHandler()));
  }
  LoopbackTransport chunk_transport(&chunk_network);

  IStoreOptions options;
  options.parity = 2;  // any 6 of 8 chunks reconstruct
  IStore store(metadata_client.get(), addresses, &chunk_transport, options);

  Rng rng(2024);
  std::string payload = rng.AsciiString(64 * 1024);
  store.Put("results/simulation.h5", payload);
  std::printf("stored 64 KiB as 8 chunks (6-of-8 Reed-Solomon):\n");
  for (std::size_t i = 0; i < servers.size(); ++i) {
    std::printf("  chunk server %zu: %llu chunk(s), %llu bytes\n", i,
                static_cast<unsigned long long>(servers[i]->chunks_stored()),
                static_cast<unsigned long long>(servers[i]->bytes_stored()));
  }

  // Knock out two storage nodes — the paper's motivation: "failures are a
  // norm rather than an exception".
  chunk_network.SetDown(addresses[1], true);
  chunk_network.SetDown(addresses[5], true);
  auto recovered = store.Get("results/simulation.h5");
  std::printf("\nwith servers 1 and 5 down: read %s (%zu bytes, %s)\n",
              recovered.ok() ? "succeeded" : "FAILED",
              recovered.ok() ? recovered->size() : 0,
              recovered.ok() && *recovered == payload ? "bit-exact"
                                                      : "MISMATCH");

  // A third failure exceeds the parity budget.
  chunk_network.SetDown(addresses[7], true);
  auto lost = store.Get("results/simulation.h5");
  std::printf("with a third server down: read fails as expected → %s\n",
              lost.status().ToString().c_str());

  chunk_network.SetDown(addresses[7], false);
  std::printf("\nmetadata ops through ZHT so far: %llu\n",
              static_cast<unsigned long long>(store.metadata_ops()));
  return 0;
}
