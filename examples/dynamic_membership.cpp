// Dynamic membership (§III.C): nodes join a live cluster; the manager
// moves whole partitions to the newcomer (no rehashing), broadcasts the
// incremental membership, and stale clients catch up lazily via REDIRECT.
// Also demonstrates failure handling: replicas take over a killed node.
//
//   ./examples/dynamic_membership
#include <cstdio>

#include "common/clock.h"
#include "common/rng.h"
#include "core/local_cluster.h"

int main() {
  using namespace zht;

  LocalClusterOptions options;
  options.num_instances = 2;
  options.cluster.num_replicas = 1;
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return 1;

  ZhtClientOptions client_options;
  client_options.failure_detector.failures_to_mark_dead = 1;
  ClientHandle client = (*cluster)->CreateClient(client_options);

  Rng rng(7);
  std::printf("loading 1000 pairs into a 2-instance cluster...\n");
  for (int i = 0; i < 1000; ++i) {
    client->Insert("key-" + std::to_string(i), rng.AsciiString(132));
  }

  auto print_load = [&](const char* when) {
    MembershipTable table = (*cluster)->manager(0)->TableSnapshot();
    std::printf("%s (epoch %u):\n", when, table.epoch());
    for (std::size_t i = 0; i < (*cluster)->instance_count(); ++i) {
      std::printf("  instance %zu: %4zu partitions, %5llu pairs%s\n", i,
                  table.PartitionsOf(static_cast<InstanceId>(i)).size(),
                  static_cast<unsigned long long>(
                      (*cluster)->server(i)->TotalEntries()),
                  table.Instance(static_cast<InstanceId>(i)).alive
                      ? ""
                      : "  [dead]");
    }
  };
  print_load("before join");

  // Two nodes join, one at a time. Each join checks out the membership
  // table, takes half the most-loaded instance's partitions (moved as
  // whole files, never rehashed), and ends with an incremental broadcast.
  for (int j = 0; j < 2; ++j) {
    Stopwatch watch(SystemClock::Instance());
    auto joined = (*cluster)->JoinNewInstance();
    std::printf("\njoin #%d → instance %u admitted in %.1f ms "
                "(%llu partitions migrated so far)\n",
                j + 1, joined.ok() ? *joined : 0, watch.ElapsedMillis(),
                static_cast<unsigned long long>(
                    (*cluster)->manager(0)->stats().partitions_migrated));
  }
  print_load("after joins");

  // The pre-join client still routes with its old table; REDIRECTs carry
  // the delta and it converges lazily.
  int ok = 0;
  for (int i = 0; i < 1000; ++i) {
    if (client->Lookup("key-" + std::to_string(i)).ok()) ++ok;
  }
  std::printf("\nstale client read back %d/1000 keys "
              "(%llu redirects taught it the new map)\n",
              ok,
              static_cast<unsigned long long>(
                  client->stats().redirects_followed));

  // Kill an instance; replicas answer, the manager repairs.
  std::printf("\nkilling instance 0...\n");
  (*cluster)->KillInstance(0);
  ok = 0;
  for (int i = 0; i < 1000; ++i) {
    if (client->Lookup("key-" + std::to_string(i)).ok()) ++ok;
  }
  (*cluster)->FlushAllAsyncReplication();
  std::printf("after failure: %d/1000 keys still readable "
              "(failovers=%llu, manager repairs=%llu)\n",
              ok,
              static_cast<unsigned long long>(client->stats().failovers),
              static_cast<unsigned long long>(
                  (*cluster)->manager(0)->stats().failures_handled));
  print_load("final state");
  return 0;
}
