// MATRIX (§V.C): distributed many-task execution with adaptive work
// stealing; ZHT holds task state so any client can monitor progress.
//
//   ./examples/matrix_scheduler
#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/clock.h"
#include "core/local_cluster.h"
#include "matrix/matrix_live.h"
#include "matrix/matrix_sim.h"

int main() {
  using namespace zht;
  using matrix::LiveMatrix;
  using matrix::LiveMatrixOptions;
  using matrix::LiveTask;

  // ZHT cluster holding task state.
  LocalClusterOptions cluster_options;
  cluster_options.num_instances = 2;
  auto cluster = LocalCluster::Start(cluster_options);
  if (!cluster.ok()) return 1;
  ClientHandle status_client = (*cluster)->CreateClient();

  LiveMatrixOptions options;
  options.executors = 4;
  LiveMatrix engine(options, status_client.get());

  // Submit everything to executor 0: work stealing redistributes.
  constexpr int kTasks = 400;
  std::atomic<int> work_done{0};
  Stopwatch watch(SystemClock::Instance());
  for (int i = 0; i < kTasks; ++i) {
    engine.Submit(LiveTask{static_cast<std::uint64_t>(i),
                           [&work_done] {
                             ++work_done;
                             std::this_thread::sleep_for(
                                 std::chrono::microseconds(500));
                           }},
                  /*executor=*/0);
  }
  engine.WaitAll();
  std::printf("live engine: %d tasks on %u executors in %.1f ms "
              "(%llu steal batches rebalanced the skewed submission)\n",
              work_done.load(), options.executors, watch.ElapsedMillis(),
              static_cast<unsigned long long>(engine.steals()));
  std::printf("task 0 status in ZHT: %s\n",
              engine.TaskStatus(0).value_or("?").c_str());

  // Large-scale behaviour via the virtual-time model (Figures 18/19).
  std::printf("\nvirtual-time MATRIX at BG/P scales (100K NO-OP tasks):\n");
  for (std::uint32_t cores : {256u, 1024u, 2048u}) {
    matrix::MatrixSimParams params;
    params.executors = cores;
    auto result = matrix::RunMatrixSim(params);
    std::printf("  %4u cores → %6.0f tasks/s (makespan %.0f s)\n", cores,
                result.throughput_tasks_s, result.makespan_s);
  }
  return 0;
}
