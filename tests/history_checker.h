// History checker for chaos tests: validates a recorded operation history
// (net/fault_injection.h HistoryRecorder) against a sequential map model.
//
// The checker is sound, not complete: it flags only DEFINITE violations —
// results no sequential execution consistent with the recorded real-time
// windows could produce — and tolerates everything a timeout leaves
// ambiguous (an op whose result was kTimeout/kUnavailable/kNetwork, or that
// never completed, may or may not have taken effect, at any point after its
// invocation).
//
// It understands two key disciplines, chosen so ambiguity never hides a
// real bug:
//  - register keys: insert/lookup/remove, every insert to a key carries a
//    value unique for that key (so a read names exactly one write);
//  - ledger keys: append-only, every append carries a ';'-terminated token
//    unique for that key (so double-application shows up as a duplicate
//    token and loss as a missing one).
#pragma once

#include <string>
#include <vector>

#include "net/fault_injection.h"

namespace zht {

struct HistoryViolation {
  std::uint64_t event_id = 0;  // the lookup (or offending op) flagged
  std::string key;
  std::string message;
};

struct HistoryCheckResult {
  std::size_t events_checked = 0;
  std::vector<HistoryViolation> violations;

  bool ok() const { return violations.empty(); }
  // Human-readable report (empty string when ok) for test failure output.
  std::string ToString() const;
};

HistoryCheckResult CheckHistory(const std::vector<HistoryEvent>& events);

}  // namespace zht
