#include <gtest/gtest.h>

#include <atomic>

#include "core/local_cluster.h"
#include "matrix/matrix_live.h"
#include "matrix/matrix_sim.h"
#include "matrix/work_stealing.h"

namespace zht::matrix {
namespace {

// ---- WorkStealingQueue --------------------------------------------------

TEST(WorkStealingQueueTest, LifoOwnerFifoThief) {
  WorkStealingQueue<int> queue;
  for (int i = 1; i <= 4; ++i) queue.Push(i);
  EXPECT_EQ(queue.Pop().value(), 4);  // owner pops newest
  auto stolen = queue.StealHalf();
  ASSERT_EQ(stolen.size(), 2u);  // ceil(3/2)
  EXPECT_EQ(stolen[0], 1);       // thief takes oldest
  EXPECT_EQ(stolen[1], 2);
  EXPECT_EQ(queue.Pop().value(), 3);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(WorkStealingQueueTest, MinToStealRespected) {
  WorkStealingQueue<int> queue;
  queue.Push(1);
  EXPECT_TRUE(queue.StealHalf(/*min_to_steal=*/2).empty());
  EXPECT_EQ(queue.Size(), 1u);
  EXPECT_EQ(queue.StealHalf(/*min_to_steal=*/1).size(), 1u);
}

TEST(WorkStealingQueueTest, PushBatchKeepsOrder) {
  WorkStealingQueue<int> queue;
  queue.PushBatch({1, 2, 3});
  EXPECT_EQ(queue.Pop().value(), 3);
  EXPECT_EQ(queue.Pop().value(), 2);
}

// ---- MATRIX simulation ----------------------------------------------------

TEST(MatrixSimTest, AllTasksComplete) {
  MatrixSimParams params;
  params.executors = 16;
  params.num_tasks = 1000;
  auto result = RunMatrixSim(params);
  EXPECT_GT(result.throughput_tasks_s, 0);
  EXPECT_EQ(result.zht_status_ops, 2000u);
}

TEST(MatrixSimTest, Deterministic) {
  MatrixSimParams params;
  params.executors = 32;
  params.num_tasks = 2000;
  auto a = RunMatrixSim(params);
  auto b = RunMatrixSim(params);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.steal_attempts, b.steal_attempts);
}

TEST(MatrixSimTest, ThroughputGrowsWithCoresThenSubmissionBound) {
  // Figure 18's MATRIX curve: growth 256→2048 cores, flattening near the
  // client submission cap (~5K tasks/s).
  MatrixSimParams params;
  params.num_tasks = 20000;
  params.executors = 256;
  double t256 = RunMatrixSim(params).throughput_tasks_s;
  params.executors = 1024;
  double t1024 = RunMatrixSim(params).throughput_tasks_s;
  params.executors = 2048;
  double t2048 = RunMatrixSim(params).throughput_tasks_s;
  EXPECT_NEAR(t256, 1100, 220);    // paper: ~1100 tasks/s at 256 cores
  EXPECT_GT(t1024, 3.5 * t256);    // near-linear growth
  EXPECT_NEAR(t2048, 4900, 900);   // paper: ~4900 tasks/s at 2048 cores
}

TEST(MatrixSimTest, UnbalancedSubmissionRedistributedByStealing) {
  MatrixSimParams params;
  params.executors = 32;
  params.num_tasks = 3000;
  params.balanced_submission = false;  // everything lands on executor 0
  params.task_duration = 50 * kNanosPerMilli;
  params.per_task_overhead = kNanosPerMilli;
  auto result = RunMatrixSim(params);
  EXPECT_GT(result.successful_steals, 10u);
  EXPECT_GT(result.tasks_stolen, 100u);
  // Work stealing must beat the serial bound by a wide margin.
  double serial_s = 3000 * 0.051;
  EXPECT_LT(result.makespan_s, serial_s / 8);
}

TEST(MatrixSimTest, SleepTaskEfficiencyMatchesPaper) {
  // Figure 19: MATRIX averages 92%-97% for 1-8 s tasks.
  for (double d : {1.0, 8.0}) {
    MatrixSimParams params;
    params.executors = 1024;
    params.num_tasks = 20000;
    params.task_duration = static_cast<Nanos>(d * kNanosPerSec);
    params.per_task_overhead = 80 * kNanosPerMilli;
    auto result = RunMatrixSim(params);
    // (the 20K-task run pays a visible submission tail at 1024 cores; the
    // paper's 100K-task runs amortize it — the bench uses the full count)
    EXPECT_GT(result.efficiency, 0.88) << d;
    EXPECT_LE(result.efficiency, 1.0) << d;
  }
}

TEST(FalkonSimTest, CentralDispatcherSaturates) {
  // Figure 18: Falkon saturates near 1700 tasks/s regardless of scale.
  FalkonSimParams params;
  params.num_tasks = 20000;
  params.poll_interval = 250 * kNanosPerMilli;
  params.executors = 256;
  double t256 = RunFalkonSim(params).throughput_tasks_s;
  params.executors = 2048;
  double t2048 = RunFalkonSim(params).throughput_tasks_s;
  EXPECT_NEAR(t256, 1700, 400);
  EXPECT_NEAR(t2048, 1700, 400);  // no growth: central bottleneck
}

TEST(FalkonSimTest, EfficiencyFarBelowMatrix) {
  // Figure 19: Falkon 18% (1 s tasks) rising with granularity but staying
  // well under MATRIX.
  FalkonSimParams falkon;
  falkon.executors = 1024;
  falkon.num_tasks = 10000;
  falkon.task_duration = kNanosPerSec;
  double falkon_eff = RunFalkonSim(falkon).efficiency;

  MatrixSimParams matrix;
  matrix.executors = 1024;
  matrix.num_tasks = 10000;
  matrix.task_duration = kNanosPerSec;
  matrix.per_task_overhead = 80 * kNanosPerMilli;
  double matrix_eff = RunMatrixSim(matrix).efficiency;

  EXPECT_LT(falkon_eff, 0.4);
  EXPECT_GT(matrix_eff, 2.0 * falkon_eff);
}

TEST(FalkonSimTest, EfficiencyGrowsWithTaskDuration) {
  FalkonSimParams params;
  params.executors = 512;
  params.num_tasks = 5000;
  double prev = 0;
  for (double d : {1.0, 2.0, 4.0, 8.0}) {
    params.task_duration = static_cast<Nanos>(d * kNanosPerSec);
    double eff = RunFalkonSim(params).efficiency;
    EXPECT_GT(eff, prev);
    prev = eff;
  }
}

// ---- Live MATRIX ----------------------------------------------------------

TEST(LiveMatrixTest, RunsTasksAndRecordsStatusInZht) {
  LocalClusterOptions cluster_options;
  cluster_options.num_instances = 2;
  auto cluster = LocalCluster::Start(cluster_options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();

  std::atomic<int> executed{0};
  {
    LiveMatrixOptions options;
    options.executors = 4;
    LiveMatrix engine(options, client.get());
    for (int i = 0; i < 100; ++i) {
      engine.Submit(LiveTask{static_cast<std::uint64_t>(i),
                             [&executed] { ++executed; }});
    }
    engine.WaitAll();
    EXPECT_EQ(engine.completed(), 100u);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(engine.TaskStatus(static_cast<std::uint64_t>(i)).value(),
                "done")
          << i;
    }
  }
  EXPECT_EQ(executed.load(), 100);
}

TEST(LiveMatrixTest, StealingBalancesSkewedSubmission) {
  LiveMatrixOptions options;
  options.executors = 4;
  options.record_status = false;
  LiveMatrix engine(options, nullptr);
  std::atomic<int> executed{0};
  // All tasks to executor 0; others must steal.
  for (int i = 0; i < 200; ++i) {
    engine.Submit(LiveTask{static_cast<std::uint64_t>(i),
                           [&executed] {
                             ++executed;
                             std::this_thread::sleep_for(
                                 std::chrono::microseconds(200));
                           }},
                  /*executor=*/0);
  }
  engine.WaitAll();
  EXPECT_EQ(executed.load(), 200);
  EXPECT_GT(engine.steals(), 0u);
}

TEST(LiveMatrixTest, NoStatusClientStillRuns) {
  LiveMatrixOptions options;
  options.executors = 2;
  LiveMatrix engine(options, nullptr);
  engine.Submit(LiveTask{1, nullptr});  // NO-OP task
  engine.WaitAll();
  EXPECT_EQ(engine.completed(), 1u);
  EXPECT_FALSE(engine.TaskStatus(1).ok());
}

}  // namespace
}  // namespace zht::matrix
