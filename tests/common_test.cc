#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/config.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace zht {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.raw(), 0);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndDetail) {
  Status status(StatusCode::kNotFound, "missing key");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.raw(), 1);
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing key");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 12; ++code) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(code)), "UNKNOWN")
        << "code " << code;
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status(StatusCode::kTimeout));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ClockTest, SystemClockAdvances) {
  SystemClock& clock = SystemClock::Instance();
  Nanos a = clock.Now();
  Nanos b = clock.Now();
  EXPECT_GE(b, a);
}

TEST(ClockTest, ManualClockControlsTime) {
  ManualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
  clock.Set(10);
  EXPECT_EQ(clock.Now(), 10);
}

TEST(ClockTest, StopwatchMeasuresManualTime) {
  ManualClock clock;
  Stopwatch watch(clock);
  clock.Advance(5 * kNanosPerMilli);
  EXPECT_EQ(watch.Elapsed(), 5 * kNanosPerMilli);
  EXPECT_DOUBLE_EQ(watch.ElapsedMillis(), 5.0);
}

TEST(ClockTest, UnitConversions) {
  EXPECT_DOUBLE_EQ(ToMillis(1'500'000), 1.5);
  EXPECT_DOUBLE_EQ(ToMicros(1'500), 1.5);
  EXPECT_DOUBLE_EQ(ToSeconds(2'000'000'000), 2.0);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.Between(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, AsciiStringIsPrintableAndSized) {
  Rng rng(9);
  std::string s = rng.AsciiString(15);
  EXPECT_EQ(s.size(), 15u);
  for (char c : s) EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ConfigTest, ParsesTypedValues) {
  auto config = Config::Parse(
      "port = 50000\n"
      "# a comment\n"
      "replicas=2\n"
      "ratio = 0.75\n"
      "persistent = true  # trailing comment\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("port", 0), 50000);
  EXPECT_EQ(config->GetInt("replicas", 0), 2);
  EXPECT_DOUBLE_EQ(config->GetDouble("ratio", 0), 0.75);
  EXPECT_TRUE(config->GetBool("persistent", false));
}

TEST(ConfigTest, FallbacksApply) {
  Config config;
  EXPECT_EQ(config.GetInt("absent", 42), 42);
  EXPECT_EQ(config.GetString("absent", "x"), "x");
  EXPECT_FALSE(config.GetBool("absent", false));
}

TEST(ConfigTest, MalformedLineRejected) {
  auto config = Config::Parse("no equals sign here\n");
  EXPECT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConfigTest, NonNumericIntFallsBack) {
  auto config = Config::Parse("port = not-a-number\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("port", 99), 99);
}

TEST(ConfigTest, RoundTrips) {
  Config config;
  config.Set("alpha", "1");
  config.SetInt("beta", 2);
  auto reparsed = Config::Parse(config.Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->GetString("alpha", ""), "1");
  EXPECT_EQ(reparsed->GetInt("beta", 0), 2);
}

TEST(Crc32Test, KnownVector) {
  // CRC-32C("123456789") = 0xE3069283 (well-known check value).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "the quick brown fox";
  std::uint32_t base = Crc32c(data);
  data[3] ^= 0x01;
  EXPECT_NE(Crc32c(data), base);
}

TEST(Crc32Test, EmptyInput) { EXPECT_EQ(Crc32c(""), 0u); }

TEST(LatencyStatsTest, MeanAndPercentiles) {
  LatencyStats stats;
  for (int i = 1; i <= 100; ++i) stats.Record(i * kNanosPerMilli);
  EXPECT_EQ(stats.count(), 100u);
  EXPECT_DOUBLE_EQ(stats.MeanMillis(), 50.5);
  EXPECT_EQ(stats.Min(), kNanosPerMilli);
  EXPECT_EQ(stats.Max(), 100 * kNanosPerMilli);
  // Interpolated quantiles: p50 over 1..100 ms is the midpoint of the
  // 50th/51st samples, p99 sits 1% of the way from 99 ms to 100 ms.
  EXPECT_EQ(stats.Percentile(50), 50 * kNanosPerMilli + kNanosPerMilli / 2);
  EXPECT_EQ(stats.Percentile(99),
            99 * kNanosPerMilli + kNanosPerMilli / 100);
  EXPECT_EQ(stats.Percentile(0), kNanosPerMilli);
  EXPECT_EQ(stats.Percentile(100), 100 * kNanosPerMilli);
}

// Regression: Percentile used to truncate to the floor rank, so the median
// of {10, 20} came back as 10 and a 2-sample p99 as the first sample.
TEST(LatencyStatsTest, PercentileInterpolatesBetweenRanks) {
  LatencyStats stats;
  stats.Record(10);
  stats.Record(20);
  EXPECT_EQ(stats.Percentile(50), 15);
  EXPECT_EQ(stats.Percentile(75), 18);  // 10 + 0.75 * 10, rounded
  EXPECT_EQ(stats.Percentile(99), 20);  // 19.9 rounds up to max
}

// Regression: Merge used to unconditionally mark the result unsorted and
// re-sort from scratch; merging two sorted runs must keep exact
// percentiles (and the sorted invariant) intact.
TEST(LatencyStatsTest, MergeOfSortedRunsKeepsPercentilesExact) {
  LatencyStats evens, odds;
  for (int i = 1; i <= 50; ++i) evens.Record(2 * i);       // 2..100
  for (int i = 0; i < 50; ++i) odds.Record(2 * i + 1);     // 1..99
  evens.Percentile(50);  // force both sides sorted
  odds.Percentile(50);
  evens.Merge(odds);
  EXPECT_EQ(evens.count(), 100u);
  EXPECT_EQ(evens.Min(), 1);
  EXPECT_EQ(evens.Max(), 100);
  LatencyStats reference;
  for (int i = 1; i <= 100; ++i) reference.Record(i);
  for (double p : {1.0, 25.0, 50.0, 90.0, 99.0}) {
    EXPECT_EQ(evens.Percentile(p), reference.Percentile(p)) << p;
  }
}

TEST(LatencyStatsTest, MergeUnsortedSideStillCorrect) {
  LatencyStats a, b;
  a.Record(30);
  a.Record(10);  // a unsorted
  b.Record(20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.Percentile(50), 20);
}

TEST(LatencyStatsTest, MergeCombines) {
  LatencyStats a, b;
  a.Record(10);
  b.Record(20);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.sum(), 30);
}

TEST(LatencyStatsTest, EmptyIsZero) {
  LatencyStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.MeanMillis(), 0.0);
  EXPECT_EQ(stats.Percentile(50), 0);
}

TEST(ThroughputTest, OpsPerSec) {
  EXPECT_DOUBLE_EQ(OpsPerSec(1000, kNanosPerSec), 1000.0);
  EXPECT_DOUBLE_EQ(OpsPerSec(500, kNanosPerSec / 2), 1000.0);
  EXPECT_DOUBLE_EQ(OpsPerSec(10, 0), 0.0);
}

}  // namespace
}  // namespace zht
