// Asynchronous request API (`ctest -L concurrency`): HandleAsync routing
// through shard mailboxes, with shards bound to real executor threads so
// cross-reactor forwarding — not shared-state locking — carries requests
// to their owners. Covers:
//
//  1. single ops posted from a non-executor thread land on bound shards
//     via the mailbox (every one counts as a forward) and still complete;
//  2. ops dispatched from the WRONG executor thread forward to the owner's
//     mailbox and are executed by the owning executor thread only;
//  3. a BATCH whose sub-ops span every shard owner scatters per-shard
//     groups and gathers one carrier response;
//  4. a partition migrating away mid-traffic answers in-flight ops with
//     kMigrating (never a hang, a crash, or a dropped callback).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/zht_server.h"
#include "net/loopback.h"
#include "serialize/batch.h"

namespace zht {
namespace {

// A polling executor pool: thread e claims executor identity e and drains
// its bound shards until stopped. The waker is a no-op because the loop
// polls; production reactors use their eventfd instead.
class ExecutorPool {
 public:
  ExecutorPool(ZhtServer& server, int executors) : server_(server) {
    for (int e = 0; e < executors; ++e) {
      threads_.emplace_back([this, e] {
        server_.EnterExecutorThread(e);
        started_.fetch_add(1, std::memory_order_release);
        while (!stop_.load(std::memory_order_acquire)) {
          server_.RunExecutor(e);
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        server_.RunExecutor(e);  // final drain
      });
    }
    while (started_.load(std::memory_order_acquire) <
           static_cast<int>(threads_.size())) {
      std::this_thread::yield();
    }
  }

  // Runs `fn` on executor thread `e` by injecting it through the server's
  // own mailbox for a shard bound to `e`.
  ~ExecutorPool() {
    stop_.store(true, std::memory_order_release);
    for (auto& t : threads_) t.join();
  }

 private:
  ZhtServer& server_;
  std::atomic<bool> stop_{false};
  std::atomic<int> started_{0};
  std::vector<std::thread> threads_;
};

struct Rig {
  LoopbackNetwork network;
  std::vector<NodeAddress> addresses;
  std::unique_ptr<LoopbackTransport> transport;
  std::unique_ptr<ZhtServer> server;

  explicit Rig(std::size_t num_shards, std::uint32_t partitions = 16) {
    addresses.push_back(
        network.Register([](Request&&) { return Response{}; }));
    MembershipTable table = MembershipTable::CreateUniform(
        partitions, addresses, 1, HashKind::kFnv1a);
    ZhtServerOptions options;
    options.self = 0;
    options.cluster.num_replicas = 0;
    options.num_shards = num_shards;
    transport = std::make_unique<LoopbackTransport>(&network);
    server = std::make_unique<ZhtServer>(std::move(table), options,
                                         transport.get());
  }
};

Request DataOp(OpCode op, std::string key, std::string value,
               std::uint64_t seq) {
  Request request;
  request.op = op;
  request.key = std::move(key);
  request.value = std::move(value);
  request.seq = seq;
  return request;
}

// Keys that hash to a shard owned by each executor (shard = partition %
// num_shards under the server's uniform layout).
std::string KeyOnShard(const ZhtServer& server, const MembershipTable& table,
                       std::size_t shard) {
  for (int i = 0;; ++i) {
    std::string key = "k" + std::to_string(i);
    if (table.PartitionOfKey(key) % server.num_shards() == shard) return key;
  }
}

TEST(AsyncApiTest, ForwardsSingleOpsToBoundShards) {
  Rig rig(/*num_shards=*/2);
  for (std::size_t s = 0; s < rig.server->num_shards(); ++s) {
    rig.server->BindShardExecutor(s, static_cast<int>(s), [] {});
  }
  ExecutorPool pool(*rig.server, 2);

  // This thread holds no executor identity, so every post is a forward
  // into a bound shard's mailbox, executed by the owning executor thread.
  constexpr int kOps = 200;
  std::atomic<int> completions{0};
  std::atomic<int> failures{0};
  for (int i = 0; i < kOps; ++i) {
    Request put = DataOp(OpCode::kInsert, "key" + std::to_string(i),
                         "v" + std::to_string(i),
                         static_cast<std::uint64_t>(i + 1));
    rig.server->HandleAsync(std::move(put), [&](Response&& response) {
      if (!response.ok()) ++failures;
      completions.fetch_add(1, std::memory_order_release);
    });
  }
  for (int spin = 0; completions.load(std::memory_order_acquire) < kOps;
       ++spin) {
    ASSERT_LT(spin, 50000) << "async completions lost";
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(failures.load(), 0);

  std::uint64_t forwarded = 0;
  for (std::size_t s = 0; s < rig.server->num_shards(); ++s) {
    forwarded += rig.server->ShardForwardedOps(s);
  }
  EXPECT_GE(forwarded, static_cast<std::uint64_t>(kOps));

  // The forwards surface in STATS-visible metrics, and reads see the
  // writes once the owning executors drained them.
  MetricsSnapshot snapshot = rig.server->MetricsSnapshotNow();
  EXPECT_GE(snapshot.ValueOf("reactor.forwards"),
            static_cast<std::int64_t>(kOps));
  EXPECT_NE(snapshot.Find("reactor.mailbox_full"), nullptr);
  Response got = rig.server->Handle(DataOp(OpCode::kLookup, "key7", "", 999));
  EXPECT_TRUE(got.ok());
  EXPECT_EQ(got.value, "v7");
}

TEST(AsyncApiTest, WrongExecutorForwardsToOwner) {
  Rig rig(/*num_shards=*/2);
  const MembershipTable table = rig.server->table();
  for (std::size_t s = 0; s < rig.server->num_shards(); ++s) {
    rig.server->BindShardExecutor(s, static_cast<int>(s), [] {});
  }
  ExecutorPool pool(*rig.server, 2);

  // A request whose key lives on shard 1, dispatched while executor 0 is
  // draining (i.e. from the wrong reactor): it must cross the mailbox,
  // not execute in place.
  std::string wrong_home = KeyOnShard(*rig.server, table, 1);
  const std::uint64_t before = rig.server->ShardForwardedOps(1);

  // Drive the dispatch from executor 0's thread by issuing an op on shard
  // 0 whose completion callback (running on executor 0) issues the
  // cross-shard op.
  std::string own_home = KeyOnShard(*rig.server, table, 0);
  std::atomic<bool> inner_done{false};
  bool inner_ok = false;
  rig.server->HandleAsync(
      DataOp(OpCode::kInsert, own_home, "a", 1), [&](Response&&) {
        rig.server->HandleAsync(DataOp(OpCode::kInsert, wrong_home, "b", 2),
                                [&](Response&& inner) {
                                  inner_ok = inner.ok();
                                  inner_done.store(
                                      true, std::memory_order_release);
                                });
      });
  for (int spin = 0; !inner_done.load(std::memory_order_acquire); ++spin) {
    ASSERT_LT(spin, 50000) << "cross-executor op lost";
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_TRUE(inner_ok);
  EXPECT_GT(rig.server->ShardForwardedOps(1), before);
  Response got = rig.server->Handle(DataOp(OpCode::kLookup, wrong_home, "", 3));
  EXPECT_EQ(got.value, "b");
}

TEST(AsyncApiTest, OwnerSpanningBatchGathersAcrossShards) {
  Rig rig(/*num_shards=*/4, /*partitions=*/32);
  const MembershipTable table = rig.server->table();
  for (std::size_t s = 0; s < rig.server->num_shards(); ++s) {
    rig.server->BindShardExecutor(s, static_cast<int>(s), [] {});
  }
  ExecutorPool pool(*rig.server, 4);

  // One sub-op per shard owner, plus extras: the carrier scatters four
  // per-shard groups and the gather must produce one ordered response.
  std::vector<Request> ops;
  for (std::size_t s = 0; s < 4; ++s) {
    ops.push_back(DataOp(OpCode::kInsert, KeyOnShard(*rig.server, table, s),
                         "shard" + std::to_string(s),
                         static_cast<std::uint64_t>(s + 1)));
  }
  for (int i = 0; i < 12; ++i) {
    ops.push_back(DataOp(OpCode::kInsert, "bulk" + std::to_string(i), "x",
                         static_cast<std::uint64_t>(100 + i)));
  }
  Request carrier = PackBatchRequest(ops, /*seq=*/7);

  std::atomic<bool> done{false};
  Response carrier_response;
  rig.server->HandleAsync(std::move(carrier), [&](Response&& response) {
    carrier_response = std::move(response);
    done.store(true, std::memory_order_release);
  });
  for (int spin = 0; !done.load(std::memory_order_acquire); ++spin) {
    ASSERT_LT(spin, 50000) << "batch gather never completed";
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  auto unpacked = UnpackBatchResponse(carrier_response, ops.size());
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  for (std::size_t i = 0; i < unpacked->size(); ++i) {
    EXPECT_TRUE((*unpacked)[i].ok()) << "sub-op " << i;
  }
  for (std::size_t s = 0; s < 4; ++s) {
    Response got = rig.server->Handle(DataOp(
        OpCode::kLookup, KeyOnShard(*rig.server, table, s), "", 900 + s));
    EXPECT_EQ(got.value, "shard" + std::to_string(s));
  }
}

TEST(AsyncApiTest, MigrationMidTrafficAnswersMigratingNotLost) {
  // Two servers on one loopback network; partition P streams from source
  // to target while a writer hammers P through HandleAsync. Every
  // callback must fire, and each op must resolve to Ok (before/after the
  // migration window) or kMigrating (inside it).
  LoopbackNetwork network;
  auto source_slot = std::make_shared<AsyncRequestHandler>();
  auto target_slot = std::make_shared<AsyncRequestHandler>();
  std::vector<NodeAddress> addresses;
  addresses.push_back(network.Register(
      [source_slot](Request&& req, ResponseCallback done) {
        (*source_slot)(std::move(req), std::move(done));
      }));
  addresses.push_back(network.Register(
      [target_slot](Request&& req, ResponseCallback done) {
        (*target_slot)(std::move(req), std::move(done));
      }));
  MembershipTable table =
      MembershipTable::CreateUniform(8, addresses, 1, HashKind::kFnv1a);

  LoopbackTransport transport(&network);
  ZhtServerOptions source_options;
  source_options.self = 0;
  source_options.cluster.num_replicas = 0;
  source_options.num_shards = 2;
  ZhtServer source(table, source_options, &transport);
  *source_slot = source.AsyncHandler();
  ZhtServerOptions target_options;
  target_options.self = 1;
  target_options.cluster.num_replicas = 0;
  ZhtServer target(table, target_options, &transport);
  *target_slot = target.AsyncHandler();

  // A key owned by instance 0, seeded with enough pairs that the stream
  // takes multiple MigrateData batches.
  std::string key;
  for (int i = 0;; ++i) {
    key = "mig" + std::to_string(i);
    if (table.OwnerOf(table.PartitionOfKey(key)) == 0) break;
  }
  PartitionId partition = table.PartitionOfKey(key);
  // Seed the migrating partition itself with enough bulk that the stream
  // spans several MigrateData batches.
  for (int i = 0, seeded = 0; seeded < 64; ++i) {
    std::string seed_key = "seed" + std::to_string(i);
    if (table.PartitionOfKey(seed_key) != partition) continue;
    ++seeded;
    ASSERT_TRUE(source
                    .Handle(DataOp(OpCode::kInsert, seed_key,
                                   std::string(1024, 'd'),
                                   static_cast<std::uint64_t>(seeded)))
                    .ok());
  }
  network.SetLatency(200 * 1000);  // widen the migration window

  std::atomic<bool> stop{false};
  std::atomic<int> completions{0};
  std::atomic<int> dispatched{0};
  std::atomic<int> migrating_seen{0};
  std::atomic<int> unexpected{0};
  std::thread writer([&] {
    for (int i = 0; !stop.load(std::memory_order_acquire); ++i) {
      dispatched.fetch_add(1, std::memory_order_relaxed);
      Request put = DataOp(OpCode::kInsert, key, "w" + std::to_string(i),
                           static_cast<std::uint64_t>(1000 + i));
      source.HandleAsync(std::move(put), [&](Response&& response) {
        if (response.status == Status(StatusCode::kMigrating).raw()) {
          migrating_seen.fetch_add(1, std::memory_order_relaxed);
        } else if (!response.ok()) {
          unexpected.fetch_add(1, std::memory_order_relaxed);
        }
        completions.fetch_add(1, std::memory_order_relaxed);
      });
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  Status migrated = source.MigratePartitionTo(partition, addresses[1]);
  stop.store(true, std::memory_order_release);
  writer.join();
  network.SetLatency(0);

  EXPECT_TRUE(migrated.ok()) << migrated.ToString();
  for (int spin = 0;
       completions.load(std::memory_order_acquire) <
       dispatched.load(std::memory_order_acquire);
       ++spin) {
    ASSERT_LT(spin, 50000) << "write callback lost during migration";
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(target.TotalEntries(), 0u);
  EXPECT_GT(source.stats().migrations_out, 0u);
  // The window was real: the stream is slow enough that at least one
  // in-flight write observed the partition mid-migration.
  EXPECT_GT(migrating_seen.load(), 0);
}

}  // namespace
}  // namespace zht
