#include <gtest/gtest.h>

#include <thread>

#include "core/indexer.h"
#include "core/local_cluster.h"

namespace zht {
namespace {

class IndexerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LocalClusterOptions options;
    options.num_instances = 4;
    auto cluster = LocalCluster::Start(options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(*cluster);
    client_ = std::make_unique<ClientHandle>(cluster_->CreateClient());
    indexer_ = std::make_unique<Indexer>(client_->get());
  }

  std::unique_ptr<LocalCluster> cluster_;
  std::unique_ptr<ClientHandle> client_;
  std::unique_ptr<Indexer> indexer_;
};

TEST_F(IndexerTest, PutAndFindByTag) {
  ASSERT_TRUE(indexer_->PutIndexed("doc1", "contents", {"alpha", "beta"})
                  .ok());
  ASSERT_TRUE(indexer_->PutIndexed("doc2", "contents", {"beta"}).ok());
  EXPECT_EQ(*indexer_->FindByTag("alpha"),
            std::vector<std::string>{"doc1"});
  EXPECT_EQ(*indexer_->FindByTag("beta"),
            (std::vector<std::string>{"doc1", "doc2"}));
  EXPECT_TRUE(indexer_->FindByTag("gamma")->empty());
  // The value itself is a normal ZHT pair.
  EXPECT_EQ((*client_)->Lookup("doc1").value(), "contents");
}

TEST_F(IndexerTest, RemoveDropsPostings) {
  ASSERT_TRUE(indexer_->PutIndexed("doc1", "x", {"t"}).ok());
  ASSERT_TRUE(indexer_->PutIndexed("doc2", "y", {"t"}).ok());
  ASSERT_TRUE(indexer_->RemoveIndexed("doc1", {"t"}).ok());
  EXPECT_EQ(*indexer_->FindByTag("t"), std::vector<std::string>{"doc2"});
  EXPECT_EQ((*client_)->Lookup("doc1").status().code(),
            StatusCode::kNotFound);
}

TEST_F(IndexerTest, ReindexDoesNotDuplicatePosting) {
  ASSERT_TRUE(indexer_->PutIndexed("doc", "v1", {"t"}).ok());
  ASSERT_TRUE(indexer_->PutIndexed("doc", "v2", {"t"}).ok());
  EXPECT_EQ(indexer_->FindByTag("t")->size(), 1u);
  EXPECT_EQ((*client_)->Lookup("doc").value(), "v2");
}

TEST_F(IndexerTest, FindByAllTagsIntersects) {
  ASSERT_TRUE(indexer_->PutIndexed("a", "", {"x", "y"}).ok());
  ASSERT_TRUE(indexer_->PutIndexed("b", "", {"x"}).ok());
  ASSERT_TRUE(indexer_->PutIndexed("c", "", {"x", "y", "z"}).ok());
  EXPECT_EQ(*indexer_->FindByAllTags({"x", "y"}),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(*indexer_->FindByAllTags({"x", "y", "z"}),
            std::vector<std::string>{"c"});
  EXPECT_TRUE(indexer_->FindByAllTags({"x", "missing"})->empty());
  EXPECT_TRUE(indexer_->FindByAllTags({})->empty());
}

TEST_F(IndexerTest, InvalidTagsRejected) {
  EXPECT_FALSE(indexer_->PutIndexed("k", "v", {"bad;tag"}).ok());
  EXPECT_FALSE(indexer_->PutIndexed("k", "v", {""}).ok());
  EXPECT_FALSE(indexer_->PutIndexed("bad;key", "v", {"t"}).ok());
  EXPECT_FALSE(indexer_->FindByTag("no/slash").ok());
}

TEST_F(IndexerTest, CompactTagShrinksPostingLog) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        indexer_->PutIndexed("doc" + std::to_string(i), "v", {"hot"}).ok());
  }
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(
        indexer_->RemoveIndexed("doc" + std::to_string(i), {"hot"}).ok());
  }
  std::size_t before = (*client_)->Lookup("tag:hot")->size();
  ASSERT_TRUE(indexer_->CompactTag("hot").ok());
  std::size_t after = (*client_)->Lookup("tag:hot")->size();
  EXPECT_LT(after, before / 3);
  EXPECT_EQ(indexer_->FindByTag("hot")->size(), 5u);
}

TEST_F(IndexerTest, CompactEmptyTagRemovesKey) {
  ASSERT_TRUE(indexer_->PutIndexed("d", "v", {"once"}).ok());
  ASSERT_TRUE(indexer_->RemoveIndexed("d", {"once"}).ok());
  ASSERT_TRUE(indexer_->CompactTag("once").ok());
  EXPECT_EQ((*client_)->Lookup("tag:once").status().code(),
            StatusCode::kNotFound);
}

TEST_F(IndexerTest, ConcurrentIndexersNoLostPostings) {
  // The reason append exists: multiple writers extend one posting list
  // with no distributed lock.
  constexpr int kThreads = 4;
  constexpr int kDocsEach = 40;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      auto client = cluster_->CreateClient();
      Indexer indexer(client.get());
      for (int i = 0; i < kDocsEach; ++i) {
        std::string key =
            "w" + std::to_string(t) + "-doc" + std::to_string(i);
        ASSERT_TRUE(indexer.PutIndexed(key, "v", {"shared"}).ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(indexer_->FindByTag("shared")->size(),
            static_cast<std::size_t>(kThreads * kDocsEach));
}

}  // namespace
}  // namespace zht
