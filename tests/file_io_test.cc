#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/local_cluster.h"
#include "fusionfs/file_io.h"

namespace zht::fusionfs {
namespace {

class FileIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LocalClusterOptions options;
    options.num_instances = 4;
    auto cluster = LocalCluster::Start(options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(*cluster);
    client_ = std::make_unique<ClientHandle>(cluster_->CreateClient());
    metadata_ = std::make_unique<MetadataService>(client_->get());
    ASSERT_TRUE(metadata_->Format().ok());
    FileIoOptions io_options;
    io_options.block_size = 256;  // small blocks exercise boundaries
    io_ = std::make_unique<FileIo>(metadata_.get(), client_->get(),
                                   io_options);
  }

  void Create(const std::string& path) {
    FileMetadata meta;
    ASSERT_TRUE(metadata_->CreateFile(path, meta).ok());
  }

  std::unique_ptr<LocalCluster> cluster_;
  std::unique_ptr<ClientHandle> client_;
  std::unique_ptr<MetadataService> metadata_;
  std::unique_ptr<FileIo> io_;
};

TEST_F(FileIoTest, WriteReadSmall) {
  Create("/f");
  ASSERT_TRUE(io_->Write("/f", 0, "hello world").ok());
  EXPECT_EQ(io_->ReadAll("/f").value(), "hello world");
  EXPECT_EQ(metadata_->Stat("/f")->size, 11u);
}

TEST_F(FileIoTest, MultiBlockRoundTrip) {
  Create("/big");
  Rng rng(1);
  std::string data = rng.AsciiString(5000);  // ~20 blocks of 256
  ASSERT_TRUE(io_->Write("/big", 0, data).ok());
  EXPECT_EQ(io_->ReadAll("/big").value(), data);
  EXPECT_EQ(metadata_->Stat("/big")->size, 5000u);
}

TEST_F(FileIoTest, PartialReadsAtArbitraryOffsets) {
  Create("/r");
  Rng rng(2);
  std::string data = rng.AsciiString(3000);
  ASSERT_TRUE(io_->Write("/r", 0, data).ok());
  for (std::uint64_t offset : {0ull, 1ull, 255ull, 256ull, 257ull, 1024ull,
                               2999ull}) {
    for (std::size_t length : {1ul, 100ul, 256ul, 1000ul}) {
      auto got = io_->Read("/r", offset, length);
      ASSERT_TRUE(got.ok());
      std::size_t expected =
          std::min<std::size_t>(length, data.size() - offset);
      EXPECT_EQ(*got, data.substr(offset, expected));
    }
  }
  EXPECT_EQ(io_->Read("/r", 5000, 10).value(), "");  // past EOF
}

TEST_F(FileIoTest, OverwriteMiddle) {
  Create("/o");
  ASSERT_TRUE(io_->Write("/o", 0, std::string(1000, 'a')).ok());
  ASSERT_TRUE(io_->Write("/o", 300, "XYZ").ok());
  std::string expected(1000, 'a');
  expected.replace(300, 3, "XYZ");
  EXPECT_EQ(io_->ReadAll("/o").value(), expected);
  EXPECT_EQ(metadata_->Stat("/o")->size, 1000u);  // unchanged
}

TEST_F(FileIoTest, SparseGapReadsAsZeros) {
  Create("/sparse");
  ASSERT_TRUE(io_->Write("/sparse", 1000, "tail").ok());
  auto all = io_->ReadAll("/sparse");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 1004u);
  EXPECT_EQ(all->substr(0, 1000), std::string(1000, '\0'));
  EXPECT_EQ(all->substr(1000), "tail");
}

TEST_F(FileIoTest, TruncateShrinkAndGrow) {
  Create("/t");
  Rng rng(3);
  std::string data = rng.AsciiString(1000);
  ASSERT_TRUE(io_->Write("/t", 0, data).ok());
  ASSERT_TRUE(io_->Truncate("/t", 300).ok());
  EXPECT_EQ(io_->ReadAll("/t").value(), data.substr(0, 300));
  // Re-grow: truncated region must be zeros, not resurrected bytes.
  ASSERT_TRUE(io_->Truncate("/t", 600).ok());
  auto regrown = io_->ReadAll("/t");
  ASSERT_TRUE(regrown.ok());
  EXPECT_EQ(regrown->substr(0, 300), data.substr(0, 300));
  EXPECT_EQ(regrown->substr(300), std::string(300, '\0'));
}

TEST_F(FileIoTest, DeleteRemovesBlocksAndMetadata) {
  Create("/d");
  ASSERT_TRUE(io_->Write("/d", 0, std::string(1000, 'x')).ok());
  ASSERT_TRUE(io_->Delete("/d").ok());
  EXPECT_EQ(metadata_->Stat("/d").status().code(), StatusCode::kNotFound);
  // Blocks gone from the DHT.
  EXPECT_EQ((*client_)->Lookup("b:/d:0").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*client_)->Lookup("b:/d:3").status().code(),
            StatusCode::kNotFound);
}

TEST_F(FileIoTest, DirectoryIoRejected) {
  ASSERT_TRUE(metadata_->MkDir("/dir").ok());
  EXPECT_EQ(io_->Write("/dir", 0, "x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(io_->Read("/dir", 0, 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(io_->Truncate("/dir", 0).code(), StatusCode::kInvalidArgument);
}

TEST_F(FileIoTest, MissingFileRejected) {
  EXPECT_EQ(io_->Write("/ghost", 0, "x").code(), StatusCode::kNotFound);
  EXPECT_EQ(io_->Read("/ghost", 0, 1).status().code(),
            StatusCode::kNotFound);
}

TEST_F(FileIoTest, RandomWriteReadFuzz) {
  Create("/fuzz");
  Rng rng(42);
  std::string model;
  for (int op = 0; op < 120; ++op) {
    std::uint64_t offset = rng.Below(2000);
    std::string chunk = rng.AsciiString(1 + rng.Below(400));
    ASSERT_TRUE(io_->Write("/fuzz", offset, chunk).ok());
    if (model.size() < offset + chunk.size()) {
      model.resize(offset + chunk.size(), '\0');
    }
    model.replace(static_cast<std::size_t>(offset), chunk.size(), chunk);
  }
  EXPECT_EQ(io_->ReadAll("/fuzz").value(), model);
}

}  // namespace
}  // namespace zht::fusionfs
