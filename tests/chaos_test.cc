// Chaos suite: seeded fault schedules driven through the whole cluster —
// replication, failover, migration, dedup — with every client-visible
// operation recorded and validated by the history checker, then a full
// restart from the persistent stores verified against the final state.
//
// Schedules are deterministic: a failing (name, seed) pair reproduces
// bit-for-bit because fault decisions are pure functions of the plan seed
// and the single-threaded harness issues operations in a fixed
// interleaving (the one `threaded` schedule uses only faults that cannot
// change outcomes — delays and duplicates).
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <optional>
#include <thread>

#include "common/rng.h"
#include "core/local_cluster.h"
#include "history_checker.h"
#include "novoht/novoht.h"

namespace zht {
namespace {

namespace fs = std::filesystem;

// ---- checker self-tests (teeth) ----------------------------------------
//
// Synthetic histories with known defects: the checker must catch each one,
// or a regression in it would let the live schedules rot silently. These
// are exactly the defects that reverting server logic would produce —
// dropping append dedup double-applies tokens, dropping failover loses
// acked writes.

HistoryEvent Ev(std::uint64_t id, OpCode op, std::string key,
                std::string argument, std::uint64_t invoked,
                std::uint64_t completed, StatusCode result,
                std::string returned = {}) {
  HistoryEvent e;
  e.id = id;
  e.client = 1;
  e.op = op;
  e.key = std::move(key);
  e.argument = std::move(argument);
  e.invoked = invoked;
  e.completed = completed;
  e.result = result;
  e.returned = std::move(returned);
  return e;
}

TEST(HistoryCheckerTest, CleanHistoryPasses) {
  std::vector<HistoryEvent> h = {
      Ev(1, OpCode::kInsert, "k", "v1", 1, 2, StatusCode::kOk),
      Ev(2, OpCode::kLookup, "k", "", 3, 4, StatusCode::kOk, "v1"),
      Ev(3, OpCode::kRemove, "k", "", 5, 6, StatusCode::kOk),
      Ev(4, OpCode::kLookup, "k", "", 7, 8, StatusCode::kNotFound),
      Ev(5, OpCode::kAppend, "l", "a;", 9, 10, StatusCode::kOk),
      Ev(6, OpCode::kAppend, "l", "b;", 11, 12, StatusCode::kOk),
      Ev(7, OpCode::kLookup, "l", "", 13, 14, StatusCode::kOk, "a;b;"),
  };
  auto result = CheckHistory(h);
  EXPECT_TRUE(result.ok()) << result.ToString();
}

TEST(HistoryCheckerTest, DoubleAppliedAppendIsFlagged) {
  std::vector<HistoryEvent> h = {
      Ev(1, OpCode::kAppend, "l", "a;", 1, 2, StatusCode::kOk),
      Ev(2, OpCode::kLookup, "l", "", 3, 4, StatusCode::kOk, "a;a;"),
  };
  EXPECT_FALSE(CheckHistory(h).ok());
}

TEST(HistoryCheckerTest, LostAckedInsertIsFlagged) {
  std::vector<HistoryEvent> h = {
      Ev(1, OpCode::kInsert, "k", "v1", 1, 2, StatusCode::kOk),
      Ev(2, OpCode::kLookup, "k", "", 3, 4, StatusCode::kNotFound),
  };
  EXPECT_FALSE(CheckHistory(h).ok());
}

TEST(HistoryCheckerTest, LostAckedAppendIsFlagged) {
  std::vector<HistoryEvent> h = {
      Ev(1, OpCode::kAppend, "l", "a;", 1, 2, StatusCode::kOk),
      Ev(2, OpCode::kAppend, "l", "b;", 3, 4, StatusCode::kOk),
      Ev(3, OpCode::kLookup, "l", "", 5, 6, StatusCode::kOk, "b;"),
  };
  EXPECT_FALSE(CheckHistory(h).ok());
}

TEST(HistoryCheckerTest, DefinitelyStaleReadIsFlagged) {
  std::vector<HistoryEvent> h = {
      Ev(1, OpCode::kInsert, "k", "v1", 1, 2, StatusCode::kOk),
      Ev(2, OpCode::kInsert, "k", "v2", 3, 4, StatusCode::kOk),
      Ev(3, OpCode::kLookup, "k", "", 5, 6, StatusCode::kOk, "v1"),
  };
  EXPECT_FALSE(CheckHistory(h).ok());
}

TEST(HistoryCheckerTest, ReadOfNeverWrittenValueIsFlagged) {
  std::vector<HistoryEvent> h = {
      Ev(1, OpCode::kInsert, "k", "v1", 1, 2, StatusCode::kOk),
      Ev(2, OpCode::kLookup, "k", "", 3, 4, StatusCode::kOk, "vX"),
  };
  EXPECT_FALSE(CheckHistory(h).ok());
}

TEST(HistoryCheckerTest, ReadFromTheFutureIsFlagged) {
  std::vector<HistoryEvent> h = {
      Ev(1, OpCode::kLookup, "k", "", 1, 2, StatusCode::kOk, "v1"),
      Ev(2, OpCode::kInsert, "k", "v1", 3, 4, StatusCode::kOk),
  };
  EXPECT_FALSE(CheckHistory(h).ok());
}

TEST(HistoryCheckerTest, OrderInversionIsFlagged) {
  std::vector<HistoryEvent> h = {
      Ev(1, OpCode::kAppend, "l", "a;", 1, 2, StatusCode::kOk),
      Ev(2, OpCode::kAppend, "l", "b;", 3, 4, StatusCode::kOk),
      Ev(3, OpCode::kLookup, "l", "", 5, 6, StatusCode::kOk, "b;a;"),
  };
  EXPECT_FALSE(CheckHistory(h).ok());
}

TEST(HistoryCheckerTest, TimeoutsAreAmbiguousNotViolations) {
  // A timed-out insert may or may not have applied: both a later NotFound
  // and a later read of its value are legal.
  std::vector<HistoryEvent> h1 = {
      Ev(1, OpCode::kInsert, "k", "v1", 1, 2, StatusCode::kTimeout),
      Ev(2, OpCode::kLookup, "k", "", 3, 4, StatusCode::kNotFound),
  };
  auto r1 = CheckHistory(h1);
  EXPECT_TRUE(r1.ok()) << r1.ToString();
  std::vector<HistoryEvent> h2 = {
      Ev(1, OpCode::kInsert, "k", "v1", 1, 2, StatusCode::kTimeout),
      Ev(2, OpCode::kLookup, "k", "", 3, 4, StatusCode::kOk, "v1"),
  };
  auto r2 = CheckHistory(h2);
  EXPECT_TRUE(r2.ok()) << r2.ToString();
  // Same for a pending remove: NotFound afterwards is legal.
  std::vector<HistoryEvent> h3 = {
      Ev(1, OpCode::kInsert, "k", "v1", 1, 2, StatusCode::kOk),
      Ev(2, OpCode::kRemove, "k", "", 3, 0, StatusCode::kTimeout),
      Ev(3, OpCode::kLookup, "k", "", 4, 5, StatusCode::kNotFound),
  };
  auto r3 = CheckHistory(h3);
  EXPECT_TRUE(r3.ok()) << r3.ToString();
}

TEST(HistoryCheckerTest, TornLedgerValueIsFlagged) {
  std::vector<HistoryEvent> h = {
      Ev(1, OpCode::kAppend, "l", "a;", 1, 2, StatusCode::kOk),
      Ev(2, OpCode::kLookup, "l", "", 3, 4, StatusCode::kOk, "a;frag"),
  };
  EXPECT_FALSE(CheckHistory(h).ok());
}

// ---- live chaos schedules ----------------------------------------------

enum class MidEvent { kNone, kKill, kJoin };

struct ChaosSchedule {
  const char* name;
  std::uint64_t seed;
  int replicas = 0;
  std::uint32_t instances = 4;
  int clients = 2;
  int ops_per_phase = 60;
  // One rule set per phase; rules are installed at phase start and removed
  // at phase end. The mid event fires between phases 0 and 1; the second
  // mid event (overlapping failures, rebuild interruption) between 1 and 2.
  std::vector<std::vector<FaultRule>> phases;
  bool partition_in_middle = false;  // cut servers {0..n/2-1} | {n/2..n-1}
  MidEvent mid = MidEvent::kNone;
  std::size_t victim = 1;
  MidEvent mid2 = MidEvent::kNone;
  std::size_t victim2 = 2;
  bool threaded = false;  // real threads: only delay/duplicate faults!
  // Durability of the partition stores. With kGroupCommit the servers ack a
  // mutation only after the flusher has synced past it, so a mid-schedule
  // kill lands inside open commit windows — acked ops must still survive
  // the restart.
  DurabilityMode durability = DurabilityMode::kNone;
  Nanos max_commit_latency = 0;
};

constexpr int kRegisterKeys = 10;
constexpr int kLedgerKeys = 4;

std::string RegisterKey(int i) { return "reg" + std::to_string(i); }
std::string LedgerKey(int i) { return "led" + std::to_string(i); }

// Client options that ride out injected faults: plenty of attempts, fast
// failure marking so failover and dead-node reporting actually engage.
ZhtClientOptions ChaosClient() {
  ZhtClientOptions options;
  options.max_attempts = 24;
  options.failure_detector.failures_to_mark_dead = 4;
  options.failure_detector.initial_backoff = 0;
  options.sleep_on_backoff = false;
  return options;
}

class ChaosHarness {
 public:
  ChaosHarness(const ChaosSchedule& schedule, fs::path dir)
      : schedule_(schedule), dir_(std::move(dir)) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  ~ChaosHarness() { fs::remove_all(dir_); }

  StoreFactory PersistentStores() const {
    fs::path dir = dir_;
    DurabilityMode durability = schedule_.durability;
    Nanos latency = schedule_.max_commit_latency;
    return [dir, durability, latency](
               InstanceId self,
               PartitionId partition) -> std::unique_ptr<KVStore> {
      NoVoHTOptions options;
      options.path = (dir / ("i" + std::to_string(self) + "_p" +
                             std::to_string(partition)))
                         .string();
      options.durability = durability;
      options.max_commit_latency = latency;
      // The server acks once per request via the last_commit_token() /
      // WaitDurable() handshake; the store must not block internally.
      options.wait_for_durable = false;
      auto store = NoVoHT::Open(options);
      return store.ok() ? std::move(*store) : nullptr;
    };
  }

  LocalClusterOptions BaseOptions() const {
    LocalClusterOptions options;
    options.num_instances = schedule_.instances;
    options.num_partitions = schedule_.instances * 8;
    options.cluster.num_replicas = schedule_.replicas;
    options.store_factory = PersistentStores();
    return options;
  }

  void Run() {
    LocalClusterOptions options = BaseOptions();
    options.fault_plan = std::make_shared<FaultPlan>(schedule_.seed);
    plan_ = options.fault_plan;
    auto cluster = LocalCluster::Start(options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(*cluster);

    struct Client {
      std::uint64_t id;
      ClientHandle handle;
      Rng rng;
      int counter = 0;
    };
    std::vector<Client> clients;
    for (int c = 0; c < schedule_.clients; ++c) {
      clients.push_back(Client{static_cast<std::uint64_t>(c + 1),
                               cluster_->CreateClient(ChaosClient()),
                               Rng(schedule_.seed * 1000 + c)});
    }

    for (std::size_t phase = 0; phase < schedule_.phases.size(); ++phase) {
      std::vector<int> installed;
      for (const FaultRule& rule : schedule_.phases[phase]) {
        installed.push_back(plan_->AddRule(rule));
      }
      int cut = -1;
      const bool middle = phase == schedule_.phases.size() / 2;
      if (schedule_.partition_in_middle && middle) {
        std::vector<NodeAddress> a, b;
        for (std::size_t i = 0; i < cluster_->instance_count(); ++i) {
          (i < cluster_->instance_count() / 2 ? a : b)
              .push_back(cluster_->instance_address(i));
        }
        cut = plan_->AddPartition(std::move(a), std::move(b));
      }

      if (schedule_.threaded) {
        std::vector<std::thread> threads;
        for (Client& client : clients) {
          threads.emplace_back([this, &client] {
            for (int op = 0; op < schedule_.ops_per_phase; ++op) {
              IssueOne(client.id, *client.handle.get(), client.rng,
                       client.counter);
            }
          });
        }
        for (std::thread& t : threads) t.join();
      } else {
        // Fixed interleaving: one op per client, round-robin.
        for (int op = 0; op < schedule_.ops_per_phase; ++op) {
          for (Client& client : clients) {
            IssueOne(client.id, *client.handle.get(), client.rng,
                     client.counter);
          }
        }
      }

      for (int id : installed) plan_->RemoveRule(id);
      if (cut >= 0) plan_->RemovePartition(cut);

      const MidEvent event = phase == 0   ? schedule_.mid
                             : phase == 1 ? schedule_.mid2
                                          : MidEvent::kNone;
      const std::size_t victim =
          phase == 0 ? schedule_.victim : schedule_.victim2;
      switch (event) {
        case MidEvent::kNone:
          break;
        case MidEvent::kKill:
          cluster_->KillInstance(victim);
          break;
        case MidEvent::kJoin: {
          auto joined = cluster_->JoinNewInstance();
          ASSERT_TRUE(joined.ok()) << joined.status().ToString();
          break;
        }
      }
    }

    // Quiesce: no faults remain, async replication flushed, and one final
    // recorded read of every key — these reads anchor the checker's view
    // of the final state.
    plan_->Clear();
    cluster_->FlushAllAsyncReplication();
    auto reader = cluster_->CreateClient(ChaosClient());
    RecordedReadAll(*reader.get());

    auto result = CheckHistory(recorder_.Events());
    EXPECT_TRUE(result.ok())
        << "schedule '" << schedule_.name << "' seed " << schedule_.seed
        << " (" << result.events_checked << " events):\n"
        << result.ToString();

    VerifyRestart(*reader.get());
  }

 private:
  void IssueOne(std::uint64_t id, ZhtClient& client, Rng& rng, int& counter) {
    const double dice = rng.NextDouble();
    if (dice < 0.35) {
      std::string key = RegisterKey(static_cast<int>(rng.Below(kRegisterKeys)));
      std::string value =
          "v" + std::to_string(id) + "_" + std::to_string(++counter);
      std::uint64_t op = recorder_.Begin(id, OpCode::kInsert, key, value);
      recorder_.End(op, client.Insert(key, value).code());
    } else if (dice < 0.55) {
      std::string key = RegisterKey(static_cast<int>(rng.Below(kRegisterKeys)));
      std::uint64_t op = recorder_.Begin(id, OpCode::kLookup, key, "");
      auto got = client.Lookup(key);
      recorder_.End(op, got.status().code(), got.ok() ? *got : "");
    } else if (dice < 0.65) {
      std::string key = RegisterKey(static_cast<int>(rng.Below(kRegisterKeys)));
      std::uint64_t op = recorder_.Begin(id, OpCode::kRemove, key, "");
      recorder_.End(op, client.Remove(key).code());
    } else if (dice < 0.85) {
      std::string key = LedgerKey(static_cast<int>(rng.Below(kLedgerKeys)));
      std::string token =
          "c" + std::to_string(id) + "t" + std::to_string(++counter) + ";";
      std::uint64_t op = recorder_.Begin(id, OpCode::kAppend, key, token);
      recorder_.End(op, client.Append(key, token).code());
    } else {
      std::string key = LedgerKey(static_cast<int>(rng.Below(kLedgerKeys)));
      std::uint64_t op = recorder_.Begin(id, OpCode::kLookup, key, "");
      auto got = client.Lookup(key);
      recorder_.End(op, got.status().code(), got.ok() ? *got : "");
    }
  }

  void RecordedReadAll(ZhtClient& client) {
    for (int i = 0; i < kRegisterKeys; ++i) {
      std::uint64_t op =
          recorder_.Begin(999, OpCode::kLookup, RegisterKey(i), "");
      auto got = client.Lookup(RegisterKey(i));
      recorder_.End(op, got.status().code(), got.ok() ? *got : "");
    }
    for (int i = 0; i < kLedgerKeys; ++i) {
      std::uint64_t op =
          recorder_.Begin(999, OpCode::kLookup, LedgerKey(i), "");
      auto got = client.Lookup(LedgerKey(i));
      recorder_.End(op, got.status().code(), got.ok() ? *got : "");
    }
  }

  // Tears the cluster down and reboots it from the persistent stores with
  // the final membership snapshot: every surviving value must reload.
  void VerifyRestart(ZhtClient& reader) {
    std::map<std::string, std::optional<std::string>> expected;
    auto capture = [&](const std::string& key) {
      auto got = reader.Lookup(key);
      if (got.ok()) {
        expected[key] = *got;
      } else if (got.status().code() == StatusCode::kNotFound) {
        expected[key] = std::nullopt;
      } else {
        ADD_FAILURE() << "pre-restart read of '" << key
                      << "': " << got.status().ToString();
      }
    };
    for (int i = 0; i < kRegisterKeys; ++i) capture(RegisterKey(i));
    for (int i = 0; i < kLedgerKeys; ++i) capture(LedgerKey(i));

    MembershipTable snapshot = cluster_->TableSnapshot();
    cluster_.reset();  // full teardown: every store closes its log

    LocalClusterOptions options = BaseOptions();
    options.initial_table = std::move(snapshot);
    auto rebooted = LocalCluster::Start(options);
    ASSERT_TRUE(rebooted.ok()) << rebooted.status().ToString();
    auto client = (*rebooted)->CreateClient(ChaosClient());
    for (const auto& [key, value] : expected) {
      auto got = client->Lookup(key);
      if (value) {
        ASSERT_TRUE(got.ok())
            << key << " lost across restart: " << got.status().ToString();
        EXPECT_EQ(*got, *value) << key << " changed across restart";
      } else {
        EXPECT_EQ(got.status().code(), StatusCode::kNotFound)
            << key << " resurrected across restart";
      }
    }
  }

  const ChaosSchedule& schedule_;
  fs::path dir_;
  std::shared_ptr<FaultPlan> plan_;
  std::unique_ptr<LocalCluster> cluster_;
  HistoryRecorder recorder_;
};

class ChaosScheduleTest : public ::testing::TestWithParam<ChaosSchedule> {};

TEST_P(ChaosScheduleTest, HistoryLinearizesAndSurvivesRestart) {
  const ChaosSchedule& schedule = GetParam();
  ChaosHarness harness(schedule, fs::path(::testing::TempDir()) /
                                     ("zht_chaos_" + std::string(schedule.name)));
  harness.Run();
}

// The fixed seed list (`ctest -L chaos` runs them all). Coverage:
//   drop-request  — lossy_r0, kill_failover_r2, migration_join_r1
//   drop-response — dedup_drop_response_r1, migration_join_r1
//   duplicate     — duplicate_delivery_r1, threaded_delay_dup_r1
//   delay         — threaded_delay_dup_r1, partition_heals_r2
//   partition     — partition_heals_r2
//   replication   — r=0, r=1, r=2; migration via mid-schedule join;
//                   failover via mid-schedule kill (client-only drops keep
//                   server-to-server replication reliable, so acked writes
//                   must survive the kill).
INSTANTIATE_TEST_SUITE_P(
    Schedules, ChaosScheduleTest,
    ::testing::Values(
        ChaosSchedule{
            .name = "lossy_r0",
            .seed = 101,
            .replicas = 0,
            .instances = 4,
            .clients = 3,
            .ops_per_phase = 50,
            .phases = {{{.kind = FaultKind::kDropRequest,
                         .probability = 0.3}},
                       {}},
        },
        ChaosSchedule{
            .name = "dedup_drop_response_r1",
            .seed = 202,
            .replicas = 1,
            .instances = 4,
            .clients = 2,
            .ops_per_phase = 60,
            .phases = {{{.kind = FaultKind::kDropResponse,
                         .op = OpCode::kAppend,
                         .client_only = true,
                         .probability = 0.25},
                        {.kind = FaultKind::kDropResponse,
                         .op = OpCode::kInsert,
                         .client_only = true,
                         .probability = 0.15}},
                       {}},
        },
        ChaosSchedule{
            .name = "duplicate_delivery_r1",
            .seed = 303,
            .replicas = 1,
            .instances = 4,
            .clients = 2,
            .ops_per_phase = 60,
            .phases = {{{.kind = FaultKind::kDuplicate,
                         .probability = 0.35}},
                       {}},
        },
        ChaosSchedule{
            .name = "partition_heals_r2",
            .seed = 404,
            .replicas = 2,
            .instances = 6,
            .clients = 2,
            .ops_per_phase = 40,
            .phases = {{},
                       {{.kind = FaultKind::kDelay,
                         .probability = 0.2,
                         .delay = 1 * kNanosPerMilli}},
                       {}},
            .partition_in_middle = true,
        },
        ChaosSchedule{
            .name = "kill_failover_r2",
            .seed = 505,
            .replicas = 2,
            .instances = 6,
            .clients = 2,
            .ops_per_phase = 40,
            .phases = {{{.kind = FaultKind::kDropRequest,
                         .client_only = true,
                         .probability = 0.2}},
                       {{.kind = FaultKind::kDropRequest,
                         .client_only = true,
                         .probability = 0.2}},
                       {}},
            .mid = MidEvent::kKill,
            .victim = 1,
        },
        ChaosSchedule{
            .name = "migration_join_r1",
            .seed = 606,
            .replicas = 1,
            .instances = 3,
            .clients = 2,
            .ops_per_phase = 40,
            .phases = {{{.kind = FaultKind::kDropRequest,
                         .client_only = true,
                         .probability = 0.2},
                        {.kind = FaultKind::kDropResponse,
                         .op = OpCode::kLookup,
                         .client_only = true,
                         .probability = 0.2}},
                       {{.kind = FaultKind::kDropRequest,
                         .client_only = true,
                         .probability = 0.2}},
                       {}},
            .mid = MidEvent::kJoin,
        },
        ChaosSchedule{
            // Durable acks under fire: group-commit stores with an open
            // commit window, a lossy client path, and a kill between
            // phases. The checker verifies acked ops survive (lost ops may
            // only report kTimeout/kUnavailable), and VerifyRestart proves
            // they reload from the logs.
            .name = "kill_group_commit_r1",
            .seed = 808,
            .replicas = 1,
            .instances = 4,
            .clients = 2,
            .ops_per_phase = 40,
            .phases = {{{.kind = FaultKind::kDropRequest,
                         .client_only = true,
                         .probability = 0.2}},
                       {{.kind = FaultKind::kDropResponse,
                         .client_only = true,
                         .probability = 0.15}},
                       {}},
            .mid = MidEvent::kKill,
            .victim = 2,
            .durability = DurabilityMode::kGroupCommit,
            .max_commit_latency = 200 * kNanosPerMicro,
        },
        ChaosSchedule{
            .name = "threaded_delay_dup_r1",
            .seed = 707,
            .replicas = 1,
            .instances = 4,
            .clients = 3,
            .ops_per_phase = 30,
            // Threads make interleaving nondeterministic, so only faults
            // that cannot change any outcome: delays and duplicates (the
            // dup of an append is the same wire request — dedup absorbs it).
            .phases = {{{.kind = FaultKind::kDuplicate,
                         .probability = 0.3},
                        {.kind = FaultKind::kDelay,
                         .probability = 0.2,
                         .delay = 200 * kNanosPerMicro,
                         .delay_jitter = 300 * kNanosPerMicro}},
                       {}},
            .threaded = true,
        },
        ChaosSchedule{
            // Torn rebuild streams: a kill triggers replica rebuilds, then
            // phase 1 drops and duplicates the rebuild RPCs themselves.
            // Dropped carriers fail the End digest and force a re-stream;
            // duplicated carriers must be absorbed (idempotent puts into
            // the shadow store); dropped digest probes read as stale and
            // cost only an extra stream. Client-visible history must stay
            // clean throughout.
            .name = "rebuild_faults_r2",
            .seed = 909,
            .replicas = 2,
            .instances = 6,
            .clients = 2,
            .ops_per_phase = 50,
            .phases = {{},
                       {{.kind = FaultKind::kDropRequest,
                         .op = OpCode::kRebuildData,
                         .probability = 0.3},
                        {.kind = FaultKind::kDuplicate,
                         .op = OpCode::kRebuildData,
                         .probability = 0.3},
                        {.kind = FaultKind::kDropRequest,
                         .op = OpCode::kDigest,
                         .probability = 0.25}},
                       {}},
            .mid = MidEvent::kKill,
            .victim = 1,
        },
        ChaosSchedule{
            // Overlapping failures: the second kill takes out the instance
            // that just inherited the first victim's partitions (and is
            // mid-rebuild as their stream source). Victims are ring-
            // adjacent survivors, so each promotion elects the sync
            // secondary; the repair commanded after the first failure must
            // not leave the second promotion stale.
            .name = "rebuild_source_killed_r2",
            .seed = 1010,
            .replicas = 2,
            .instances = 6,
            .clients = 2,
            .ops_per_phase = 50,
            .phases = {{},
                       {{.kind = FaultKind::kDropRequest,
                         .client_only = true,
                         .probability = 0.15}},
                       {}},
            .mid = MidEvent::kKill,
            .victim = 1,
            .mid2 = MidEvent::kKill,
            .victim2 = 2,
        },
        ChaosSchedule{
            // Rebuild destination killed mid-stream: phase 1 stretches the
            // rebuild carriers with delays so the second kill lands while
            // instance 4 is still being streamed to. The source's End
            // times out and the leg is retried then abandoned; the shadow-
            // store protocol means the half-fed destination never wiped
            // its canonical copy.
            .name = "rebuild_dest_killed_r2",
            .seed = 1111,
            .replicas = 2,
            .instances = 6,
            .clients = 2,
            .ops_per_phase = 50,
            .phases = {{},
                       {{.kind = FaultKind::kDelay,
                         .op = OpCode::kRebuildData,
                         .probability = 1.0,
                         .delay = 1 * kNanosPerMilli},
                        {.kind = FaultKind::kDropRequest,
                         .client_only = true,
                         .probability = 0.15}},
                       {}},
            .mid = MidEvent::kKill,
            .victim = 1,
            .mid2 = MidEvent::kKill,
            .victim2 = 4,
        }),
    [](const auto& info) { return std::string(info.param.name); });

// Exact replay: the same (schedule, seed) must produce the identical fault
// trace — this is what makes a failing seed reproducible from the test
// name alone.
TEST(ChaosReplayTest, SameSeedSameFaultTrace) {
  auto run = [](std::uint64_t seed) {
    ChaosSchedule schedule{
        .name = "replay_probe",
        .seed = seed,
        .replicas = 1,
        .instances = 4,
        .clients = 2,
        .ops_per_phase = 30,
        .phases = {{{.kind = FaultKind::kDropRequest,
                     .client_only = true,
                     .probability = 0.3}},
                   {}},
    };
    LocalClusterOptions options;
    options.num_instances = schedule.instances;
    options.num_partitions = schedule.instances * 8;
    options.cluster.num_replicas = schedule.replicas;
    options.fault_plan = std::make_shared<FaultPlan>(schedule.seed);
    auto cluster = LocalCluster::Start(options);
    EXPECT_TRUE(cluster.ok());
    int rule = options.fault_plan->AddRule(schedule.phases[0][0]);
    auto client = (*cluster)->CreateClient(ChaosClient());
    Rng rng(seed);
    for (int i = 0; i < 60; ++i) {
      std::string key = "k" + std::to_string(rng.Below(12));
      if (rng.NextDouble() < 0.5) {
        client->Insert(key, "v" + std::to_string(i));
      } else {
        client->Lookup(key);
      }
    }
    options.fault_plan->RemoveRule(rule);
    return options.fault_plan->stats();
  };
  FaultPlanStats a = run(11);
  FaultPlanStats b = run(11);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.dropped_requests, b.dropped_requests);
  EXPECT_GT(a.dropped_requests, 0u);
}

}  // namespace
}  // namespace zht
