#!/usr/bin/env bash
# End-to-end test of the standalone deployment: 4 zht-server daemons over
# real TCP/UDP on localhost, driven by zht-cli (including the batched
# mput/mget commands).
set -euo pipefail

BUILD_DIR="$1"
WORK=$(mktemp -d)
PIDS=()
cleanup() {
  if [ "${#PIDS[@]}" -gt 0 ]; then
    kill "${PIDS[@]}" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

step() { echo "== $*"; }

step "writing neighbor file"
cat > "$WORK/neighbors.conf" <<NEIGH
127.0.0.1:53910
127.0.0.1:53911
127.0.0.1:53912
127.0.0.1:53913
NEIGH

step "starting 4 zht-server daemons"
for i in 0 1 2 3; do
  "$BUILD_DIR/tools/zht-server" --neighbors "$WORK/neighbors.conf" \
      --self "$i" > "$WORK/s$i.log" 2>&1 &
  PIDS+=($!)
done

step "waiting for daemons to listen"
for _ in $(seq 1 50); do
  if "$BUILD_DIR/tools/zht-cli" --neighbors "$WORK/neighbors.conf" \
      ping 3 2>/dev/null | grep -q OK; then
    break
  fi
  sleep 0.1
done

cli() { "$BUILD_DIR/tools/zht-cli" --neighbors "$WORK/neighbors.conf" "$@"; }

step "insert/lookup/append/remove round-trip"
test "$(cli insert alpha one)" = "OK"
test "$(cli lookup alpha)" = "one"
test "$(cli append alpha -two)" = "OK"
test "$(cli lookup alpha)" = "one-two"
test "$(cli remove alpha)" = "OK"
# A missing key is a NOT_FOUND status and a non-zero cli exit — expected.
(cli lookup alpha || true) | grep -q NOT_FOUND

step "batched mput/mget across instances"
test "$(cli mput k1 v1 k2 v2 k3 v3 k4 v4 | grep -c OK)" = "4"
test "$(cli mput k5 v5 k6 v6 | grep -c OK)" = "2"
test "$(cli mget k1 k2 k3 k4 k5 k6 | grep -c ' v')" = "6"
test "$(cli mget k2)" = "k2 v2"
(cli mget k1 missing-key || true) | grep -q NOT_FOUND

step "ping and stats"
cli ping 2 | grep -q OK
cli stats 0 | grep -q "instance = 0"

step "bench over cached TCP"
cli bench 100 | grep -q "0 failures"

step "bench over UDP"
cli --udp bench 100 | grep -q "0 failures"

echo "tools e2e: all checks passed"
