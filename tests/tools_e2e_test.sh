#!/bin/sh
# End-to-end test of the standalone deployment: 4 zht-server daemons over
# real TCP/UDP on localhost, driven by zht-cli.
set -e
BUILD_DIR="$1"
SRC_DIR="$2"
WORK=$(mktemp -d)
trap 'kill $P0 $P1 $P2 $P3 2>/dev/null; rm -rf "$WORK"' EXIT

cat > "$WORK/neighbors.conf" <<NEIGH
127.0.0.1:53910
127.0.0.1:53911
127.0.0.1:53912
127.0.0.1:53913
NEIGH

"$BUILD_DIR/tools/zht-server" --neighbors "$WORK/neighbors.conf" --self 0 > "$WORK/s0.log" 2>&1 & P0=$!
"$BUILD_DIR/tools/zht-server" --neighbors "$WORK/neighbors.conf" --self 1 > "$WORK/s1.log" 2>&1 & P1=$!
"$BUILD_DIR/tools/zht-server" --neighbors "$WORK/neighbors.conf" --self 2 > "$WORK/s2.log" 2>&1 & P2=$!
"$BUILD_DIR/tools/zht-server" --neighbors "$WORK/neighbors.conf" --self 3 > "$WORK/s3.log" 2>&1 & P3=$!
sleep 1

CLI="$BUILD_DIR/tools/zht-cli --neighbors $WORK/neighbors.conf"
test "$($CLI insert alpha one)" = "OK"
test "$($CLI lookup alpha)" = "one"
test "$($CLI append alpha -two)" = "OK"
test "$($CLI lookup alpha)" = "one-two"
test "$($CLI remove alpha)" = "OK"
$CLI lookup alpha | grep -q NOT_FOUND
$CLI ping 2 | grep -q OK
$CLI stats 0 | grep -q "instance = 0"
$CLI bench 100 | grep -q "0 failures"
$CLI --udp bench 100 | grep -q "0 failures"
echo "tools e2e: all checks passed"
