#include <gtest/gtest.h>

#include "baselines/cassandra_lite.h"
#include "baselines/memcached_lite.h"
#include "common/rng.h"
#include "hashing/hash_functions.h"
#include "net/loopback.h"

namespace zht {
namespace {

// ---- MemcachedLite ----------------------------------------------------

class MemcachedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) {
      servers_.push_back(std::make_unique<MemcachedLiteServer>());
      addresses_.push_back(network_.Register(servers_.back()->AsHandler()));
    }
    transport_ = std::make_unique<LoopbackTransport>(&network_);
    client_ = std::make_unique<MemcachedLiteClient>(addresses_,
                                                    transport_.get());
  }

  LoopbackNetwork network_;
  std::vector<std::unique_ptr<MemcachedLiteServer>> servers_;
  std::vector<NodeAddress> addresses_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::unique_ptr<MemcachedLiteClient> client_;
};

TEST_F(MemcachedTest, SetGetDelete) {
  EXPECT_TRUE(client_->Set("key", "value").ok());
  EXPECT_EQ(client_->Get("key").value(), "value");
  EXPECT_TRUE(client_->Delete("key").ok());
  EXPECT_EQ(client_->Get("key").status().code(), StatusCode::kNotFound);
}

TEST_F(MemcachedTest, ShardingSpreadsKeys) {
  Rng rng(1);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(client_->Set(rng.AsciiString(15), "v").ok());
  }
  for (const auto& server : servers_) {
    EXPECT_GT(server->ops(), 0u);
  }
}

TEST_F(MemcachedTest, KeySizeLimitEnforced) {
  std::string long_key(kMemcachedMaxKey + 1, 'k');
  EXPECT_EQ(client_->Set(long_key, "v").code(), StatusCode::kCapacity);
}

TEST_F(MemcachedTest, ValueSizeLimitEnforced) {
  std::string big(kMemcachedMaxValue + 1, 'v');
  EXPECT_EQ(client_->Set("k", big).code(), StatusCode::kCapacity);
}

TEST_F(MemcachedTest, NoAppendSupport) {
  MemcachedLiteServer server;
  Request request;
  request.op = OpCode::kAppend;
  request.key = "k";
  request.value = "v";
  Response resp = server.Handle(std::move(request));
  EXPECT_EQ(resp.status_as_object().code(), StatusCode::kNotSupported);
}

TEST_F(MemcachedTest, StableShardPerKey) {
  ASSERT_TRUE(client_->Set("stable", "1").ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client_->Get("stable").value(), "1");
  }
}

// ---- CassandraLite ----------------------------------------------------

class CassandraTest : public ::testing::TestWithParam<int> {
 protected:
  struct Slot {
    RequestHandler handler;
  };

  void BuildRing(std::uint32_t size, int rf) {
    // Pre-assign addresses so nodes know the full ring up front.
    std::vector<NodeAddress> ring;
    slots_.clear();
    nodes_.clear();
    for (std::uint32_t i = 0; i < size; ++i) {
      auto slot = std::make_shared<Slot>();
      ring.push_back(network_.Register([slot](Request&& req) {
        return slot->handler(std::move(req));
      }));
      slots_.push_back(slot);
    }
    ring_ = ring;
    transport_ = std::make_unique<LoopbackTransport>(&network_);
    for (std::uint32_t i = 0; i < size; ++i) {
      CassandraLiteOptions options;
      options.self = i;
      options.ring_size = size;
      options.replication_factor = rf;
      nodes_.push_back(std::make_unique<CassandraLiteNode>(options, ring,
                                                           transport_.get()));
      slots_[i]->handler = nodes_.back()->AsHandler();
    }
    client_ = std::make_unique<CassandraLiteClient>(ring, transport_.get());
  }

  LoopbackNetwork network_;
  std::vector<std::shared_ptr<Slot>> slots_;
  std::vector<NodeAddress> ring_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::vector<std::unique_ptr<CassandraLiteNode>> nodes_;
  std::unique_ptr<CassandraLiteClient> client_;
};

TEST_P(CassandraTest, CrudAcrossRing) {
  BuildRing(static_cast<std::uint32_t>(GetParam()), 1);
  Rng rng(9);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 200; ++i) {
    std::string key = rng.AsciiString(15);
    std::string value = rng.AsciiString(32);
    ASSERT_TRUE(client_->Put(key, value).ok());
    model[key] = value;
  }
  for (const auto& [key, value] : model) {
    EXPECT_EQ(client_->Get(key).value(), value);
  }
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(client_->Remove(key).ok());
  }
  EXPECT_EQ(client_->Get(model.begin()->first).status().code(),
            StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(RingSizes, CassandraTest,
                         ::testing::Values(1, 2, 5, 16));

TEST_F(CassandraTest, RoutingIsLogarithmic) {
  BuildRing(64, 1);
  Rng rng(4);
  const int kOps = 300;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(client_->Put(rng.AsciiString(15), "v").ok());
  }
  std::uint64_t total_forwards = 0;
  for (const auto& node : nodes_) total_forwards += node->forwards();
  double hops_per_op = static_cast<double>(total_forwards) / kOps;
  // Chord on 64 nodes: expected popcount of a uniform 6-bit distance = 3.
  EXPECT_GT(hops_per_op, 1.5);
  EXPECT_LT(hops_per_op, 6.0);
}

TEST_F(CassandraTest, ZeroHopForOwnedKeys) {
  BuildRing(1, 1);
  ASSERT_TRUE(client_->Put("k", "v").ok());
  EXPECT_EQ(nodes_[0]->forwards(), 0u);
}

TEST_F(CassandraTest, ReplicationWritesToSuccessors) {
  BuildRing(4, 3);
  ASSERT_TRUE(client_->Put("replicated", "v").ok());
  int holders = 0;
  for (const auto& node : nodes_) {
    if (node->executed() > 0) ++holders;
  }
  EXPECT_GE(holders, 3);
}

TEST_F(CassandraTest, ReadRepairHealsDivergedReplica) {
  BuildRing(4, 2);
  ASSERT_TRUE(client_->Put("heal", "good").ok());
  // Find the owner and corrupt its successor by writing directly.
  std::uint32_t owner = nodes_[0]->OwnerOf(HashKey("heal", HashKind::kFnv1a));
  std::uint32_t replica = (owner + 1) % 4;
  Request poison;
  poison.op = OpCode::kInsert;
  poison.key = "heal";
  poison.value = "bad";
  poison.server_origin = true;  // bypass routing/replication
  nodes_[replica]->Handle(std::move(poison));

  // A read through the owner triggers repair.
  EXPECT_EQ(client_->Get("heal").value(), "good");
  Request probe;
  probe.op = OpCode::kLookup;
  probe.key = "heal";
  probe.server_origin = true;
  Response after = nodes_[replica]->Handle(std::move(probe));
  EXPECT_EQ(after.value, "good");
}

}  // namespace
}  // namespace zht
