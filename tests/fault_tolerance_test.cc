// Fault-tolerance and durability tests beyond the happy path: lossy
// networks (dropped messages + retries + append dedup), node churn under
// load with replication, full-cluster restart recovery from NoVoHT logs,
// and parameterized sweeps over cluster shapes.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "core/local_cluster.h"
#include "novoht/novoht.h"

namespace zht {
namespace {

namespace fs = std::filesystem;

ZhtClientOptions RetryingClient() {
  ZhtClientOptions options;
  options.max_attempts = 24;
  options.failure_detector.failures_to_mark_dead = 20;  // retry same node
  options.failure_detector.initial_backoff = 0;
  options.sleep_on_backoff = false;
  return options;
}

TEST(FaultToleranceTest, LossyNetworkRetriesConverge) {
  LocalClusterOptions lossy_options;
  lossy_options.num_instances = 4;
  lossy_options.fault_plan = std::make_shared<FaultPlan>(/*seed=*/12);
  auto cluster = LocalCluster::Start(lossy_options);
  ASSERT_TRUE(cluster.ok());
  int lossy = lossy_options.fault_plan->AddRule(
      {.kind = FaultKind::kDropRequest, .probability = 0.3});
  auto client = (*cluster)->CreateClient(RetryingClient());
  Rng rng(12);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 200; ++i) {
    std::string key = rng.AsciiString(15);
    std::string value = rng.AsciiString(32);
    ASSERT_TRUE(client->Insert(key, value).ok()) << i;
    model[key] = value;
  }
  lossy_options.fault_plan->RemoveRule(lossy);
  for (const auto& [key, value] : model) {
    EXPECT_EQ(client->Lookup(key).value(), value);
  }
  EXPECT_GT(client->stats().retries, 0u);
  EXPECT_GT(lossy_options.fault_plan->stats().dropped_requests, 0u);
}

// The client's metrics registry must mirror ZhtClientStats exactly —
// retries under a seeded lossy plan, failovers under a killed node — and
// carry per-op end-to-end latency histograms for the issued workload.
TEST(FaultToleranceTest, ClientMetricsCountersMatchStatsUnderFaults) {
  LocalClusterOptions lossy_options;
  lossy_options.num_instances = 4;
  lossy_options.fault_plan = std::make_shared<FaultPlan>(/*seed=*/31);
  auto cluster = LocalCluster::Start(lossy_options);
  ASSERT_TRUE(cluster.ok());
  int lossy = lossy_options.fault_plan->AddRule(
      {.kind = FaultKind::kDropRequest, .probability = 0.25});
  auto client = (*cluster)->CreateClient(RetryingClient());
  Rng rng(31);
  for (int i = 0; i < 120; ++i) {
    std::string key = rng.AsciiString(15);
    ASSERT_TRUE(client->Insert(key, rng.AsciiString(32)).ok()) << i;
    ASSERT_TRUE(client->Lookup(key).ok()) << i;
  }
  lossy_options.fault_plan->RemoveRule(lossy);

  MetricsSnapshot snapshot = client->metrics().Snapshot();
  const ZhtClientStats& stats = client->stats();
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(snapshot.ValueOf("client.retries"),
            static_cast<std::int64_t>(stats.retries));
  EXPECT_EQ(snapshot.ValueOf("client.failovers"),
            static_cast<std::int64_t>(stats.failovers));
  EXPECT_EQ(snapshot.ValueOf("client.redirects_followed"),
            static_cast<std::int64_t>(stats.redirects_followed));
  const MetricValue* insert_hist =
      snapshot.Find("client.op.insert.latency_ns");
  ASSERT_NE(insert_hist, nullptr);
  EXPECT_EQ(insert_hist->histogram.count, 120u);
  const MetricValue* lookup_hist =
      snapshot.Find("client.op.lookup.latency_ns");
  ASSERT_NE(lookup_hist, nullptr);
  EXPECT_EQ(lookup_hist->histogram.count, 120u);
}

TEST(FaultToleranceTest, ClientFailoverCounterTracksKilledPrimary) {
  LocalClusterOptions options;
  options.num_instances = 4;
  options.cluster.num_replicas = 2;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());

  ZhtClientOptions client_options;
  client_options.max_attempts = 16;
  client_options.failure_detector.failures_to_mark_dead = 1;
  client_options.failure_detector.initial_backoff = 0;
  client_options.sleep_on_backoff = false;
  auto client = (*cluster)->CreateClient(client_options);

  Rng rng(17);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        client->Insert("pre" + std::to_string(i), rng.AsciiString(16)).ok());
  }
  (*cluster)->FlushAllAsyncReplication();
  (*cluster)->KillInstance(2);
  int served = 0;
  for (int i = 0; i < 40; ++i) {
    if (client->Lookup("pre" + std::to_string(i)).ok()) ++served;
  }
  EXPECT_GT(served, 0);

  const ZhtClientStats& stats = client->stats();
  MetricsSnapshot snapshot = client->metrics().Snapshot();
  EXPECT_GT(stats.failovers, 0u);
  EXPECT_EQ(snapshot.ValueOf("client.failovers"),
            static_cast<std::int64_t>(stats.failovers));
  EXPECT_EQ(snapshot.ValueOf("client.retries"),
            static_cast<std::int64_t>(stats.retries));
}

TEST(FaultToleranceTest, AppendExactlyOnceUnderMessageLoss) {
  // Retries of a lost-RESPONSE append must not double-apply: the request
  // reached the server and mutated state even though the client saw a
  // timeout. Inject exactly that — one dropped append response — and let
  // the client's own retry loop resend the identical (client_id, seq).
  LocalClusterOptions two_options;
  two_options.num_instances = 2;
  two_options.fault_plan = std::make_shared<FaultPlan>(/*seed=*/7);
  auto cluster = LocalCluster::Start(two_options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient(RetryingClient());
  ASSERT_TRUE(client->Append("ledger", "tx1;").ok());

  two_options.fault_plan->AddRule({.kind = FaultKind::kDropResponse,
                                   .op = OpCode::kAppend,
                                   .max_faults = 1});
  ASSERT_TRUE(client->Append("ledger", "tx2;").ok());
  EXPECT_EQ(two_options.fault_plan->stats().dropped_responses, 1u);
  EXPECT_GT(client->stats().retries, 0u);

  // Applied once, not once per attempt; the server saw and rejected the dup.
  EXPECT_EQ(client->Lookup("ledger").value(), "tx1;tx2;");
  std::uint64_t dups = 0;
  for (std::size_t i = 0; i < (*cluster)->instance_count(); ++i) {
    dups += (*cluster)->server(i)->stats().duplicate_appends_dropped;
  }
  EXPECT_GE(dups, 1u);
}

TEST(FaultToleranceTest, ChurnUnderLoadLosesNoAckedWrite) {
  // The paper's failure model: "we assume failed nodes do not recover"
  // (§III.C). With 2 replicas the cluster must absorb two permanent
  // failures under continuous writes without losing a single acked write.
  LocalClusterOptions options;
  options.num_instances = 6;
  options.cluster.num_replicas = 2;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());

  ZhtClientOptions client_options;
  client_options.max_attempts = 16;
  client_options.failure_detector.failures_to_mark_dead = 1;
  client_options.failure_detector.initial_backoff = 0;
  client_options.sleep_on_backoff = false;
  auto client = (*cluster)->CreateClient(client_options);

  Rng rng(5);
  std::map<std::string, std::string> acked;
  const std::size_t victims[] = {1, 4};  // two permanent failures
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 80; ++i) {
      std::string key =
          "r" + std::to_string(round) + "k" + std::to_string(i);
      std::string value = rng.AsciiString(24);
      if (i == 30) (*cluster)->KillInstance(victims[round]);
      if (client->Insert(key, value).ok()) acked[key] = value;
    }
    (*cluster)->FlushAllAsyncReplication();
  }

  int missing = 0;
  for (const auto& [key, value] : acked) {
    auto got = client->Lookup(key);
    if (!got.ok() || *got != value) ++missing;
  }
  EXPECT_EQ(missing, 0) << "of " << acked.size() << " acked writes";
}

TEST(FaultToleranceTest, ClusterRestartRecoversFromNoVoHTLogs) {
  fs::path dir = fs::path(::testing::TempDir()) / "zht_restart_test";
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto factory = [dir](InstanceId self,
                       PartitionId partition) -> std::unique_ptr<KVStore> {
    NoVoHTOptions options;
    options.path = (dir / ("i" + std::to_string(self) + "_p" +
                           std::to_string(partition)))
                       .string();
    auto store = NoVoHT::Open(options);
    return store.ok() ? std::move(*store) : nullptr;
  };

  Rng rng(31);
  std::map<std::string, std::string> model;
  LocalClusterOptions options;
  options.num_instances = 3;
  options.num_partitions = 48;  // fixed: same layout across "restarts"
  options.store_factory = factory;
  {
    auto cluster = LocalCluster::Start(options);
    ASSERT_TRUE(cluster.ok());
    auto client = (*cluster)->CreateClient();
    for (int i = 0; i < 200; ++i) {
      std::string key = rng.AsciiString(15);
      std::string value = rng.AsciiString(40);
      ASSERT_TRUE(client->Insert(key, value).ok());
      model[key] = value;
    }
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(client->Append("journal", "e" + std::to_string(i)).ok());
    }
  }  // whole cluster torn down (maintenance/reboot, §III.H)

  // A fresh cluster over the same data directory: "the entire state of
  // ZHT could be loaded from local persistent storage".
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();
  for (const auto& [key, value] : model) {
    EXPECT_EQ(client->Lookup(key).value(), value) << key;
  }
  auto journal = client->Lookup("journal");
  ASSERT_TRUE(journal.ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_NE(journal->find("e" + std::to_string(i)), std::string::npos);
  }
  fs::remove_all(dir);
}

// Parameterized sweep: the basic contract holds across cluster shapes.
struct ShapeParam {
  std::uint32_t instances;
  std::uint32_t instances_per_node;
  int replicas;
  std::uint64_t seed;
};

class ClusterShapeTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(ClusterShapeTest, CrudModelEquivalence) {
  const ShapeParam& param = GetParam();
  LocalClusterOptions options;
  options.num_instances = param.instances;
  options.instances_per_node = param.instances_per_node;
  options.cluster.num_replicas = param.replicas;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();

  Rng rng(param.seed);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 400; ++i) {
    std::string key = "s" + std::to_string(rng.Below(80));
    double dice = rng.NextDouble();
    if (dice < 0.45) {
      std::string value = rng.AsciiString(20);
      ASSERT_TRUE(client->Insert(key, value).ok());
      model[key] = value;
    } else if (dice < 0.65) {
      std::string extra = rng.AsciiString(6);
      ASSERT_TRUE(client->Append(key, extra).ok());
      model[key] += extra;
    } else if (dice < 0.85) {
      Status status = client->Remove(key);
      if (model.erase(key)) {
        EXPECT_TRUE(status.ok());
      } else {
        EXPECT_EQ(status.code(), StatusCode::kNotFound);
      }
    } else {
      auto got = client->Lookup(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  for (const auto& [key, value] : model) {
    EXPECT_EQ(client->Lookup(key).value(), value);
  }
  (*cluster)->FlushAllAsyncReplication();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterShapeTest,
    ::testing::Values(ShapeParam{1, 1, 0, 1}, ShapeParam{2, 1, 1, 2},
                      ShapeParam{4, 2, 1, 3}, ShapeParam{8, 1, 2, 4},
                      ShapeParam{9, 3, 2, 5}, ShapeParam{16, 4, 3, 6}),
    [](const auto& info) {
      return "i" + std::to_string(info.param.instances) + "n" +
             std::to_string(info.param.instances_per_node) + "r" +
             std::to_string(info.param.replicas);
    });

}  // namespace
}  // namespace zht
