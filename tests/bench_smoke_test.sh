#!/usr/bin/env bash
# bench_smoke ctest body: runs one bench binary with tiny parameters
# (ZHT_BENCH_SMOKE=1) in a scratch directory and validates the BENCH_*.json
# it emits against the telemetry schema. A bench that crashes, emits no
# report, an empty report, or a schema-violating report fails the test.
#
#   bench_smoke_test.sh <bench-binary> <bench-schema-check-binary>
set -euo pipefail

bench="${1:?usage: bench_smoke_test.sh BENCH SCHEMA_CHECK}"
check="${2:?usage: bench_smoke_test.sh BENCH SCHEMA_CHECK}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

ZHT_BENCH_SMOKE=1 ZHT_BENCH_DIR="$tmp" "$bench" > "$tmp/stdout.txt" 2>&1 || {
  echo "bench failed:"
  cat "$tmp/stdout.txt"
  exit 1
}

shopt -s nullglob
reports=("$tmp"/BENCH_*.json)
if [ "${#reports[@]}" -ne 1 ]; then
  echo "expected exactly one BENCH_*.json, found ${#reports[@]}"
  exit 1
fi
if [ ! -s "${reports[0]}" ]; then
  echo "empty report: ${reports[0]}"
  exit 1
fi
"$check" "${reports[0]}"
