#include <gtest/gtest.h>

#include "common/rng.h"
#include "serialize/envelope.h"
#include "serialize/wire.h"

namespace zht {
namespace {

TEST(VarintTest, RoundTripBoundaries) {
  for (std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                          0xffffffffull, ~0ull}) {
    std::string buf;
    wire::Writer w(&buf);
    w.PutVarint(v);
    wire::Reader r(buf);
    std::uint64_t out;
    ASSERT_TRUE(r.GetVarint(&out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(VarintTest, TruncatedFails) {
  std::string buf;
  wire::Writer w(&buf);
  w.PutVarint(1u << 20);
  buf.pop_back();
  wire::Reader r(buf);
  std::uint64_t out;
  EXPECT_FALSE(r.GetVarint(&out));
}

TEST(VarintTest, EncodingIsMinimal) {
  std::string buf;
  wire::Writer w(&buf);
  w.PutVarint(127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  w.PutVarint(128);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(Fixed64Test, RoundTrip) {
  std::string buf;
  wire::Writer w(&buf);
  w.PutFixed64(0x0123456789abcdefull);
  EXPECT_EQ(buf.size(), 8u);
  wire::Reader r(buf);
  std::uint64_t out;
  ASSERT_TRUE(r.GetFixed64(&out));
  EXPECT_EQ(out, 0x0123456789abcdefull);
}

TEST(ZigZagTest, RoundTripSigned) {
  for (std::int64_t v :
       std::initializer_list<std::int64_t>{
           0, -1, 1, -64, 64, std::numeric_limits<std::int64_t>::min(),
           std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(wire::Reader::ZigZagDecode(wire::Writer::ZigZagEncode(v)), v);
  }
}

TEST(TaggedFieldTest, UnknownFieldsSkipped) {
  std::string buf;
  wire::Writer w(&buf);
  w.PutVarintField(99, 7);        // unknown varint
  w.PutStringField(98, "junk");   // unknown length-delimited
  w.PutFixed64Field(97, 1234);    // unknown fixed64
  w.PutVarintField(1, 42);        // the one we want

  wire::Reader r(buf);
  std::uint64_t found = 0;
  while (!r.AtEnd()) {
    std::uint32_t field;
    wire::WireType type;
    ASSERT_TRUE(r.GetTag(&field, &type));
    if (field == 1) {
      ASSERT_TRUE(r.GetVarint(&found));
    } else {
      ASSERT_TRUE(r.SkipValue(type));
    }
  }
  EXPECT_EQ(found, 42u);
}

TEST(RequestTest, RoundTripAllFields) {
  Request req;
  req.op = OpCode::kAppend;
  req.seq = 123456789;
  req.key = "some-key";
  req.value = std::string("binary\0value", 12);
  req.epoch = 17;
  req.partition = 999;
  req.replica_index = 2;
  req.server_origin = true;

  auto decoded = Request::Decode(req.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, req);
}

TEST(RequestTest, DefaultsOmittedAndRestored) {
  Request req;
  req.op = OpCode::kLookup;
  req.key = "k";
  std::string encoded = req.Encode();
  EXPECT_LT(encoded.size(), 8u);  // compact: op + key only
  auto decoded = Request::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, req);
}

TEST(RequestTest, MissingOpcodeRejected) {
  Request req;
  req.op = OpCode::kInsert;
  req.key = "k";
  std::string encoded = req.Encode();
  // Strip the leading opcode field (tag byte + value byte).
  auto decoded = Request::Decode(encoded.substr(2));
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
}

TEST(RequestTest, UnknownOpcodeRejected) {
  std::string buf;
  wire::Writer w(&buf);
  w.PutVarintField(1, 200);  // opcode out of range
  EXPECT_FALSE(Request::Decode(buf).ok());
}

TEST(RequestTest, GarbageRejectedNotCrash) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::string junk = rng.AsciiString(rng.Below(64));
    auto decoded = Request::Decode(junk);  // must not crash
    if (decoded.ok()) {
      EXPECT_GE(static_cast<int>(decoded->op), 1);
    }
  }
}

TEST(ResponseTest, RoundTripAllFields) {
  Response resp;
  resp.seq = 77;
  resp.status = Status(StatusCode::kRedirect).raw();
  resp.value = "payload";
  resp.epoch = 31;
  resp.membership = "serialized-table-bytes";
  resp.redirect_host = "10.0.0.5";
  resp.redirect_port = 50000;

  auto decoded = Response::Decode(resp.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, resp);
}

TEST(ResponseTest, EmptyResponseIsOk) {
  Response resp;
  auto decoded = Response::Decode(resp.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->ok());
  EXPECT_EQ(decoded->status_as_object().code(), StatusCode::kOk);
}

TEST(ResponseTest, StatusObjectConversion) {
  Response resp;
  resp.status = Status(StatusCode::kMigrating).raw();
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.status_as_object().code(), StatusCode::kMigrating);
}

TEST(OpCodeTest, NamesCoverAllOps) {
  for (int op = 1; op <= 22; ++op) {
    EXPECT_NE(OpCodeName(static_cast<OpCode>(op)), "UNKNOWN") << op;
  }
}

// Property sweep: random requests of every op round-trip exactly.
class EnvelopeFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EnvelopeFuzzTest, RandomRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    Request req;
    req.op = static_cast<OpCode>(1 + rng.Below(22));
    req.seq = rng.Next();
    req.key = rng.AsciiString(rng.Below(40));
    req.value = rng.AsciiString(rng.Below(200));
    req.epoch = static_cast<std::uint32_t>(rng.Next());
    req.partition = static_cast<std::uint32_t>(rng.Below(1u << 20));
    req.replica_index = static_cast<std::uint8_t>(rng.Below(8));
    req.server_origin = rng.Chance(0.5);
    auto decoded = Request::Decode(req.Encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, req);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvelopeFuzzTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace zht
