// Adversarial-input property tests for the wire layer: truncations,
// mutations, and random bytes must never crash or mis-decode silently into
// an equal-but-different message.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "membership/membership_table.h"
#include "serialize/batch.h"
#include "serialize/envelope.h"

namespace zht {
namespace {

class WireFuzzTest : public ::testing::TestWithParam<int> {};

Request RandomRequest(Rng& rng) {
  Request req;
  req.op = static_cast<OpCode>(1 + rng.Below(22));
  req.seq = rng.Next();
  req.key = rng.AsciiString(rng.Below(30));
  req.value = rng.AsciiString(rng.Below(100));
  req.epoch = static_cast<std::uint32_t>(rng.Next());
  req.partition = static_cast<std::uint32_t>(rng.Below(1u << 16));
  req.replica_index = static_cast<std::uint8_t>(rng.Below(4));
  req.server_origin = rng.Chance(0.5);
  req.client_id = rng.Next();
  return req;
}

TEST_P(WireFuzzTest, TruncatedRequestsNeverCrashOrAlias) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31);
  for (int i = 0; i < 150; ++i) {
    Request req = RandomRequest(rng);
    std::string encoded = req.Encode();
    for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
      auto decoded = Request::Decode(encoded.substr(0, cut));
      if (decoded.ok()) {
        // A prefix that still decodes must not claim to be the original.
        EXPECT_NE(*decoded, req) << "cut=" << cut;
      }
    }
    auto full = Request::Decode(encoded);
    ASSERT_TRUE(full.ok());
    EXPECT_EQ(*full, req);
  }
}

TEST_P(WireFuzzTest, MutatedResponsesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 37);
  for (int i = 0; i < 150; ++i) {
    Response resp;
    resp.seq = rng.Next();
    resp.status = static_cast<std::int32_t>(rng.Below(13));
    resp.value = rng.AsciiString(rng.Below(100));
    resp.epoch = static_cast<std::uint32_t>(rng.Next());
    resp.redirect_host = rng.AsciiString(rng.Below(16));
    resp.redirect_port = static_cast<std::uint16_t>(rng.Next());
    std::string encoded = resp.Encode();
    if (encoded.empty()) continue;
    // Flip random bytes; decoding must never crash.
    for (int flip = 0; flip < 8; ++flip) {
      std::string mutated = encoded;
      mutated[rng.Below(mutated.size())] =
          static_cast<char>(rng.Next() & 0xff);
      auto decoded = Response::Decode(mutated);
      (void)decoded;  // ok or error — just no UB/crash
    }
  }
}

TEST_P(WireFuzzTest, RandomBytesIntoMembershipDecoder) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 41);
  for (int i = 0; i < 200; ++i) {
    std::string junk = rng.AsciiString(rng.Below(256));
    auto table = MembershipTable::DecodeFull(junk);
    (void)table;
    MembershipTable target = MembershipTable::CreateUniform(
        16, {NodeAddress{"10.0.0.1", 1}, NodeAddress{"10.0.0.2", 2}});
    Status status = target.ApplyUpdate(junk);
    (void)status;  // must not crash; table must stay structurally sound
    EXPECT_EQ(target.num_partitions(), 16u);
  }
}

TEST_P(WireFuzzTest, TruncatedMembershipSnapshotsRejected) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 43);
  auto table = MembershipTable::CreateUniform(
      64, {NodeAddress{"10.0.0.1", 1}, NodeAddress{"10.0.0.2", 2},
           NodeAddress{"10.0.0.3", 3}});
  std::string encoded = table.EncodeFull();
  for (int i = 0; i < 100; ++i) {
    std::size_t cut = rng.Below(encoded.size());
    auto decoded = MembershipTable::DecodeFull(encoded.substr(0, cut));
    // Either cleanly rejected, or (rare) a structurally valid prefix —
    // but never the full table.
    if (decoded.ok()) {
      EXPECT_NE(*decoded, table);
    }
  }
}

TEST_P(WireFuzzTest, BatchEnvelopeRoundTripsAndRejectsTruncation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 47);
  for (int i = 0; i < 50; ++i) {
    BatchRequest batch;
    std::size_t count = rng.Below(12);
    for (std::size_t op = 0; op < count; ++op) {
      batch.ops.push_back(RandomRequest(rng));
    }
    Request carrier = PackBatchRequest(batch.ops, rng.Next());
    ASSERT_EQ(carrier.op, OpCode::kBatch);

    // The carrier is an ordinary Request: the base codec round-trips it.
    auto carried = Request::Decode(carrier.Encode());
    ASSERT_TRUE(carried.ok());
    auto decoded = BatchRequest::Decode(carried->value);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, batch);

    // Truncations must never crash nor silently alias the original.
    std::string payload = carrier.value;
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      auto partial = BatchRequest::Decode(payload.substr(0, cut));
      if (partial.ok()) {
        EXPECT_NE(*partial, batch) << "cut=" << cut;
      }
    }

    // Response leg: pack/unpack N sub-responses.
    BatchResponse responses;
    for (std::size_t op = 0; op < count; ++op) {
      Response sub;
      sub.seq = rng.Next();
      sub.status = static_cast<std::int32_t>(rng.Below(13));
      sub.value = rng.AsciiString(rng.Below(60));
      responses.responses.push_back(std::move(sub));
    }
    Response packed = PackBatchResponse(
        responses, rng.Next(), static_cast<std::uint32_t>(rng.Next()));
    auto unpacked = UnpackBatchResponse(packed, count);
    ASSERT_TRUE(unpacked.ok());
    EXPECT_EQ(*unpacked, responses.responses);
    // A count mismatch is corruption, not a partial result.
    if (count > 0) {
      EXPECT_FALSE(UnpackBatchResponse(packed, count + 1).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest, ::testing::Range(1, 5));

}  // namespace
}  // namespace zht
