#include <gtest/gtest.h>

#include <thread>

#include "core/local_cluster.h"
#include "fusionfs/metadata.h"

namespace zht::fusionfs {
namespace {

class FusionFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LocalClusterOptions options;
    options.num_instances = 4;
    auto cluster = LocalCluster::Start(options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(*cluster);
    client_ = std::make_unique<ClientHandle>(cluster_->CreateClient());
    service_ = std::make_unique<MetadataService>(client_->get());
    ASSERT_TRUE(service_->Format().ok());
  }

  std::unique_ptr<LocalCluster> cluster_;
  std::unique_ptr<ClientHandle> client_;
  std::unique_ptr<MetadataService> service_;
};

TEST(FileMetadataTest, RoundTrip) {
  FileMetadata meta;
  meta.is_dir = true;
  meta.size = 123456789;
  meta.mode = 0755;
  meta.ctime = -5;
  meta.mtime = 42;
  meta.home_node = 7;
  auto decoded = FileMetadata::Decode(meta.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, meta);
}

TEST(PathHelpersTest, ParentAndBase) {
  EXPECT_EQ(MetadataService::ParentOf("/a/b/c"), "/a/b");
  EXPECT_EQ(MetadataService::ParentOf("/a"), "/");
  EXPECT_EQ(MetadataService::ParentOf("/"), "/");
  EXPECT_EQ(MetadataService::BaseNameOf("/a/b/c"), "c");
  EXPECT_EQ(MetadataService::BaseNameOf("/a"), "a");
}

TEST_F(FusionFsTest, CreateStatUnlink) {
  FileMetadata meta;
  meta.size = 100;
  meta.home_node = 3;
  ASSERT_TRUE(service_->CreateFile("/data.bin", meta).ok());
  auto stat = service_->Stat("/data.bin");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat->size, 100u);
  EXPECT_EQ(stat->home_node, 3u);
  EXPECT_FALSE(stat->is_dir);
  ASSERT_TRUE(service_->Unlink("/data.bin").ok());
  EXPECT_EQ(service_->Stat("/data.bin").status().code(),
            StatusCode::kNotFound);
}

TEST_F(FusionFsTest, CreateRequiresParent) {
  FileMetadata meta;
  EXPECT_EQ(service_->CreateFile("/no/such/dir/file", meta).code(),
            StatusCode::kNotFound);
}

TEST_F(FusionFsTest, DirectoriesNest) {
  ASSERT_TRUE(service_->MkDir("/home").ok());
  ASSERT_TRUE(service_->MkDir("/home/alice").ok());
  FileMetadata meta;
  ASSERT_TRUE(service_->CreateFile("/home/alice/notes.txt", meta).ok());
  auto listing = service_->ReadDir("/home/alice");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(*listing, std::vector<std::string>{"notes.txt"});
  auto root = service_->ReadDir("/");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, std::vector<std::string>{"home"});
}

TEST_F(FusionFsTest, ReadDirFoldsTombstones) {
  FileMetadata meta;
  ASSERT_TRUE(service_->CreateFile("/a", meta).ok());
  ASSERT_TRUE(service_->CreateFile("/b", meta).ok());
  ASSERT_TRUE(service_->CreateFile("/c", meta).ok());
  ASSERT_TRUE(service_->Unlink("/b").ok());
  auto listing = service_->ReadDir("/");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(*listing, (std::vector<std::string>{"a", "c"}));
}

TEST_F(FusionFsTest, RmDirOnlyWhenEmpty) {
  ASSERT_TRUE(service_->MkDir("/tmp").ok());
  FileMetadata meta;
  ASSERT_TRUE(service_->CreateFile("/tmp/f", meta).ok());
  EXPECT_EQ(service_->RmDir("/tmp").code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(service_->Unlink("/tmp/f").ok());
  EXPECT_TRUE(service_->RmDir("/tmp").ok());
  EXPECT_EQ(service_->Stat("/tmp").status().code(), StatusCode::kNotFound);
}

TEST_F(FusionFsTest, RenameMovesAcrossDirectories) {
  ASSERT_TRUE(service_->MkDir("/src").ok());
  ASSERT_TRUE(service_->MkDir("/dst").ok());
  FileMetadata meta;
  meta.size = 7;
  ASSERT_TRUE(service_->CreateFile("/src/f", meta).ok());
  ASSERT_TRUE(service_->Rename("/src/f", "/dst/g").ok());
  EXPECT_EQ(service_->Stat("/src/f").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(service_->Stat("/dst/g").value().size, 7u);
  EXPECT_TRUE(service_->ReadDir("/src")->empty());
  EXPECT_EQ(*service_->ReadDir("/dst"), std::vector<std::string>{"g"});
}

TEST_F(FusionFsTest, UpdateMetadata) {
  FileMetadata meta;
  meta.size = 1;
  ASSERT_TRUE(service_->CreateFile("/grow", meta).ok());
  meta.size = 4096;
  meta.mtime = 99;
  ASSERT_TRUE(service_->Update("/grow", meta).ok());
  EXPECT_EQ(service_->Stat("/grow")->size, 4096u);
  EXPECT_EQ(service_->Update("/ghost", meta).code(), StatusCode::kNotFound);
}

TEST_F(FusionFsTest, InvalidNamesRejected) {
  FileMetadata meta;
  EXPECT_EQ(service_->CreateFile("/bad;name", meta).code(),
            StatusCode::kInvalidArgument);
}

// The paper's marquee scenario (§III.I): many clients creating files in
// ONE directory concurrently, no distributed lock, nothing lost.
TEST_F(FusionFsTest, ConcurrentCreatesInOneDirectory) {
  ASSERT_TRUE(service_->MkDir("/shared").ok());
  constexpr int kThreads = 4;
  constexpr int kFilesPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      auto client = cluster_->CreateClient();
      MetadataService service(client.get());
      for (int i = 0; i < kFilesPerThread; ++i) {
        FileMetadata meta;
        std::string path = "/shared/f" + std::to_string(t) + "_" +
                           std::to_string(i);
        ASSERT_TRUE(service.CreateFile(path, meta).ok()) << path;
      }
    });
  }
  for (auto& thread : threads) thread.join();

  auto listing = service_->ReadDir("/shared");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(),
            static_cast<std::size_t>(kThreads * kFilesPerThread));
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kFilesPerThread; ++i) {
      EXPECT_TRUE(service_
                      ->Stat("/shared/f" + std::to_string(t) + "_" +
                             std::to_string(i))
                      .ok());
    }
  }
}

TEST(GpfsModelTest, MatchesPaperAnchors) {
  GpfsModel model;
  // ~5 ms uncontended; 393 ms at 512 nodes many-dir; 2449 ms one-dir.
  EXPECT_NEAR(model.ManyDirMsPerOp(1), 5.4, 1.0);
  EXPECT_NEAR(model.ManyDirMsPerOp(512), 393.0, 100.0);
  EXPECT_NEAR(model.OneDirMsPerOp(512), 2449.0, 300.0);
  // §III.I: 63 s per op at 16K processors in one directory.
  EXPECT_NEAR(model.OneDirMsPerOp(16384) / 1000.0, 63.0, 20.0);
  // Saturation comes early (4-32 cores): doubling clients past it nearly
  // doubles per-op time.
  double r = model.ManyDirMsPerOp(64) / model.ManyDirMsPerOp(32);
  EXPECT_GT(r, 1.5);
}

}  // namespace
}  // namespace zht::fusionfs
