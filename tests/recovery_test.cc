// Recovery campaign (ctest -L recovery): online replica rebuild after node
// failures. Kills under live mixed traffic at r=2 and r=3 must leave the
// recorded history clean (only transient errors), restore the replication
// level via checkpoint shipping, and leave rebuilt replicas byte-for-byte
// equal to the survivors. Anti-entropy digest exchange must converge
// deliberately diverged replicas and move no pair data between clean ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/local_cluster.h"
#include "history_checker.h"

namespace zht {
namespace {

ZhtClientOptions RecoveryClient() {
  ZhtClientOptions options;
  options.max_attempts = 24;
  options.failure_detector.failures_to_mark_dead = 4;
  options.failure_detector.initial_backoff = 0;
  options.sleep_on_backoff = false;
  return options;
}

// Members of `p`'s chain that are alive — after a handled failure the table
// skips dead instances, so this is the restored chain.
std::vector<InstanceId> AliveChain(const MembershipTable& table, PartitionId p,
                                   int replicas) {
  std::vector<InstanceId> alive;
  for (InstanceId id : table.ReplicaChain(p, replicas)) {
    if (table.Instance(id).alive) alive.push_back(id);
  }
  return alive;
}

// True when every partition's alive chain members hold digest-identical
// copies. `why` names the first divergence for failure messages.
bool ReplicationConverged(LocalCluster& cluster, int replicas,
                          std::string* why) {
  MembershipTable table = cluster.TableSnapshot();
  for (PartitionId p = 0; p < table.num_partitions(); ++p) {
    auto alive = AliveChain(table, p, replicas);
    if (alive.empty()) {
      *why = "partition " + std::to_string(p) + " has no alive replica";
      return false;
    }
    PartitionDigest owner = cluster.server(alive[0])->PartitionDigestOf(p);
    for (std::size_t i = 1; i < alive.size(); ++i) {
      PartitionDigest replica = cluster.server(alive[i])->PartitionDigestOf(p);
      if (!(replica == owner)) {
        *why = "partition " + std::to_string(p) + ": instance " +
               std::to_string(alive[i]) + " diverges from owner " +
               std::to_string(alive[0]);
        return false;
      }
    }
  }
  return true;
}

// Polls for digest convergence across every partition's alive chain,
// draining async legs between probes. Midway it issues one explicit
// RepairPartition healing pass per partition (anti-entropy), covering legs
// a completed rebuild may have raced.
::testing::AssertionResult WaitForConvergence(LocalCluster& cluster,
                                              int replicas) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  bool healed = false;
  std::string why;
  while (std::chrono::steady_clock::now() < deadline) {
    cluster.FlushAllAsyncReplication();
    if (ReplicationConverged(cluster, replicas, &why)) {
      return ::testing::AssertionSuccess();
    }
    if (!healed) {
      healed = true;
      MembershipTable table = cluster.TableSnapshot();
      for (PartitionId p = 0; p < table.num_partitions(); ++p) {
        auto alive = AliveChain(table, p, replicas);
        if (alive.size() > 1) cluster.server(alive[0])->RepairPartition(p);
      }
      continue;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return ::testing::AssertionFailure() << "not converged: " << why;
}

// Byte-for-byte equality of every alive replica pair set against its owner.
void ExpectReplicasIdentical(LocalCluster& cluster, int replicas) {
  MembershipTable table = cluster.TableSnapshot();
  for (PartitionId p = 0; p < table.num_partitions(); ++p) {
    auto alive = AliveChain(table, p, replicas);
    ASSERT_FALSE(alive.empty()) << "partition " << p << " lost";
    auto expected = cluster.server(alive[0])->PartitionPairs(p);
    for (std::size_t i = 1; i < alive.size(); ++i) {
      auto got = cluster.server(alive[i])->PartitionPairs(p);
      EXPECT_EQ(got, expected)
          << "partition " << p << ": instance " << alive[i]
          << " does not match owner " << alive[0] << " byte-for-byte";
    }
  }
}

struct ServerTotals {
  std::uint64_t probes = 0;
  std::uint64_t clean = 0;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  std::uint64_t pairs = 0;
  std::uint64_t retries = 0;
};

ServerTotals SumServerStats(LocalCluster& cluster) {
  ServerTotals totals;
  for (std::size_t i = 0; i < cluster.instance_count(); ++i) {
    ZhtServerStats stats = cluster.server(i)->stats();
    totals.probes += stats.antientropy_probes;
    totals.clean += stats.antientropy_clean;
    totals.started += stats.rebuilds_started;
    totals.completed += stats.rebuilds_completed;
    totals.pairs += stats.rebuild_pairs_streamed;
    totals.retries += stats.rebuild_retries;
  }
  return totals;
}

std::uint64_t SumFailuresHandled(LocalCluster& cluster) {
  std::uint64_t total = 0;
  for (std::size_t m = 0; m < cluster.manager_count(); ++m) {
    total += cluster.manager(m)->stats().failures_handled;
  }
  return total;
}

std::uint64_t SumRepairsCommanded(LocalCluster& cluster) {
  std::uint64_t total = 0;
  for (std::size_t m = 0; m < cluster.manager_count(); ++m) {
    total += cluster.manager(m)->stats().repairs_commanded;
  }
  return total;
}

// One op of recorded mixed traffic (register inserts/lookups/removes plus
// ledger appends, the two disciplines the checker understands).
void IssueOne(ZhtClient& client, HistoryRecorder& recorder,
              std::uint64_t client_id, Rng& rng, std::uint64_t* counter) {
  const std::string reg = "reg" + std::to_string(rng.Below(12));
  const std::string led = "led" + std::to_string(rng.Below(4));
  const double dice = rng.NextDouble();
  ++*counter;
  if (dice < 0.35) {
    const std::string value = "c" + std::to_string(client_id) + "v" +
                              std::to_string(*counter);
    std::uint64_t id = recorder.Begin(client_id, OpCode::kInsert, reg, value);
    recorder.End(id, client.Insert(reg, value).code());
  } else if (dice < 0.55) {
    std::uint64_t id = recorder.Begin(client_id, OpCode::kLookup, reg, "");
    auto got = client.Lookup(reg);
    recorder.End(id, got.status().code(), got.ok() ? *got : "");
  } else if (dice < 0.62) {
    std::uint64_t id = recorder.Begin(client_id, OpCode::kRemove, reg, "");
    recorder.End(id, client.Remove(reg).code());
  } else if (dice < 0.85) {
    const std::string token = "c" + std::to_string(client_id) + "t" +
                              std::to_string(*counter) + ";";
    std::uint64_t id = recorder.Begin(client_id, OpCode::kAppend, led, token);
    recorder.End(id, client.Append(led, token).code());
  } else {
    std::uint64_t id = recorder.Begin(client_id, OpCode::kLookup, led, "");
    auto got = client.Lookup(led);
    recorder.End(id, got.status().code(), got.ok() ? *got : "");
  }
}

// Kill one instance under live mixed traffic and verify the full recovery
// contract. Shared by the r=2 and r=3 tests.
void RunKillUnderTraffic(int replicas, std::size_t victim,
                         std::uint64_t seed) {
  LocalClusterOptions options;
  options.num_instances = 6;
  options.num_partitions = 48;
  options.cluster.num_replicas = replicas;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());

  HistoryRecorder recorder;
  auto a = (*cluster)->CreateClient(RecoveryClient());
  auto b = (*cluster)->CreateClient(RecoveryClient());
  Rng rng(seed);
  std::uint64_t counter_a = 0;
  std::uint64_t counter_b = 0;

  for (int i = 0; i < 60; ++i) {
    IssueOne(*a, recorder, 1, rng, &counter_a);
    IssueOne(*b, recorder, 2, rng, &counter_b);
  }
  (*cluster)->KillInstance(victim);
  int failed_after_kill = 0;
  for (int i = 0; i < 90; ++i) {
    // Live traffic across detection, promotion, and the rebuild streams.
    const std::size_t before = recorder.size();
    IssueOne(*a, recorder, 1, rng, &counter_a);
    IssueOne(*b, recorder, 2, rng, &counter_b);
    auto events = recorder.Events();
    for (std::size_t e = before; e < events.size(); ++e) {
      const StatusCode code = events[e].result;
      if (code != StatusCode::kOk && code != StatusCode::kNotFound) {
        ++failed_after_kill;
      }
    }
  }

  // Only transient errors: the tail of the post-kill window, after the
  // clients learned the new table, must succeed outright.
  std::uint64_t final_id =
      recorder.Begin(1, OpCode::kInsert, "final_probe", "fv1");
  Status final_insert = a->Insert("final_probe", "fv1");
  recorder.End(final_id, final_insert.code());
  EXPECT_TRUE(final_insert.ok()) << final_insert.ToString();
  EXPECT_LT(failed_after_kill, 180) << "no op ever recovered after the kill";

  auto check = CheckHistory(recorder.Events());
  EXPECT_TRUE(check.ok()) << check.ToString();

  // The manager saw the failure and commanded rebuilds of every affected
  // partition; the owners' streams restore the replication level.
  EXPECT_EQ(SumFailuresHandled(**cluster), 1u);
  EXPECT_GT(SumRepairsCommanded(**cluster), 0u);
  EXPECT_TRUE(WaitForConvergence(**cluster, replicas));
  ServerTotals totals = SumServerStats(**cluster);
  EXPECT_GT(totals.probes, 0u);
  EXPECT_GT(totals.started, 0u);
  EXPECT_GT(totals.completed, 0u);
  EXPECT_GT(totals.pairs, 0u);
  ExpectReplicasIdentical(**cluster, replicas);
}

TEST(RecoveryTest, KillAtR2UnderLiveTrafficRestoresReplication) {
  RunKillUnderTraffic(/*replicas=*/2, /*victim=*/1, /*seed=*/4242);
}

TEST(RecoveryTest, KillAtR3UnderLiveTrafficRestoresReplication) {
  RunKillUnderTraffic(/*replicas=*/3, /*victim=*/2, /*seed=*/4343);
}

TEST(RecoveryTest, AntiEntropyConvergesDivergedReplicas) {
  LocalClusterOptions options;
  options.num_instances = 4;
  options.num_partitions = 16;
  options.cluster.num_replicas = 2;
  options.fault_plan = std::make_shared<FaultPlan>(/*seed=*/77);
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient(RecoveryClient());

  // Diverge instance 2: drop every replica insert leg sent to it while the
  // owners keep acking. Keys are chosen so 2 is in the chain but never the
  // owner — the client's own inserts are untouched.
  MembershipTable table = (*cluster)->TableSnapshot();
  const InstanceId diverged = 2;
  std::vector<PartitionId> tracked;
  int rule = options.fault_plan->AddRule(
      {.kind = FaultKind::kDropRequest,
       .to = (*cluster)->instance_address(diverged),
       .op = OpCode::kInsert});
  int written = 0;
  for (int i = 0; written < 40 && i < 4000; ++i) {
    const std::string key = "div" + std::to_string(i);
    const PartitionId p = table.PartitionOfKey(key);
    auto chain = table.ReplicaChain(p, options.cluster.num_replicas);
    if (chain.empty() || chain[0] == diverged) continue;
    if (std::find(chain.begin(), chain.end(), diverged) == chain.end()) {
      continue;
    }
    ASSERT_TRUE(client->Insert(key, "dv" + std::to_string(i)).ok());
    if (std::find(tracked.begin(), tracked.end(), p) == tracked.end()) {
      tracked.push_back(p);
    }
    ++written;
  }
  ASSERT_EQ(written, 40);
  options.fault_plan->RemoveRule(rule);
  (*cluster)->FlushAllAsyncReplication();

  // The dropped legs really diverged the replica.
  int diverged_partitions = 0;
  for (PartitionId p : tracked) {
    PartitionDigest owner =
        (*cluster)
            ->server(table.ReplicaChain(p, options.cluster.num_replicas)[0])
            ->PartitionDigestOf(p);
    PartitionDigest theirs = (*cluster)->server(diverged)->PartitionDigestOf(p);
    if (!(theirs == owner)) ++diverged_partitions;
  }
  ASSERT_GT(diverged_partitions, 0);

  // Digest exchange + checkpoint shipping from each owner converges them.
  ServerTotals before = SumServerStats(**cluster);
  for (PartitionId p : tracked) {
    InstanceId owner = table.ReplicaChain(p, options.cluster.num_replicas)[0];
    Status repaired = (*cluster)->server(owner)->RepairPartition(p);
    EXPECT_TRUE(repaired.ok()) << "partition " << p << ": "
                               << repaired.ToString();
  }
  (*cluster)->FlushAllAsyncReplication();
  ServerTotals after = SumServerStats(**cluster);
  EXPECT_GT(after.probes, before.probes);
  EXPECT_GT(after.started, before.started);
  EXPECT_GT(after.pairs, before.pairs);

  std::string why;
  EXPECT_TRUE(ReplicationConverged(**cluster, options.cluster.num_replicas,
                                   &why))
      << why;
  ExpectReplicasIdentical(**cluster, options.cluster.num_replicas);
}

TEST(RecoveryTest, AntiEntropyCleanReplicasMoveNoPairData) {
  LocalClusterOptions options;
  options.num_instances = 4;
  options.num_partitions = 16;
  options.cluster.num_replicas = 2;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient(RecoveryClient());

  Rng rng(88);
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(
        client->Insert("clean" + std::to_string(i), rng.AsciiString(24)).ok());
  }
  (*cluster)->FlushAllAsyncReplication();
  std::string why;
  ASSERT_TRUE(ReplicationConverged(**cluster, options.cluster.num_replicas,
                                   &why))
      << why;

  // Every probe of a clean chain answers "match": digests travel, pairs
  // don't, and no stream ever starts.
  ServerTotals before = SumServerStats(**cluster);
  MembershipTable table = (*cluster)->TableSnapshot();
  for (PartitionId p = 0; p < table.num_partitions(); ++p) {
    auto chain = table.ReplicaChain(p, options.cluster.num_replicas);
    ASSERT_FALSE(chain.empty());
    Status repaired = (*cluster)->server(chain[0])->RepairPartition(p);
    EXPECT_TRUE(repaired.ok()) << repaired.ToString();
  }
  ServerTotals after = SumServerStats(**cluster);
  EXPECT_GT(after.probes, before.probes);
  EXPECT_EQ(after.clean - before.clean, after.probes - before.probes);
  EXPECT_EQ(after.started, before.started);
  EXPECT_EQ(after.pairs, before.pairs);
  EXPECT_EQ(after.retries, before.retries);
}

}  // namespace
}  // namespace zht
