#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/rng.h"
#include "novoht/btree_db.h"
#include "novoht/hashdb_file.h"
#include "novoht/memory_map.h"
#include "novoht/novoht.h"

namespace zht {
namespace {

namespace fs = std::filesystem;

class TempDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("zht_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

// ---------------------------------------------------------------- NoVoHT --

using NoVoHTTest = TempDirTest;

TEST_F(NoVoHTTest, InMemoryCrud) {
  auto store = NoVoHT::Open(NoVoHTOptions{});
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Put("k1", "v1").ok());
  EXPECT_TRUE((*store)->Put("k2", "v2").ok());
  EXPECT_EQ((*store)->Get("k1").value(), "v1");
  EXPECT_EQ((*store)->Size(), 2u);
  EXPECT_TRUE((*store)->Remove("k1").ok());
  EXPECT_EQ((*store)->Get("k1").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*store)->Size(), 1u);
}

TEST_F(NoVoHTTest, PutOverwrites) {
  auto store = NoVoHT::Open(NoVoHTOptions{});
  ASSERT_TRUE(store.ok());
  (*store)->Put("k", "old");
  (*store)->Put("k", "new");
  EXPECT_EQ((*store)->Get("k").value(), "new");
  EXPECT_EQ((*store)->Size(), 1u);
}

TEST_F(NoVoHTTest, RemoveMissingIsNotFound) {
  auto store = NoVoHT::Open(NoVoHTOptions{});
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->Remove("ghost").code(), StatusCode::kNotFound);
}

TEST_F(NoVoHTTest, AppendConcatenatesAndCreates) {
  auto store = NoVoHT::Open(NoVoHTOptions{});
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Append("list", "a").ok());   // creates
  EXPECT_TRUE((*store)->Append("list", ",b").ok());  // extends
  EXPECT_EQ((*store)->Get("list").value(), "a,b");
  EXPECT_TRUE((*store)->supports_append());
}

TEST_F(NoVoHTTest, EmptyValueAndBinaryData) {
  auto store = NoVoHT::Open(NoVoHTOptions{});
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Put("empty", "").ok());
  EXPECT_EQ((*store)->Get("empty").value(), "");
  std::string binary("\x00\x01\xff\x7f", 4);
  EXPECT_TRUE((*store)->Put("bin", binary).ok());
  EXPECT_EQ((*store)->Get("bin").value(), binary);
}

TEST_F(NoVoHTTest, ResizeKeepsAllEntries) {
  NoVoHTOptions options;
  options.initial_buckets = 4;
  options.max_load_factor = 1.0;
  auto store = NoVoHT::Open(options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE((*store)->Put("key" + std::to_string(i),
                              "value" + std::to_string(i)).ok());
  }
  EXPECT_GT((*store)->stats().resizes, 0u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ((*store)->Get("key" + std::to_string(i)).value(),
              "value" + std::to_string(i));
  }
}

TEST_F(NoVoHTTest, MaxBucketsCapsIndexGrowth) {
  NoVoHTOptions options;
  options.initial_buckets = 4;
  options.max_load_factor = 1.0;
  options.max_buckets = 16;
  auto store = NoVoHT::Open(options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 200; ++i) {
    (*store)->Put("k" + std::to_string(i), "v");
  }
  EXPECT_LE((*store)->stats().buckets, 16u);
  EXPECT_EQ((*store)->Size(), 200u);
}

TEST_F(NoVoHTTest, MaxEntriesEnforced) {
  NoVoHTOptions options;
  options.max_entries = 3;
  auto store = NoVoHT::Open(options);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Put("a", "1").ok());
  EXPECT_TRUE((*store)->Put("b", "2").ok());
  EXPECT_TRUE((*store)->Put("c", "3").ok());
  EXPECT_EQ((*store)->Put("d", "4").code(), StatusCode::kCapacity);
  // Overwriting an existing key is still allowed at the cap.
  EXPECT_TRUE((*store)->Put("a", "1b").ok());
  EXPECT_EQ((*store)->Append("e", "x").code(), StatusCode::kCapacity);
}

TEST_F(NoVoHTTest, PersistsAcrossReopen) {
  NoVoHTOptions options;
  options.path = Path("store.nvt");
  {
    auto store = NoVoHT::Open(options);
    ASSERT_TRUE(store.ok());
    (*store)->Put("durable", "yes");
    (*store)->Put("gone", "soon");
    (*store)->Remove("gone");
    (*store)->Append("log", "a");
    (*store)->Append("log", "b");
  }
  auto reopened = NoVoHT::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Get("durable").value(), "yes");
  EXPECT_EQ((*reopened)->Get("gone").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*reopened)->Get("log").value(), "ab");
  EXPECT_EQ((*reopened)->Size(), 2u);
  EXPECT_GT((*reopened)->stats().recovered_records, 0u);
}

TEST_F(NoVoHTTest, TornLogTailIsTrimmed) {
  NoVoHTOptions options;
  options.path = Path("torn.nvt");
  {
    auto store = NoVoHT::Open(options);
    ASSERT_TRUE(store.ok());
    (*store)->Put("full", "record");
    (*store)->Put("torn", "record");
  }
  // Chop bytes off the tail to simulate a crash mid-write.
  auto size = fs::file_size(options.path);
  fs::resize_file(options.path, size - 3);

  auto reopened = NoVoHT::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Get("full").value(), "record");
  EXPECT_EQ((*reopened)->Get("torn").status().code(), StatusCode::kNotFound);
  // And the store remains writable afterwards.
  EXPECT_TRUE((*reopened)->Put("after", "crash").ok());
}

TEST_F(NoVoHTTest, CorruptMidLogRejected) {
  NoVoHTOptions options;
  options.path = Path("corrupt.nvt");
  {
    auto store = NoVoHT::Open(options);
    ASSERT_TRUE(store.ok());
    (*store)->Put("aaa", "111");
    (*store)->Put("bbb", "222");
  }
  // Flip a byte in the *first* record's payload: CRC mismatch mid-log.
  {
    std::fstream f(options.path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    f.put('X');
  }
  auto reopened = NoVoHT::Open(options);
  EXPECT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

TEST_F(NoVoHTTest, CompactionShrinksLogAndPreservesData) {
  NoVoHTOptions options;
  options.path = Path("gc.nvt");
  options.gc_min_log_bytes = 1;      // always eligible
  options.gc_garbage_ratio = 100.0;  // but never auto-trigger
  auto store = NoVoHT::Open(options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 100; ++i) {
    (*store)->Put("churn", "value" + std::to_string(i));  // 99 dead records
  }
  (*store)->Put("keep", "me");
  auto before = (*store)->stats();
  ASSERT_TRUE((*store)->Compact().ok());
  auto after = (*store)->stats();
  EXPECT_LT(after.log_bytes, before.log_bytes);
  EXPECT_EQ(after.dead_bytes, 0u);
  EXPECT_EQ(after.gc_runs, 1u);
  EXPECT_EQ((*store)->Get("churn").value(), "value99");
  EXPECT_EQ((*store)->Get("keep").value(), "me");

  // Reopen from the compacted log.
  (*store).reset();  // close first
  auto reopened = NoVoHT::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Get("churn").value(), "value99");
}

// Observability of garbage collection: each compaction records its
// duration into a histogram and the cumulative gc time; live_bytes tracks
// log_bytes minus dead_bytes.
TEST_F(NoVoHTTest, GcDurationAndLiveBytesExposed) {
  NoVoHTOptions options;
  options.path = Path("gc_metrics.nvt");
  options.gc_min_log_bytes = 1;
  options.gc_garbage_ratio = 100.0;  // manual Compact() only
  auto store = NoVoHT::Open(options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 50; ++i) {
    (*store)->Put("k", "value" + std::to_string(i));
  }
  auto before = (*store)->stats();
  EXPECT_EQ(before.live_bytes, before.log_bytes - before.dead_bytes);
  EXPECT_GT(before.dead_bytes, 0u);
  EXPECT_EQ((*store)->GcDurationHistogram().count, 0u);

  ASSERT_TRUE((*store)->Compact().ok());
  ASSERT_TRUE((*store)->Compact().ok());

  auto after = (*store)->stats();
  EXPECT_EQ(after.live_bytes, after.log_bytes);  // no garbage left
  HistogramData gc = (*store)->GcDurationHistogram();
  EXPECT_EQ(gc.count, 2u);
  EXPECT_EQ(gc.sum, after.gc_nanos_total);
  EXPECT_GT(after.gc_nanos_total, 0u);
}

TEST_F(NoVoHTTest, AutoGcTriggersOnGarbageRatio) {
  NoVoHTOptions options;
  options.path = Path("autogc.nvt");
  options.gc_min_log_bytes = 512;
  options.gc_garbage_ratio = 0.5;
  auto store = NoVoHT::Open(options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*store)->Put("hot-key", "v" + std::to_string(i)).ok());
  }
  EXPECT_GT((*store)->stats().gc_runs, 0u);
  EXPECT_EQ((*store)->Get("hot-key").value(), "v1999");
}

TEST_F(NoVoHTTest, ForEachVisitsLivePairsOnly) {
  auto store = NoVoHT::Open(NoVoHTOptions{});
  ASSERT_TRUE(store.ok());
  (*store)->Put("a", "1");
  (*store)->Put("b", "2");
  (*store)->Put("c", "3");
  (*store)->Remove("b");
  std::map<std::string, std::string> seen;
  (*store)->ForEach([&seen](std::string_view k, std::string_view v) {
    seen.emplace(k, v);
  });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen["a"], "1");
  EXPECT_EQ(seen["c"], "3");
}

// Paper §IV.B: persistence adds only microseconds; verify the WAL is
// actually written per op.
TEST_F(NoVoHTTest, EveryMutationHitsTheLog) {
  NoVoHTOptions options;
  options.path = Path("wal.nvt");
  auto store = NoVoHT::Open(options);
  ASSERT_TRUE(store.ok());
  auto log_size = [&] { return fs::file_size(options.path); };
  (*store)->Put("k", "v");
  auto s1 = log_size();
  EXPECT_GT(s1, 0u);
  (*store)->Append("k", "v2");
  auto s2 = log_size();
  EXPECT_GT(s2, s1);
  (*store)->Remove("k");
  EXPECT_GT(log_size(), s2);
}

// ------------------------------------------------- NoVoHT durability ----

TEST_F(NoVoHTTest, EveryOpFsyncFailurePoisonsStore) {
  NoVoHTOptions options;
  options.path = Path("fsfail.nvt");
  options.durability = DurabilityMode::kEveryOp;
  int calls = 0;
  options.fsync_hook = [&calls](int) { return ++calls > 1 ? -1 : 0; };
  auto store = NoVoHT::Open(options);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->Put("ok", "synced").ok());

  Status failed = (*store)->Put("lost", "maybe");
  EXPECT_EQ(failed.code(), StatusCode::kInternal);
  auto stats = (*store)->stats();
  EXPECT_TRUE(stats.read_only);
  EXPECT_GE(stats.fsync_errors, 1u);
  // The store stays poisoned: every further mutation fails, reads still work.
  EXPECT_EQ((*store)->Put("again", "no").code(), StatusCode::kInternal);
  EXPECT_EQ((*store)->Remove("ok").code(), StatusCode::kInternal);
  EXPECT_EQ((*store)->Get("ok").value(), "synced");
}

TEST_F(NoVoHTTest, GroupCommitFsyncFailureFailsWaiters) {
  NoVoHTOptions options;
  options.path = Path("gcfail.nvt");
  options.durability = DurabilityMode::kGroupCommit;
  options.fsync_hook = [](int) { return -1; };
  auto store = NoVoHT::Open(options);
  ASSERT_TRUE(store.ok());
  // wait_for_durable defaults to true: the blocked writer gets the error.
  EXPECT_EQ((*store)->Put("k", "v").code(), StatusCode::kInternal);
  auto stats = (*store)->stats();
  EXPECT_TRUE(stats.read_only);
  EXPECT_GE(stats.fsync_errors, 1u);
}

TEST_F(NoVoHTTest, GroupCommitAcksAreDurable) {
  NoVoHTOptions options;
  options.path = Path("gc.nvt");
  options.durability = DurabilityMode::kGroupCommit;
  {
    auto store = NoVoHT::Open(options);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(
          (*store)->Put("k" + std::to_string(i), std::to_string(i)).ok());
    }
    auto stats = (*store)->stats();
    EXPECT_GE(stats.group_commits, 1u);
    StoreDurabilityMetrics metrics;
    ASSERT_TRUE((*store)->durability_metrics(&metrics));
    EXPECT_GE(metrics.group_commits, 1u);
    EXPECT_GT(metrics.fsync_micros.count, 0u);
  }
  auto reopened = NoVoHT::Open(options);
  ASSERT_TRUE(reopened.ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ((*reopened)->Get("k" + std::to_string(i)).value(),
              std::to_string(i));
  }
}

TEST_F(NoVoHTTest, DeferredWaitHandshake) {
  NoVoHTOptions options;
  options.path = Path("handshake.nvt");
  options.durability = DurabilityMode::kGroupCommit;
  options.wait_for_durable = false;  // the server-side acking discipline
  auto store = NoVoHT::Open(options);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->last_commit_token(), 0u);
  ASSERT_TRUE((*store)->Put("a", "1").ok());
  std::uint64_t t1 = (*store)->last_commit_token();
  EXPECT_GT(t1, 0u);
  ASSERT_TRUE((*store)->Put("b", "2").ok());
  std::uint64_t t2 = (*store)->last_commit_token();
  EXPECT_GT(t2, t1);
  EXPECT_TRUE((*store)->WaitDurable(t2).ok());
  // Waiting on an already-durable (or zero) token is a no-op.
  EXPECT_TRUE((*store)->WaitDurable(t1).ok());
  EXPECT_TRUE((*store)->WaitDurable(0).ok());
}

TEST_F(NoVoHTTest, GroupCommitSurvivesCompaction) {
  NoVoHTOptions options;
  options.path = Path("gc_compact.nvt");
  options.durability = DurabilityMode::kGroupCommit;
  auto store = NoVoHT::Open(options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*store)->Put("k", std::string(64, 'a' + (i % 26))).ok());
  }
  ASSERT_TRUE((*store)->Compact().ok());
  // Commit tokens are sequence numbers, not byte offsets: the pipeline keeps
  // working after the log is rewritten.
  ASSERT_TRUE((*store)->Put("post", "compact").ok());
  EXPECT_TRUE((*store)->WaitDurable((*store)->last_commit_token()).ok());
  EXPECT_EQ((*store)->Get("post").value(), "compact");
}

// Satellite 2 regression: damage to a *length field* mid-log must be
// reported as corruption, not silently truncate every later record.
TEST_F(NoVoHTTest, MidLogLengthFieldDamageRejected) {
  NoVoHTOptions options;
  options.path = Path("lenfield.nvt");
  std::uint64_t first_end = 0;
  {
    auto store = NoVoHT::Open(options);
    ASSERT_TRUE(store.ok());
    (*store)->Put("aaa", "111");
    first_end = fs::file_size(options.path);
    (*store)->Put("bbb", "222");
    (*store)->Put("ccc", "333");
  }
  {
    // Corrupt the second record's klen varint (crc:4 + type:1 → offset 5).
    std::fstream f(options.path,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(first_end + 5));
    f.put(static_cast<char>(0xEF));
  }
  auto reopened = NoVoHT::Open(options);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
}

// A torn *length field* in the final record is still a torn tail: trimmed,
// not corruption.
TEST_F(NoVoHTTest, TornTailLengthFieldTrimmed) {
  NoVoHTOptions options;
  options.path = Path("tornlen.nvt");
  std::uint64_t first_end = 0;
  {
    auto store = NoVoHT::Open(options);
    ASSERT_TRUE(store.ok());
    (*store)->Put("kept", "value");
    first_end = fs::file_size(options.path);
    (*store)->Put("torn", std::string(300, 'x'));  // vlen takes 2 bytes
  }
  // Truncate inside the last record's header, mid-varint.
  fs::resize_file(options.path, first_end + 6);

  auto reopened = NoVoHT::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Get("kept").value(), "value");
  EXPECT_EQ((*reopened)->Get("torn").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE((*reopened)->Put("after", "crash").ok());
}

// Satellite 3: recovery streams the log through a bounded window; a log far
// larger than the window (including one over-sized record) replays fully.
TEST_F(NoVoHTTest, RecoveryStreamsLargeLog) {
  NoVoHTOptions options;
  options.path = Path("biglog.nvt");
  options.recover_buffer_bytes = 4096;
  options.gc_garbage_ratio = 100.0;  // keep every record in the log
  const std::string big(64 * 1024, 'B');  // one record >> the window
  {
    auto store = NoVoHT::Open(options);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE((*store)->Put("key" + std::to_string(i),
                                "value" + std::to_string(i)).ok());
    }
    ASSERT_TRUE((*store)->Put("big", big).ok());
    ASSERT_TRUE((*store)->Remove("key0").ok());
  }
  ASSERT_GT(fs::file_size(options.path), 8 * options.recover_buffer_bytes);

  auto reopened = NoVoHT::Open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->Size(), 500u);  // 500 keys - key0 + big
  EXPECT_EQ((*reopened)->Get("key0").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*reopened)->Get("key499").value(), "value499");
  EXPECT_EQ((*reopened)->Get("big").value(), big);
  EXPECT_EQ((*reopened)->stats().recovered_records, 502u);
}

// ------------------------------------------------------------- HashDB ----

using HashDBTest = TempDirTest;

TEST_F(HashDBTest, CrudOnDisk) {
  auto db = HashDBFile::Open(Path("hash.db"), 64);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->Put("k1", "v1").ok());
  EXPECT_EQ((*db)->Get("k1").value(), "v1");
  EXPECT_TRUE((*db)->Put("k1", "v2").ok());  // same-size overwrite in place
  EXPECT_EQ((*db)->Get("k1").value(), "v2");
  EXPECT_TRUE((*db)->Put("k1", "a-much-longer-value").ok());  // relocate
  EXPECT_EQ((*db)->Get("k1").value(), "a-much-longer-value");
  EXPECT_EQ((*db)->Size(), 1u);
  EXPECT_TRUE((*db)->Remove("k1").ok());
  EXPECT_EQ((*db)->Get("k1").status().code(), StatusCode::kNotFound);
}

TEST_F(HashDBTest, ChainsInOneBucket) {
  auto db = HashDBFile::Open(Path("chain.db"), 1);  // everything collides
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*db)->Put("key" + std::to_string(i),
                           "val" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ((*db)->Get("key" + std::to_string(i)).value(),
              "val" + std::to_string(i));
  }
  EXPECT_EQ((*db)->Size(), 50u);
}

TEST_F(HashDBTest, PersistsAcrossReopen) {
  std::string path = Path("reopen.db");
  {
    auto db = HashDBFile::Open(path, 16);
    ASSERT_TRUE(db.ok());
    (*db)->Put("stay", "here");
    (*db)->Put("dele", "ted");
    (*db)->Remove("dele");
  }
  auto db = HashDBFile::Open(path, 16);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->Get("stay").value(), "here");
  EXPECT_EQ((*db)->Get("dele").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*db)->Size(), 1u);
}

TEST_F(HashDBTest, AppendUnsupported) {
  auto db = HashDBFile::Open(Path("na.db"), 8);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->Append("k", "v").code(), StatusCode::kNotSupported);
  EXPECT_FALSE((*db)->supports_append());
}

TEST_F(HashDBTest, ForEachSeesNewestVersion) {
  auto db = HashDBFile::Open(Path("fe.db"), 4);
  ASSERT_TRUE(db.ok());
  (*db)->Put("k", "old-longer-value");
  (*db)->Put("k", "new");  // different size → relocated record
  std::map<std::string, std::string> seen;
  (*db)->ForEach([&seen](std::string_view k, std::string_view v) {
    seen.emplace(k, v);
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen["k"], "new");
}

// -------------------------------------------------------------- BTreeDB --

using BTreeTest = TempDirTest;

TEST_F(BTreeTest, CrudSmall) {
  BTreeDBOptions options;
  options.path = Path("btree.db");
  auto db = BTreeDB::Open(options);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE((*db)->Put("b", "2").ok());
  EXPECT_TRUE((*db)->Put("a", "1").ok());
  EXPECT_TRUE((*db)->Put("c", "3").ok());
  EXPECT_EQ((*db)->Get("a").value(), "1");
  EXPECT_EQ((*db)->Get("b").value(), "2");
  EXPECT_TRUE((*db)->Put("b", "2b").ok());
  EXPECT_EQ((*db)->Get("b").value(), "2b");
  EXPECT_EQ((*db)->Size(), 3u);
  EXPECT_TRUE((*db)->Remove("b").ok());
  EXPECT_EQ((*db)->Get("b").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*db)->Remove("b").code(), StatusCode::kNotFound);
}

TEST_F(BTreeTest, ManyKeysSplitPages) {
  BTreeDBOptions options;
  options.path = Path("split.db");
  options.page_size = 512;  // force frequent splits
  options.cache_pages = 8;
  auto db = BTreeDB::Open(options);
  ASSERT_TRUE(db.ok());
  Rng rng(77);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; ++i) {
    std::string key = rng.AsciiString(12);
    std::string value = rng.AsciiString(20);
    ASSERT_TRUE((*db)->Put(key, value).ok()) << i;
    model[key] = value;
  }
  EXPECT_EQ((*db)->Size(), model.size());
  for (const auto& [key, value] : model) {
    EXPECT_EQ((*db)->Get(key).value(), value);
  }
  EXPECT_GT((*db)->cache_misses(), 0u);  // it actually went to disk
}

TEST_F(BTreeTest, ForEachIsSorted) {
  BTreeDBOptions options;
  options.path = Path("sorted.db");
  options.page_size = 256;
  auto db = BTreeDB::Open(options);
  ASSERT_TRUE(db.ok());
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    (*db)->Put(rng.AsciiString(10), "v");
  }
  std::vector<std::string> keys;
  (*db)->ForEach([&keys](std::string_view k, std::string_view) {
    keys.emplace_back(k);
  });
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), (*db)->Size());
}

TEST_F(BTreeTest, PersistsAcrossReopen) {
  BTreeDBOptions options;
  options.path = Path("persist.db");
  options.page_size = 512;
  {
    auto db = BTreeDB::Open(options);
    ASSERT_TRUE(db.ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(
          (*db)->Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
    }
  }
  auto db = BTreeDB::Open(options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->Size(), 500u);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ((*db)->Get("key" + std::to_string(i)).value(),
              "v" + std::to_string(i));
  }
}

TEST_F(BTreeTest, OversizedEntryRejected) {
  BTreeDBOptions options;
  options.path = Path("big.db");
  options.page_size = 256;
  auto db = BTreeDB::Open(options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->Put("k", std::string(1000, 'x')).code(),
            StatusCode::kCapacity);
}

// ------------------------------------------------------------ MemoryMap --

TEST(MemoryMapTest, FullInterface) {
  MemoryMap map;
  EXPECT_TRUE(map.Put("k", "v").ok());
  EXPECT_EQ(map.Get("k").value(), "v");
  EXPECT_TRUE(map.Append("k", "2").ok());
  EXPECT_EQ(map.Get("k").value(), "v2");
  EXPECT_EQ(map.Size(), 1u);
  EXPECT_TRUE(map.Remove("k").ok());
  EXPECT_EQ(map.Remove("k").code(), StatusCode::kNotFound);
  EXPECT_FALSE(map.persistent());
  EXPECT_TRUE(map.supports_append());
}

// Cross-implementation property test: every store obeys the same contract.
class KVStoreContractTest : public TempDirTest,
                            public ::testing::WithParamInterface<int> {
 protected:
  std::unique_ptr<KVStore> MakeStore() {
    switch (GetParam()) {
      case 0: {
        auto s = NoVoHT::Open(NoVoHTOptions{});
        return s.ok() ? std::move(*s) : nullptr;
      }
      case 1: {
        NoVoHTOptions o;
        o.path = Path("contract.nvt");
        auto s = NoVoHT::Open(o);
        return s.ok() ? std::move(*s) : nullptr;
      }
      case 2: {
        auto s = HashDBFile::Open(Path("contract.hdb"), 32);
        return s.ok() ? std::move(*s) : nullptr;
      }
      case 3: {
        BTreeDBOptions o;
        o.path = Path("contract.btr");
        auto s = BTreeDB::Open(o);
        return s.ok() ? std::move(*s) : nullptr;
      }
      default:
        return std::make_unique<MemoryMap>();
    }
  }
};

TEST_P(KVStoreContractTest, ModelEquivalence) {
  auto store = MakeStore();
  ASSERT_NE(store, nullptr);
  std::map<std::string, std::string> model;
  Rng rng(1234);
  for (int i = 0; i < 1500; ++i) {
    std::string key = "k" + std::to_string(rng.Below(200));
    double dice = rng.NextDouble();
    if (dice < 0.6) {
      std::string value = rng.AsciiString(16);
      ASSERT_TRUE(store->Put(key, value).ok());
      model[key] = value;
    } else if (dice < 0.85) {
      Status status = store->Remove(key);
      if (model.erase(key)) {
        EXPECT_TRUE(status.ok());
      } else {
        EXPECT_EQ(status.code(), StatusCode::kNotFound);
      }
    } else {
      auto got = store->Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  EXPECT_EQ(store->Size(), model.size());
}

std::string ContractStoreName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"NoVoHTMem", "NoVoHTDisk", "HashDB",
                                       "BTreeDB", "MemoryMap"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllStores, KVStoreContractTest,
                         ::testing::Range(0, 5), ContractStoreName);

}  // namespace
}  // namespace zht
