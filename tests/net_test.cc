#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>

#include <chrono>
#include <thread>

#include "net/epoll_server.h"
#include "net/fault_injection.h"
#include "net/framing.h"
#include "net/loopback.h"
#include "net/tcp_client.h"
#include "net/threaded_server.h"
#include "net/udp_client.h"

namespace zht {
namespace {

constexpr Nanos kTestTimeout = 2 * kNanosPerSec;

Response EchoHandler(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  resp.value = request.key + "|" + request.value;
  return resp;
}

TEST(FramingTest, RoundTrip) {
  std::string buffer = FrameMessage("hello");
  bool malformed = false;
  auto payload = ExtractFrame(buffer, &malformed);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "hello");
  EXPECT_TRUE(buffer.empty());
  EXPECT_FALSE(malformed);
}

TEST(FramingTest, PartialFrameWaits) {
  std::string full = FrameMessage("payload");
  std::string buffer = full.substr(0, 6);
  bool malformed = false;
  EXPECT_FALSE(ExtractFrame(buffer, &malformed).has_value());
  EXPECT_FALSE(malformed);
  buffer += full.substr(6);
  auto payload = ExtractFrame(buffer, &malformed);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "payload");
}

TEST(FramingTest, MultipleFramesInOneBuffer) {
  std::string buffer = FrameMessage("a") + FrameMessage("bb");
  bool malformed = false;
  EXPECT_EQ(*ExtractFrame(buffer, &malformed), "a");
  EXPECT_EQ(*ExtractFrame(buffer, &malformed), "bb");
  EXPECT_FALSE(ExtractFrame(buffer, &malformed).has_value());
}

TEST(FramingTest, OversizedFrameMalformed) {
  std::string buffer = "\xff\xff\xff\xff payload";
  bool malformed = false;
  EXPECT_FALSE(ExtractFrame(buffer, &malformed).has_value());
  EXPECT_TRUE(malformed);
}

TEST(FramingTest, EmptyPayloadFrame) {
  std::string buffer = FrameMessage("");
  bool malformed = false;
  auto payload = ExtractFrame(buffer, &malformed);
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "");
}

// ---- Loopback --------------------------------------------------------

TEST(LoopbackTest, DeliversToHandler) {
  LoopbackNetwork network;
  NodeAddress address = network.Register(EchoHandler);
  LoopbackTransport transport(&network);
  Request request;
  request.op = OpCode::kLookup;
  request.seq = 5;
  request.key = "k";
  request.value = "v";
  auto response = transport.Call(address, request, kTestTimeout);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->seq, 5u);
  EXPECT_EQ(response->value, "k|v");
  EXPECT_EQ(network.delivered(), 1u);
}

TEST(LoopbackTest, UnknownAddressFails) {
  LoopbackNetwork network;
  LoopbackTransport transport(&network);
  Request request;
  request.op = OpCode::kPing;
  auto response =
      transport.Call(NodeAddress{"loop", 999}, request, kTestTimeout);
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNetwork);
}

TEST(LoopbackTest, DownNodeTimesOut) {
  LoopbackNetwork network;
  NodeAddress address = network.Register(EchoHandler);
  network.SetDown(address, true);
  LoopbackTransport transport(&network);
  Request request;
  request.op = OpCode::kPing;
  auto response = transport.Call(address, request, kTestTimeout);
  EXPECT_EQ(response.status().code(), StatusCode::kTimeout);
  network.SetDown(address, false);
  EXPECT_TRUE(transport.Call(address, request, kTestTimeout).ok());
}

TEST(LoopbackTest, UnregisterRemoves) {
  LoopbackNetwork network;
  NodeAddress address = network.Register(EchoHandler);
  network.Unregister(address);
  LoopbackTransport transport(&network);
  Request request;
  request.op = OpCode::kPing;
  EXPECT_EQ(transport.Call(address, request, kTestTimeout).status().code(),
            StatusCode::kNetwork);
}

// ---- Fault injection ---------------------------------------------------

// A handler that counts deliveries: the proof that a "dropped response"
// still mutated server-side state while a "dropped request" never arrived.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    plan_ = std::make_shared<FaultPlan>(/*seed=*/42);
    address_ = network_.Register([this](Request&& request) {
      delivered_.fetch_add(1, std::memory_order_relaxed);
      return EchoHandler(std::move(request));
    });
    transport_ = std::make_unique<FaultInjectingTransport>(
        std::make_unique<LoopbackTransport>(&network_), plan_);
  }

  Result<Response> Ping(OpCode op = OpCode::kPing) {
    Request request;
    request.op = op;
    request.key = "k";
    return transport_->Call(address_, request, kTestTimeout);
  }

  LoopbackNetwork network_;
  std::shared_ptr<FaultPlan> plan_;
  NodeAddress address_;
  std::unique_ptr<FaultInjectingTransport> transport_;
  std::atomic<std::uint64_t> delivered_{0};
};

TEST_F(FaultInjectionTest, DropRequestNeverReachesHandler) {
  plan_->AddRule({.kind = FaultKind::kDropRequest});
  EXPECT_EQ(Ping().status().code(), StatusCode::kTimeout);
  EXPECT_EQ(delivered_.load(), 0u);
  plan_->Clear();
  EXPECT_TRUE(Ping().ok());
  EXPECT_EQ(plan_->stats().dropped_requests, 1u);
}

TEST_F(FaultInjectionTest, DropResponseStillAppliesServerState) {
  plan_->AddRule({.kind = FaultKind::kDropResponse});
  EXPECT_EQ(Ping().status().code(), StatusCode::kTimeout);
  // The handler ran: the op applied even though the caller saw a timeout.
  EXPECT_EQ(delivered_.load(), 1u);
  EXPECT_EQ(plan_->stats().dropped_responses, 1u);
}

TEST_F(FaultInjectionTest, DuplicateDeliversTwice) {
  plan_->AddRule({.kind = FaultKind::kDuplicate});
  auto response = Ping();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->value, "k|");
  EXPECT_EQ(delivered_.load(), 2u);
  EXPECT_EQ(plan_->stats().duplicates, 1u);
}

TEST_F(FaultInjectionTest, DelayPausesDelivery) {
  plan_->AddRule({.kind = FaultKind::kDelay, .delay = 20 * kNanosPerMilli});
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(Ping().ok());
  auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 20 * kNanosPerMilli);
  EXPECT_EQ(delivered_.load(), 1u);
  EXPECT_EQ(plan_->stats().delays, 1u);
}

TEST_F(FaultInjectionTest, WindowSkipsFirstAndCapsFaults) {
  // Let one call through, then drop exactly one, then stand down.
  plan_->AddRule({.kind = FaultKind::kDropRequest,
                  .skip_first = 1,
                  .max_faults = 1});
  EXPECT_TRUE(Ping().ok());
  EXPECT_EQ(Ping().status().code(), StatusCode::kTimeout);
  EXPECT_TRUE(Ping().ok());
  EXPECT_TRUE(Ping().ok());
  EXPECT_EQ(plan_->stats().dropped_requests, 1u);
}

TEST_F(FaultInjectionTest, FiltersMatchDestinationAndOpcode) {
  NodeAddress other = network_.Register(EchoHandler);
  plan_->AddRule({.kind = FaultKind::kDropRequest,
                  .to = address_,
                  .op = OpCode::kInsert});
  EXPECT_EQ(Ping(OpCode::kInsert).status().code(), StatusCode::kTimeout);
  EXPECT_TRUE(Ping(OpCode::kLookup).ok());  // wrong opcode
  Request request;
  request.op = OpCode::kInsert;
  EXPECT_TRUE(transport_->Call(other, request, kTestTimeout).ok());
}

TEST_F(FaultInjectionTest, RemoveRuleStopsInjection) {
  int id = plan_->AddRule({.kind = FaultKind::kDropRequest});
  EXPECT_FALSE(Ping().ok());
  plan_->RemoveRule(id);
  EXPECT_TRUE(Ping().ok());
}

TEST_F(FaultInjectionTest, PartitionBlocksBothDirectionsButNotClients) {
  NodeAddress peer = network_.Register(EchoHandler);
  FaultInjectingTransport from_self(
      std::make_unique<LoopbackTransport>(&network_), plan_, address_);
  FaultInjectingTransport from_peer(
      std::make_unique<LoopbackTransport>(&network_), plan_, peer);
  int id = plan_->AddPartition({address_}, {peer});

  Request request;
  request.op = OpCode::kPing;
  EXPECT_EQ(from_self.Call(peer, request, kTestTimeout).status().code(),
            StatusCode::kTimeout);
  EXPECT_EQ(from_peer.Call(address_, request, kTestTimeout).status().code(),
            StatusCode::kTimeout);
  // A transport with no identity (a client outside both groups) is unaffected.
  EXPECT_TRUE(transport_->Call(peer, request, kTestTimeout).ok());
  EXPECT_EQ(plan_->stats().partition_blocks, 2u);

  plan_->RemovePartition(id);
  EXPECT_TRUE(from_self.Call(peer, request, kTestTimeout).ok());
}

TEST_F(FaultInjectionTest, ProbabilisticRulesReplayFromSeed) {
  // The same seed must reproduce the same drop pattern call-for-call; a
  // different seed is allowed (and overwhelmingly likely) to differ.
  auto pattern = [this](std::uint64_t seed) {
    auto plan = std::make_shared<FaultPlan>(seed);
    plan->AddRule({.kind = FaultKind::kDropRequest, .probability = 0.5});
    FaultInjectingTransport transport(
        std::make_unique<LoopbackTransport>(&network_), plan);
    std::string bits;
    Request request;
    request.op = OpCode::kPing;
    for (int i = 0; i < 64; ++i) {
      bits += transport.Call(address_, request, kTestTimeout).ok() ? '1' : '0';
    }
    return bits;
  };
  std::string first = pattern(7);
  EXPECT_EQ(first, pattern(7));
  EXPECT_NE(first, std::string(64, '0'));
  EXPECT_NE(first, std::string(64, '1'));
}

TEST_F(FaultInjectionTest, BatchSuffersOneDecision) {
  plan_->AddRule({.kind = FaultKind::kDropResponse, .op = OpCode::kBatch});
  std::vector<Request> requests(3);
  for (auto& r : requests) r.op = OpCode::kLookup;
  auto responses = transport_->CallBatch(address_, requests, kTestTimeout);
  EXPECT_EQ(responses.status().code(), StatusCode::kTimeout);
  // The batch crossed the wire as one carrier, delivered before the reply
  // was discarded — so the peer applied it even though the caller timed out.
  EXPECT_EQ(delivered_.load(), 1u);
}

// ---- Real sockets -----------------------------------------------------

class EpollServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto server = EpollServer::Create(EpollServerOptions{}, EchoHandler);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::unique_ptr<EpollServer> server_;
};

TEST_F(EpollServerTest, TcpRequestResponse) {
  TcpClient client;
  Request request;
  request.op = OpCode::kInsert;
  request.seq = 11;
  request.key = "alpha";
  request.value = "beta";
  auto response = client.Call(server_->address(), request, kTestTimeout);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->seq, 11u);
  EXPECT_EQ(response->value, "alpha|beta");
  EXPECT_EQ(server_->requests_served(), 1u);
}

TEST_F(EpollServerTest, ConnectionCacheReusesSocket) {
  TcpClient client;
  Request request;
  request.op = OpCode::kPing;
  for (int i = 0; i < 10; ++i) {
    request.seq = static_cast<std::uint64_t>(i + 1);
    ASSERT_TRUE(client.Call(server_->address(), request, kTestTimeout).ok());
  }
  EXPECT_EQ(client.connects(), 1u);
  EXPECT_EQ(client.cache_hits(), 9u);
  EXPECT_EQ(server_->connections_accepted(), 1u);
}

TEST_F(EpollServerTest, NoCacheConnectsEveryCall) {
  TcpClient client(TcpClientOptions{.cache_connections = false});
  Request request;
  request.op = OpCode::kPing;
  for (int i = 0; i < 5; ++i) {
    request.seq = static_cast<std::uint64_t>(i + 1);
    ASSERT_TRUE(client.Call(server_->address(), request, kTestTimeout).ok());
  }
  EXPECT_EQ(client.connects(), 5u);
  EXPECT_EQ(client.cache_hits(), 0u);
  EXPECT_EQ(client.evictions(), 0u);
}

// LRU pressure: a 2-socket cache cycling over 3 peers evicts on every call
// after warm-up and never hits; bumping the capacity to 3 stops evictions.
TEST_F(EpollServerTest, CacheEvictionCounterUnderLruPressure) {
  std::vector<std::unique_ptr<EpollServer>> peers;
  std::vector<NodeAddress> addresses{server_->address()};
  for (int i = 0; i < 2; ++i) {
    auto peer = EpollServer::Create(EpollServerOptions{}, EchoHandler);
    ASSERT_TRUE(peer.ok());
    ASSERT_TRUE((*peer)->Start().ok());
    addresses.push_back((*peer)->address());
    peers.push_back(std::move(*peer));
  }

  TcpClient client(TcpClientOptions{.cache_capacity = 2});
  Request request;
  request.op = OpCode::kPing;
  constexpr int kRounds = 4;
  for (int i = 0; i < kRounds * 3; ++i) {
    request.seq = static_cast<std::uint64_t>(i + 1);
    ASSERT_TRUE(
        client.Call(addresses[static_cast<std::size_t>(i) % 3], request,
                    kTestTimeout)
            .ok());
  }
  // Round-robin over 3 peers with room for 2: every call past the first
  // two misses, and each miss closes the least-recently-used socket.
  EXPECT_EQ(client.cache_hits(), 0u);
  EXPECT_EQ(client.connects(), static_cast<std::uint64_t>(kRounds) * 3);
  EXPECT_EQ(client.evictions(), kRounds * 3 - 2u);

  TcpClient roomy(TcpClientOptions{.cache_capacity = 3});
  for (int i = 0; i < kRounds * 3; ++i) {
    request.seq = static_cast<std::uint64_t>(i + 1);
    ASSERT_TRUE(
        roomy.Call(addresses[static_cast<std::size_t>(i) % 3], request,
                   kTestTimeout)
            .ok());
  }
  EXPECT_EQ(roomy.connects(), 3u);
  EXPECT_EQ(roomy.cache_hits(), kRounds * 3 - 3u);
  EXPECT_EQ(roomy.evictions(), 0u);
  for (auto& peer : peers) peer->Stop();
}

TEST_F(EpollServerTest, LargePayloadRoundTrip) {
  TcpClient client;
  Request request;
  request.op = OpCode::kInsert;
  request.seq = 1;
  request.key = "big";
  request.value.assign(2 << 20, 'x');  // 2 MiB crosses many read() calls
  auto response = client.Call(server_->address(), request, kTestTimeout);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->value.size(), request.value.size() + 4);
}

TEST_F(EpollServerTest, UdpRequestResponse) {
  UdpClient client;
  Request request;
  request.op = OpCode::kLookup;
  request.seq = 21;
  request.key = "u";
  request.value = "dp";
  auto response = client.Call(server_->address(), request, kTestTimeout);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->seq, 21u);
  EXPECT_EQ(response->value, "u|dp");
}

TEST_F(EpollServerTest, UdpTimesOutAgainstDeadPort) {
  UdpClient client(UdpClientOptions{.max_attempts = 2,
                                    .initial_rto = 20 * kNanosPerMilli});
  Request request;
  request.op = OpCode::kPing;
  // Very likely unused port.
  auto response = client.Call(NodeAddress{"127.0.0.1", 1},
                              request, 200 * kNanosPerMilli);
  EXPECT_FALSE(response.ok());
  EXPECT_GE(client.retransmits(), 1u);
}

TEST_F(EpollServerTest, TcpConnectRefusedFails) {
  TcpClient client;
  Request request;
  request.op = OpCode::kPing;
  auto response =
      client.Call(NodeAddress{"127.0.0.1", 1}, request, kTestTimeout);
  EXPECT_FALSE(response.ok());
}

TEST_F(EpollServerTest, ServerSurvivesGarbageBytes) {
  // Hand-roll a socket sending junk; the server must close it and keep
  // serving real clients.
  TcpClient junk_sender(TcpClientOptions{.cache_connections = false});
  Request ping;
  ping.op = OpCode::kPing;
  ping.seq = 1;
  ASSERT_TRUE(junk_sender.Call(server_->address(), ping, kTestTimeout).ok());

  // Oversized length prefix = malformed stream.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->address().port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char junk[] = "\xff\xff\xff\xff garbage";
  ASSERT_GT(::write(fd, junk, sizeof(junk)), 0);
  ::close(fd);

  TcpClient client;
  ping.seq = 2;
  EXPECT_TRUE(client.Call(server_->address(), ping, kTestTimeout).ok());
}

TEST_F(EpollServerTest, StopIsIdempotentAndRestartable) {
  server_->Stop();
  server_->Stop();
  EXPECT_TRUE(server_->Start().ok());
  TcpClient client;
  Request ping;
  ping.op = OpCode::kPing;
  ping.seq = 3;
  EXPECT_TRUE(client.Call(server_->address(), ping, kTestTimeout).ok());
}

TEST(ThreadedServerTest, ServesRequests) {
  std::atomic<int> served{0};
  auto server = ThreadedServer::Create(
      "127.0.0.1", 0, [&served](Request&& request) {
        ++served;
        return EchoHandler(std::move(request));
      });
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  TcpClient client(TcpClientOptions{.cache_connections = false});
  Request request;
  request.op = OpCode::kInsert;
  for (int i = 0; i < 8; ++i) {
    request.seq = static_cast<std::uint64_t>(i + 1);
    request.key = "k" + std::to_string(i);
    auto response = client.Call((*server)->address(), request, kTestTimeout);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
  }
  EXPECT_EQ(served.load(), 8);
  (*server)->Stop();
}

TEST(EpollStressTest, ManyConcurrentCachedClients) {
  // One single-threaded epoll loop absorbing several concurrent cached
  // TCP clients; every request must be answered and counted.
  auto server = EpollServer::Create(EpollServerOptions{}, EchoHandler);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  constexpr int kThreads = 6;
  constexpr int kOpsEach = 400;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TcpClient client;
      Request request;
      request.op = OpCode::kInsert;
      for (int i = 0; i < kOpsEach; ++i) {
        request.seq = static_cast<std::uint64_t>(t) * kOpsEach + i + 1;
        request.key = "k" + std::to_string(i);
        request.value = std::string(132, 'v');
        auto response =
            client.Call((*server)->address(), request, 5 * kNanosPerSec);
        if (!response.ok() || response->seq != request.seq) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*server)->requests_served(),
            static_cast<std::uint64_t>(kThreads) * kOpsEach);
  EXPECT_EQ((*server)->connections_accepted(),
            static_cast<std::uint64_t>(kThreads));  // one cached conn each
}

TEST(TcpClientTest, CacheEvictionClosesOldest) {
  // Three servers, cache capacity 2: talking to the third evicts the first.
  std::vector<std::unique_ptr<EpollServer>> servers;
  for (int i = 0; i < 3; ++i) {
    auto server = EpollServer::Create(EpollServerOptions{}, EchoHandler);
    ASSERT_TRUE(server.ok());
    ASSERT_TRUE((*server)->Start().ok());
    servers.push_back(std::move(*server));
  }
  TcpClient client(TcpClientOptions{.cache_connections = true,
                                    .cache_capacity = 2});
  Request ping;
  ping.op = OpCode::kPing;
  ping.seq = 1;
  for (auto& server : servers) {
    ASSERT_TRUE(client.Call(server->address(), ping, kTestTimeout).ok());
  }
  EXPECT_EQ(client.connects(), 3u);
  // Server 0 was evicted → reconnect; servers 1,2 still cached.
  ASSERT_TRUE(client.Call(servers[0]->address(), ping, kTestTimeout).ok());
  EXPECT_EQ(client.connects(), 4u);
}

TEST(TcpClientTest, StaleCachedConnectionRecovers) {
  auto server = EpollServer::Create(EpollServerOptions{}, EchoHandler);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());
  NodeAddress address = (*server)->address();

  TcpClient client;
  Request ping;
  ping.op = OpCode::kPing;
  ping.seq = 1;
  ASSERT_TRUE(client.Call(address, ping, kTestTimeout).ok());

  // Destroy and restart the server on the same port: the cached socket
  // goes stale (Stop alone keeps the listen fd; destruction releases it).
  (*server).reset();
  EpollServerOptions options;
  options.port = address.port;
  auto reborn = EpollServer::Create(options, EchoHandler);
  ASSERT_TRUE(reborn.ok()) << reborn.status().ToString();
  ASSERT_TRUE((*reborn)->Start().ok());

  ping.seq = 2;
  auto response = client.Call(address, ping, kTestTimeout);
  EXPECT_TRUE(response.ok()) << response.status().ToString();
}

}  // namespace

// Reaches EpollServer internals (declared a friend) so tests can drive
// ProcessBuffered deterministically — single-threaded, no Start() — and
// force the reactor's connection map to rehash mid-drain.
struct EpollServerTestPeer {
  static void InjectConnection(EpollServer& server, int fd) {
    server.reactors_[0]->connections.emplace(fd, EpollServer::Connection{});
  }
  static void FeedBytes(EpollServer& server, int fd, std::string_view bytes) {
    server.reactors_[0]->connections[fd].in.append(bytes.data(), bytes.size());
  }
  static void Process(EpollServer& server, int fd) {
    server.ProcessBuffered(*server.reactors_[0], fd);
  }
  static std::size_t ConnectionCount(const EpollServer& server) {
    return server.reactors_[0]->connections.size();
  }
};

namespace {

// Regression: the handler may grow this reactor's connection map (here via
// the test peer; in production a reentrant accept), rehashing it and
// invalidating any Connection reference held across the call. The drain
// loop must re-find the connection after every handler invocation, or this
// reads freed memory (caught by ASan before the fix).
TEST(EpollServerProcessTest, SurvivesConnectionMapRehashMidDrain) {
  EpollServerOptions options;
  options.enable_tcp = false;
  options.enable_udp = false;

  EpollServer* raw_server = nullptr;
  int fake_fd = 1 << 20;  // far above any real descriptor
  auto handler = [&raw_server, &fake_fd](Request&& request) {
    // 16 inserts per request: the map outgrows its bucket array many
    // times while the drain below is mid-loop.
    for (int i = 0; i < 16; ++i) {
      EpollServerTestPeer::InjectConnection(*raw_server, fake_fd++);
    }
    Response resp;
    resp.seq = request.seq;
    resp.value = request.key;
    return resp;
  };
  auto server = EpollServer::Create(options, handler);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  raw_server = server->get();

  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  EpollServerTestPeer::InjectConnection(**server, pair[0]);

  constexpr int kRequests = 64;
  std::string inbound;
  for (int i = 0; i < kRequests; ++i) {
    Request request;
    request.op = OpCode::kInsert;
    request.seq = static_cast<std::uint64_t>(i + 1);
    request.key = "k" + std::to_string(i);
    inbound += FrameMessage(request.Encode());
  }
  EpollServerTestPeer::FeedBytes(**server, pair[0], inbound);
  EpollServerTestPeer::Process(**server, pair[0]);

  // Every request was handled (1 real + 64*16 injected connections prove
  // the rehashes happened) and every framed response is intact.
  EXPECT_EQ(EpollServerTestPeer::ConnectionCount(**server),
            1u + kRequests * 16);
  std::string outbound;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::recv(pair[1], buf, sizeof(buf), MSG_DONTWAIT);
    if (n <= 0) break;
    outbound.append(buf, static_cast<std::size_t>(n));
  }
  std::size_t offset = 0;
  bool malformed = false;
  for (int i = 0; i < kRequests; ++i) {
    auto payload = ExtractFrameAt(outbound, &offset, &malformed);
    ASSERT_TRUE(payload.has_value()) << "response " << i << " missing";
    ASSERT_FALSE(malformed);
    auto response = Response::Decode(*payload);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->seq, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(response->value, "k" + std::to_string(i));
  }
  EXPECT_FALSE(ExtractFrameAt(outbound, &offset, &malformed).has_value());
  ::close(pair[1]);
}

// A 10k-frame burst drains in one pass over the buffer: the cursor never
// mutates the underlying string (no per-frame front erase), and a single
// compact at the end consumes everything.
TEST(FramingTest, CursorDrainsTenThousandFramesInOnePass) {
  constexpr int kFrames = 10000;
  std::string buffer;
  for (int i = 0; i < kFrames; ++i) {
    buffer += FrameMessage("payload-" + std::to_string(i));
  }
  const std::string snapshot = buffer;

  std::size_t offset = 0;
  bool malformed = false;
  for (int i = 0; i < kFrames; ++i) {
    auto payload = ExtractFrameAt(buffer, &offset, &malformed);
    ASSERT_TRUE(payload.has_value()) << "frame " << i;
    ASSERT_FALSE(malformed);
    ASSERT_EQ(*payload, "payload-" + std::to_string(i));
  }
  EXPECT_FALSE(ExtractFrameAt(buffer, &offset, &malformed).has_value());
  EXPECT_EQ(offset, buffer.size());
  EXPECT_EQ(buffer, snapshot) << "drain must not mutate the buffer";
  buffer.erase(0, offset);  // the caller's single compact
  EXPECT_TRUE(buffer.empty());
}

// Multi-reactor smoke: four event loops behind one listener; cached
// clients land round-robin across all reactors and every request is
// answered on whichever reactor owns its connection.
TEST(EpollServerProcessTest, MultiReactorServesAndDistributes) {
  EpollServerOptions options;
  options.num_reactors = 4;
  auto server = EpollServer::Create(options, EchoHandler);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_TRUE((*server)->Start().ok());
  EXPECT_EQ((*server)->num_reactors(), 4);

  constexpr int kClients = 8;
  constexpr int kOpsEach = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      TcpClient client;  // one cached connection per client
      Request request;
      request.op = OpCode::kInsert;
      for (int i = 0; i < kOpsEach; ++i) {
        request.seq = static_cast<std::uint64_t>(t) * kOpsEach + i + 1;
        request.key = "k" + std::to_string(t) + "_" + std::to_string(i);
        request.value = "v";
        auto response =
            client.Call((*server)->address(), request, 5 * kNanosPerSec);
        if (!response.ok() || response->seq != request.seq) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*server)->requests_served(),
            static_cast<std::uint64_t>(kClients) * kOpsEach);
  std::uint64_t assigned = 0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_GE((*server)->connections_assigned(i), 1u)
        << "reactor " << i << " never received a connection";
    assigned += (*server)->connections_assigned(i);
  }
  EXPECT_EQ(assigned, (*server)->connections_accepted());
  (*server)->Stop();
}

}  // namespace
}  // namespace zht
