#include <gtest/gtest.h>

#include "sim/bootstrap_model.h"
#include "sim/event_queue.h"
#include "sim/kvs_sim.h"
#include "sim/torus.h"

namespace zht::sim {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.At(30, [&] { order.push_back(3); });
  simulator.At(10, [&] { order.push_back(1); });
  simulator.At(20, [&] { order.push_back(2); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), 30);
  EXPECT_EQ(simulator.events_processed(), 3u);
}

TEST(SimulatorTest, SimultaneousEventsFifo) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.At(5, [&order, i] { order.push_back(i); });
  }
  simulator.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, HandlersScheduleMoreEvents) {
  Simulator simulator;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) simulator.After(1, chain);
  };
  simulator.After(1, chain);
  simulator.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(simulator.now(), 100);
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator simulator;
  Nanos seen = -1;
  simulator.At(50, [&] {
    simulator.At(10, [&] { seen = simulator.now(); });  // in the past
  });
  simulator.Run();
  EXPECT_EQ(seen, 50);
}

TEST(SimulatorTest, RunawayGuardStops) {
  Simulator simulator;
  std::function<void()> forever = [&] { simulator.After(1, forever); };
  simulator.After(1, forever);
  simulator.Run(/*max_events=*/1000);
  EXPECT_LE(simulator.events_processed(), 1001u);
}

TEST(TorusTest, DimensionsCoverNodes) {
  for (std::uint64_t n : {1ull, 2ull, 64ull, 1000ull, 8192ull, 1048576ull}) {
    TorusNetwork net(n);
    EXPECT_GE(static_cast<std::uint64_t>(net.dim_x()) * net.dim_y() *
                  net.dim_z(),
              n)
        << "n=" << n;
  }
}

TEST(TorusTest, EightKNodesIsBgpLike) {
  // 8K BG/P nodes were physically 16x16x32; our near-cubic fit should land
  // in that ballpark with mean hops ~16.
  TorusNetwork net(8192);
  EXPECT_NEAR(net.MeanHops(), 16.0, 4.0);
}

TEST(TorusTest, HopsSymmetricAndWrap) {
  TorusNetwork net(64);  // 4x4x4
  for (std::uint64_t a = 0; a < 64; a += 7) {
    for (std::uint64_t b = 0; b < 64; b += 5) {
      EXPECT_EQ(net.Hops(a, b), net.Hops(b, a));
    }
  }
  // Wraparound: distance 3 along one axis of size 4 is 1 hop.
  EXPECT_EQ(net.Hops(0, 3), 1u);
}

TEST(TorusTest, SelfLatencyIsSoftwareOnly) {
  TorusNetwork net(64);
  EXPECT_LT(net.Latency(5, 5, 100), net.Latency(5, 6, 100));
  EXPECT_EQ(net.Hops(7, 7), 0u);
}

TEST(TorusTest, LatencyGrowsWithScaleAndSize) {
  TorusParams params;
  TorusNetwork small(64, params), big(1u << 20, params);
  // Random far pair in the big torus vs corner pair in the small one.
  EXPECT_GT(big.Latency(0, (1u << 20) / 2, 147),
            small.Latency(0, 32, 147));
  TorusNetwork net(1024);
  EXPECT_GT(net.Latency(0, 512, 1 << 20), net.Latency(0, 512, 16));
}

TEST(TorusTest, RackCrossingsWrap) {
  TorusNetwork net(8192);  // 8 racks
  EXPECT_EQ(net.RackCrossings(0, 100), 0u);        // same rack
  EXPECT_EQ(net.RackCrossings(0, 1024), 1u);       // neighbors
  EXPECT_EQ(net.RackCrossings(0, 7 * 1024), 1u);   // wraps around
  EXPECT_EQ(net.RackCrossings(0, 4 * 1024), 4u);   // farthest
}

// ---- KVS simulation: the paper's headline shapes ------------------------

TEST(KvsSimTest, CompletesAllOps) {
  KvsSimParams params;
  params.num_nodes = 16;
  params.ops_per_client = 8;
  auto result = RunKvsSim(params);
  EXPECT_EQ(result.total_ops, 16u * 8u);
  EXPECT_GT(result.mean_latency_ms, 0);
  EXPECT_GT(result.throughput_ops, 0);
}

TEST(KvsSimTest, DeterministicForSeed) {
  KvsSimParams params;
  params.num_nodes = 64;
  params.seed = 99;
  auto a = RunKvsSim(params);
  auto b = RunKvsSim(params);
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.messages, b.messages);
}

TEST(KvsSimTest, TwoNodeLatencyMatchesPaperAnchor) {
  KvsSimParams params;
  params.num_nodes = 2;
  params.ops_per_client = 64;
  auto result = RunKvsSim(params);
  EXPECT_NEAR(result.mean_latency_ms, 0.6, 0.15);  // paper: ~0.6 ms
}

TEST(KvsSimTest, EightKLatencyMatchesPaperAnchor) {
  KvsSimParams params;
  params.num_nodes = 8192;
  params.ops_per_client = 8;
  auto result = RunKvsSim(params);
  EXPECT_NEAR(result.mean_latency_ms, 1.1, 0.25);  // paper: 1.1 ms
  EXPECT_GT(result.throughput_ops, 5e6);           // paper: 7.4M ops/s
}

TEST(KvsSimTest, UncachedTcpRoughlyDoubles) {
  KvsSimParams cached, uncached;
  cached.num_nodes = uncached.num_nodes = 256;
  cached.ops_per_client = uncached.ops_per_client = 8;
  uncached.protocol = SimProtocol::kZhtTcpNoCache;
  auto a = RunKvsSim(cached);
  auto b = RunKvsSim(uncached);
  EXPECT_GT(b.mean_latency_ms, 1.7 * a.mean_latency_ms);
  EXPECT_LT(b.mean_latency_ms, 2.6 * a.mean_latency_ms);
}

TEST(KvsSimTest, UdpMatchesCachedTcp) {
  // §III.F: connection caching makes TCP work almost as fast as UDP.
  KvsSimParams tcp, udp;
  tcp.num_nodes = udp.num_nodes = 256;
  udp.protocol = SimProtocol::kZhtUdp;
  auto a = RunKvsSim(tcp);
  auto b = RunKvsSim(udp);
  EXPECT_NEAR(a.mean_latency_ms, b.mean_latency_ms,
              0.05 * a.mean_latency_ms);
}

TEST(KvsSimTest, MemcachedSlowerThanZht) {
  KvsSimParams zht, mc;
  zht.num_nodes = mc.num_nodes = 1024;
  zht.ops_per_client = mc.ops_per_client = 8;
  mc.protocol = SimProtocol::kMemcached;
  auto a = RunKvsSim(zht);
  auto b = RunKvsSim(mc);
  EXPECT_GT(b.mean_latency_ms, 1.2 * a.mean_latency_ms);
}

TEST(KvsSimTest, CassandraPaysLogNRouting) {
  KvsSimParams zht, cass;
  zht.num_nodes = cass.num_nodes = 64;
  cass.protocol = SimProtocol::kCassandra;
  auto a = RunKvsSim(zht);
  auto b = RunKvsSim(cass);
  EXPECT_GT(b.mean_latency_ms, 2.0 * a.mean_latency_ms);
  EXPECT_GT(b.messages, a.messages);  // routing hops are real messages
}

TEST(KvsSimTest, ReplicationOverheadIsModest) {
  // Figure 12: +1 replica ≈ +20%, +2 replicas ≈ +30% (async).
  KvsSimParams base, one, two;
  base.num_nodes = one.num_nodes = two.num_nodes = 1024;
  base.ops_per_client = one.ops_per_client = two.ops_per_client = 8;
  one.replicas = 1;
  two.replicas = 2;
  auto r0 = RunKvsSim(base);
  auto r1 = RunKvsSim(one);
  auto r2 = RunKvsSim(two);
  double overhead1 = r1.mean_latency_ms / r0.mean_latency_ms - 1.0;
  double overhead2 = r2.mean_latency_ms / r0.mean_latency_ms - 1.0;
  EXPECT_GT(overhead1, 0.05);
  EXPECT_LT(overhead1, 0.40);
  EXPECT_GT(overhead2, overhead1);
  EXPECT_LT(overhead2, 0.60);
}

TEST(KvsSimTest, SyncReplicationCostsFullRoundTrip) {
  // §IV.F: synchronous replication would have cost ~100% per replica.
  KvsSimParams base, sync;
  base.num_nodes = sync.num_nodes = 256;
  sync.replicas = 1;
  sync.sync_secondary = true;
  auto r0 = RunKvsSim(base);
  auto r1 = RunKvsSim(sync);
  EXPECT_GT(r1.mean_latency_ms, 1.6 * r0.mean_latency_ms);
}

TEST(KvsSimTest, MoreInstancesPerNodeRaiseLatencyAndThroughput) {
  // Figures 13/14: 4 instances/node at 8K nodes → ~2ms latency but ~2.2×
  // aggregate throughput.
  KvsSimParams one, four;
  one.num_nodes = four.num_nodes = 1024;
  one.ops_per_client = four.ops_per_client = 4;
  four.instances_per_node = 4;
  auto a = RunKvsSim(one);
  auto b = RunKvsSim(four);
  EXPECT_GT(b.mean_latency_ms, a.mean_latency_ms);
  EXPECT_GT(b.throughput_ops, 1.5 * a.throughput_ops);
}

TEST(KvsSimTest, EfficiencyFallsTowardEightPercentAtScale) {
  // Figure 11's simulation series.
  KvsSimParams two;
  two.num_nodes = 2;
  two.ops_per_client = 64;
  double t2 = RunKvsSim(two).mean_latency_ms;

  KvsSimParams big;
  big.num_nodes = 1u << 20;
  big.ops_per_client = 2;
  double t1m = RunKvsSim(big).mean_latency_ms;
  double efficiency = t2 / t1m;
  EXPECT_GT(efficiency, 0.04);
  EXPECT_LT(efficiency, 0.15);  // paper: 8%
}

TEST(BootstrapModelTest, MatchesPaperAnchors) {
  // §III.H: ~8 s ZHT bootstrap at 1K nodes, ~10 s at 8K.
  auto b1k = ModelBootstrap(1024);
  auto b8k = ModelBootstrap(8192);
  EXPECT_NEAR(b1k.zht_server_start_s + b1k.neighbor_list_s, 8.0, 2.0);
  EXPECT_NEAR(b8k.zht_server_start_s + b8k.neighbor_list_s, 10.0, 2.5);
  // Total grows with scale; BG/P boot dominates (Figure 5's stacking).
  EXPECT_GT(b8k.total_s, b1k.total_s);
  EXPECT_GT(b8k.bgp_partition_boot_s, b8k.zht_server_start_s);
}

}  // namespace
}  // namespace zht::sim
