// Tests of the batched request path: the BATCH envelope, transport
// CallBatch implementations (loopback delivery, TCP chunked pipelining,
// UDP MTU fragmenting), server-side unit application (migration locks and
// redirects per sub-op, append dedup across retransmitted carriers), and
// the client Multi* API end-to-end.
#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "common/rng.h"
#include "core/local_cluster.h"
#include "core/zht_server.h"
#include "net/fault_injection.h"
#include "net/loopback.h"
#include "net/tcp_client.h"
#include "net/udp_client.h"
#include "serialize/batch.h"

namespace zht {
namespace {

Request DataOp(OpCode op, const std::string& key, const std::string& value,
               std::uint64_t seq) {
  Request request;
  request.op = op;
  request.seq = seq;
  request.key = key;
  request.value = value;
  request.client_id = 7;
  return request;
}

TEST(BatchEnvelopeTest, EmptyBatchRoundTrips) {
  BatchRequest empty;
  auto decoded = BatchRequest::Decode(empty.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->ops.empty());

  LoopbackNetwork network;
  LoopbackTransport transport(&network);
  auto responses = transport.CallBatch(NodeAddress{"loop", 1}, {}, kNanosPerSec);
  ASSERT_TRUE(responses.ok());
  EXPECT_TRUE(responses->empty());
}

TEST(BatchEnvelopeTest, ChunkBatchStaysUnderBudget) {
  std::vector<Request> ops;
  for (int i = 0; i < 100; ++i) {
    ops.push_back(DataOp(OpCode::kInsert, "key-" + std::to_string(i),
                         std::string(50, 'v'), static_cast<std::uint64_t>(i)));
  }
  auto chunks = ChunkBatch(ops, 256);
  EXPECT_GT(chunks.size(), 1u);
  std::size_t total = 0;
  for (const auto& chunk : chunks) {
    ASSERT_FALSE(chunk.empty());
    total += chunk.size();
  }
  EXPECT_EQ(total, ops.size());

  // A budget smaller than any single op still makes progress: one per chunk.
  auto tiny = ChunkBatch(ops, 1);
  EXPECT_EQ(tiny.size(), ops.size());
}

TEST(BatchClientTest, MultiOpsRoundTripAndAmortizeMessages) {
  LocalClusterOptions options;
  options.num_instances = 4;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();

  std::vector<KeyValue> pairs;
  std::vector<std::string> keys;
  Rng rng(17);
  for (int i = 0; i < 64; ++i) {
    std::string key = rng.AsciiString(15);
    pairs.push_back(KeyValue{key, "value-" + std::to_string(i)});
    keys.push_back(key);
  }

  auto inserted = client->MultiInsert(pairs);
  ASSERT_EQ(inserted.size(), pairs.size());
  for (const Status& status : inserted) EXPECT_TRUE(status.ok());

  // 64 lookups sharded over 4 instances must travel as a handful of BATCH
  // messages, not 64 round-trips.
  std::uint64_t before = (*cluster)->network().delivered();
  auto values = client->MultiLookup(keys);
  std::uint64_t delta = (*cluster)->network().delivered() - before;
  EXPECT_LE(delta, 8u);

  ASSERT_EQ(values.size(), keys.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(values[i].ok()) << values[i].status().ToString();
    EXPECT_EQ(*values[i], pairs[i].value);
  }

  auto removed = client->MultiRemove(keys);
  for (const Status& status : removed) EXPECT_TRUE(status.ok());
  auto gone = client->MultiLookup(keys);
  for (const auto& value : gone) {
    EXPECT_EQ(value.status().code(), StatusCode::kNotFound);
  }

  // Empty inputs: no network traffic, empty outputs.
  EXPECT_TRUE(client->MultiInsert({}).empty());
  EXPECT_TRUE(client->MultiLookup({}).empty());
  EXPECT_TRUE(client->MultiRemove({}).empty());
}

TEST(BatchClientTest, BatchSpanningMovedPartitionsFollowsRedirects) {
  LocalClusterOptions options;
  options.num_instances = 3;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();

  std::vector<KeyValue> pairs;
  std::vector<std::string> keys;
  Rng rng(23);
  for (int i = 0; i < 48; ++i) {
    std::string key = rng.AsciiString(12);
    pairs.push_back(KeyValue{key, std::to_string(i)});
    keys.push_back(key);
  }
  for (const Status& status : client->MultiInsert(pairs)) {
    ASSERT_TRUE(status.ok());
  }

  // A join moves partitions; the client's table is now stale, so some
  // sub-ops land on the old owner and REDIRECT inside the batch.
  ASSERT_TRUE((*cluster)->JoinNewInstance().ok());
  auto values = client->MultiLookup(keys);
  ASSERT_EQ(values.size(), keys.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(values[i].ok()) << values[i].status().ToString();
    EXPECT_EQ(*values[i], pairs[i].value);
  }
  EXPECT_GT(client->stats().redirects_followed, 0u);
  // The redirect was consumed inside the call: the client's table caught up.
  EXPECT_EQ(client->table().epoch(), (*cluster)->TableSnapshot().epoch());
}

TEST(BatchServerTest, MigratingPartitionRejectsOnlyItsSubOps) {
  // One server, one remote peer whose MigrateBegin handler blocks: the
  // partition stays locked while we drive a BATCH at the source.
  LoopbackNetwork network;
  std::promise<void> locked;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  bool signalled = false;
  NodeAddress peer = network.Register(
      [&](Request&& request) -> Response {
        Response resp;
        resp.seq = request.seq;
        if (request.op == OpCode::kMigrateBegin && !signalled) {
          signalled = true;
          locked.set_value();
          release_future.wait();
        }
        return resp;
      });

  std::vector<NodeAddress> addresses = {NodeAddress{"10.0.0.1", 50000}, peer};
  MembershipTable table = MembershipTable::CreateUniform(8, addresses);
  LoopbackTransport transport(&network);
  ZhtServerOptions options;
  options.self = 0;
  ZhtServer server(table, options, &transport);

  // Two keys owned by instance 0 in different partitions.
  std::string migrating_key, steady_key;
  PartitionId migrating_partition = 0;
  for (int i = 0; i < 10000 && (migrating_key.empty() || steady_key.empty());
       ++i) {
    std::string key = "key-" + std::to_string(i);
    PartitionId partition = table.PartitionOfKey(key);
    if (table.OwnerOf(partition) != 0) continue;
    if (migrating_key.empty()) {
      migrating_key = key;
      migrating_partition = partition;
    } else if (partition != migrating_partition) {
      steady_key = key;
    }
  }
  ASSERT_FALSE(migrating_key.empty());
  ASSERT_FALSE(steady_key.empty());

  std::thread migrator(
      [&] { server.MigratePartitionTo(migrating_partition, peer); });
  locked.get_future().wait();

  std::vector<Request> ops = {DataOp(OpCode::kInsert, migrating_key, "a", 1),
                              DataOp(OpCode::kInsert, steady_key, "b", 2)};
  Response carrier = server.Handle(PackBatchRequest(ops, 1));
  auto subs = UnpackBatchResponse(carrier, ops.size());
  ASSERT_TRUE(subs.ok());
  EXPECT_EQ((*subs)[0].status, Status(StatusCode::kMigrating).raw());
  EXPECT_EQ((*subs)[1].status, Status::Ok().raw());

  release.set_value();
  migrator.join();
}

TEST(BatchServerTest, RetransmittedBatchAppendsApplyOnce) {
  LoopbackNetwork network;
  std::vector<NodeAddress> addresses = {NodeAddress{"10.0.0.1", 50000}};
  MembershipTable table = MembershipTable::CreateUniform(8, addresses);
  LoopbackTransport transport(&network);
  ZhtServerOptions options;
  options.self = 0;
  ZhtServer server(table, options, &transport);

  std::vector<Request> ops = {DataOp(OpCode::kAppend, "log", "first;", 11),
                              DataOp(OpCode::kAppend, "log", "second;", 12)};
  Request carrier = PackBatchRequest(ops, 1);
  Request retransmit = carrier;  // same carrier bytes, as a UDP retry sends

  auto first = UnpackBatchResponse(server.Handle(std::move(carrier)), 2);
  ASSERT_TRUE(first.ok());
  auto second = UnpackBatchResponse(server.Handle(std::move(retransmit)), 2);
  ASSERT_TRUE(second.ok());
  for (const Response& sub : *second) EXPECT_TRUE(sub.ok());

  Request lookup = DataOp(OpCode::kLookup, "log", "", 13);
  Response value = server.Handle(std::move(lookup));
  EXPECT_EQ(value.value, "first;second;");
  EXPECT_EQ(server.stats().duplicate_appends_dropped, 2u);
}

TEST(BatchServerTest, NonDataSubOpsRejectedIndividually) {
  LoopbackNetwork network;
  std::vector<NodeAddress> addresses = {NodeAddress{"10.0.0.1", 50000}};
  MembershipTable table = MembershipTable::CreateUniform(8, addresses);
  LoopbackTransport transport(&network);
  ZhtServerOptions options;
  options.self = 0;
  ZhtServer server(table, options, &transport);

  std::vector<Request> inner = {DataOp(OpCode::kInsert, "k", "v", 21)};
  std::vector<Request> ops = {DataOp(OpCode::kInsert, "ok-key", "v", 22),
                              PackBatchRequest(inner, 23)};  // nested batch
  auto subs = UnpackBatchResponse(server.Handle(PackBatchRequest(ops, 2)), 2);
  ASSERT_TRUE(subs.ok());
  EXPECT_TRUE((*subs)[0].ok());
  EXPECT_EQ((*subs)[1].status, Status(StatusCode::kInvalidArgument).raw());
}

TEST(BatchTransportTest, TcpPipelinesChunksUnderTinyFrameBudget) {
  LocalClusterOptions options;
  options.num_instances = 2;
  options.transport = ClusterTransport::kTcp;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());

  // A 64-byte budget forces a many-frame pipeline for 32 ops.
  TcpClientOptions tcp;
  tcp.max_batch_bytes = 64;
  TcpClient transport(tcp);
  ZhtClientOptions client_options;
  ZhtClient client((*cluster)->TableSnapshot(), client_options, &transport);

  std::vector<KeyValue> pairs;
  std::vector<std::string> keys;
  for (int i = 0; i < 32; ++i) {
    pairs.push_back(KeyValue{"tcp-key-" + std::to_string(i),
                             "tcp-value-" + std::to_string(i)});
    keys.push_back(pairs.back().key);
  }
  for (const Status& status : client.MultiInsert(pairs)) {
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  auto values = client.MultiLookup(keys);
  ASSERT_EQ(values.size(), keys.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(values[i].ok()) << values[i].status().ToString();
    EXPECT_EQ(*values[i], pairs[i].value);
  }
}

TEST(BatchTransportTest, UdpFragmentsBatchesUnderMtu) {
  LocalClusterOptions options;
  options.num_instances = 2;
  options.transport = ClusterTransport::kUdp;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());

  UdpClientOptions udp;
  udp.max_datagram_bytes = 200;  // forces fragmenting for 32 ops
  UdpClient transport(udp);
  ZhtClientOptions client_options;
  ZhtClient client((*cluster)->TableSnapshot(), client_options, &transport);

  std::vector<KeyValue> pairs;
  std::vector<std::string> keys;
  for (int i = 0; i < 32; ++i) {
    pairs.push_back(KeyValue{"udp-key-" + std::to_string(i),
                             "udp-value-" + std::to_string(i)});
    keys.push_back(pairs.back().key);
  }
  for (const Status& status : client.MultiInsert(pairs)) {
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  auto values = client.MultiLookup(keys);
  ASSERT_EQ(values.size(), keys.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(values[i].ok()) << values[i].status().ToString();
    EXPECT_EQ(*values[i], pairs[i].value);
  }
}

TEST(BatchReplicationTest, BatchedInsertsReachAllReplicas) {
  LocalClusterOptions options;
  options.num_instances = 4;
  options.cluster.num_replicas = 2;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();

  std::vector<KeyValue> pairs;
  Rng rng(31);
  for (int i = 0; i < 40; ++i) {
    pairs.push_back(KeyValue{rng.AsciiString(14), rng.AsciiString(40)});
  }
  for (const Status& status : client->MultiInsert(pairs)) {
    ASSERT_TRUE(status.ok());
  }
  (*cluster)->FlushAllAsyncReplication();

  // Every pair must exist on primary + 2 replicas.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < (*cluster)->instance_count(); ++i) {
    total += (*cluster)->server(i)->TotalEntries();
  }
  EXPECT_EQ(total, pairs.size() * 3);
}

// ---- Batches under injected faults -------------------------------------

// A single-instance server exposed on a loopback network, reached through
// a FaultInjectingTransport — the minimal rig for carrier-level faults.
class BatchFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    address_ = NodeAddress{"10.0.0.1", 50000};
    table_ = MembershipTable::CreateUniform(8, {address_});
    peer_transport_ = std::make_unique<LoopbackTransport>(&network_);
    ZhtServerOptions options;
    options.self = 0;
    server_ = std::make_unique<ZhtServer>(table_, options,
                                          peer_transport_.get());
    network_.Register(address_, server_->AsyncHandler());
    plan_ = std::make_shared<FaultPlan>(/*seed=*/9);
    faulty_ = std::make_unique<FaultInjectingTransport>(
        std::make_unique<LoopbackTransport>(&network_), plan_);
  }

  std::string Ledger() {
    Request lookup = DataOp(OpCode::kLookup, "log", "", 99);
    auto response = faulty_->Call(address_, lookup, kNanosPerSec);
    return response.ok() ? response->value : "<" + response.status().ToString() + ">";
  }

  LoopbackNetwork network_;
  NodeAddress address_;
  MembershipTable table_{8, HashKind::kFnv1a};
  std::unique_ptr<LoopbackTransport> peer_transport_;
  std::unique_ptr<ZhtServer> server_;
  std::shared_ptr<FaultPlan> plan_;
  std::unique_ptr<FaultInjectingTransport> faulty_;
};

TEST_F(BatchFaultTest, DuplicatedBatchCarrierAppliesAppendsOnce) {
  // A duplicated UDP carrier delivers every sub-op twice; the dedup window
  // must absorb the second application of each append.
  plan_->AddRule({.kind = FaultKind::kDuplicate, .op = OpCode::kBatch});
  std::vector<Request> ops = {DataOp(OpCode::kAppend, "log", "first;", 11),
                              DataOp(OpCode::kAppend, "log", "second;", 12)};
  auto responses = faulty_->CallBatch(address_, ops, kNanosPerSec);
  ASSERT_TRUE(responses.ok()) << responses.status().ToString();
  for (const Response& sub : *responses) EXPECT_TRUE(sub.ok());
  plan_->Clear();
  EXPECT_EQ(Ledger(), "first;second;");
  EXPECT_EQ(server_->stats().duplicate_appends_dropped, 2u);
}

TEST_F(BatchFaultTest, BatchRetryAfterDroppedResponseDoesNotDoubleApply) {
  // The whole batch applied but its ack was lost; the client-level retry
  // resends the identical carrier and every sub-op must dedup.
  plan_->AddRule({.kind = FaultKind::kDropResponse,
                  .op = OpCode::kBatch,
                  .max_faults = 1});
  std::vector<Request> ops = {DataOp(OpCode::kAppend, "log", "first;", 21),
                              DataOp(OpCode::kAppend, "log", "second;", 22)};
  auto lost = faulty_->CallBatch(address_, ops, kNanosPerSec);
  EXPECT_EQ(lost.status().code(), StatusCode::kTimeout);
  auto retry = faulty_->CallBatch(address_, ops, kNanosPerSec);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  for (const Response& sub : *retry) EXPECT_TRUE(sub.ok());
  EXPECT_EQ(Ledger(), "first;second;");
  EXPECT_EQ(server_->stats().duplicate_appends_dropped, 2u);
}

TEST(BatchClientFaultTest, PartialBatchDropRetriesOnlyTheLostShard) {
  // A multi-shard MultiInsert where exactly one shard's carrier is lost:
  // the other shards land on their first attempt and the lost one succeeds
  // on the client's internal retry.
  LocalClusterOptions options;
  options.num_instances = 4;
  options.fault_plan = std::make_shared<FaultPlan>(/*seed=*/4);
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  ZhtClientOptions client_options;
  client_options.failure_detector.failures_to_mark_dead = 20;
  client_options.failure_detector.initial_backoff = 0;
  client_options.sleep_on_backoff = false;
  auto client = (*cluster)->CreateClient(client_options);

  options.fault_plan->AddRule({.kind = FaultKind::kDropRequest,
                               .to = (*cluster)->instance_address(2),
                               .op = OpCode::kBatch,
                               .max_faults = 1});
  std::vector<KeyValue> pairs;
  std::vector<std::string> keys;
  Rng rng(23);
  for (int i = 0; i < 64; ++i) {
    std::string key = rng.AsciiString(14);
    pairs.push_back(KeyValue{key, "value-" + std::to_string(i)});
    keys.push_back(key);
  }
  for (const Status& status : client->MultiInsert(pairs)) {
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_EQ(options.fault_plan->stats().dropped_requests, 1u);
  EXPECT_GT(client->stats().retries, 0u);

  auto values = client->MultiLookup(keys);
  for (std::size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(values[i].ok());
    EXPECT_EQ(*values[i], pairs[i].value);
  }
}

}  // namespace
}  // namespace zht
