// Property tests of membership synchronization: two tables kept in sync
// through random mutation + delta exchange must converge for any mutation
// sequence; snapshots taken at any point must equal the source; replica
// chains stay valid through churn.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "membership/membership_table.h"

namespace zht {
namespace {

std::vector<NodeAddress> Addresses(int n) {
  std::vector<NodeAddress> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(NodeAddress{"10.1.0." + std::to_string(i + 1),
                              static_cast<std::uint16_t>(40000 + i)});
  }
  return out;
}

class MembershipFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(MembershipFuzzTest, DeltaSyncConvergesUnderRandomChurn) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  auto source = MembershipTable::CreateUniform(96, Addresses(6));
  MembershipTable follower = source;

  for (int round = 0; round < 40; ++round) {
    // Random burst of mutations on the source.
    int burst = 1 + static_cast<int>(rng.Below(8));
    for (int m = 0; m < burst; ++m) {
      double dice = rng.NextDouble();
      if (dice < 0.55) {
        source.SetOwner(
            static_cast<PartitionId>(rng.Below(source.num_partitions())),
            static_cast<InstanceId>(rng.Below(source.instance_count())));
      } else if (dice < 0.75 && source.instance_count() < 20) {
        source.AddInstance(
            NodeAddress{"10.2.0." + std::to_string(source.instance_count()),
                        41000},
            static_cast<std::uint32_t>(source.instance_count()));
      } else if (dice < 0.9) {
        source.MarkDead(
            static_cast<InstanceId>(rng.Below(source.instance_count())));
      } else {
        source.MarkAlive(
            static_cast<InstanceId>(rng.Below(source.instance_count())));
      }
    }
    // Sometimes sync via delta, sometimes skip a round (the follower
    // falls behind and must catch up across multiple bursts).
    if (rng.Chance(0.7)) {
      ASSERT_TRUE(
          follower.ApplyUpdate(source.EncodeDelta(follower.epoch())).ok());
      ASSERT_EQ(follower, source) << "round " << round;
    }
  }
  ASSERT_TRUE(
      follower.ApplyUpdate(source.EncodeDelta(follower.epoch())).ok());
  EXPECT_EQ(follower, source);

  // Full snapshot equals the delta-built state.
  auto snapshot = MembershipTable::DecodeFull(source.EncodeFull());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(*snapshot, source);
}

TEST_P(MembershipFuzzTest, ReplicaChainsStayValidUnderChurn) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  auto table = MembershipTable::CreateUniform(64, Addresses(8), 2);
  for (int round = 0; round < 60; ++round) {
    if (rng.Chance(0.3)) {
      table.MarkDead(static_cast<InstanceId>(rng.Below(8)));
    }
    if (rng.Chance(0.3)) {
      table.MarkAlive(static_cast<InstanceId>(rng.Below(8)));
    }
    if (rng.Chance(0.4)) {
      table.SetOwner(static_cast<PartitionId>(rng.Below(64)),
                     static_cast<InstanceId>(rng.Below(8)));
    }
    for (PartitionId p = 0; p < 64; p += 7) {
      auto chain = table.ReplicaChain(p, 2);
      ASSERT_FALSE(chain.empty());
      EXPECT_EQ(chain[0], table.OwnerOf(p));
      // No duplicate instances; successors alive and on distinct nodes.
      std::set<InstanceId> unique(chain.begin(), chain.end());
      EXPECT_EQ(unique.size(), chain.size());
      std::set<std::uint32_t> nodes;
      for (std::size_t i = 0; i < chain.size(); ++i) {
        if (i > 0) {
          EXPECT_TRUE(table.Instance(chain[i]).alive);
        }
        nodes.insert(table.Instance(chain[i]).physical_node);
      }
      EXPECT_EQ(nodes.size(), chain.size());
    }
  }
}

TEST_P(MembershipFuzzTest, ChangelogTrimmingFallsBackToSnapshot) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto source = MembershipTable::CreateUniform(32, Addresses(4));
  MembershipTable stale = source;
  // Push far more changes than the changelog retains.
  for (int i = 0; i < 6000; ++i) {
    source.SetOwner(static_cast<PartitionId>(rng.Below(32)),
                    static_cast<InstanceId>(rng.Below(4)));
  }
  std::string update = source.EncodeDelta(stale.epoch());
  ASSERT_TRUE(stale.ApplyUpdate(update).ok());
  EXPECT_EQ(stale, source);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MembershipFuzzTest, ::testing::Range(1, 6));

}  // namespace
}  // namespace zht
