// Churn suite (`ctest -L churn`): placement-policy properties, the
// rejoin-at-reused-address regression, the client's separated retry
// budgets, membership-pull coalescing, and a history-checked churn chaos
// schedule (join → failure → rejoin → departure under live traffic) per
// placement policy.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/local_cluster.h"
#include "hashing/placement_policy.h"
#include "membership/membership_table.h"
#include "history_checker.h"

namespace zht {
namespace {

constexpr PlacementKind kAllKinds[] = {
    PlacementKind::kContiguous,
    PlacementKind::kMemento,
    PlacementKind::kRendezvous,
};

std::vector<std::uint32_t> Assignment(const PlacementPolicy& policy,
                                      std::uint32_t num_partitions,
                                      const std::vector<std::uint32_t>& live) {
  std::vector<std::uint32_t> owners(num_partitions);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    owners[p] = policy.DesiredOwner(p, num_partitions, live);
  }
  return owners;
}

std::size_t MovesBetween(const std::vector<std::uint32_t>& before,
                         const std::vector<std::uint32_t>& after) {
  std::size_t moves = 0;
  for (std::size_t p = 0; p < before.size(); ++p) {
    if (before[p] != after[p]) ++moves;
  }
  return moves;
}

// ---- placement properties ------------------------------------------------

TEST(PlacementPolicyTest, DesiredOwnerIsAlwaysLive) {
  // Includes live sets with interior and leading gaps (dead instances):
  // the replacement walk / argmax must never resurrect a dead id.
  const std::vector<std::vector<std::uint32_t>> live_sets = {
      {0},          {0, 1, 2, 3}, {0, 2, 3},    {1, 3},
      {0, 1, 3, 4}, {2, 5, 9},    {0, 1, 2, 3, 4, 5, 6, 7},
  };
  for (PlacementKind kind : kAllKinds) {
    const PlacementPolicy& policy = GetPlacementPolicy(kind);
    for (const auto& live : live_sets) {
      for (PartitionId p = 0; p < 96; ++p) {
        const std::uint32_t owner = policy.DesiredOwner(p, 96, live);
        EXPECT_TRUE(std::binary_search(live.begin(), live.end(), owner))
            << policy.name() << " placed partition " << p << " on dead id "
            << owner;
      }
    }
  }
}

TEST(PlacementPolicyTest, JoinMovesWithinPolicyBound) {
  const std::uint32_t n = 128;
  const std::vector<std::uint32_t> before = {0, 1, 2, 3};
  const std::vector<std::uint32_t> after = {0, 1, 2, 3, 4};
  for (PlacementKind kind : kAllKinds) {
    const PlacementPolicy& policy = GetPlacementPolicy(kind);
    const std::size_t moves = MovesBetween(Assignment(policy, n, before),
                                           Assignment(policy, n, after));
    const double bound = policy.MaxMoveFractionOnJoin(before.size()) * n;
    EXPECT_LE(static_cast<double>(moves), bound)
        << policy.name() << " moved " << moves << " of " << n;
    // A join must never move a partition that stays off the newcomer —
    // except for contiguous, where every boundary legitimately shifts.
    if (kind != PlacementKind::kContiguous) {
      const auto owners_before = Assignment(policy, n, before);
      const auto owners_after = Assignment(policy, n, after);
      for (PartitionId p = 0; p < n; ++p) {
        if (owners_before[p] != owners_after[p]) {
          EXPECT_EQ(owners_after[p], 4u)
              << policy.name() << " shuffled partition " << p
              << " between old instances on a join";
        }
      }
    }
  }
}

TEST(PlacementPolicyTest, MementoMovesStrictlyFewerThanContiguousOnJoin) {
  const std::uint32_t n = 128;
  const std::vector<std::uint32_t> before = {0, 1, 2, 3};
  const std::vector<std::uint32_t> after = {0, 1, 2, 3, 4};
  const auto& contiguous = GetPlacementPolicy(PlacementKind::kContiguous);
  const auto& memento = GetPlacementPolicy(PlacementKind::kMemento);
  const std::size_t contiguous_moves = MovesBetween(
      Assignment(contiguous, n, before), Assignment(contiguous, n, after));
  const std::size_t memento_moves = MovesBetween(
      Assignment(memento, n, before), Assignment(memento, n, after));
  EXPECT_LT(memento_moves, contiguous_moves);
}

TEST(PlacementPolicyTest, MinimalChurnPoliciesStableOnInteriorDeath) {
  // Killing one instance must only re-home the victim's partitions: the
  // discriminating property of the consistent-hashing policies (contiguous
  // re-splits the range, so it is exempt).
  const std::uint32_t n = 96;
  const std::vector<std::uint32_t> before = {0, 1, 2, 3, 4};
  const std::vector<std::uint32_t> after = {0, 1, 3, 4};  // id 2 died
  for (PlacementKind kind :
       {PlacementKind::kMemento, PlacementKind::kRendezvous}) {
    const PlacementPolicy& policy = GetPlacementPolicy(kind);
    const auto owners_before = Assignment(policy, n, before);
    const auto owners_after = Assignment(policy, n, after);
    for (PartitionId p = 0; p < n; ++p) {
      if (owners_before[p] != 2u) {
        EXPECT_EQ(owners_before[p], owners_after[p])
            << policy.name() << " moved partition " << p
            << " although its owner survived";
      } else {
        EXPECT_NE(owners_after[p], 2u);
      }
    }
  }
}

TEST(PlacementPolicyTest, RejoinRestoresAssignment) {
  // DesiredOwner is a pure function of the live set, so reviving an
  // instance restores exactly the pre-death assignment — the property the
  // manager's rejoin path (re-using the old id) relies on.
  const std::uint32_t n = 96;
  const std::vector<std::uint32_t> full = {0, 1, 2, 3};
  const std::vector<std::uint32_t> without = {0, 2, 3};
  for (PlacementKind kind : kAllKinds) {
    const PlacementPolicy& policy = GetPlacementPolicy(kind);
    const auto original = Assignment(policy, n, full);
    (void)Assignment(policy, n, without);  // death in between
    EXPECT_EQ(Assignment(policy, n, full), original) << policy.name();
  }
}

// ---- rejoin at a previously used address ---------------------------------

TEST(RejoinRegressionTest, RejoinReusesInstanceIdAndServesData) {
  LocalClusterOptions options;
  options.num_instances = 4;
  options.num_partitions = 48;
  options.cluster.num_replicas = 2;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  auto client = (*cluster)->CreateClient();
  for (int i = 0; i < 100; ++i) {
    const std::string key = "rejoin_k" + std::to_string(i);
    ASSERT_TRUE(client->Insert(key, "v" + std::to_string(i)).ok());
  }

  const std::size_t table_size_before =
      (*cluster)->TableSnapshot().instance_count();
  (*cluster)->KillInstance(1);
  ASSERT_TRUE((*cluster)->manager(0)->HandleFailure(1).ok());

  auto rejoined = (*cluster)->RejoinInstance(1);
  ASSERT_TRUE(rejoined.ok()) << rejoined.status().ToString();
  // The regression: a joiner coming back at a previously registered
  // address must revive its old id, not get a duplicate table entry.
  EXPECT_EQ(*rejoined, 1u);
  EXPECT_EQ((*cluster)->TableSnapshot().instance_count(), table_size_before);
  EXPECT_EQ((*cluster)->manager(0)->stats().rejoins_admitted, 1u);
  EXPECT_TRUE((*cluster)->TableSnapshot().Instance(1).alive);

  // Give the commanded repairs a moment to restore the rejoined node's
  // (stale) partitions, then verify every pre-kill pair reads back.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto reader = (*cluster)->CreateClient();
  for (int i = 0; i < 100; ++i) {
    const std::string key = "rejoin_k" + std::to_string(i);
    auto got = reader->Lookup(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status().ToString();
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
}

// ---- separated retry budgets ---------------------------------------------

// Scripts a fixed sequence of soft failures: `sheds` admission-control
// rejections, then `migratings` kMigrating answers, then success.
class ScriptedSoftFailTransport : public ClientTransport {
 public:
  ScriptedSoftFailTransport(int sheds, int migratings)
      : sheds_(sheds), migratings_(migratings) {}

  Result<Response> Call(const NodeAddress&, const Request& request,
                        Nanos) override {
    ++calls_;
    Response resp;
    resp.seq = request.seq;
    if (sheds_-- > 0) {
      resp.status = Status(StatusCode::kUnavailable, "shard over budget").raw();
      resp.retry_after_us = 500;
      return resp;
    }
    if (migratings_-- > 0) {
      resp.status = Status(StatusCode::kMigrating, "partition moving").raw();
      return resp;
    }
    resp.status = Status::Ok().raw();
    if (request.op == OpCode::kLookup) resp.value = "v";
    return resp;
  }

  int calls() const { return calls_; }

 private:
  int sheds_;
  int migratings_;
  int calls_ = 0;
};

ZhtClientOptions TightBudgetOptions() {
  ZhtClientOptions options;
  options.max_attempts = 4;
  options.sleep_on_backoff = false;
  return options;
}

TEST(RetryBudgetTest, ShedAndMigratingOverlapDoesNotExhaustTheOp) {
  // 3 sheds + 3 migrating answers = 6 soft failures against max_attempts=4.
  // A single shared budget would exhaust after 4; the separated pools
  // (hard / migrating / shed, each of max_attempts) ride it out.
  MembershipTable table =
      MembershipTable::CreateUniform(8, {NodeAddress{"10.0.0.1", 50000}});
  ScriptedSoftFailTransport transport(/*sheds=*/3, /*migratings=*/3);
  ZhtClient client(table, TightBudgetOptions(), &transport);

  auto got = client.Lookup("k");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "v");
  EXPECT_EQ(transport.calls(), 7);
  EXPECT_EQ(client.stats().shed_backoffs, 3u);
  EXPECT_EQ(client.stats().retries, 6u);
}

TEST(RetryBudgetTest, MigratingAloneStillBoundsTheOp) {
  MembershipTable table =
      MembershipTable::CreateUniform(8, {NodeAddress{"10.0.0.1", 50000}});
  ScriptedSoftFailTransport transport(/*sheds=*/0, /*migratings=*/1000);
  ZhtClient client(table, TightBudgetOptions(), &transport);

  auto got = client.Lookup("k");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(transport.calls(), 4);  // its own pool still bounds the op
}

TEST(RetryBudgetTest, ShedAloneStillBoundsTheOp) {
  MembershipTable table =
      MembershipTable::CreateUniform(8, {NodeAddress{"10.0.0.1", 50000}});
  ScriptedSoftFailTransport transport(/*sheds=*/1000, /*migratings=*/0);
  ZhtClient client(table, TightBudgetOptions(), &transport);

  auto got = client.Lookup("k");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(transport.calls(), 4);
  EXPECT_EQ(client.stats().shed_backoffs, 3u);
}

// ---- membership-pull coalescing ------------------------------------------

// Every data op is redirected WITHOUT a piggybacked delta (forcing the
// snapshot-pull fallback); kMembershipPull answers with the fresh table.
class RedirectStormTransport : public ClientTransport {
 public:
  explicit RedirectStormTransport(MembershipTable fresh)
      : fresh_(std::move(fresh)) {}

  Result<Response> Call(const NodeAddress&, const Request& request,
                        Nanos) override {
    Response resp;
    resp.seq = request.seq;
    resp.epoch = fresh_.epoch();
    if (request.op == OpCode::kMembershipPull) {
      ++pulls_;
      resp.status = Status::Ok().raw();
      resp.membership = fresh_.EncodeFull();
      return resp;
    }
    resp.status = Status(StatusCode::kRedirect, "wrong owner").raw();
    return resp;
  }

  int pulls() const { return pulls_; }

 private:
  MembershipTable fresh_;
  int pulls_ = 0;
};

TEST(MembershipPullTest, RedirectStormCoalescesToOnePullPerEpoch) {
  const NodeAddress a1{"10.0.0.1", 50000};
  const NodeAddress a2{"10.0.0.2", 50000};
  MembershipTable stale = MembershipTable::CreateUniform(8, {a1});
  MembershipTable fresh = stale;
  fresh.AddInstance(a2, 1);  // bumps the epoch past the client's

  RedirectStormTransport transport(fresh);
  ZhtClientOptions options;
  options.max_attempts = 3;
  options.sleep_on_backoff = false;
  ZhtClient client(stale, options, &transport);

  // 3 ops x 3 redirected attempts each: without per-epoch coalescing this
  // storm would issue up to 9 full-table pulls.
  for (int i = 0; i < 3; ++i) {
    (void)client.Lookup("k" + std::to_string(i));
  }
  EXPECT_EQ(transport.pulls(), 1);
  EXPECT_EQ(client.stats().membership_pulls, 1u);
  EXPECT_EQ(client.table().epoch(), fresh.epoch());
}

// ---- churn chaos schedule ------------------------------------------------

struct ChurnWorker {
  ZhtClient* client = nullptr;
  HistoryRecorder* recorder = nullptr;
  const std::vector<std::string>* keys = nullptr;
  std::uint64_t id = 0;
  std::atomic<bool>* stop = nullptr;
  std::uint64_t seq = 0;

  void Run() {
    Rng rng(7000 + id);
    while (!stop->load(std::memory_order_relaxed)) {
      const std::string& key = (*keys)[rng.Next() % keys->size()];
      if (rng.Next() % 5 < 3) {
        // Register discipline: every insert value is unique for its key.
        const std::string value =
            "v_t" + std::to_string(id) + "_" + std::to_string(++seq);
        std::uint64_t op = recorder->Begin(id, OpCode::kInsert, key, value);
        recorder->End(op, client->Insert(key, value).code());
      } else {
        std::uint64_t op = recorder->Begin(id, OpCode::kLookup, key, "");
        auto got = client->Lookup(key);
        recorder->End(op, got.status().code(), got.ok() ? *got : "");
      }
    }
  }
};

// Rolling join → kill+failure → rejoin → departure under recorded live
// traffic; the history checker is the oracle. Exercises migration handoff,
// chain-change repairs, and redirect/retry handling for the given policy.
void RunChurnSchedule(const std::string& policy) {
  SCOPED_TRACE("policy=" + policy);
  LocalClusterOptions options;
  options.num_instances = 4;
  options.num_partitions = 48;
  options.cluster.num_replicas = 2;
  options.cluster.placement_policy = policy;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  std::vector<std::string> pool;
  for (int i = 0; i < 64; ++i) pool.push_back("churn_" + std::to_string(i));

  HistoryRecorder recorder;
  {
    auto loader = (*cluster)->CreateClient();
    for (const std::string& key : pool) {
      const std::string value = "v_seed_" + key;
      std::uint64_t op = recorder.Begin(99, OpCode::kInsert, key, value);
      StatusCode code = loader->Insert(key, value).code();
      recorder.End(op, code);
      ASSERT_EQ(code, StatusCode::kOk);
    }
  }

  ZhtClientOptions client_options;
  client_options.max_attempts = 16;
  client_options.failure_detector.failures_to_mark_dead = 4;
  client_options.failure_detector.initial_backoff = 0;
  client_options.sleep_on_backoff = false;

  constexpr int kThreads = 2;
  std::vector<ClientHandle> clients;
  std::vector<ChurnWorker> workers(kThreads);
  std::atomic<bool> stop{false};
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back((*cluster)->CreateClient(client_options));
    workers[t].client = clients[static_cast<std::size_t>(t)].get();
    workers[t].recorder = &recorder;
    workers[t].keys = &pool;
    workers[t].id = static_cast<std::uint64_t>(t);
    workers[t].stop = &stop;
  }
  std::vector<std::thread> threads;
  for (auto& worker : workers) {
    threads.emplace_back([&worker] { worker.Run(); });
  }

  const auto settle = std::chrono::milliseconds(30);
  std::this_thread::sleep_for(settle);
  auto joined = (*cluster)->JoinNewInstance();
  EXPECT_TRUE(joined.ok()) << joined.status().ToString();
  std::this_thread::sleep_for(settle);
  (*cluster)->KillInstance(1);
  EXPECT_TRUE((*cluster)->manager(0)->HandleFailure(1).ok());
  std::this_thread::sleep_for(settle);
  auto rejoined = (*cluster)->RejoinInstance(1);
  EXPECT_TRUE(rejoined.ok()) << rejoined.status().ToString();
  std::this_thread::sleep_for(settle);
  if (joined.ok()) {
    EXPECT_TRUE((*cluster)->manager(0)->Depart(*joined).ok());
  }
  std::this_thread::sleep_for(settle);

  stop = true;
  for (auto& thread : threads) thread.join();
  // Quiesce outstanding replication/repair streams before the cluster
  // tears down (servers are destroyed in order; a peer's finisher must
  // not post into a dying mailbox).
  (*cluster)->FlushAllAsyncReplication();

  auto check = CheckHistory(recorder.Events());
  EXPECT_TRUE(check.ok()) << check.ToString();
  EXPECT_GT(check.events_checked, pool.size());
}

TEST(ChurnChaosTest, ContiguousScheduleIsLinearizable) {
  RunChurnSchedule("contiguous");
}

TEST(ChurnChaosTest, MementoScheduleIsLinearizable) {
  RunChurnSchedule("memento");
}

TEST(ChurnChaosTest, RendezvousScheduleIsLinearizable) {
  RunChurnSchedule("rendezvous");
}

}  // namespace
}  // namespace zht
