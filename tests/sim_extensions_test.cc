// Tests of the simulator's extension knobs: replica placement topology
// (§VI network-aware placement) and replication accounting.
#include <gtest/gtest.h>

#include "sim/kvs_sim.h"

namespace zht::sim {
namespace {

TEST(ReplicaPlacementTest, SuccessorPlacementStaysNearAtEveryScale) {
  for (std::uint64_t nodes : {64ull, 4096ull}) {
    KvsSimParams params;
    params.num_nodes = nodes;
    params.replicas = 2;
    params.ops_per_client = 8;
    auto result = RunKvsSim(params);
    EXPECT_GT(result.replication_messages, 0u);
    // Ring successors are torus neighbors: O(1) hops regardless of scale.
    EXPECT_LT(result.mean_replication_hops, 4.0) << nodes;
  }
}

TEST(ReplicaPlacementTest, RandomPlacementHopsGrowWithScale) {
  KvsSimParams small;
  small.num_nodes = 64;
  small.replicas = 2;
  small.ops_per_client = 8;
  small.random_replica_placement = true;
  KvsSimParams big = small;
  big.num_nodes = 8192;
  auto small_result = RunKvsSim(small);
  auto big_result = RunKvsSim(big);
  EXPECT_GT(big_result.mean_replication_hops,
            2.5 * small_result.mean_replication_hops);
}

TEST(ReplicaPlacementTest, SuccessorBeatsRandomOnSharedNetworkLoad) {
  KvsSimParams successor;
  successor.num_nodes = 4096;
  successor.replicas = 2;
  successor.ops_per_client = 8;
  KvsSimParams random = successor;
  random.random_replica_placement = true;
  auto s = RunKvsSim(successor);
  auto r = RunKvsSim(random);
  EXPECT_LT(s.mean_replication_hops, 0.4 * r.mean_replication_hops);
}

TEST(ReplicaPlacementTest, ReplicationMessageCountMatchesOps) {
  KvsSimParams params;
  params.num_nodes = 32;
  params.replicas = 2;
  params.ops_per_client = 10;
  auto result = RunKvsSim(params);
  // Every op is an insert with 2 replica copies.
  EXPECT_EQ(result.replication_messages, result.total_ops * 2);
}

TEST(ReplicaPlacementTest, ReplicaCountClampedToClusterSize) {
  KvsSimParams params;
  params.num_nodes = 2;
  params.replicas = 5;  // only one other instance exists
  params.ops_per_client = 10;
  auto result = RunKvsSim(params);
  EXPECT_EQ(result.replication_messages, result.total_ops * 1);
}

}  // namespace
}  // namespace zht::sim
