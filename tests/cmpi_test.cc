#include <gtest/gtest.h>

#include "baselines/cmpi_lite.h"
#include "common/rng.h"
#include "hashing/hash_functions.h"
#include "net/loopback.h"

namespace zht {
namespace {

class CmpiTest : public ::testing::TestWithParam<int> {
 protected:
  struct Slot {
    RequestHandler handler;
  };

  void BuildWorld(std::uint32_t size) {
    std::vector<NodeAddress> world;
    for (std::uint32_t i = 0; i < size; ++i) {
      auto slot = std::make_shared<Slot>();
      world.push_back(network_.Register(
          [slot](Request&& req) { return slot->handler(std::move(req)); }));
      slots_.push_back(slot);
    }
    world_ = world;
    transport_ = std::make_unique<LoopbackTransport>(&network_);
    for (std::uint32_t i = 0; i < size; ++i) {
      CmpiLiteOptions options;
      options.rank = i;
      options.world_size = size;
      nodes_.push_back(
          std::make_unique<CmpiLiteNode>(options, world, transport_.get()));
      slots_[i]->handler = nodes_.back()->AsHandler();
    }
    client_ = std::make_unique<CmpiLiteClient>(world, transport_.get());
  }

  LoopbackNetwork network_;
  std::vector<std::shared_ptr<Slot>> slots_;
  std::vector<NodeAddress> world_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::vector<std::unique_ptr<CmpiLiteNode>> nodes_;
  std::unique_ptr<CmpiLiteClient> client_;
};

TEST_P(CmpiTest, CrudAcrossWorld) {
  BuildWorld(static_cast<std::uint32_t>(GetParam()));
  Rng rng(8);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 150; ++i) {
    std::string key = rng.AsciiString(15);
    std::string value = rng.AsciiString(32);
    ASSERT_TRUE(client_->Put(key, value).ok());
    model[key] = value;
  }
  for (const auto& [key, value] : model) {
    EXPECT_EQ(client_->Get(key).value(), value);
  }
  for (const auto& [key, value] : model) {
    EXPECT_TRUE(client_->Remove(key).ok());
  }
  EXPECT_EQ(client_->Get(model.begin()->first).status().code(),
            StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CmpiTest,
                         ::testing::Values(1, 2, 7, 32));

TEST_F(CmpiTest, RoutingIsLogarithmicInWorldSize) {
  BuildWorld(64);
  Rng rng(11);
  const int kOps = 300;
  for (int i = 0; i < kOps; ++i) {
    ASSERT_TRUE(client_->Put(rng.AsciiString(15), "v").ok());
  }
  std::uint64_t forwards = 0;
  for (const auto& node : nodes_) forwards += node->forwards();
  double hops = static_cast<double>(forwards) / kOps;
  EXPECT_GT(hops, 1.2);   // definitely not zero-hop
  EXPECT_LT(hops, 6.5);   // bounded by log2(64)
}

TEST_F(CmpiTest, EveryHopHalvesTheDistance) {
  BuildWorld(32);
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t target = HashKey(rng.AsciiString(15), HashKind::kFnv1a);
    std::uint32_t owner = nodes_[0]->OwnerOf(target);
    std::uint32_t at = static_cast<std::uint32_t>(rng.Below(32));
    int hops = 0;
    while (at != owner && hops < 64) {
      std::uint32_t next =
          nodes_[at]->NextHopTowards(CmpiLiteNode::IdOf(owner));
      if (next == at) break;  // converged locally
      std::uint64_t before = CmpiLiteNode::IdOf(at) ^ CmpiLiteNode::IdOf(owner);
      std::uint64_t after =
          CmpiLiteNode::IdOf(next) ^ CmpiLiteNode::IdOf(owner);
      EXPECT_LT(after, before);  // strict XOR progress: no routing loops
      at = next;
      ++hops;
    }
    EXPECT_LE(hops, 6);  // log2(32) + margin
  }
}

TEST_F(CmpiTest, OwnersAgreeAcrossNodes) {
  BuildWorld(16);
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t hash = rng.Next();
    std::uint32_t expected = nodes_[0]->OwnerOf(hash);
    for (const auto& node : nodes_) {
      EXPECT_EQ(node->OwnerOf(hash), expected);
    }
  }
}

TEST_F(CmpiTest, NoAppendNoPersistence) {
  BuildWorld(2);
  Request append;
  append.op = OpCode::kAppend;
  append.key = "k";
  append.value = "v";
  Response resp = nodes_[0]->Handle(std::move(append));
  EXPECT_EQ(resp.status_as_object().code(), StatusCode::kNotSupported);
}

TEST_F(CmpiTest, SingleRankFailureWedgesTheWorld) {
  // The paper's critique of MPI-based DHTs: one node failure is a
  // system-wide failure.
  BuildWorld(8);
  ASSERT_TRUE(client_->Put("k", "v").ok());
  for (auto& node : nodes_) node->SetWorldFailed(true);
  EXPECT_EQ(client_->Get("k").status().code(), StatusCode::kUnavailable);
  for (auto& node : nodes_) node->SetWorldFailed(false);
  EXPECT_EQ(client_->Get("k").value(), "v");
}

}  // namespace
}  // namespace zht
