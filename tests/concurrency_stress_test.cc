// Concurrency stress suite (`ctest -L concurrency`; also run under TSan
// via `cmake --preset tsan && ctest --preset tsan`): many client threads
// hammering ZhtServer::HandleAsync concurrently — the shard-mailbox
// request path the multi-reactor EpollServer exercises in production.
// Three angles:
//
//  1. loopback, r=2: mixed single ops + MultiInsert batches from 8 threads
//     on overlapping register keys, disjoint per-thread keys, and shared
//     append ledgers, every client-visible op recorded and the history
//     validated by the checker;
//  2. real sockets: a multi-reactor EpollServer per instance (one shard
//     per reactor), concurrent cached TCP clients;
//  3. a chaos schedule (delay + duplicate + dropped responses) under the
//     multi-reactor TCP cluster, with the checker again as the oracle.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/local_cluster.h"
#include "history_checker.h"
#include "net/epoll_server.h"
#include "net/tcp_client.h"

namespace zht {
namespace {

constexpr int kThreads = 8;
constexpr int kRegisterKeys = 12;
constexpr int kLedgerKeys = 4;

std::string RegisterKey(int i) { return "reg" + std::to_string(i); }
std::string LedgerKey(int i) { return "led" + std::to_string(i); }
std::string PrivateKey(int thread, int i) {
  return "own" + std::to_string(thread) + "_" + std::to_string(i);
}

// Reactors beyond the host's cores just contend for them; on a 1-core CI
// host a 4-reactor sweep can miss the suite deadline outright. Clamp the
// multi-reactor tests to what the hardware can actually run in parallel.
int EffectiveReactors(int wanted) {
  const unsigned cores = std::thread::hardware_concurrency();
  const int cap = cores == 0 ? 1 : static_cast<int>(cores);
  return wanted < cap ? wanted : cap;
}

ZhtClientOptions StressClient() {
  ZhtClientOptions options;
  options.max_attempts = 24;
  options.failure_detector.failures_to_mark_dead = 4;
  options.failure_detector.initial_backoff = 0;
  options.sleep_on_backoff = false;
  return options;
}

// One worker's operation mix. Overlapping register keys force stripe
// contention and concurrent same-key writes; private keys exercise the
// parallel disjoint-partition path; ledger appends must each apply exactly
// once; every ~12th op is a MultiInsert batch, so BATCH's multi-stripe
// ordered acquisition runs against single-op traffic on the same stripes.
void IssueMixedOps(std::uint64_t id, ZhtClient& client,
                   HistoryRecorder& recorder, Rng& rng, int ops,
                   std::atomic<int>& batch_failures) {
  int counter = 0;
  for (int op = 0; op < ops; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.25) {
      std::string key = RegisterKey(static_cast<int>(rng.Below(kRegisterKeys)));
      std::string value =
          "v" + std::to_string(id) + "_" + std::to_string(++counter);
      std::uint64_t rec = recorder.Begin(id, OpCode::kInsert, key, value);
      recorder.End(rec, client.Insert(key, value).code());
    } else if (dice < 0.45) {
      std::string key = RegisterKey(static_cast<int>(rng.Below(kRegisterKeys)));
      std::uint64_t rec = recorder.Begin(id, OpCode::kLookup, key, "");
      auto got = client.Lookup(key);
      recorder.End(rec, got.status().code(), got.ok() ? *got : "");
    } else if (dice < 0.52) {
      std::string key = RegisterKey(static_cast<int>(rng.Below(kRegisterKeys)));
      std::uint64_t rec = recorder.Begin(id, OpCode::kRemove, key, "");
      recorder.End(rec, client.Remove(key).code());
    } else if (dice < 0.72) {
      std::string key = LedgerKey(static_cast<int>(rng.Below(kLedgerKeys)));
      std::string token =
          "c" + std::to_string(id) + "t" + std::to_string(++counter) + ";";
      std::uint64_t rec = recorder.Begin(id, OpCode::kAppend, key, token);
      recorder.End(rec, client.Append(key, token).code());
    } else if (dice < 0.80) {
      std::string key = LedgerKey(static_cast<int>(rng.Below(kLedgerKeys)));
      std::uint64_t rec = recorder.Begin(id, OpCode::kLookup, key, "");
      auto got = client.Lookup(key);
      recorder.End(rec, got.status().code(), got.ok() ? *got : "");
    } else if (dice < 0.92) {
      // Disjoint per-thread keys: no cross-thread contention by design.
      std::string key =
          PrivateKey(static_cast<int>(id), static_cast<int>(rng.Below(32)));
      std::string value =
          "p" + std::to_string(id) + "_" + std::to_string(++counter);
      std::uint64_t rec = recorder.Begin(id, OpCode::kInsert, key, value);
      recorder.End(rec, client.Insert(key, value).code());
    } else {
      // BATCH: several partitions in one carrier (multi-stripe apply).
      std::vector<KeyValue> pairs;
      std::vector<std::uint64_t> recs;
      for (int i = 0; i < 5; ++i) {
        std::string key =
            i < 2 ? RegisterKey(static_cast<int>(rng.Below(kRegisterKeys)))
                  : PrivateKey(static_cast<int>(id),
                               static_cast<int>(rng.Below(32)));
        std::string value =
            "b" + std::to_string(id) + "_" + std::to_string(++counter);
        recs.push_back(recorder.Begin(id, OpCode::kInsert, key, value));
        pairs.push_back(KeyValue{std::move(key), std::move(value)});
      }
      std::vector<Status> statuses = client.MultiInsert(pairs);
      for (std::size_t i = 0; i < recs.size(); ++i) {
        recorder.End(recs[i], statuses[i].code());
        if (!statuses[i].ok() &&
            statuses[i].code() != StatusCode::kTimeout) {
          ++batch_failures;
        }
      }
    }
  }
}

// Final recorded reads anchor the checker's view of the converged state.
void RecordedReadAll(ZhtClient& client, HistoryRecorder& recorder) {
  auto read = [&](const std::string& key) {
    std::uint64_t rec = recorder.Begin(999, OpCode::kLookup, key, "");
    auto got = client.Lookup(key);
    recorder.End(rec, got.status().code(), got.ok() ? *got : "");
  };
  for (int i = 0; i < kRegisterKeys; ++i) read(RegisterKey(i));
  for (int i = 0; i < kLedgerKeys; ++i) read(LedgerKey(i));
}

TEST(ConcurrencyStressTest, LoopbackStripedHistoryLinearizes) {
  LocalClusterOptions options;
  options.num_instances = 4;
  options.num_partitions = 32;
  options.cluster.num_replicas = 2;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  HistoryRecorder recorder;
  std::atomic<int> batch_failures{0};
  std::vector<ClientHandle> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back((*cluster)->CreateClient(StressClient()));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(7000 + t);
      IssueMixedOps(static_cast<std::uint64_t>(t + 1), *clients[t].get(),
                    recorder, rng, 150, batch_failures);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(batch_failures.load(), 0);

  (*cluster)->FlushAllAsyncReplication();
  auto reader = (*cluster)->CreateClient(StressClient());
  RecordedReadAll(*reader.get(), recorder);

  auto result = CheckHistory(recorder.Events());
  EXPECT_TRUE(result.ok())
      << result.events_checked << " events:\n" << result.ToString();

  // Operations landed on every instance (striping did not serialize the
  // cluster through one server).
  std::uint64_t total_ops = 0;
  for (std::size_t i = 0; i < (*cluster)->instance_count(); ++i) {
    total_ops += (*cluster)->server(i)->stats().ops;
  }
  EXPECT_GT(total_ops, static_cast<std::uint64_t>(kThreads) * 150 / 2);
}

TEST(ConcurrencyStressTest, MultiReactorTcpServesConcurrentClients) {
  LocalClusterOptions options;
  options.num_instances = 2;
  options.num_partitions = 16;
  options.cluster.num_replicas = 1;
  options.transport = ClusterTransport::kTcp;
  options.num_reactors = EffectiveReactors(4);
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  HistoryRecorder recorder;
  std::atomic<int> batch_failures{0};
  std::vector<ClientHandle> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back((*cluster)->CreateClient(StressClient()));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(8000 + t);
      IssueMixedOps(static_cast<std::uint64_t>(t + 1), *clients[t].get(),
                    recorder, rng, 60, batch_failures);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(batch_failures.load(), 0);

  (*cluster)->FlushAllAsyncReplication();
  auto reader = (*cluster)->CreateClient(StressClient());
  RecordedReadAll(*reader.get(), recorder);

  auto result = CheckHistory(recorder.Events());
  EXPECT_TRUE(result.ok())
      << result.events_checked << " events:\n" << result.ToString();
}

TEST(ConcurrencyStressTest, MultiReactorChaosScheduleLinearizes) {
  // Faults that are safe under real threads (cf. the chaos suite's
  // `threaded` schedules): delays and duplicates never change outcomes,
  // and dropped responses only force client retries, which dedup must
  // absorb. All under the 4-reactor TCP server.
  LocalClusterOptions options;
  options.num_instances = 4;
  options.num_partitions = 32;
  options.cluster.num_replicas = 1;
  options.transport = ClusterTransport::kTcp;
  options.num_reactors = EffectiveReactors(4);
  options.fault_plan = std::make_shared<FaultPlan>(4242);
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  options.fault_plan->AddRule({.kind = FaultKind::kDelay,
                               .probability = 0.10,
                               .delay = 2 * kNanosPerMilli});
  options.fault_plan->AddRule(
      {.kind = FaultKind::kDuplicate, .probability = 0.08});
  options.fault_plan->AddRule({.kind = FaultKind::kDropResponse,
                               .op = OpCode::kAppend,
                               .client_only = true,
                               .probability = 0.08});

  HistoryRecorder recorder;
  std::atomic<int> batch_failures{0};
  std::vector<ClientHandle> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back((*cluster)->CreateClient(StressClient()));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(9000 + t);
      IssueMixedOps(static_cast<std::uint64_t>(t + 1), *clients[t].get(),
                    recorder, rng, 50, batch_failures);
    });
  }
  for (auto& thread : threads) thread.join();

  options.fault_plan->Clear();
  (*cluster)->FlushAllAsyncReplication();
  auto reader = (*cluster)->CreateClient(StressClient());
  RecordedReadAll(*reader.get(), recorder);

  auto result = CheckHistory(recorder.Events());
  EXPECT_TRUE(result.ok())
      << result.events_checked << " events:\n" << result.ToString();
}

// Pure server-level shard hammering: no cluster, no replication — raw
// concurrent HandleAsync() calls on one ZhtServer, mixing data ops with
// membership pulls and STATS census scatters, so unbound-shard drains (CAS
// hand-off between posting threads) race under TSan. Every response must
// arrive exactly once.
TEST(ConcurrencyStressTest, RawHandleAsyncShardsAndSnapshotsRace) {
  LoopbackNetwork network;
  std::vector<NodeAddress> addresses;
  for (int i = 0; i < 2; ++i) {
    addresses.push_back(network.Register([](Request&&) { return Response{}; }));
  }
  MembershipTable table =
      MembershipTable::CreateUniform(16, addresses, 1, HashKind::kFnv1a);
  ZhtServerOptions server_options;
  server_options.self = 0;
  server_options.cluster.num_replicas = 0;
  server_options.num_shards = 4;
  auto transport = std::make_unique<LoopbackTransport>(&network);
  ZhtServer server(std::move(table), server_options, transport.get());

  std::atomic<int> failures{0};
  std::atomic<int> completions{0};
  constexpr int kWorkers = 6;
  constexpr int kOpsPerWorker = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kOpsPerWorker; ++i) {
        Request request;
        request.seq = static_cast<std::uint64_t>(t) * 1000 + i + 1;
        request.client_id = static_cast<std::uint64_t>(t + 1);
        const double dice = rng.NextDouble();
        if (dice < 0.4) {
          request.op = OpCode::kInsert;
          request.key = "k" + std::to_string(rng.Below(64));
          request.value = "v";
        } else if (dice < 0.7) {
          request.op = OpCode::kLookup;
          request.key = "k" + std::to_string(rng.Below(64));
        } else if (dice < 0.85) {
          request.op = OpCode::kAppend;
          request.key = "led" + std::to_string(rng.Below(4));
          request.value = "t" + std::to_string(i) + ";";
        } else if (dice < 0.95) {
          request.op = OpCode::kMembershipPull;
        } else {
          request.op = OpCode::kStats;
        }
        server.HandleAsync(std::move(request), [&](Response&& response) {
          if (response.seq == 0 && !response.ok()) ++failures;
          completions.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  // Metrics/census readers riding along with the writers.
  threads.emplace_back([&] {
    for (int i = 0; i < 100; ++i) {
      (void)server.TotalEntries();
      (void)server.MetricsSnapshotNow();
      (void)server.stats();
    }
  });
  for (auto& thread : threads) thread.join();
  // With no durability pipeline and no replicas, every callback has fired
  // by the time its HandleAsync returned.
  EXPECT_EQ(completions.load(), kWorkers * kOpsPerWorker);
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(server.stats().ops, 0u);
  server.FlushAsyncReplication();
}

}  // namespace
}  // namespace zht
