// Direct unit tests of the Manager: join admission mechanics, departure
// edge cases, failure idempotency, delta broadcast to instances and peer
// managers, and the network entry points (JoinRequest/DepartRequest).
#include <gtest/gtest.h>

#include "core/local_cluster.h"
#include "core/manager.h"

namespace zht {
namespace {

TEST(ManagerTest, FailureHandlingIsIdempotent) {
  LocalClusterOptions options;
  options.num_instances = 4;
  options.cluster.num_replicas = 1;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  Manager* manager = (*cluster)->manager(0);
  ASSERT_TRUE(manager->HandleFailure(2).ok());
  std::uint32_t epoch = manager->TableSnapshot().epoch();
  ASSERT_TRUE(manager->HandleFailure(2).ok());  // second report: no-op
  EXPECT_EQ(manager->TableSnapshot().epoch(), epoch);
  EXPECT_EQ(manager->stats().failures_handled, 1u);
}

TEST(ManagerTest, FailureRejectsUnknownInstance) {
  LocalClusterOptions two_options;
  two_options.num_instances = 2;
  auto cluster = LocalCluster::Start(two_options);
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ((*cluster)->manager(0)->HandleFailure(99).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*cluster)->manager(0)->Depart(99).code(),
            StatusCode::kInvalidArgument);
}

TEST(ManagerTest, BroadcastReachesPeerManagers) {
  LocalClusterOptions options;
  options.num_instances = 4;  // 4 physical nodes → 4 managers
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  Manager* m0 = (*cluster)->manager(0);
  ASSERT_TRUE(m0->HandleFailure(3).ok());
  // Every other manager learned the death through the broadcast.
  for (std::size_t node = 1; node < (*cluster)->manager_count(); ++node) {
    MembershipTable table = (*cluster)->manager(node)->TableSnapshot();
    EXPECT_FALSE(table.Instance(3).alive) << "manager " << node;
    EXPECT_EQ(table.epoch(), m0->TableSnapshot().epoch());
  }
  // And every surviving server.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE((*cluster)->server(i)->table().Instance(3).alive);
  }
}

TEST(ManagerTest, OverlappingFailuresAtR3KeepEveryPartitionServable) {
  // Two failures in quick succession at r=3: the second lands while the
  // rebuild campaign for the first is still in flight. Reassignment must
  // never leave a partition without an alive owner, and the commanded
  // repairs must keep every acked key readable.
  LocalClusterOptions options;
  options.num_instances = 6;
  options.num_partitions = 48;
  options.cluster.num_replicas = 3;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(client->Insert("mf" + std::to_string(i), "v" + std::to_string(i))
                    .ok());
  }
  (*cluster)->FlushAllAsyncReplication();

  Manager* m0 = (*cluster)->manager(0);
  const std::uint64_t broadcasts_before = m0->stats().broadcasts_sent;
  (*cluster)->KillInstance(2);
  ASSERT_TRUE(m0->HandleFailure(2).ok());
  (*cluster)->KillInstance(4);  // overlaps the first rebuild campaign
  ASSERT_TRUE(m0->HandleFailure(4).ok());

  EXPECT_EQ(m0->stats().failures_handled, 2u);
  EXPECT_GT(m0->stats().broadcasts_sent, broadcasts_before);
  EXPECT_GT(m0->stats().repairs_commanded, 0u);

  // No partition lost its last replica: every chain is non-empty and made
  // of alive members only (the table skips dead instances).
  MembershipTable table = m0->TableSnapshot();
  for (PartitionId p = 0; p < table.num_partitions(); ++p) {
    auto chain = table.ReplicaChain(p, options.cluster.num_replicas);
    ASSERT_FALSE(chain.empty()) << "partition " << p << " lost";
    for (InstanceId id : chain) {
      EXPECT_TRUE(table.Instance(id).alive)
          << "partition " << p << " lists dead instance " << id;
      EXPECT_NE(id, 2u);
      EXPECT_NE(id, 4u);
    }
  }

  // Every acked key still readable through a freshly bootstrapped client.
  auto reader = (*cluster)->CreateClient();
  for (int i = 0; i < 120; ++i) {
    auto got = reader->Lookup("mf" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << "mf" << i << ": " << got.status().ToString();
    EXPECT_EQ(*got, "v" + std::to_string(i));
  }
}

TEST(ManagerTest, AnyManagerCanAdmitAJoin) {
  LocalClusterOptions options;
  options.num_instances = 4;
  options.instances_per_node = 2;  // 2 managers
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(client->Insert("j" + std::to_string(i), "v").ok());
  }
  // Join through manager 1 (not 0).
  auto joined = (*cluster)->JoinNewInstance(/*via_node=*/1);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // Manager 0 learned about it via peer broadcast.
  MembershipTable table = (*cluster)->manager(0)->TableSnapshot();
  EXPECT_EQ(table.instance_count(), 5u);
  EXPECT_GT(table.PartitionsOf(*joined).size(), 0u);
  for (int i = 0; i < 80; ++i) {
    EXPECT_TRUE(client->Lookup("j" + std::to_string(i)).ok()) << i;
  }
}

TEST(ManagerTest, JoinRequestOverTheWire) {
  // Exercise the kJoinRequest network entry rather than AdmitJoin directly.
  LocalClusterOptions options;
  options.num_instances = 2;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());

  // Stand up a fresh empty server reachable on the loopback network.
  auto transport =
      std::make_unique<LoopbackTransport>(&(*cluster)->network());
  ZhtServerOptions server_options;
  server_options.self = 2;
  ZhtServer fresh(MembershipTable((*cluster)->TableSnapshot().num_partitions(),
                                  HashKind::kFnv1a),
                  server_options, transport.get());
  NodeAddress address = (*cluster)->network().Register(fresh.AsyncHandler());

  Request join;
  join.op = OpCode::kJoinRequest;
  join.seq = 1;
  join.key = address.ToString();
  join.value = "7";  // physical node id
  LoopbackTransport caller(&(*cluster)->network());
  auto resp = caller.Call((*cluster)->manager_address(0), join,
                          2 * kNanosPerSec);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->ok()) << resp->status_as_object().ToString();
  EXPECT_EQ(resp->value, "2");  // admitted instance id
  // The response carries the full membership for the joiner's client side.
  auto table = MembershipTable::DecodeFull(resp->membership);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->instance_count(), 3u);
  EXPECT_EQ(table->Instance(2).physical_node, 7u);
  // The fresh server received partitions and a pushed table.
  EXPECT_GT(fresh.table().instance_count(), 0u);
}

TEST(ManagerTest, DepartRequestOverTheWire) {
  LocalClusterOptions options;
  options.num_instances = 3;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client->Insert("d" + std::to_string(i), "v").ok());
  }
  Request depart;
  depart.op = OpCode::kDepartRequest;
  depart.seq = 1;
  depart.key = "1";
  depart.value = "planned";
  LoopbackTransport caller(&(*cluster)->network());
  auto resp = caller.Call((*cluster)->manager_address(0), depart,
                          2 * kNanosPerSec);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->ok());
  MembershipTable table = (*cluster)->manager(0)->TableSnapshot();
  EXPECT_TRUE(table.PartitionsOf(1).empty());
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(client->Lookup("d" + std::to_string(i)).ok()) << i;
  }
}

TEST(ManagerTest, DepartLastInstanceRefused) {
  LocalClusterOptions one_options;
  one_options.num_instances = 1;
  auto cluster = LocalCluster::Start(one_options);
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ((*cluster)->manager(0)->Depart(0).code(),
            StatusCode::kUnavailable);
}

TEST(ManagerTest, MembershipPullFromManager) {
  LocalClusterOptions three_options;
  three_options.num_instances = 3;
  auto cluster = LocalCluster::Start(three_options);
  ASSERT_TRUE(cluster.ok());
  Request pull;
  pull.op = OpCode::kMembershipPull;
  pull.seq = 5;
  pull.epoch = 0;
  LoopbackTransport caller(&(*cluster)->network());
  auto resp = caller.Call((*cluster)->manager_address(0), pull,
                          2 * kNanosPerSec);
  ASSERT_TRUE(resp.ok());
  auto table = MembershipTable::DecodeFull(resp->membership);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->instance_count(), 3u);
}

}  // namespace
}  // namespace zht
