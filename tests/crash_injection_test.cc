// Crash-injection property test for the NoVoHT write-ahead log (DESIGN.md
// §10): a crash can cut the log at *any* byte. For every possible cut point
// we require that
//
//   1. recovery succeeds — a torn tail is never misreported as corruption,
//   2. exactly the acked-durable prefix survives: every op whose record was
//      fully on disk at the cut is recovered, every later op is gone, and
//   3. the recovered store is writable again.
//
// Byte *damage* (as opposed to a torn tail) must be told apart: a flipped
// byte with valid records after it is kCorruption; a flipped byte in the
// final record is indistinguishable from a torn write and is trimmed.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "novoht/novoht.h"

namespace zht {
namespace {

namespace fs = std::filesystem;

// Test-only crash artifact factory: stamps out damaged copies of a source
// log. Each call rebuilds the scratch copy from the pristine source, so
// damage never compounds across calls.
class TornFile {
 public:
  TornFile(std::string source, std::string scratch)
      : source_(std::move(source)), scratch_(std::move(scratch)) {}

  // The log as a crash at byte `offset` would leave it.
  const std::string& TruncatedAt(std::uint64_t offset) {
    fs::copy_file(source_, scratch_, fs::copy_options::overwrite_existing);
    fs::resize_file(scratch_, offset);
    return scratch_;
  }

  // The log with the byte at `offset` flipped (media damage, not a crash).
  const std::string& CorruptedAt(std::uint64_t offset) {
    fs::copy_file(source_, scratch_, fs::copy_options::overwrite_existing);
    std::fstream f(scratch_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.get(byte);
    f.seekp(static_cast<std::streamoff>(offset));
    f.put(static_cast<char>(byte ^ 0x5A));
    return scratch_;
  }

 private:
  std::string source_;
  std::string scratch_;
};

struct LoggedOp {
  enum Kind { kPut, kRemove, kAppend } kind;
  std::string key;
  std::string value;
  std::uint64_t log_end = 0;  // log size once this record was on disk
};

// Applies the first `count` ops to an in-memory model.
std::map<std::string, std::string> Model(const std::vector<LoggedOp>& ops,
                                         std::size_t count) {
  std::map<std::string, std::string> model;
  for (std::size_t i = 0; i < count; ++i) {
    const LoggedOp& op = ops[i];
    switch (op.kind) {
      case LoggedOp::kPut:
        model[op.key] = op.value;
        break;
      case LoggedOp::kRemove:
        model.erase(op.key);
        break;
      case LoggedOp::kAppend:
        model[op.key] += op.value;
        break;
    }
  }
  return model;
}

class CrashInjectionTest
    : public ::testing::TestWithParam<DurabilityMode> {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("zht_crash_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  NoVoHTOptions Options(const std::string& name) const {
    NoVoHTOptions options;
    options.path = Path(name);
    options.durability = GetParam();
    options.gc_garbage_ratio = 100.0;  // no compaction mid-workload
    return options;
  }

  // Runs a deterministic mixed workload, recording every op and the log
  // boundary its ack corresponds to. With every_op and with group_commit
  // (wait_for_durable defaults to true) an acked op is on disk by the time
  // the call returns, so the boundary after the call bounds its record.
  std::vector<LoggedOp> RunWorkload(const NoVoHTOptions& options) {
    auto store = NoVoHT::Open(options);
    EXPECT_TRUE(store.ok());
    std::vector<LoggedOp> ops;
    Rng rng(20260807);
    for (int i = 0; i < 40; ++i) {
      std::string key = "key" + std::to_string(rng.Below(12));
      double dice = rng.NextDouble();
      LoggedOp op;
      if (dice < 0.55) {
        op = {LoggedOp::kPut, key, rng.AsciiString(8 + i % 23)};
        EXPECT_TRUE((*store)->Put(op.key, op.value).ok());
      } else if (dice < 0.75) {
        op = {LoggedOp::kAppend, key, rng.AsciiString(5)};
        EXPECT_TRUE((*store)->Append(op.key, op.value).ok());
      } else {
        op = {LoggedOp::kRemove, key, ""};
        Status status = (*store)->Remove(op.key);
        EXPECT_TRUE(status.ok() ||
                    status.code() == StatusCode::kNotFound);
      }
      op.log_end = fs::file_size(options.path);
      ops.push_back(op);
    }
    return ops;  // store closes here; the source log is final
  }

  fs::path dir_;
};

// The tentpole property: kill the store at EVERY byte offset of the log —
// every record boundary and every torn mid-record position — and demand
// that recovery never reports corruption, never loses an acked op, and
// never resurrects an op past the cut.
TEST_P(CrashInjectionTest, EveryCutPointRecoversAckedPrefix) {
  NoVoHTOptions source = Options("source.nvt");
  std::vector<LoggedOp> ops = RunWorkload(source);
  const std::uint64_t log_size = fs::file_size(source.path);
  ASSERT_EQ(log_size, ops.back().log_end);

  TornFile torn(source.path, Path("crashed.nvt"));
  NoVoHTOptions recovered = Options("crashed.nvt");

  for (std::uint64_t cut = 0; cut <= log_size; ++cut) {
    torn.TruncatedAt(cut);
    auto reopened = NoVoHT::Open(recovered);
    ASSERT_TRUE(reopened.ok())
        << "cut at byte " << cut << " of " << log_size
        << " misreported as: " << reopened.status().ToString();

    // Ops whose record fully precedes the cut are the acked-durable prefix.
    std::size_t durable = 0;
    while (durable < ops.size() && ops[durable].log_end <= cut) ++durable;
    auto model = Model(ops, durable);

    ASSERT_EQ((*reopened)->Size(), model.size()) << "cut at byte " << cut;
    for (const auto& [key, value] : model) {
      auto got = (*reopened)->Get(key);
      ASSERT_TRUE(got.ok()) << "acked op lost at cut " << cut << ": " << key;
      ASSERT_EQ(*got, value) << "cut at byte " << cut;
    }
    // Sampled writability check (every reopen would dominate the runtime).
    if (cut % 512 == 0) {
      ASSERT_TRUE((*reopened)->Put("postcrash", "writable").ok());
    }
  }
}

// Damage *before* the tail is corruption — later intact records prove the
// log did not simply end there.
TEST_P(CrashInjectionTest, DamageBeforeTailIsCorruption) {
  NoVoHTOptions source = Options("source.nvt");
  std::vector<LoggedOp> ops = RunWorkload(source);
  TornFile torn(source.path, Path("damaged.nvt"));
  NoVoHTOptions recovered = Options("damaged.nvt");

  // A byte inside the first record's payload, and one inside a mid-log
  // record's header (length fields included — regression for recovery that
  // trusted a damaged length and silently truncated).
  const std::uint64_t mid_start = ops[ops.size() / 2 - 1].log_end;
  for (std::uint64_t offset : {std::uint64_t{8}, mid_start + 5}) {
    torn.CorruptedAt(offset);
    auto reopened = NoVoHT::Open(recovered);
    ASSERT_FALSE(reopened.ok()) << "damage at byte " << offset;
    EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption)
        << "damage at byte " << offset;
  }
}

// Damage confined to the final record is indistinguishable from a torn
// write: trimmed, with every earlier op intact.
TEST_P(CrashInjectionTest, DamageInFinalRecordIsTrimmed) {
  NoVoHTOptions source = Options("source.nvt");
  std::vector<LoggedOp> ops = RunWorkload(source);
  TornFile torn(source.path, Path("tail.nvt"));
  NoVoHTOptions recovered = Options("tail.nvt");

  const std::uint64_t last_start = ops[ops.size() - 2].log_end;
  torn.CorruptedAt(last_start + 6);  // inside the last record
  auto reopened = NoVoHT::Open(recovered);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

  auto model = Model(ops, ops.size() - 1);
  EXPECT_EQ((*reopened)->Size(), model.size());
  for (const auto& [key, value] : model) {
    auto got = (*reopened)->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
  EXPECT_TRUE((*reopened)->Put("postcrash", "writable").ok());
}

std::string ModeName(const ::testing::TestParamInfo<DurabilityMode>& info) {
  return DurabilityModeName(info.param);
}

INSTANTIATE_TEST_SUITE_P(AckedModes, CrashInjectionTest,
                         ::testing::Values(DurabilityMode::kEveryOp,
                                           DurabilityMode::kGroupCommit),
                         ModeName);

}  // namespace
}  // namespace zht
