#include "history_checker.h"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

namespace zht {
namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

// When the operation definitely finished (its effect, if any, is no later
// than this). Pending operations may still apply arbitrarily late.
std::uint64_t Done(const HistoryEvent& e) {
  return e.completed == 0 ? kNever : e.completed;
}

// The result proves the op took effect (for mutations: was applied).
bool AckedOk(const HistoryEvent& e) {
  return e.completed != 0 && e.result == StatusCode::kOk;
}

// The op may or may not have taken effect: it timed out, failed in the
// transport after possibly reaching the server, or never returned.
bool Indeterminate(const HistoryEvent& e) {
  return e.completed == 0 || e.result == StatusCode::kTimeout ||
         e.result == StatusCode::kUnavailable ||
         e.result == StatusCode::kNetwork;
}

bool MayHaveApplied(const HistoryEvent& e) {
  return AckedOk(e) || Indeterminate(e);
}

// Splits a ledger value into its ';'-terminated tokens; a trailing
// fragment without its terminator is returned as a token too (the caller
// flags it as torn).
std::vector<std::string> LedgerTokens(const std::string& value) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start < value.size()) {
    std::size_t semi = value.find(';', start);
    if (semi == std::string::npos) {
      tokens.push_back(value.substr(start));
      break;
    }
    tokens.push_back(value.substr(start, semi - start + 1));
    start = semi + 1;
  }
  return tokens;
}

class Checker {
 public:
  explicit Checker(const std::vector<HistoryEvent>& events)
      : events_(events) {}

  HistoryCheckResult Run() {
    std::map<std::string, std::vector<const HistoryEvent*>> by_key;
    for (const HistoryEvent& e : events_) {
      switch (e.op) {
        case OpCode::kInsert:
        case OpCode::kLookup:
        case OpCode::kRemove:
        case OpCode::kAppend:
          by_key[e.key].push_back(&e);
          break;
        default:
          break;  // pings etc. carry no data semantics
      }
    }
    for (const auto& [key, ops] : by_key) CheckKey(key, ops);
    result_.events_checked = events_.size();
    return std::move(result_);
  }

 private:
  void Flag(const HistoryEvent& e, const std::string& message) {
    result_.violations.push_back({e.id, e.key, message});
  }

  void CheckKey(const std::string& key,
                const std::vector<const HistoryEvent*>& ops) {
    bool has_append = false, has_register_write = false;
    for (const HistoryEvent* e : ops) {
      has_append |= e->op == OpCode::kAppend;
      has_register_write |=
          e->op == OpCode::kInsert || e->op == OpCode::kRemove;
    }
    if (has_append && has_register_write) {
      Flag(*ops.front(), "key '" + key +
                             "' mixes append with insert/remove; the "
                             "checker needs single-discipline keys");
      return;
    }
    if (has_append) {
      CheckLedgerKey(ops);
    } else {
      CheckRegisterKey(key, ops);
    }
  }

  // ---- register keys ----------------------------------------------------

  void CheckRegisterKey(const std::string& key,
                        const std::vector<const HistoryEvent*>& ops) {
    std::vector<const HistoryEvent*> inserts, removes, lookups;
    std::map<std::string, const HistoryEvent*> insert_by_value;
    for (const HistoryEvent* e : ops) {
      if (e->op == OpCode::kInsert) {
        inserts.push_back(e);
        auto [it, fresh] = insert_by_value.emplace(e->argument, e);
        if (!fresh) {
          Flag(*e, "insert value '" + e->argument + "' reused on key '" +
                       key + "'; unique values are required for checking");
          return;
        }
      } else if (e->op == OpCode::kRemove) {
        removes.push_back(e);
      } else if (e->op == OpCode::kLookup) {
        lookups.push_back(e);
      }
    }

    for (const HistoryEvent* lookup : lookups) {
      if (lookup->completed == 0) continue;  // never returned: no claim made
      if (lookup->result == StatusCode::kOk) {
        CheckRegisterRead(*lookup, insert_by_value, inserts, removes);
      } else if (lookup->result == StatusCode::kNotFound) {
        CheckRegisterNotFound(*lookup, inserts, removes);
      }
      // Other results (timeout etc.) assert nothing about the value.
    }
  }

  // Lookup returned a value: it must name a write that could have been the
  // latest one at some point inside the lookup's window.
  void CheckRegisterRead(
      const HistoryEvent& lookup,
      const std::map<std::string, const HistoryEvent*>& insert_by_value,
      const std::vector<const HistoryEvent*>& inserts,
      const std::vector<const HistoryEvent*>& removes) {
    auto it = insert_by_value.find(lookup.returned);
    if (it == insert_by_value.end()) {
      Flag(lookup, "read value '" + lookup.returned +
                       "' that no insert ever wrote");
      return;
    }
    const HistoryEvent& w = *it->second;
    if (w.invoked >= lookup.completed) {
      Flag(lookup, "read value '" + lookup.returned +
                       "' before its insert was invoked (event " +
                       std::to_string(w.id) + ")");
      return;
    }
    // Definitely-stale: an acked overwrite (different insert, or a
    // successful remove) sits entirely between w and the lookup. Unique
    // values mean nothing could have restored w's value.
    for (const HistoryEvent* o : inserts) {
      if (o == &w || !AckedOk(*o)) continue;
      if (o->invoked > Done(w) && Done(*o) < lookup.invoked) {
        Flag(lookup, "stale read of '" + lookup.returned +
                         "': insert event " + std::to_string(o->id) +
                         " definitely overwrote it first");
        return;
      }
    }
    for (const HistoryEvent* r : removes) {
      if (!AckedOk(*r)) continue;
      if (r->invoked > Done(w) && Done(*r) < lookup.invoked) {
        Flag(lookup, "stale read of '" + lookup.returned +
                         "': remove event " + std::to_string(r->id) +
                         " definitely removed it first");
        return;
      }
    }
  }

  // Lookup returned NotFound: no acked insert may be definitely-before it
  // unless a remove could have landed in between.
  void CheckRegisterNotFound(const HistoryEvent& lookup,
                             const std::vector<const HistoryEvent*>& inserts,
                             const std::vector<const HistoryEvent*>& removes) {
    for (const HistoryEvent* w : inserts) {
      if (!AckedOk(*w) || Done(*w) >= lookup.invoked) continue;
      bool removable = false;
      for (const HistoryEvent* r : removes) {
        if (!MayHaveApplied(*r)) continue;
        // r can linearize after w and before the lookup's return.
        if (r->invoked < lookup.completed && Done(*r) > w->invoked) {
          removable = true;
          break;
        }
      }
      if (!removable) {
        Flag(lookup, "NotFound despite acked insert event " +
                         std::to_string(w->id) +
                         " with no remove that could explain it");
        return;
      }
    }
  }

  // ---- ledger keys ------------------------------------------------------

  void CheckLedgerKey(const std::vector<const HistoryEvent*>& ops) {
    std::vector<const HistoryEvent*> appends, lookups;
    std::map<std::string, const HistoryEvent*> append_by_token;
    for (const HistoryEvent* e : ops) {
      if (e->op == OpCode::kAppend) {
        appends.push_back(e);
        auto [it, fresh] = append_by_token.emplace(e->argument, e);
        if (!fresh) {
          Flag(*e, "append token '" + e->argument +
                       "' reused; unique tokens are required for checking");
          return;
        }
      } else if (e->op == OpCode::kLookup) {
        lookups.push_back(e);
      }
    }

    for (const HistoryEvent* lookup : lookups) {
      if (lookup->completed == 0) continue;
      if (lookup->result == StatusCode::kNotFound) {
        for (const HistoryEvent* a : appends) {
          if (AckedOk(*a) && Done(*a) < lookup->invoked) {
            Flag(*lookup, "NotFound despite acked append event " +
                              std::to_string(a->id));
            break;
          }
        }
        continue;
      }
      if (lookup->result != StatusCode::kOk) continue;
      CheckLedgerRead(*lookup, append_by_token, appends);
    }
  }

  void CheckLedgerRead(
      const HistoryEvent& lookup,
      const std::map<std::string, const HistoryEvent*>& append_by_token,
      const std::vector<const HistoryEvent*>& appends) {
    std::vector<std::string> tokens = LedgerTokens(lookup.returned);
    std::map<std::string, std::size_t> position;
    std::map<const HistoryEvent*, std::size_t> present;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const std::string& token = tokens[i];
      if (token.empty() || token.back() != ';') {
        Flag(lookup, "torn ledger value: fragment '" + token +
                         "' lacks its terminator");
        return;
      }
      auto known = append_by_token.find(token);
      if (known == append_by_token.end()) {
        Flag(lookup, "ledger holds token '" + token +
                         "' that no append ever wrote");
        return;
      }
      if (!position.emplace(token, i).second) {
        Flag(lookup, "token '" + token +
                         "' appears twice: an append was double-applied");
        return;
      }
      if (known->second->invoked >= lookup.completed) {
        Flag(lookup, "ledger holds token '" + token +
                         "' before its append was invoked");
        return;
      }
      present.emplace(known->second, i);
    }
    // Nothing acked before the lookup began may be missing.
    for (const HistoryEvent* a : appends) {
      if (AckedOk(*a) && Done(*a) < lookup.invoked && !present.count(a)) {
        Flag(lookup, "acked append event " + std::to_string(a->id) +
                         " (token '" + a->argument +
                         "') missing from ledger");
        return;
      }
    }
    // Real-time order: if a definitely finished before b began and both
    // are present, a's token must precede b's.
    for (const auto& [a, pos_a] : present) {
      for (const auto& [b, pos_b] : present) {
        if (Done(*a) < b->invoked && pos_a > pos_b) {
          Flag(lookup, "ledger order inverts real time: token '" +
                           a->argument + "' after '" + b->argument + "'");
          return;
        }
      }
    }
  }

  const std::vector<HistoryEvent>& events_;
  HistoryCheckResult result_;
};

}  // namespace

std::string HistoryCheckResult::ToString() const {
  if (violations.empty()) return "";
  std::ostringstream out;
  out << violations.size() << " history violation(s):\n";
  for (const HistoryViolation& v : violations) {
    out << "  event " << v.event_id << " key '" << v.key << "': "
        << v.message << "\n";
  }
  return out.str();
}

HistoryCheckResult CheckHistory(const std::vector<HistoryEvent>& events) {
  return Checker(events).Run();
}

}  // namespace zht
