// End-to-end tests of the ZHT core: client API over a LocalCluster,
// redirects and lazy membership refresh, replication and consistency,
// failover after node death, dynamic joins with partition migration,
// planned departures, and the broadcast primitive.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "common/rng.h"
#include "core/local_cluster.h"
#include "core/zht_client.h"

namespace zht {
namespace {

LocalClusterOptions SmallCluster(int instances, int replicas = 0) {
  LocalClusterOptions options;
  options.num_instances = static_cast<std::uint32_t>(instances);
  options.cluster.num_replicas = replicas;
  return options;
}

ZhtClientOptions FastClient() {
  ZhtClientOptions options;
  options.cluster.op_timeout = 200 * kNanosPerMilli;
  options.failure_detector.failures_to_mark_dead = 1;
  options.failure_detector.initial_backoff = 0;
  options.sleep_on_backoff = false;
  return options;
}

TEST(ZhtCoreTest, BasicCrudSingleInstance) {
  auto cluster = LocalCluster::Start(SmallCluster(1));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();
  EXPECT_TRUE(client->Insert("key", "value").ok());
  EXPECT_EQ(client->Lookup("key").value(), "value");
  EXPECT_TRUE(client->Remove("key").ok());
  EXPECT_EQ(client->Lookup("key").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client->Remove("key").code(), StatusCode::kNotFound);
}

TEST(ZhtCoreTest, AppendBuildsValueIncrementally) {
  auto cluster = LocalCluster::Start(SmallCluster(4));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();
  EXPECT_TRUE(client->Append("dir:/", "file1;").ok());
  EXPECT_TRUE(client->Append("dir:/", "file2;").ok());
  EXPECT_TRUE(client->Append("dir:/", "file3;").ok());
  EXPECT_EQ(client->Lookup("dir:/").value(), "file1;file2;file3;");
}

TEST(ZhtCoreTest, ManyKeysSpreadAcrossInstances) {
  auto cluster = LocalCluster::Start(SmallCluster(8));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();
  Rng rng(2);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; ++i) {
    std::string key = rng.AsciiString(15);
    std::string value = rng.AsciiString(132);
    ASSERT_TRUE(client->Insert(key, value).ok());
    model[key] = value;
  }
  for (const auto& [key, value] : model) {
    EXPECT_EQ(client->Lookup(key).value(), value);
  }
  // Every instance should have received a share.
  for (std::size_t i = 0; i < (*cluster)->instance_count(); ++i) {
    EXPECT_GT((*cluster)->server(i)->stats().ops, 0u) << "instance " << i;
  }
}

TEST(ZhtCoreTest, PingAllInstances) {
  auto cluster = LocalCluster::Start(SmallCluster(4));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();
  for (InstanceId i = 0; i < 4; ++i) {
    EXPECT_TRUE(client->Ping(i).ok());
  }
  EXPECT_FALSE(client->Ping(99).ok());
}

TEST(ZhtCoreTest, StaleClientIsRedirectedAndLearns) {
  auto cluster = LocalCluster::Start(SmallCluster(4));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient(FastClient());
  ASSERT_TRUE(client->Insert("stale-key", "v").ok());

  // Move the key's partition to another instance behind the client's back,
  // informing only the servers (as the manager would).
  PartitionId p = client->table().PartitionOfKey("stale-key");
  InstanceId old_owner = client->table().OwnerOf(p);
  InstanceId new_owner = (old_owner + 1) % 4;
  ASSERT_TRUE((*cluster)
                  ->server(old_owner)
                  ->MigratePartitionTo(
                      p, (*cluster)->instance_address(new_owner))
                  .ok());
  for (std::size_t i = 0; i < 4; ++i) {
    // Push updated ownership to every server directly.
    MembershipTable t = (*cluster)->server(i)->table();
    Request push;
    push.op = OpCode::kMembershipPush;
    push.server_origin = true;
    MembershipTable updated = t;
    updated.SetOwner(p, new_owner);
    push.value = updated.EncodeFull();
    (*cluster)->server(i)->Handle(std::move(push));
  }

  // The client still believes old_owner owns the key → gets REDIRECT with a
  // piggybacked table, retries, succeeds.
  auto value = client->Lookup("stale-key");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(*value, "v");
  EXPECT_GE(client->stats().redirects_followed, 1u);
  EXPECT_EQ(client->table().OwnerOf(p), new_owner);
}

TEST(ZhtCoreTest, ReplicationPlacesCopiesOnSuccessors) {
  auto cluster = LocalCluster::Start(SmallCluster(4, /*replicas=*/2));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client->Insert("rk" + std::to_string(i), "v").ok());
  }
  (*cluster)->FlushAllAsyncReplication();
  // 100 pairs × (1 primary + 2 replicas) = 300 stored entries.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    total += (*cluster)->server(i)->TotalEntries();
  }
  EXPECT_EQ(total, 300u);
}

TEST(ZhtCoreTest, LookupFailsOverToReplicaAfterPrimaryDeath) {
  auto cluster = LocalCluster::Start(SmallCluster(4, /*replicas=*/2));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient(FastClient());
  ASSERT_TRUE(client->Insert("precious", "data").ok());
  (*cluster)->FlushAllAsyncReplication();

  PartitionId p = client->table().PartitionOfKey("precious");
  InstanceId primary = client->table().OwnerOf(p);
  (*cluster)->KillInstance(primary);

  auto value = client->Lookup("precious");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(*value, "data");
  EXPECT_GE(client->stats().failovers, 1u);
  EXPECT_FALSE(client->table().Instance(primary).alive);
}

TEST(ZhtCoreTest, WritesContinueAfterPrimaryDeath) {
  auto cluster = LocalCluster::Start(SmallCluster(4, /*replicas=*/1));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient(FastClient());
  ASSERT_TRUE(client->Insert("wkey", "v1").ok());
  (*cluster)->FlushAllAsyncReplication();

  PartitionId p = client->table().PartitionOfKey("wkey");
  InstanceId primary = client->table().OwnerOf(p);
  (*cluster)->KillInstance(primary);

  // The secondary accepts the write directly (§III.J).
  EXPECT_TRUE(client->Insert("wkey", "v2").ok());
  EXPECT_EQ(client->Lookup("wkey").value(), "v2");
}

TEST(ZhtCoreTest, AllReplicasDeadReturnsUnavailable) {
  auto cluster = LocalCluster::Start(SmallCluster(4, /*replicas=*/1));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient(FastClient());
  ASSERT_TRUE(client->Insert("doomed", "v").ok());
  (*cluster)->FlushAllAsyncReplication();

  PartitionId p = client->table().PartitionOfKey("doomed");
  auto chain = client->table().ReplicaChain(p, 1);
  for (InstanceId id : chain) (*cluster)->KillInstance(id);

  auto value = client->Lookup("doomed");
  EXPECT_FALSE(value.ok());
}

TEST(ZhtCoreTest, FailureReportTriggersManagerRepair) {
  auto cluster = LocalCluster::Start(SmallCluster(6, /*replicas=*/2));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient(FastClient());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(client->Insert("fr" + std::to_string(i), "v").ok());
  }
  (*cluster)->FlushAllAsyncReplication();

  // Kill instance 2; the next op touching it reports the failure to the
  // manager, which reassigns ownership and rebuilds replicas.
  (*cluster)->KillInstance(2);
  for (int i = 0; i < 60; ++i) {
    auto value = client->Lookup("fr" + std::to_string(i));
    EXPECT_TRUE(value.ok()) << "key fr" << i << ": "
                            << value.status().ToString();
  }
  EXPECT_GE((*cluster)->manager(0)->stats().failures_handled, 1u);

  // Manager's table no longer routes anything to the dead instance.
  MembershipTable table = (*cluster)->manager(0)->TableSnapshot();
  for (PartitionId p = 0; p < table.num_partitions(); ++p) {
    EXPECT_NE(table.OwnerOf(p), 2u);
  }
}

TEST(ZhtCoreTest, DynamicJoinMovesPartitionsWithoutDataLoss) {
  auto cluster = LocalCluster::Start(SmallCluster(2));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient(FastClient());
  Rng rng(3);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 300; ++i) {
    std::string key = rng.AsciiString(15);
    model[key] = "v" + std::to_string(i);
    ASSERT_TRUE(client->Insert(key, model[key]).ok());
  }

  auto joined = (*cluster)->JoinNewInstance();
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();

  // All data still reachable (old client learns via redirects).
  for (const auto& [key, value] : model) {
    auto got = client->Lookup(key);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, value);
  }

  // The new instance actually took on load.
  MembershipTable table = (*cluster)->manager(0)->TableSnapshot();
  EXPECT_GT(table.PartitionsOf(*joined).size(), 0u);
  EXPECT_GT((*cluster)->server(*joined)->TotalEntries(), 0u);
}

TEST(ZhtCoreTest, RepeatedJoinsKeepClusterBalanced) {
  auto cluster = LocalCluster::Start(SmallCluster(2));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient(FastClient());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client->Insert("bal" + std::to_string(i), "v").ok());
  }
  for (int j = 0; j < 3; ++j) {
    ASSERT_TRUE((*cluster)->JoinNewInstance().ok());
  }
  MembershipTable table = (*cluster)->manager(0)->TableSnapshot();
  EXPECT_EQ(table.instance_count(), 5u);
  // No instance should own more than half the partitions after 3 joins.
  for (InstanceId i = 0; i < 5; ++i) {
    EXPECT_LT(table.PartitionsOf(i).size(), table.num_partitions() / 2 + 1);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(client->Lookup("bal" + std::to_string(i)).ok()) << i;
  }
}

TEST(ZhtCoreTest, PlannedDepartureDrainsInstance) {
  auto cluster = LocalCluster::Start(SmallCluster(3));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient(FastClient());
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(client->Insert("dep" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE((*cluster)->manager(0)->Depart(1).ok());

  MembershipTable table = (*cluster)->manager(0)->TableSnapshot();
  EXPECT_EQ(table.PartitionsOf(1).size(), 0u);
  EXPECT_FALSE(table.Instance(1).alive);
  for (int i = 0; i < 150; ++i) {
    EXPECT_TRUE(client->Lookup("dep" + std::to_string(i)).ok()) << i;
  }
}

TEST(ZhtCoreTest, BroadcastReachesEveryInstance) {
  auto cluster = LocalCluster::Start(SmallCluster(7));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();
  ASSERT_TRUE(client->Broadcast("bcast-key", "everywhere").ok());
  (*cluster)->FlushAllAsyncReplication();
  // Forwarding is a tree; children enqueue further sends after their own
  // flush — settle with a couple of rounds.
  for (int round = 0; round < 3; ++round) {
    (*cluster)->FlushAllAsyncReplication();
  }
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_GE((*cluster)->server(i)->stats().broadcasts, 1u)
        << "instance " << i;
  }
}

TEST(ZhtCoreTest, MembershipRefreshPullsTable) {
  auto cluster = LocalCluster::Start(SmallCluster(3));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient();
  EXPECT_TRUE(client->RefreshMembership().ok());
  EXPECT_EQ(client->table().instance_count(), 3u);
}

TEST(ZhtCoreTest, ClusterRunsOverRealTcp) {
  LocalClusterOptions options = SmallCluster(3, /*replicas=*/1);
  options.transport = ClusterTransport::kTcp;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto client = (*cluster)->CreateClient();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client->Insert("tcp" + std::to_string(i),
                               "value" + std::to_string(i)).ok());
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(client->Lookup("tcp" + std::to_string(i)).value(),
              "value" + std::to_string(i));
  }
  (*cluster)->FlushAllAsyncReplication();
}

TEST(ZhtCoreTest, ClusterRunsOverUdp) {
  LocalClusterOptions options = SmallCluster(3);
  options.transport = ClusterTransport::kUdp;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  auto client = (*cluster)->CreateClient();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client->Insert("udp" + std::to_string(i), "v").ok());
  }
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(client->Lookup("udp" + std::to_string(i)).value(), "v");
  }
}

TEST(ZhtCoreTest, ConcurrentClientsNoLostUpdates) {
  auto cluster = LocalCluster::Start(SmallCluster(4));
  ASSERT_TRUE(cluster.ok());
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = (*cluster)->CreateClient();
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        if (!client->Insert(key, key).ok()) ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  auto client = (*cluster)->CreateClient();
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
      EXPECT_EQ(client->Lookup(key).value(), key);
    }
  }
}

TEST(ZhtCoreTest, ConcurrentAppendsAllSurvive) {
  // The paper's headline append use case: many writers extending one
  // directory entry without a distributed lock (§III.I).
  auto cluster = LocalCluster::Start(SmallCluster(2));
  ASSERT_TRUE(cluster.ok());
  constexpr int kThreads = 4;
  constexpr int kAppendsPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = (*cluster)->CreateClient();
      for (int i = 0; i < kAppendsPerThread; ++i) {
        std::string entry =
            "f" + std::to_string(t) + "_" + std::to_string(i) + ";";
        ASSERT_TRUE(client->Append("shared-dir", entry).ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  auto client = (*cluster)->CreateClient();
  std::string value = client->Lookup("shared-dir").value();
  // Every appended entry appears exactly once.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kAppendsPerThread; ++i) {
      std::string entry =
          "f" + std::to_string(t) + "_" + std::to_string(i) + ";";
      auto pos = value.find(entry);
      EXPECT_NE(pos, std::string::npos) << entry;
      if (pos != std::string::npos) {
        EXPECT_EQ(value.find(entry, pos + 1), std::string::npos)
            << entry << " duplicated";
      }
    }
  }
}

// Pins the documented client status contract (see zht_client.h):
//  - absent keys surface kNotFound from Lookup and Remove,
//  - kRedirect/kMigrating never escape the public API even while the
//    membership moves under the client,
//  - a dead replica chain surfaces kUnavailable, not a raw transport code.
TEST(ZhtCoreTest, StatusContractHoldsAcrossClusterEvents) {
  auto cluster = LocalCluster::Start(SmallCluster(3));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient(FastClient());

  EXPECT_EQ(client->Lookup("absent").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client->Remove("absent").code(), StatusCode::kNotFound);
  EXPECT_TRUE(client->Insert("contract", "v1").ok());
  EXPECT_TRUE(client->Insert("contract", "v2").ok());  // overwrite is kOk
  EXPECT_EQ(client->Lookup("contract").value(), "v2");

  // Shuffle ownership behind the client's back; every op must still resolve
  // to a terminal status — the redirect loop is internal.
  ASSERT_TRUE((*cluster)->JoinNewInstance().ok());
  for (int i = 0; i < 50; ++i) {
    std::string key = "contract-" + std::to_string(i);
    ASSERT_TRUE(client->Insert(key, "v").ok());
    StatusCode code = client->Lookup(key).status().code();
    EXPECT_TRUE(code == StatusCode::kOk || code == StatusCode::kNotFound)
        << StatusCodeName(code);
    EXPECT_NE(code, StatusCode::kRedirect);
    EXPECT_NE(code, StatusCode::kMigrating);
  }

  // Kill the whole cluster: the fast detector marks each instance dead and
  // the chain exhausts, which the contract maps to kUnavailable.
  for (std::size_t i = 0; i < (*cluster)->instance_count(); ++i) {
    (*cluster)->KillInstance(static_cast<InstanceId>(i));
  }
  EXPECT_EQ(client->Insert("contract", "v3").code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(client->Lookup("contract").status().code(),
            StatusCode::kUnavailable);
}

TEST(FailureDetectorTest, TrackedStateIsBounded) {
  FailureDetectorOptions options;
  options.max_tracked = 8;
  FailureDetector detector(options);
  // Far more distinct destinations than the cap: the map must not grow
  // past it (a long-lived client touching many short-lived nodes would
  // otherwise leak an entry per departed node).
  for (std::uint16_t port = 1; port <= 100; ++port) {
    detector.RecordFailure(NodeAddress{"10.0.0.1", port});
    EXPECT_LE(detector.tracked_count(), 8u);
  }
  EXPECT_EQ(detector.tracked_count(), 8u);
}

TEST(FailureDetectorTest, PruneExceptDropsDepartedNodes) {
  FailureDetector detector;
  NodeAddress kept{"10.0.0.1", 1};
  NodeAddress departed{"10.0.0.1", 2};
  detector.RecordFailure(kept);
  detector.RecordFailure(departed);
  detector.RecordFailure(departed);
  ASSERT_EQ(detector.tracked_count(), 2u);

  detector.PruneExcept({kept});
  EXPECT_EQ(detector.tracked_count(), 1u);
  EXPECT_EQ(detector.ConsecutiveFailures(kept), 1);
  // The departed node's streak is gone: if it ever rejoins at the same
  // address it starts from a clean slate.
  EXPECT_EQ(detector.ConsecutiveFailures(departed), 0);
  EXPECT_EQ(detector.BackoffFor(departed), 0);
}

TEST(FailureDetectorTest, ClientPrunesDetectorOnMembershipUpdate) {
  // End-to-end: a client that marked a node dead must shed that state when
  // a membership update removes the node from the table.
  auto cluster = LocalCluster::Start(SmallCluster(3, /*replicas=*/1));
  ASSERT_TRUE(cluster.ok());
  auto client = (*cluster)->CreateClient(FastClient());
  ASSERT_TRUE(client->Insert("prune-probe", "v").ok());

  (*cluster)->KillInstance(2);
  // Drive traffic until the dead node is reported and the manager's delta
  // (which drops it from the chain) reaches this client.
  for (int i = 0; i < 50; ++i) {
    client->Insert("prune-" + std::to_string(i), "v");
  }
  ASSERT_TRUE(client->RefreshMembership(0).ok());
  std::size_t live = 0;
  for (const InstanceInfo& info : client->table().instances()) {
    if (info.alive) ++live;
  }
  ASSERT_LT(live, 3u);
  // The detector only tracks addresses still in the table; the dead node's
  // entry must have been evicted by the update-driven prune. (All table
  // addresses are still present, dead or not, so the bound is the table
  // size — the point is it cannot exceed it.)
  EXPECT_LE(client->detector_tracked_count(),
            client->table().instance_count());
}

TEST(DecorrelatedBackoffTest, GrowthScheduleAndCap) {
  const Nanos base = 1 * kNanosPerMilli;
  const Nanos cap = 64 * kNanosPerMilli;
  Rng rng(42);

  // First retry (prev below base) is always exactly the base — no jitter,
  // so a single transient migration costs the minimum wait.
  EXPECT_EQ(DecorrelatedBackoff(0, base, cap, rng), base);
  EXPECT_EQ(DecorrelatedBackoff(base - 1, base, cap, rng), base);

  // From then on every draw falls in [base, min(cap, prev * 3)]: bounded
  // below (never busy-spins) and growing exponentially in expectation.
  Nanos prev = base;
  Nanos largest = 0;
  for (int i = 0; i < 200; ++i) {
    Nanos next = DecorrelatedBackoff(prev, base, cap, rng);
    EXPECT_GE(next, base);
    EXPECT_LE(next, cap);
    EXPECT_LE(next, std::max(base, prev * 3));
    largest = std::max(largest, next);
    prev = next;
  }
  // With 200 draws the schedule must have climbed into the cap's
  // neighborhood (it cannot, with any plausible seed, stay near the base).
  EXPECT_GE(largest, cap / 2);

  // Degenerate knobs stay sane: cap below base clamps to base, and a zero
  // base disables the wait entirely.
  EXPECT_EQ(DecorrelatedBackoff(0, base, base / 2, rng), base);
  EXPECT_EQ(DecorrelatedBackoff(123, 0, cap, rng), 0);

  // prev at the cap must not overflow: the window stays [base, cap].
  for (int i = 0; i < 50; ++i) {
    Nanos at_cap = DecorrelatedBackoff(cap, base, cap, rng);
    EXPECT_GE(at_cap, base);
    EXPECT_LE(at_cap, cap);
  }

  // Determinism: the same seed yields the same schedule (what makes a
  // failing retry trace reproducible).
  Rng a(7), b(7);
  Nanos pa = 0, pb = 0;
  for (int i = 0; i < 32; ++i) {
    pa = DecorrelatedBackoff(pa, base, cap, a);
    pb = DecorrelatedBackoff(pb, base, cap, b);
    EXPECT_EQ(pa, pb);
  }
}

}  // namespace
}  // namespace zht
