#include <gtest/gtest.h>

#include "membership/membership_table.h"

namespace zht {
namespace {

std::vector<NodeAddress> Addresses(int n) {
  std::vector<NodeAddress> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(NodeAddress{"10.0.0." + std::to_string(i + 1),
                              static_cast<std::uint16_t>(50000 + i)});
  }
  return out;
}

TEST(NodeAddressTest, ParseAndFormat) {
  auto a = NodeAddress::Parse("10.1.2.3:8080");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->host, "10.1.2.3");
  EXPECT_EQ(a->port, 8080);
  EXPECT_EQ(a->ToString(), "10.1.2.3:8080");
  EXPECT_FALSE(NodeAddress::Parse("nocolon").ok());
  EXPECT_FALSE(NodeAddress::Parse("host:99999").ok());
  EXPECT_FALSE(NodeAddress::Parse("host:abc").ok());
  EXPECT_FALSE(NodeAddress::Parse(":123").ok());
}

TEST(MembershipTest, UniformBootstrapSplitsEvenly) {
  auto table = MembershipTable::CreateUniform(64, Addresses(4));
  EXPECT_EQ(table.epoch(), 1u);
  EXPECT_EQ(table.num_partitions(), 64u);
  EXPECT_EQ(table.instance_count(), 4u);
  for (InstanceId i = 0; i < 4; ++i) {
    EXPECT_EQ(table.PartitionsOf(i).size(), 16u) << "instance " << i;
  }
  // Contiguity: partition p belongs to instance p*k/n.
  EXPECT_EQ(table.OwnerOf(0), 0u);
  EXPECT_EQ(table.OwnerOf(15), 0u);
  EXPECT_EQ(table.OwnerOf(16), 1u);
  EXPECT_EQ(table.OwnerOf(63), 3u);
}

TEST(MembershipTest, UnevenSplitCoversAll) {
  auto table = MembershipTable::CreateUniform(10, Addresses(3));
  std::size_t total = 0;
  for (InstanceId i = 0; i < 3; ++i) {
    auto parts = table.PartitionsOf(i).size();
    EXPECT_GE(parts, 3u);
    EXPECT_LE(parts, 4u);
    total += parts;
  }
  EXPECT_EQ(total, 10u);
}

TEST(MembershipTest, InstancesPerNodeGrouping) {
  auto table = MembershipTable::CreateUniform(16, Addresses(8), 4);
  EXPECT_EQ(table.Instance(0).physical_node, 0u);
  EXPECT_EQ(table.Instance(3).physical_node, 0u);
  EXPECT_EQ(table.Instance(4).physical_node, 1u);
  EXPECT_EQ(table.Instance(7).physical_node, 1u);
}

TEST(MembershipTest, ReplicaChainUsesDistinctPhysicalNodes) {
  // 8 instances on 4 nodes (2 per node).
  auto table = MembershipTable::CreateUniform(16, Addresses(8), 2);
  auto chain = table.ReplicaChain(0, 2);
  ASSERT_EQ(chain.size(), 3u);
  std::set<std::uint32_t> nodes;
  for (InstanceId id : chain) {
    nodes.insert(table.Instance(id).physical_node);
  }
  EXPECT_EQ(nodes.size(), 3u) << "replicas share a physical node";
}

TEST(MembershipTest, ReplicaChainIsSuccessorBased) {
  auto table = MembershipTable::CreateUniform(16, Addresses(4));
  auto chain = table.ReplicaChain(0, 2);  // partition 0 owned by instance 0
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], 0u);
  EXPECT_EQ(chain[1], 1u);  // nearest successor
  EXPECT_EQ(chain[2], 2u);
}

TEST(MembershipTest, ReplicaChainSkipsDeadInstances) {
  auto table = MembershipTable::CreateUniform(16, Addresses(4));
  table.MarkDead(1);
  auto chain = table.ReplicaChain(0, 2);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[1], 2u);
  EXPECT_EQ(chain[2], 3u);
}

TEST(MembershipTest, ReplicaChainCapsAtAvailableNodes) {
  auto table = MembershipTable::CreateUniform(16, Addresses(2));
  auto chain = table.ReplicaChain(0, 5);  // only 2 nodes exist
  EXPECT_EQ(chain.size(), 2u);
}

TEST(MembershipTest, MostAndLeastLoaded) {
  auto table = MembershipTable::CreateUniform(16, Addresses(4));
  // Move partitions 0..3 from instance 0 to instance 1: 1 has 8, 0 has 0.
  for (PartitionId p = 0; p < 4; ++p) table.SetOwner(p, 1);
  EXPECT_EQ(*table.MostLoaded(), 1u);
  EXPECT_EQ(*table.LeastLoaded(), 0u);
  EXPECT_EQ(*table.LeastLoaded(/*excluding=*/0u), 2u);
}

TEST(MembershipTest, EpochBumpsOnEveryMutation) {
  auto table = MembershipTable::CreateUniform(16, Addresses(2));
  std::uint32_t e = table.epoch();
  table.SetOwner(3, 1);
  EXPECT_EQ(table.epoch(), e + 1);
  table.AddInstance(NodeAddress{"10.0.0.9", 50009}, 9);
  EXPECT_EQ(table.epoch(), e + 2);
  table.MarkDead(0);
  EXPECT_EQ(table.epoch(), e + 3);
  table.MarkAlive(0);
  EXPECT_EQ(table.epoch(), e + 4);
}

TEST(MembershipTest, FullSnapshotRoundTrip) {
  auto table = MembershipTable::CreateUniform(100, Addresses(7), 2,
                                              HashKind::kJenkins);
  table.SetOwner(42, 3);
  table.MarkDead(5);
  auto decoded = MembershipTable::DecodeFull(table.EncodeFull());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, table);
  EXPECT_EQ(decoded->space().hash_kind(), HashKind::kJenkins);
}

TEST(MembershipTest, SnapshotIsCompact) {
  // 1M partitions over 1024 instances: RLE must keep this small (the paper
  // bounds the table at ~32 B/node; ownership adds only run overhead).
  auto table = MembershipTable::CreateUniform(1u << 20, Addresses(64), 1);
  std::string encoded = table.EncodeFull();
  EXPECT_LT(encoded.size(), 8192u);
}

TEST(MembershipTest, DeltaAppliesIncrementally) {
  auto table = MembershipTable::CreateUniform(32, Addresses(4));
  MembershipTable replica = table;

  table.SetOwner(5, 2);
  table.SetOwner(6, 2);
  InstanceId added = table.AddInstance(NodeAddress{"10.0.0.99", 50099}, 9);
  table.SetOwner(7, added);

  std::string delta = table.EncodeDelta(replica.epoch());
  EXPECT_LT(delta.size(), table.EncodeFull().size());
  ASSERT_TRUE(replica.ApplyUpdate(delta).ok());
  EXPECT_EQ(replica, table);
}

TEST(MembershipTest, DeltaIsIdempotent) {
  auto table = MembershipTable::CreateUniform(32, Addresses(4));
  MembershipTable replica = table;
  table.SetOwner(5, 2);
  std::string delta = table.EncodeDelta(replica.epoch());
  ASSERT_TRUE(replica.ApplyUpdate(delta).ok());
  ASSERT_TRUE(replica.ApplyUpdate(delta).ok());  // replay is harmless
  EXPECT_EQ(replica, table);
}

TEST(MembershipTest, StaleSnapshotIgnored) {
  auto table = MembershipTable::CreateUniform(32, Addresses(4));
  std::string old_snapshot = table.EncodeFull();
  table.SetOwner(1, 2);
  ASSERT_TRUE(table.ApplyUpdate(old_snapshot).ok());
  EXPECT_EQ(table.OwnerOf(1), 2u);  // not rolled back
}

TEST(MembershipTest, DeltaFromUnknownEpochFallsBackToFull) {
  auto table = MembershipTable::CreateUniform(32, Addresses(4));
  for (int i = 0; i < 10; ++i) table.SetOwner(1, i % 4);
  // since_epoch = 0 predates bootstrap history → full snapshot.
  std::string update = table.EncodeDelta(0);
  auto decoded = MembershipTable::DecodeFull(update);
  EXPECT_TRUE(decoded.ok());
}

TEST(MembershipTest, DeltaAheadOfReceiverRejected) {
  auto table = MembershipTable::CreateUniform(32, Addresses(4));
  MembershipTable behind = table;
  table.SetOwner(1, 1);
  table.SetOwner(2, 2);
  // Delta starting *after* the receiver's epoch cannot apply.
  std::string delta = table.EncodeDelta(table.epoch() - 1);
  Status status = behind.ApplyUpdate(delta);
  EXPECT_FALSE(status.ok());
}

TEST(MembershipTest, CorruptUpdateRejected) {
  auto table = MembershipTable::CreateUniform(32, Addresses(4));
  EXPECT_FALSE(table.ApplyUpdate("garbage").ok());
  EXPECT_FALSE(table.ApplyUpdate("").ok());
  EXPECT_FALSE(MembershipTable::DecodeFull("x").ok());
}

TEST(MembershipTest, MemoryFootprintMatchesPaperBudget) {
  // §III.A: "membership is very small, 32 bytes per entry, 1 million nodes
  // only need 32MB". Our serialized entry must stay in that ballpark.
  auto table = MembershipTable::CreateUniform(4096, Addresses(256));
  std::string encoded = table.EncodeFull();
  double per_instance =
      static_cast<double>(encoded.size()) / table.instance_count();
  EXPECT_LT(per_instance, 64.0);
}

}  // namespace
}  // namespace zht
