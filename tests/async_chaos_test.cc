// Mailbox chaos (`ctest -L chaos`): a seeded fault schedule — delays,
// duplicates, dropped APPEND responses — over a 4-reactor TCP cluster
// whose every request routes through shard mailboxes (one shard per
// reactor, connections re-homed by first key). Dropped responses force
// client retries that dedup must absorb; duplicates and delays reorder
// mailbox traffic without changing outcomes. The history checker is the
// oracle, exactly as in the synchronous chaos suite.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/local_cluster.h"
#include "history_checker.h"

namespace zht {
namespace {

constexpr int kThreads = 6;
constexpr int kRegisterKeys = 10;
constexpr int kLedgerKeys = 4;

std::string RegisterKey(int i) { return "reg" + std::to_string(i); }
std::string LedgerKey(int i) { return "led" + std::to_string(i); }

int EffectiveReactors(int wanted) {
  const unsigned cores = std::thread::hardware_concurrency();
  const int cap = cores == 0 ? 1 : static_cast<int>(cores);
  return wanted < cap ? wanted : cap;
}

ZhtClientOptions ChaosClient() {
  ZhtClientOptions options;
  options.max_attempts = 24;
  options.failure_detector.failures_to_mark_dead = 4;
  options.failure_detector.initial_backoff = 0;
  options.sleep_on_backoff = false;
  return options;
}

TEST(AsyncChaosTest, MailboxRoutedClusterLinearizesUnderFaults) {
  LocalClusterOptions options;
  options.num_instances = 2;
  options.num_partitions = 32;
  options.cluster.num_replicas = 1;
  options.transport = ClusterTransport::kTcp;
  options.num_reactors = EffectiveReactors(4);
  options.fault_plan = std::make_shared<FaultPlan>(777);
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  options.fault_plan->AddRule({.kind = FaultKind::kDelay,
                               .probability = 0.10,
                               .delay = 2 * kNanosPerMilli});
  options.fault_plan->AddRule(
      {.kind = FaultKind::kDuplicate, .probability = 0.08});
  options.fault_plan->AddRule({.kind = FaultKind::kDropResponse,
                               .op = OpCode::kAppend,
                               .client_only = true,
                               .probability = 0.08});

  HistoryRecorder recorder;
  std::vector<ClientHandle> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back((*cluster)->CreateClient(ChaosClient()));
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto& client = *clients[static_cast<std::size_t>(t)].get();
      const std::uint64_t id = static_cast<std::uint64_t>(t + 1);
      Rng rng(5100 + t);
      int counter = 0;
      for (int op = 0; op < 50; ++op) {
        const double dice = rng.NextDouble();
        if (dice < 0.35) {
          std::string key =
              RegisterKey(static_cast<int>(rng.Below(kRegisterKeys)));
          std::string value =
              "v" + std::to_string(id) + "_" + std::to_string(++counter);
          std::uint64_t rec = recorder.Begin(id, OpCode::kInsert, key, value);
          recorder.End(rec, client.Insert(key, value).code());
        } else if (dice < 0.60) {
          std::string key =
              RegisterKey(static_cast<int>(rng.Below(kRegisterKeys)));
          std::uint64_t rec = recorder.Begin(id, OpCode::kLookup, key, "");
          auto got = client.Lookup(key);
          recorder.End(rec, got.status().code(), got.ok() ? *got : "");
        } else if (dice < 0.80) {
          std::string key =
              LedgerKey(static_cast<int>(rng.Below(kLedgerKeys)));
          std::string token =
              "c" + std::to_string(id) + "t" + std::to_string(++counter) + ";";
          std::uint64_t rec = recorder.Begin(id, OpCode::kAppend, key, token);
          recorder.End(rec, client.Append(key, token).code());
        } else {
          // Owner-spanning batch: the carrier scatters groups across the
          // reactors' shards and gathers through the mailboxes.
          std::vector<KeyValue> pairs;
          std::vector<std::uint64_t> recs;
          for (int i = 0; i < 4; ++i) {
            std::string key =
                RegisterKey(static_cast<int>(rng.Below(kRegisterKeys)));
            std::string value =
                "b" + std::to_string(id) + "_" + std::to_string(++counter);
            recs.push_back(recorder.Begin(id, OpCode::kInsert, key, value));
            pairs.push_back(KeyValue{std::move(key), std::move(value)});
          }
          std::vector<Status> statuses = client.MultiInsert(pairs);
          for (std::size_t i = 0; i < recs.size(); ++i) {
            recorder.End(recs[i], statuses[i].code());
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  options.fault_plan->Clear();
  (*cluster)->FlushAllAsyncReplication();
  auto reader = (*cluster)->CreateClient(ChaosClient());
  for (int i = 0; i < kRegisterKeys; ++i) {
    std::uint64_t rec =
        recorder.Begin(999, OpCode::kLookup, RegisterKey(i), "");
    auto got = reader->Lookup(RegisterKey(i));
    recorder.End(rec, got.status().code(), got.ok() ? *got : "");
  }
  for (int i = 0; i < kLedgerKeys; ++i) {
    std::uint64_t rec = recorder.Begin(999, OpCode::kLookup, LedgerKey(i), "");
    auto got = reader->Lookup(LedgerKey(i));
    recorder.End(rec, got.status().code(), got.ok() ? *got : "");
  }

  auto result = CheckHistory(recorder.Events());
  EXPECT_TRUE(result.ok())
      << result.events_checked << " events:\n" << result.ToString();

  // The mailbox path was really exercised: per-shard telemetry is live on
  // every instance (depth histograms exist even when drains found the
  // rings empty).
  for (std::size_t i = 0; i < (*cluster)->instance_count(); ++i) {
    ZhtServer* server = (*cluster)->server(i);
    EXPECT_EQ(server->num_shards(),
              static_cast<std::size_t>(options.num_reactors));
    (void)server->ShardMailboxDepth(0);
    std::vector<std::size_t> held = server->ShardPartitionCounts();
    std::size_t total = 0;
    for (std::size_t h : held) total += h;
    EXPECT_GT(total, 0u) << "instance " << i << " holds no partitions";
  }
}

}  // namespace
}  // namespace zht
