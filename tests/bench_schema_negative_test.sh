#!/usr/bin/env bash
# Negative tests for the BENCH_*.json schema validator: malformed, empty,
# and schema-violating reports MUST be rejected (exit 1), and a minimal
# valid report MUST pass. Guards the `ctest -L bench_smoke` gate itself.
#
#   bench_schema_negative_test.sh <bench-schema-check-binary>
set -euo pipefail

check="${1:?usage: bench_schema_negative_test.sh SCHEMA_CHECK}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

expect_reject() {
  local label="$1" file="$2"
  if "$check" "$file" >/dev/null 2>&1; then
    echo "FAIL: $label was accepted"
    exit 1
  fi
}

: > "$tmp/empty.json"
expect_reject "empty file" "$tmp/empty.json"

echo '{"schema_version": 1, "name": "x", ' > "$tmp/truncated.json"
expect_reject "truncated JSON" "$tmp/truncated.json"

echo 'not json at all' > "$tmp/garbage.json"
expect_reject "non-JSON" "$tmp/garbage.json"

echo '{"schema_version": 2, "name": "x", "params": {}, "sections": [], "histograms": {}, "metrics": {}}' > "$tmp/badversion.json"
expect_reject "wrong schema_version" "$tmp/badversion.json"

echo '{"schema_version": 1, "name": "x", "params": {}, "sections": [], "histograms": {}, "metrics": {}}' > "$tmp/nosections.json"
expect_reject "empty sections" "$tmp/nosections.json"

echo '{"schema_version": 1, "name": "x", "params": {}, "sections": [{"id": "s", "title": "t", "columns": ["a"], "rows": []}], "histograms": {}, "metrics": {}}' > "$tmp/norows.json"
expect_reject "no data rows" "$tmp/norows.json"

echo '{"schema_version": 1, "name": "x", "params": {}, "sections": [{"id": "s", "title": "t", "columns": ["a"], "rows": [["1"]]}], "histograms": {"h": {"count": 1, "mean_ns": 1, "min_ns": 1, "max_ns": 1, "p50_ns": 1, "p90_ns": 1, "p99_ns": 1, "buckets": [[5, 5, 1]]}}, "metrics": {}}' > "$tmp/badbucket.json"
expect_reject "bucket with lo >= hi" "$tmp/badbucket.json"

echo '{"schema_version": 1, "name": "x", "params": {}, "sections": [{"id": "s", "title": "t", "columns": ["a"], "rows": [["1"]]}], "histograms": {"h": {"count": 1, "mean_ns": 1, "min_ns": 1, "max_ns": 1, "p50_ns": 1, "p90_ns": 1, "p99_ns": 1, "buckets": [[4, 8, 1]]}}, "metrics": {"m": 3.5}}' > "$tmp/valid.json"
"$check" --index "$tmp/index.json" "$tmp/valid.json" >/dev/null
[ -s "$tmp/index.json" ] || { echo "FAIL: index not written"; exit 1; }

echo ok
