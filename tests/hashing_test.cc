#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "hashing/hash_functions.h"
#include "hashing/hash_quality.h"
#include "hashing/partition_space.h"

namespace zht {
namespace {

TEST(Fnv1aTest, KnownVectors32) {
  // Published FNV-1a 32-bit test vectors.
  EXPECT_EQ(Fnv1a32(""), 0x811c9dc5u);
  EXPECT_EQ(Fnv1a32("a"), 0xe40c292cu);
  EXPECT_EQ(Fnv1a32("foobar"), 0xbf9cf968u);
}

TEST(Fnv1aTest, KnownVectors64) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(JenkinsTest, DeterministicAndSeedSensitive) {
  EXPECT_EQ(Jenkins32("hello"), Jenkins32("hello"));
  EXPECT_NE(Jenkins32("hello", 0), Jenkins32("hello", 1));
  EXPECT_EQ(Jenkins64("hello", 7), Jenkins64("hello", 7));
  EXPECT_NE(Jenkins64("hello", 7), Jenkins64("hello", 8));
}

TEST(JenkinsTest, HandlesAllLengths) {
  // Exercise every tail length of the 12-byte block loop.
  std::string s;
  std::set<std::uint32_t> hashes;
  for (int i = 0; i < 40; ++i) {
    hashes.insert(Jenkins32(s));
    s.push_back(static_cast<char>('a' + (i % 26)));
  }
  EXPECT_EQ(hashes.size(), 40u);  // all distinct
}

TEST(OneAtATimeTest, Deterministic) {
  EXPECT_EQ(OneAtATime32("key"), OneAtATime32("key"));
  EXPECT_NE(OneAtATime32("key1"), OneAtATime32("key2"));
}

TEST(HashKeyTest, DispatchesAllKinds) {
  for (HashKind kind :
       {HashKind::kFnv1a, HashKind::kJenkins, HashKind::kOneAtATime}) {
    EXPECT_EQ(HashKey("abc", kind), HashKey("abc", kind));
    EXPECT_NE(HashKey("abc", kind), HashKey("abd", kind));
  }
}

TEST(Mix64Test, Bijective) {
  // Distinct inputs must produce distinct outputs on a sample.
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

class HashQualityTest : public ::testing::TestWithParam<HashKind> {
 protected:
  std::vector<std::string> MakeKeys(std::size_t count, std::size_t length) {
    Rng rng(42);
    std::vector<std::string> keys;
    keys.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      keys.push_back(rng.AsciiString(length));
    }
    return keys;
  }
};

// §III.E property 2: distribute signatures uniformly.
TEST_P(HashQualityTest, UniformDistribution) {
  auto keys = MakeKeys(20000, 15);
  double chi2 = ChiSquared(keys, 256, GetParam());
  // For 255 dof, chi2 above ~350 would be wildly non-uniform.
  EXPECT_LT(chi2, 350.0);
  EXPECT_GT(chi2, 150.0);  // suspiciously perfect would also be a bug
}

// §III.E property 3: avalanche effect.
TEST_P(HashQualityTest, Avalanche) {
  auto keys = MakeKeys(300, 15);
  double score = AvalancheScore(keys, GetParam());
  EXPECT_GT(score, 0.45);
  EXPECT_LT(score, 0.55);
}

// §III.E property 4: detect permutations on data order.
TEST_P(HashQualityTest, PermutationSensitivity) {
  auto keys = MakeKeys(200, 15);
  EXPECT_DOUBLE_EQ(PermutationSensitivity(keys, GetParam()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllHashes, HashQualityTest,
                         ::testing::Values(HashKind::kFnv1a,
                                           HashKind::kJenkins,
                                           HashKind::kOneAtATime),
                         [](const auto& info) {
                           switch (info.param) {
                             case HashKind::kFnv1a: return "Fnv1a";
                             case HashKind::kJenkins: return "Jenkins";
                             case HashKind::kOneAtATime: return "OneAtATime";
                           }
                           return "Unknown";
                         });

TEST(PartitionSpaceTest, CoversWholeSpace) {
  PartitionSpace space(7);
  EXPECT_EQ(space.PartitionOfHash(0), 0u);
  EXPECT_EQ(space.PartitionOfHash(~0ull), 6u);
}

TEST(PartitionSpaceTest, RangesArePartition) {
  PartitionSpace space(5);
  // Every partition's range maps back to that partition; boundaries abut.
  for (PartitionId p = 0; p < 5; ++p) {
    std::uint64_t begin = space.RangeBegin(p);
    EXPECT_EQ(space.PartitionOfHash(begin), p);
    if (p > 0) {
      EXPECT_EQ(space.PartitionOfHash(begin - 1), p - 1);
    }
  }
  EXPECT_EQ(space.RangeBegin(0), 0u);
  EXPECT_EQ(space.RangeEnd(4), 0u);  // wraps
}

TEST(PartitionSpaceTest, SinglePartitionOwnsEverything) {
  PartitionSpace space(1);
  EXPECT_EQ(space.PartitionOfKey("anything"), 0u);
  EXPECT_EQ(space.PartitionOfHash(0x123456789abcdefull), 0u);
}

TEST(PartitionSpaceTest, KeysSpreadAcrossPartitions) {
  PartitionSpace space(64);
  Rng rng(5);
  std::vector<int> counts(64, 0);
  for (int i = 0; i < 6400; ++i) {
    ++counts[space.PartitionOfKey(rng.AsciiString(15))];
  }
  for (int c : counts) {
    EXPECT_GT(c, 30) << "partition starved";
    EXPECT_LT(c, 300) << "partition overloaded";
  }
}

TEST(PartitionSpaceTest, StableUnderRepetition) {
  PartitionSpace space(1024);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(space.PartitionOfKey("fixed-key"),
              space.PartitionOfKey("fixed-key"));
  }
}

// The core zero-hop property: partition of a key never depends on the
// number of *instances*, only on the fixed partition count.
TEST(PartitionSpaceTest, PartitionCountIsTheOnlyInput) {
  PartitionSpace a(128, HashKind::kFnv1a);
  PartitionSpace b(128, HashKind::kFnv1a);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    std::string key = rng.AsciiString(15);
    EXPECT_EQ(a.PartitionOfKey(key), b.PartitionOfKey(key));
  }
}

}  // namespace
}  // namespace zht
