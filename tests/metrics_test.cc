// Observability-surface tests: the MetricsRegistry (counters, gauges,
// log-linear histograms), the structured metrics wire format behind STATS,
// and the JSON writer/parser used by the benchmark telemetry pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stats.h"
#include "serialize/metrics_codec.h"
#include "serialize/wire.h"

namespace zht {
namespace {

// ---- Bucket layout ---------------------------------------------------------

TEST(HistogramLayoutTest, ValueFallsInsideItsBucket) {
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 1024; ++v) probes.push_back(v);
  for (int shift = 10; shift < 62; ++shift) {
    probes.push_back((std::uint64_t{1} << shift) - 1);
    probes.push_back(std::uint64_t{1} << shift);
    probes.push_back((std::uint64_t{1} << shift) + 12345 % (1ull << shift));
  }
  for (std::uint64_t v : probes) {
    const std::uint32_t index = HistogramData::BucketIndex(v);
    ASSERT_LT(index, HistogramData::kNumBuckets) << v;
    EXPECT_GE(v, HistogramData::BucketLower(index)) << v;
    EXPECT_LT(v, HistogramData::BucketUpper(index)) << v;
  }
}

TEST(HistogramLayoutTest, BucketsArePairwiseContiguousAndMonotonic) {
  for (std::uint32_t i = 0; i + 1 < HistogramData::kNumBuckets; ++i) {
    EXPECT_EQ(HistogramData::BucketUpper(i), HistogramData::BucketLower(i + 1))
        << i;
  }
}

TEST(HistogramLayoutTest, RelativeBucketWidthAtMostOneSixteenth) {
  for (std::uint32_t i = 16; i < HistogramData::kNumBuckets; ++i) {
    const double lo = static_cast<double>(HistogramData::BucketLower(i));
    const double width =
        static_cast<double>(HistogramData::BucketUpper(i)) - lo;
    EXPECT_LE(width / lo, 1.0 / 16.0 + 1e-12) << i;
  }
}

// ---- Recording and percentiles --------------------------------------------

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (int i = 0; i < 16; ++i) h.Record(i);
  EXPECT_EQ(h.count(), 16u);
  HistogramData data = h.Snapshot();
  EXPECT_EQ(data.min, 0u);
  EXPECT_EQ(data.max, 15u);
  EXPECT_EQ(data.buckets.size(), 16u);
  // Unit buckets below 16: percentiles are exact values.
  EXPECT_GE(data.Percentile(100), 15.0);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-5);
  HistogramData data = h.Snapshot();
  EXPECT_EQ(data.count, 1u);
  EXPECT_EQ(data.min, 0u);
}

TEST(HistogramTest, EmptyPercentileIsZero) {
  HistogramData empty;
  EXPECT_EQ(empty.Percentile(50), 0.0);
  EXPECT_EQ(empty.Mean(), 0.0);
}

// Satellite property test: record the same random samples into a Histogram
// and a LatencyStats; at every probed quantile the histogram's estimate
// must land within one bucket of the exact order-statistic answer.
TEST(HistogramTest, PercentilesMatchExactStatsWithinOneBucket) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    Rng rng(seed);
    Histogram h;
    LatencyStats exact;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
      // Log-uniform over ~7 orders of magnitude, like latencies.
      const int octave = static_cast<int>(rng.Below(24));
      const std::uint64_t value = rng.Below(std::uint64_t{16} << octave);
      h.Record(static_cast<std::int64_t>(value));
      exact.Record(static_cast<Nanos>(value));
    }
    HistogramData data = h.Snapshot();
    for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
      const auto approx =
          static_cast<std::uint64_t>(std::max(0.0, data.Percentile(p)));
      const auto truth = static_cast<std::uint64_t>(exact.Percentile(p));
      const std::uint32_t approx_bucket = HistogramData::BucketIndex(approx);
      const std::uint32_t truth_bucket = HistogramData::BucketIndex(truth);
      const std::uint32_t lo = std::min(approx_bucket, truth_bucket);
      const std::uint32_t hi = std::max(approx_bucket, truth_bucket);
      EXPECT_LE(hi - lo, 1u)
          << "seed " << seed << " p" << p << ": histogram " << approx
          << " vs exact " << truth;
    }
  }
}

// Satellite property test: merging two histograms must be exactly
// equivalent to having recorded the union of their samples.
TEST(HistogramTest, MergeEqualsRecordingUnion) {
  for (std::uint64_t seed : {3ull, 99ull}) {
    Rng rng(seed);
    Histogram a, b, both;
    for (int i = 0; i < 1500; ++i) {
      const std::uint64_t value =
          rng.Below(std::uint64_t{16} << rng.Below(20));
      if (i % 2 == 0) {
        a.Record(static_cast<std::int64_t>(value));
      } else {
        b.Record(static_cast<std::int64_t>(value));
      }
      both.Record(static_cast<std::int64_t>(value));
    }
    HistogramData merged = a.Snapshot();
    merged.Merge(b.Snapshot());
    HistogramData expected = both.Snapshot();
    EXPECT_EQ(merged.count, expected.count);
    EXPECT_EQ(merged.sum, expected.sum);
    EXPECT_EQ(merged.min, expected.min);
    EXPECT_EQ(merged.max, expected.max);
    ASSERT_EQ(merged.buckets, expected.buckets);
    for (double p : {10.0, 50.0, 90.0, 99.0}) {
      EXPECT_DOUBLE_EQ(merged.Percentile(p), expected.Percentile(p)) << p;
    }
  }
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Record(t * 1000 + i);
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  HistogramData data = h.Snapshot();
  std::uint64_t bucket_total = 0;
  for (const auto& [index, count] : data.buckets) bucket_total += count;
  EXPECT_EQ(bucket_total, data.count);
}

// ---- Registry --------------------------------------------------------------

TEST(MetricsRegistryTest, PointersAreStableAndShared) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("ops");
  Counter* c2 = registry.GetCounter("ops");
  EXPECT_EQ(c1, c2);
  c1->Increment(3);
  EXPECT_EQ(c2->value(), 3u);
  Gauge* g = registry.GetGauge("depth");
  g->Set(-7);
  g->Add(2);
  EXPECT_EQ(g->value(), -5);
  Histogram* h = registry.GetHistogram("lat");
  h->Record(100);
  EXPECT_EQ(registry.GetHistogram("lat"), h);
}

TEST(MetricsRegistryTest, SnapshotCarriesAllKindsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zz.counter")->Increment(5);
  registry.GetGauge("aa.gauge")->Set(-9);
  registry.GetHistogram("mm.hist")->Record(42);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.entries.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      snapshot.entries.begin(), snapshot.entries.end(),
      [](const MetricValue& x, const MetricValue& y) {
        return x.name < y.name;
      }));
  EXPECT_EQ(snapshot.ValueOf("zz.counter"), 5);
  EXPECT_EQ(snapshot.ValueOf("aa.gauge"), -9);
  EXPECT_EQ(snapshot.ValueOf("missing"), 0);
  const MetricValue* hist = snapshot.Find("mm.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, MetricKind::kHistogram);
  EXPECT_EQ(hist->histogram.count, 1u);
}

// ---- Wire format -----------------------------------------------------------

MetricsSnapshot MakeSampleSnapshot() {
  MetricsSnapshot snapshot;
  snapshot.AddCounter("server.ops", 12345);
  snapshot.AddGauge("server.entries", -17);  // gauges are signed
  Histogram h;
  h.Record(3);
  h.Record(900);
  h.Record(1'000'000);
  snapshot.AddHistogram("server.op.insert.latency_ns", h.Snapshot());
  return snapshot;
}

// Satellite: every metric kind survives an encode/decode round trip.
TEST(MetricsCodecTest, RoundTripsEveryKind) {
  MetricsSnapshot snapshot = MakeSampleSnapshot();
  const std::string encoded = EncodeMetricsSnapshot(snapshot);
  auto decoded = DecodeMetricsSnapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->entries.size(), snapshot.entries.size());
  for (std::size_t i = 0; i < snapshot.entries.size(); ++i) {
    const MetricValue& want = snapshot.entries[i];
    const MetricValue& got = decoded->entries[i];
    EXPECT_EQ(got.name, want.name);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.value, want.value);
    EXPECT_EQ(got.histogram.count, want.histogram.count);
    EXPECT_EQ(got.histogram.sum, want.histogram.sum);
    EXPECT_EQ(got.histogram.min, want.histogram.min);
    EXPECT_EQ(got.histogram.max, want.histogram.max);
    EXPECT_EQ(got.histogram.buckets, want.histogram.buckets);
  }
}

// Satellite: unknown fields appended by a future writer are skipped at
// every nesting level, so old readers keep decoding what they understand.
TEST(MetricsCodecTest, UnknownFieldsAreSkippedForForwardCompat) {
  MetricsSnapshot snapshot = MakeSampleSnapshot();
  std::string encoded = EncodeMetricsSnapshot(snapshot);

  // Top level: a future varint field 9 and a blob field 10.
  {
    wire::Writer w(&encoded);
    w.PutVarintField(9, 777);
    w.PutStringField(10, "future-feature");
  }
  auto decoded = DecodeMetricsSnapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->entries.size(), snapshot.entries.size());

  // Entry level: an entry carrying an extra field 7 plus the usual ones.
  std::string entry;
  {
    wire::Writer ew(&entry);
    ew.PutStringField(1, "future.metric");
    ew.PutVarintField(2, static_cast<std::uint64_t>(MetricKind::kCounter));
    ew.PutSignedField(3, 5);
    ew.PutStringField(7, "annotations");
  }
  std::string with_entry = EncodeMetricsSnapshot(snapshot);
  {
    wire::Writer w(&with_entry);
    w.PutStringField(2, entry);
  }
  decoded = DecodeMetricsSnapshot(with_entry);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->entries.size(), snapshot.entries.size() + 1);
  EXPECT_EQ(decoded->entries.back().name, "future.metric");
  EXPECT_EQ(decoded->entries.back().value, 5);
}

TEST(MetricsCodecTest, RejectsNewerVersion) {
  std::string encoded;
  wire::Writer w(&encoded);
  w.PutVarintField(1, kMetricsWireVersion + 1);
  auto decoded = DecodeMetricsSnapshot(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(MetricsCodecTest, RejectsMissingVersionAndCorruption) {
  // No version field at all.
  std::string no_version;
  {
    wire::Writer w(&no_version);
    w.PutStringField(2, "");
  }
  EXPECT_EQ(DecodeMetricsSnapshot(no_version).status().code(),
            StatusCode::kCorruption);
  // Truncated payload.
  std::string encoded = EncodeMetricsSnapshot(MakeSampleSnapshot());
  encoded.resize(encoded.size() - 3);
  EXPECT_FALSE(DecodeMetricsSnapshot(encoded).ok());
}

TEST(MetricsCodecTest, RenderShowsGaugesAndHistogramSummaries) {
  const std::string text = RenderMetricsSnapshot(MakeSampleSnapshot());
  EXPECT_NE(text.find("server.ops = 12345"), std::string::npos);
  EXPECT_NE(text.find("server.entries = -17"), std::string::npos);
  EXPECT_NE(text.find("server.op.insert.latency_ns: count=3"),
            std::string::npos);
}

// ---- JSON ------------------------------------------------------------------

TEST(JsonTest, WriterOutputParsesBack) {
  json::Writer w;
  w.BeginObject();
  w.Key("name");
  w.String("bench \"quoted\" \n");
  w.Key("values");
  w.BeginArray();
  w.Int(-3);
  w.Double(1.5);
  w.Bool(true);
  w.EndArray();
  w.Key("nested");
  w.BeginObject();
  w.Key("x");
  w.Uint(18'000'000'000ull);
  w.EndObject();
  w.EndObject();

  auto doc = json::Parse(w.out());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Get("name")->string, "bench \"quoted\" \n");
  ASSERT_EQ(doc->Get("values")->array.size(), 3u);
  EXPECT_EQ(doc->Get("values")->array[0].number, -3.0);
  EXPECT_EQ(doc->Get("values")->array[1].number, 1.5);
  EXPECT_TRUE(doc->Get("values")->array[2].boolean);
  EXPECT_EQ(doc->Get("nested")->Get("x")->number, 18e9);
}

TEST(JsonTest, ParseRejectsMalformedDocuments) {
  EXPECT_FALSE(json::Parse("").ok());
  EXPECT_FALSE(json::Parse("{").ok());
  EXPECT_FALSE(json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(json::Parse("[1, 2,]").ok());
  EXPECT_FALSE(json::Parse("{} trailing").ok());
  EXPECT_FALSE(json::Parse("\"unterminated").ok());
  EXPECT_TRUE(json::Parse("{\"a\": [1, {\"b\": null}]}").ok());
}

}  // namespace
}  // namespace zht
