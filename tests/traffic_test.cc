// Traffic survival kit (`ctest -L traffic`): the skewed/heavy-traffic
// pieces end to end —
//   * workload generators: zipf + flash-crowd distribution shape pinned
//     against the exact mass function, determinism under seeds;
//   * tail percentiles: p999 interpolation and the exact order statistic
//     on small samples (the interpolation cases benches rely on);
//   * HotKeyCache unit behavior: fill, refresh, invalidate, partition
//     drop, eviction, size accounting, the disabled (capacity 0) mode;
//   * the staleness contract through ZhtServer: write/append/remove
//     invalidation before ack, migration and rebuild dropping entries,
//     membership pushes clearing the cache;
//   * admission control: kUnavailable + retry-after past the budget
//     (slots and bytes), server-origin exemption, unbounded growth with
//     the budget off, and the client honoring the hint;
//   * the new cache/shed counters across the versioned STATS wire format
//     (round-trip + negative);
//   * a flash-crowd schedule over a replicated LocalCluster validated by
//     the history checker.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/workload.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/hot_key_cache.h"
#include "core/local_cluster.h"
#include "core/zht_server.h"
#include "history_checker.h"
#include "net/loopback.h"
#include "serialize/metrics_codec.h"
#include "serialize/wire.h"

namespace zht {
namespace {

// ---- workload generators -------------------------------------------------

TEST(ZipfGeneratorTest, EmpiricalFrequencyMatchesExactMass) {
  const std::size_t n = 64;
  bench::ZipfGenerator zipf(n, 1.1, /*seed=*/42);
  ASSERT_EQ(zipf.n(), n);
  EXPECT_DOUBLE_EQ(zipf.s(), 1.1);

  double total = 0;
  for (std::size_t k = 0; k < n; ++k) total += zipf.ProbabilityOf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_LT(zipf.ProbabilityOf(k), zipf.ProbabilityOf(k - 1));
  }

  const std::size_t draws = 200000;
  std::vector<std::size_t> freq(n, 0);
  for (std::size_t i = 0; i < draws; ++i) ++freq[zipf.Next()];
  // 200k draws put the sampling error of the head ranks well under 1%.
  for (std::size_t k = 0; k < 5; ++k) {
    const double observed =
        static_cast<double>(freq[k]) / static_cast<double>(draws);
    EXPECT_NEAR(observed, zipf.ProbabilityOf(k), 0.01)
        << "rank " << k << " off its exact mass";
  }
}

TEST(ZipfGeneratorTest, SZeroDegeneratesToUniform) {
  const std::size_t n = 16;
  bench::ZipfGenerator zipf(n, 0.0, /*seed=*/3);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(zipf.ProbabilityOf(k), 1.0 / static_cast<double>(n), 1e-12);
  }
  const std::size_t draws = 80000;
  std::vector<std::size_t> freq(n, 0);
  for (std::size_t i = 0; i < draws; ++i) ++freq[zipf.Next()];
  for (std::size_t k = 0; k < n; ++k) {
    const double observed =
        static_cast<double>(freq[k]) / static_cast<double>(draws);
    EXPECT_NEAR(observed, 1.0 / static_cast<double>(n), 0.01);
  }
}

TEST(ZipfGeneratorTest, DeterministicUnderSeed) {
  bench::ZipfGenerator a(100, 0.9, 7), b(100, 0.9, 7), c(100, 0.9, 8);
  bool differs = false;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t from_a = a.Next();
    EXPECT_EQ(from_a, b.Next());
    if (from_a != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs) << "different seeds produced identical streams";
}

TEST(FlashCrowdGeneratorTest, HotFractionConcentratesOnHotRank) {
  const std::size_t n = 50;
  bench::FlashCrowdGenerator flash(n, 0.9, /*seed=*/7);
  EXPECT_EQ(flash.hot_rank(), 0u);
  const std::size_t draws = 100000;
  std::vector<std::size_t> freq(n, 0);
  for (std::size_t i = 0; i < draws; ++i) ++freq[flash.Next()];
  const double hot =
      static_cast<double>(freq[0]) / static_cast<double>(draws);
  EXPECT_NEAR(hot, 0.9, 0.01);
  // Cold mass (0.1) spread over the other 49 ranks: ~0.2% each.
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_LT(static_cast<double>(freq[k]) / static_cast<double>(draws), 0.01);
  }
}

TEST(FlashCrowdGeneratorTest, RespectsExplicitHotRank) {
  bench::FlashCrowdGenerator flash(10, 1.0, /*seed=*/3, /*hot_rank=*/7);
  EXPECT_EQ(flash.hot_rank(), 7u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(flash.Next(), 7u);
}

TEST(WorkloadFactoryTest, KeySetAndValueAreSizedAndDeterministic) {
  auto keys = bench::MakeKeySet(32, 15, /*seed=*/5);
  ASSERT_EQ(keys.size(), 32u);
  for (const std::string& k : keys) EXPECT_EQ(k.size(), 15u);
  EXPECT_EQ(keys, bench::MakeKeySet(32, 15, 5));
  EXPECT_NE(keys, bench::MakeKeySet(32, 15, 6));
  EXPECT_EQ(bench::MakeValue(134, 9).size(), 134u);
  EXPECT_EQ(bench::MakeValue(134, 9), bench::MakeValue(134, 9));
}

// ---- tail percentiles ----------------------------------------------------

TEST(LatencyStatsTailTest, P999InterpolationPinnedOnSmallSamples) {
  LatencyStats empty;
  EXPECT_EQ(empty.P999(), 0);

  LatencyStats one;
  one.Record(7);
  EXPECT_EQ(one.P999(), 7);

  // Two samples: the 99.9th percentile interpolates 99.9% of the way from
  // 100 to 200 (exclusive definition), rounding to 200.
  LatencyStats two;
  two.Record(100);
  two.Record(200);
  EXPECT_EQ(two.P999(), 200);
  EXPECT_EQ(two.Percentile(50), 150);

  // 1..1000: rank 0.999 * 999 = 998.001 lands between 999 and 1000;
  // interpolated 999.001 rounds to 999.
  LatencyStats thousand;
  for (Nanos v = 1000; v >= 1; --v) thousand.Record(v);  // unsorted insert
  EXPECT_EQ(thousand.P999(), 999);
  EXPECT_EQ(thousand.Percentile(0), 1);
  EXPECT_EQ(thousand.Percentile(100), 1000);
}

TEST(LatencyStatsTailTest, TailExactReturnsObservedOrderStatistic) {
  LatencyStats empty;
  EXPECT_EQ(empty.TailExact(99.9), 0);

  LatencyStats ten;
  for (Nanos v = 10; v <= 100; v += 10) ten.Record(v);
  // ceil(0.999 * 10) = 10th sample, an actually-observed value (no
  // interpolation): 100. The median order statistic is the 5th: 50.
  EXPECT_EQ(ten.TailExact(99.9), 100);
  EXPECT_EQ(ten.TailExact(50), 50);
  EXPECT_EQ(ten.TailExact(0), 10);
  EXPECT_EQ(ten.TailExact(100), 100);

  // 99.9/100 * 1000 computes to just over 999.0 in binary floating point,
  // so the ceil lands on the 1000th order statistic — pin that boundary.
  LatencyStats thousand;
  for (Nanos v = 1; v <= 1000; ++v) thousand.Record(v);
  EXPECT_EQ(thousand.TailExact(99.9), 1000);
  EXPECT_EQ(thousand.TailExact(99.8), 998);  // 998.0 exact: the 998th sample
}

// ---- HotKeyCache unit behavior -------------------------------------------

TEST(HotKeyCacheTest, FillHitInvalidateAndSizeAccounting) {
  HotKeyCache cache(64);
  ASSERT_TRUE(cache.enabled());
  std::string value;
  EXPECT_FALSE(cache.TryGet("k", &value));
  cache.Put("k", /*partition=*/3, "v1");
  ASSERT_TRUE(cache.TryGet("k", &value));
  EXPECT_EQ(value, "v1");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Invalidate("k"));
  EXPECT_FALSE(cache.TryGet("k", &value));
  EXPECT_FALSE(cache.Invalidate("k"));  // already gone
  EXPECT_EQ(cache.size(), 0u);
}

TEST(HotKeyCacheTest, PutRefreshesExistingKeyInPlace) {
  HotKeyCache cache(64);
  cache.Put("k", 1, "old");
  cache.Put("k", 1, "new");
  std::string value;
  ASSERT_TRUE(cache.TryGet("k", &value));
  EXPECT_EQ(value, "new");
  EXPECT_EQ(cache.size(), 1u);
}

TEST(HotKeyCacheTest, DropPartitionRemovesOnlyThatPartition) {
  HotKeyCache cache(64);
  cache.Put("a", 1, "va");
  cache.Put("b", 2, "vb");
  cache.Put("c", 1, "vc");
  EXPECT_EQ(cache.DropPartition(1), 2u);
  std::string value;
  EXPECT_FALSE(cache.TryGet("a", &value));
  EXPECT_FALSE(cache.TryGet("c", &value));
  ASSERT_TRUE(cache.TryGet("b", &value));
  EXPECT_EQ(value, "vb");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Clear(), 1u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(HotKeyCacheTest, EvictsLeastRecentWayWhenSetIsFull) {
  HotKeyCache cache(4);  // one 4-way set: every key collides
  ASSERT_EQ(cache.capacity(), 4u);
  for (int i = 0; i < 5; ++i) {
    cache.Put("key" + std::to_string(i), 0, "v" + std::to_string(i));
  }
  EXPECT_EQ(cache.size(), 4u);
  std::string value;
  EXPECT_FALSE(cache.TryGet("key0", &value));  // oldest tick evicted
  for (int i = 1; i < 5; ++i) {
    ASSERT_TRUE(cache.TryGet("key" + std::to_string(i), &value)) << i;
    EXPECT_EQ(value, "v" + std::to_string(i));
  }
}

TEST(HotKeyCacheTest, CapacityZeroDisablesEverything) {
  HotKeyCache cache(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.capacity(), 0u);
  cache.Put("k", 0, "v");  // no-op
  std::string value;
  EXPECT_FALSE(cache.TryGet("k", &value));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Clear(), 0u);
}

// ---- the staleness contract through ZhtServer ----------------------------

// Single-instance table: every key is owned, no redirects, so cache and
// admission behavior is exercised in isolation.
class TrafficServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    addresses_ = {NodeAddress{"10.0.0.1", 50000}};
    table_ = MembershipTable::CreateUniform(16, addresses_);
    transport_ = std::make_unique<LoopbackTransport>(&network_);
  }

  std::unique_ptr<ZhtServer> MakeServer(std::size_t cache_entries,
                                        std::size_t shed_budget = 0) {
    ZhtServerOptions options;
    options.self = 0;
    options.num_shards = 1;  // deterministic mailbox accounting
    options.cluster.hot_cache_entries = cache_entries;
    options.cluster.shed_queue_budget = shed_budget;
    return std::make_unique<ZhtServer>(table_, options, transport_.get());
  }

  Request DataRequest(OpCode op, const std::string& key,
                      const std::string& value = "") {
    Request request;
    request.op = op;
    request.seq = ++seq_;
    request.key = key;
    request.value = value;
    request.epoch = table_.epoch();
    return request;
  }

  std::vector<NodeAddress> addresses_;
  MembershipTable table_;
  LoopbackNetwork network_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::uint64_t seq_ = 0;
};

TEST_F(TrafficServerTest, CacheHitServesAndEveryMutationInvalidates) {
  auto server = MakeServer(/*cache_entries=*/64);
  ASSERT_TRUE(server->Handle(DataRequest(OpCode::kInsert, "k", "v1")).ok());

  Response first = server->Handle(DataRequest(OpCode::kLookup, "k"));
  EXPECT_EQ(first.value, "v1");  // miss: fills the cache
  Response second = server->Handle(DataRequest(OpCode::kLookup, "k"));
  EXPECT_EQ(second.value, "v1");  // hit
  EXPECT_EQ(server->stats().hot_cache_hits, 1u);
  EXPECT_EQ(server->stats().hot_cache_misses, 1u);

  // Overwrite invalidates before the ack: the next read must see v2.
  ASSERT_TRUE(server->Handle(DataRequest(OpCode::kInsert, "k", "v2")).ok());
  EXPECT_EQ(server->stats().hot_cache_invalidations, 1u);
  EXPECT_EQ(server->Handle(DataRequest(OpCode::kLookup, "k")).value, "v2");
  EXPECT_EQ(server->Handle(DataRequest(OpCode::kLookup, "k")).value, "v2");

  // Append invalidates too (the cached value is a strict prefix now).
  ASSERT_TRUE(server->Handle(DataRequest(OpCode::kAppend, "k", "+t")).ok());
  EXPECT_EQ(server->Handle(DataRequest(OpCode::kLookup, "k")).value, "v2+t");

  // Remove invalidates; a later lookup is a clean NotFound, not a cached
  // ghost.
  server->Handle(DataRequest(OpCode::kLookup, "k"));  // re-fill
  ASSERT_TRUE(server->Handle(DataRequest(OpCode::kRemove, "k")).ok());
  EXPECT_EQ(server->Handle(DataRequest(OpCode::kLookup, "k"))
                .status_as_object()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(TrafficServerTest, ReadYourWritesHoldsUnderCacheChurn) {
  auto server = MakeServer(/*cache_entries=*/16);  // small: force evictions
  Rng rng(11);
  std::vector<std::string> keys;
  std::vector<std::string> model(8);
  for (int i = 0; i < 8; ++i) keys.push_back("churn" + std::to_string(i));
  for (int round = 0; round < 400; ++round) {
    const std::size_t k = rng.Below(keys.size());
    if (rng.Chance(0.3)) {
      model[k] = "v" + std::to_string(round);
      ASSERT_TRUE(
          server->Handle(DataRequest(OpCode::kInsert, keys[k], model[k]))
              .ok());
    } else {
      Response resp = server->Handle(DataRequest(OpCode::kLookup, keys[k]));
      if (model[k].empty()) {
        EXPECT_EQ(resp.status_as_object().code(), StatusCode::kNotFound);
      } else {
        ASSERT_TRUE(resp.ok());
        EXPECT_EQ(resp.value, model[k]) << "stale read of " << keys[k];
      }
    }
  }
  EXPECT_GT(server->stats().hot_cache_hits, 0u);
}

TEST_F(TrafficServerTest, RebuildBeginDropsCachedEntriesOfThePartition) {
  auto server = MakeServer(/*cache_entries=*/64);
  ASSERT_TRUE(server->Handle(DataRequest(OpCode::kInsert, "rk", "v")).ok());
  server->Handle(DataRequest(OpCode::kLookup, "rk"));  // fill
  ASSERT_EQ(server->HotCacheEntriesNow(), 1u);

  Request begin;
  begin.op = OpCode::kRebuildBegin;
  begin.seq = ++seq_;
  begin.partition = table_.PartitionOfKey("rk");
  begin.server_origin = true;
  ASSERT_TRUE(server->Handle(std::move(begin)).ok());
  EXPECT_EQ(server->HotCacheEntriesNow(), 0u);
  EXPECT_GE(server->stats().hot_cache_drops, 1u);
}

TEST_F(TrafficServerTest, MembershipPushClearsTheWholeCache) {
  // Two instances so the delta can actually move a partition.
  std::vector<NodeAddress> addresses = {NodeAddress{"10.0.0.1", 50000},
                                        NodeAddress{"10.0.0.2", 50000}};
  MembershipTable table = MembershipTable::CreateUniform(16, addresses);
  ZhtServerOptions options;
  options.self = 0;
  options.cluster.hot_cache_entries = 64;
  ZhtServer server(table, options, transport_.get());

  std::string key;
  for (int i = 0; i < 10000 && key.empty(); ++i) {
    std::string candidate = "mk" + std::to_string(i);
    if (table.OwnerOf(table.PartitionOfKey(candidate)) == 0) key = candidate;
  }
  ASSERT_FALSE(key.empty());
  Request insert;
  insert.op = OpCode::kInsert;
  insert.seq = 1;
  insert.key = key;
  insert.value = "v";
  insert.epoch = table.epoch();
  ASSERT_TRUE(server.Handle(std::move(insert)).ok());
  Request lookup;
  lookup.op = OpCode::kLookup;
  lookup.seq = 2;
  lookup.key = key;
  lookup.epoch = table.epoch();
  ASSERT_TRUE(server.Handle(std::move(lookup)).ok());
  ASSERT_EQ(server.HotCacheEntriesNow(), 1u);

  MembershipTable updated = table;
  updated.SetOwner(3, 1);
  Request push;
  push.op = OpCode::kMembershipPush;
  push.seq = 3;
  push.value = updated.EncodeDelta(table.epoch());
  push.server_origin = true;
  ASSERT_TRUE(server.Handle(std::move(push)).ok());
  EXPECT_EQ(server.HotCacheEntriesNow(), 0u);
  EXPECT_GE(server.stats().hot_cache_drops, 1u);
}

TEST_F(TrafficServerTest, MigrationOutDropsSourceCacheEntries) {
  std::vector<NodeAddress> addresses = {NodeAddress{"10.0.0.1", 50000},
                                        NodeAddress{"10.0.0.2", 50000}};
  MembershipTable table = MembershipTable::CreateUniform(16, addresses);
  ZhtServerOptions source_options;
  source_options.self = 0;
  source_options.cluster.hot_cache_entries = 64;
  ZhtServer source(table, source_options, transport_.get());

  auto target_slot = std::make_shared<AsyncRequestHandler>();
  NodeAddress target_address =
      network_.Register([target_slot](Request&& req, ResponseCallback done) {
        (*target_slot)(std::move(req), std::move(done));
      });
  ZhtServerOptions target_options;
  target_options.self = 1;
  ZhtServer target(table, target_options, transport_.get());
  *target_slot = target.AsyncHandler();

  std::string key;
  for (int i = 0; i < 10000 && key.empty(); ++i) {
    std::string candidate = "gk" + std::to_string(i);
    if (table.OwnerOf(table.PartitionOfKey(candidate)) == 0) key = candidate;
  }
  ASSERT_FALSE(key.empty());
  Request insert;
  insert.op = OpCode::kInsert;
  insert.seq = 1;
  insert.key = key;
  insert.value = "mv";
  insert.epoch = table.epoch();
  ASSERT_TRUE(source.Handle(std::move(insert)).ok());
  Request lookup;
  lookup.op = OpCode::kLookup;
  lookup.seq = 2;
  lookup.key = key;
  lookup.epoch = table.epoch();
  ASSERT_TRUE(source.Handle(std::move(lookup)).ok());
  ASSERT_EQ(source.HotCacheEntriesNow(), 1u);

  ASSERT_TRUE(
      source.MigratePartitionTo(table.PartitionOfKey(key), target_address)
          .ok());
  EXPECT_EQ(source.HotCacheEntriesNow(), 0u);
  EXPECT_GE(source.stats().hot_cache_drops, 1u);
  EXPECT_EQ(target.TotalEntries(), 1u);
}

// ---- admission control ---------------------------------------------------
//
// The overload fixture: bind every shard to executor 0 with a no-op waker
// and never run it — posted work piles up in the mailbox exactly as it
// would behind a stalled drain, so shedding at ingress is observable
// synchronously. Each test runs in a fresh thread because the executor
// registration is thread-local.

TEST_F(TrafficServerTest, ShedsPastBudgetWithRetryAfterAndRecovers) {
  auto server = MakeServer(/*cache_entries=*/0, /*shed_budget=*/4);
  std::thread worker([&] {
    for (std::size_t s = 0; s < server->num_shards(); ++s) {
      server->BindShardExecutor(s, 0, [] {});
    }
    int completed = 0;
    int unavailable = 0;
    std::uint32_t last_hint = 0;
    auto issue = [&](const std::string& key, bool server_origin) {
      Request req = DataRequest(OpCode::kInsert, key, "v");
      req.server_origin = server_origin;
      server->HandleAsync(std::move(req), [&](Response&& resp) {
        ++completed;
        if (resp.status_as_object().code() == StatusCode::kUnavailable) {
          ++unavailable;
          last_hint = resp.retry_after_us;
        }
      });
    };
    for (int i = 0; i < 4; ++i) issue("sk" + std::to_string(i), false);
    EXPECT_EQ(completed, 0);  // all queued behind the stalled drain
    issue("sk-over", false);
    EXPECT_EQ(completed, 1);  // shed synchronously at ingress
    EXPECT_EQ(unavailable, 1);
    EXPECT_GE(last_hint, 1000u);  // the retry-after hint travels
    issue("sk-replica", true);    // server-origin traffic is never shed
    EXPECT_EQ(completed, 1);
    EXPECT_EQ(server->stats().sheds, 1u);

    server->EnterExecutorThread(0);
    server->RunExecutor(0);
    EXPECT_EQ(completed, 6);    // 4 queued + 1 shed + 1 server-origin
    EXPECT_EQ(unavailable, 1);  // drained ops all succeeded
  });
  worker.join();
}

TEST_F(TrafficServerTest, BudgetZeroNeverShedsAndQueuesUnboundedly) {
  auto server = MakeServer(/*cache_entries=*/0, /*shed_budget=*/0);
  std::thread worker([&] {
    for (std::size_t s = 0; s < server->num_shards(); ++s) {
      server->BindShardExecutor(s, 0, [] {});
    }
    int completed = 0;
    for (int i = 0; i < 100; ++i) {
      server->HandleAsync(DataRequest(OpCode::kInsert, "z" + std::to_string(i),
                                      "v"),
                          [&](Response&&) { ++completed; });
    }
    EXPECT_EQ(completed, 0);
    EXPECT_EQ(server->stats().sheds, 0u);
    std::uint64_t queued = 0;
    for (std::size_t s = 0; s < server->num_shards(); ++s) {
      queued += server->ShardQueuedNow(s);
    }
    EXPECT_EQ(queued, 100u);  // mailbox growth is unbounded with the knob off
    server->EnterExecutorThread(0);
    server->RunExecutor(0);
    EXPECT_EQ(completed, 100);
  });
  worker.join();
}

TEST_F(TrafficServerTest, ByteBudgetShedsBeforeSlotBudget) {
  // budget 4 slots => 4 * 128 KiB in-flight bytes. One 600 KiB value
  // exceeds that alone, so the second op sheds with 3 slots still free.
  auto server = MakeServer(/*cache_entries=*/0, /*shed_budget=*/4);
  std::thread worker([&] {
    for (std::size_t s = 0; s < server->num_shards(); ++s) {
      server->BindShardExecutor(s, 0, [] {});
    }
    int completed = 0;
    int unavailable = 0;
    std::string big(600 * 1024, 'x');
    server->HandleAsync(DataRequest(OpCode::kInsert, "big", big),
                        [&](Response&&) { ++completed; });
    EXPECT_EQ(completed, 0);  // admitted, queued
    server->HandleAsync(DataRequest(OpCode::kInsert, "small", "v"),
                        [&](Response&& resp) {
                          ++completed;
                          if (resp.status_as_object().code() ==
                              StatusCode::kUnavailable) {
                            ++unavailable;
                            EXPECT_GT(resp.retry_after_us, 0u);
                          }
                        });
    EXPECT_EQ(completed, 1);
    EXPECT_EQ(unavailable, 1);
    EXPECT_EQ(server->stats().sheds, 1u);
    server->EnterExecutorThread(0);
    server->RunExecutor(0);
    EXPECT_EQ(completed, 2);
  });
  worker.join();
}

// ---- the client honors retry-after ---------------------------------------

class ScriptedShedTransport : public ClientTransport {
 public:
  explicit ScriptedShedTransport(int sheds) : remaining_(sheds) {}

  Result<Response> Call(const NodeAddress&, const Request& request,
                        Nanos) override {
    ++calls_;
    Response resp;
    resp.seq = request.seq;
    if (remaining_-- > 0) {
      resp.status = Status(StatusCode::kUnavailable, "shard over budget").raw();
      resp.retry_after_us = 750;
      return resp;
    }
    resp.status = Status::Ok().raw();
    if (request.op == OpCode::kLookup) resp.value = "v";
    return resp;
  }

  int calls() const { return calls_; }

 private:
  int remaining_;
  int calls_ = 0;
};

TEST(ClientShedBackoffTest, RetriesOnRetryAfterHintThenSucceeds) {
  MembershipTable table =
      MembershipTable::CreateUniform(8, {NodeAddress{"10.0.0.1", 50000}});
  ScriptedShedTransport transport(/*sheds=*/2);
  ZhtClientOptions options;
  options.max_attempts = 6;
  options.sleep_on_backoff = false;
  ZhtClient client(table, options, &transport);

  auto got = client.Lookup("k");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "v");
  EXPECT_EQ(client.stats().shed_backoffs, 2u);
  EXPECT_GE(client.stats().retries, 2u);
  EXPECT_EQ(transport.calls(), 3);
}

TEST(ClientShedBackoffTest, PersistentShedSurfacesUnavailable) {
  MembershipTable table =
      MembershipTable::CreateUniform(8, {NodeAddress{"10.0.0.1", 50000}});
  ScriptedShedTransport transport(/*sheds=*/1000);
  ZhtClientOptions options;
  options.max_attempts = 4;
  options.sleep_on_backoff = false;
  ZhtClient client(table, options, &transport);

  auto got = client.Lookup("k");
  ASSERT_FALSE(got.ok());
  // The final attempt's shed response stands (kUnavailable, not kTimeout).
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(client.stats().shed_backoffs,
            static_cast<std::uint64_t>(options.max_attempts - 1));
}

// ---- cache/shed counters across the STATS wire format --------------------

TEST_F(TrafficServerTest, StatsCarriesCacheAndShedCountersRoundTrip) {
  auto server = MakeServer(/*cache_entries=*/64, /*shed_budget=*/8);
  ASSERT_TRUE(server->Handle(DataRequest(OpCode::kInsert, "k", "v1")).ok());
  server->Handle(DataRequest(OpCode::kLookup, "k"));  // miss + fill
  server->Handle(DataRequest(OpCode::kLookup, "k"));  // hit
  server->Handle(DataRequest(OpCode::kInsert, "k", "v2"));  // invalidate

  Request stats_req;
  stats_req.op = OpCode::kStats;
  stats_req.seq = ++seq_;
  Response resp = server->Handle(std::move(stats_req));
  ASSERT_TRUE(resp.ok());

  auto snapshot = DecodeMetricsSnapshot(resp.value);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->ValueOf("server.cache.hit"), 1);
  EXPECT_EQ(snapshot->ValueOf("server.cache.miss"), 1);
  EXPECT_EQ(snapshot->ValueOf("server.cache.invalidate"), 1);
  ASSERT_NE(snapshot->Find("server.cache.drop"), nullptr);
  ASSERT_NE(snapshot->Find("server.admission.shed"), nullptr);
  EXPECT_EQ(snapshot->ValueOf("server.admission.shed"), 0);

  // Round-trip: re-encode the decoded snapshot; the counters survive.
  auto again = DecodeMetricsSnapshot(EncodeMetricsSnapshot(*snapshot));
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->ValueOf("server.cache.hit"), 1);
  EXPECT_EQ(again->ValueOf("server.cache.miss"), 1);
  EXPECT_EQ(again->ValueOf("server.cache.invalidate"), 1);
  EXPECT_EQ(again->ValueOf("server.admission.shed"), 0);

  // Negative: a truncated STATS payload must be rejected, not misread.
  std::string truncated = resp.value.substr(0, resp.value.size() - 3);
  EXPECT_FALSE(DecodeMetricsSnapshot(truncated).ok());
}

TEST(CacheCountersCodecTest, FutureVersionCarryingCacheCountersIsRejected) {
  std::string entry;
  {
    wire::Writer ew(&entry);
    ew.PutStringField(1, "server.cache.hit");
    ew.PutVarintField(2, static_cast<std::uint64_t>(MetricKind::kCounter));
    ew.PutSignedField(3, 7);
  }
  std::string encoded;
  {
    wire::Writer w(&encoded);
    w.PutVarintField(1, kMetricsWireVersion + 1);
    w.PutStringField(2, entry);
  }
  auto decoded = DecodeMetricsSnapshot(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

// ---- flash-crowd schedule, history-checked -------------------------------

TEST(TrafficHistoryTest, FlashCrowdMixStaysCleanWithCacheAndReplication) {
  LocalClusterOptions options;
  options.num_instances = 3;
  options.num_partitions = 24;
  options.cluster.num_replicas = 1;
  options.cluster.hot_cache_entries = 128;
  options.cluster.shed_queue_budget = 256;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  constexpr int kRegisterKeys = 10;
  constexpr int kLedgerKeys = 4;
  auto register_key = [](std::size_t i) {
    return "reg" + std::to_string(i);
  };
  auto ledger_key = [](std::size_t i) { return "led" + std::to_string(i); };

  HistoryRecorder recorder;
  ZhtClientOptions client_options;
  client_options.sleep_on_backoff = false;

  struct ScriptedClient {
    std::uint64_t id;
    ClientHandle handle;
    bench::FlashCrowdGenerator reg;   // 90% of register traffic on one key
    bench::ZipfGenerator led;         // skewed ledger appends
    Rng rng;
    int counter = 0;
  };
  std::vector<ScriptedClient> clients;
  for (std::uint64_t c = 1; c <= 2; ++c) {
    clients.push_back(ScriptedClient{
        c, (*cluster)->CreateClient(client_options),
        bench::FlashCrowdGenerator(kRegisterKeys, 0.9, /*seed=*/c),
        bench::ZipfGenerator(kLedgerKeys, 1.1, /*seed=*/c + 10),
        Rng(100 + c)});
  }

  // Fixed single-threaded interleaving, one op per client per round: the
  // hot register key absorbs most reads (cache hits) while its writes keep
  // invalidating — exactly the churn the staleness contract must survive.
  for (int round = 0; round < 300; ++round) {
    for (ScriptedClient& client : clients) {
      ZhtClient& zht = *client.handle.get();
      const double dice = client.rng.NextDouble();
      if (dice < 0.30) {
        std::string key = register_key(client.reg.Next());
        std::string value = "v" + std::to_string(client.id) + "_" +
                            std::to_string(++client.counter);
        std::uint64_t op =
            recorder.Begin(client.id, OpCode::kInsert, key, value);
        recorder.End(op, zht.Insert(key, value).code());
      } else if (dice < 0.70) {
        std::string key = register_key(client.reg.Next());
        std::uint64_t op = recorder.Begin(client.id, OpCode::kLookup, key, "");
        auto got = zht.Lookup(key);
        recorder.End(op, got.status().code(), got.ok() ? *got : "");
      } else if (dice < 0.78) {
        std::string key = register_key(client.reg.Next());
        std::uint64_t op = recorder.Begin(client.id, OpCode::kRemove, key, "");
        recorder.End(op, zht.Remove(key).code());
      } else if (dice < 0.92) {
        std::string key = ledger_key(client.led.Next());
        std::string token = "c" + std::to_string(client.id) + "t" +
                            std::to_string(++client.counter) + ";";
        std::uint64_t op =
            recorder.Begin(client.id, OpCode::kAppend, key, token);
        recorder.End(op, zht.Append(key, token).code());
      } else {
        std::string key = ledger_key(client.led.Next());
        std::uint64_t op = recorder.Begin(client.id, OpCode::kLookup, key, "");
        auto got = zht.Lookup(key);
        recorder.End(op, got.status().code(), got.ok() ? *got : "");
      }
    }
  }

  (*cluster)->FlushAllAsyncReplication();
  auto reader = (*cluster)->CreateClient(client_options);
  for (int i = 0; i < kRegisterKeys; ++i) {
    std::uint64_t op =
        recorder.Begin(999, OpCode::kLookup, register_key(i), "");
    auto got = reader->Lookup(register_key(i));
    recorder.End(op, got.status().code(), got.ok() ? *got : "");
  }
  for (int i = 0; i < kLedgerKeys; ++i) {
    std::uint64_t op = recorder.Begin(999, OpCode::kLookup, ledger_key(i), "");
    auto got = reader->Lookup(ledger_key(i));
    recorder.End(op, got.status().code(), got.ok() ? *got : "");
  }

  auto result = CheckHistory(recorder.Events());
  EXPECT_TRUE(result.ok()) << result.ToString();
  EXPECT_GT(result.events_checked, 600u);

  // The schedule really exercised the cache: hits on at least one server.
  std::uint64_t hits = 0;
  for (std::size_t i = 0; i < (*cluster)->instance_count(); ++i) {
    hits += (*cluster)->server(i)->stats().hot_cache_hits;
  }
  EXPECT_GT(hits, 0u);
}

}  // namespace
}  // namespace zht
