// Tests of NoVoHT's bounded-memory residency (§III.A: "by tuning the
// number of Key-Value pairs that are allowed [to] stay in memory, users
// can achieve the balance between performance and memory consumption"):
// values beyond the cap are evicted and served from the log by offset.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "novoht/novoht.h"

namespace zht {
namespace {

namespace fs = std::filesystem;

class ResidencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("zht_res_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  NoVoHTOptions Options(std::uint64_t cap) {
    NoVoHTOptions options;
    options.path = (dir_ / "store.nvt").string();
    options.max_resident_values = cap;
    return options;
  }

  fs::path dir_;
};

TEST_F(ResidencyTest, CapRequiresPersistence) {
  NoVoHTOptions options;
  options.max_resident_values = 10;  // no path
  EXPECT_FALSE(NoVoHT::Open(options).ok());
}

TEST_F(ResidencyTest, ResidentCountStaysUnderCap) {
  auto store = NoVoHT::Open(Options(8));
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        (*store)->Put("key" + std::to_string(i), "value" + std::to_string(i))
            .ok());
  }
  auto stats = (*store)->stats();
  EXPECT_EQ(stats.entries, 100u);
  EXPECT_LE(stats.resident_values, 8u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST_F(ResidencyTest, EvictedValuesReadBackCorrectly) {
  auto store = NoVoHT::Open(Options(4));
  ASSERT_TRUE(store.ok());
  Rng rng(9);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 50; ++i) {
    std::string key = "k" + std::to_string(i);
    std::string value = rng.AsciiString(64);
    model[key] = value;
    ASSERT_TRUE((*store)->Put(key, value).ok());
  }
  for (const auto& [key, value] : model) {
    EXPECT_EQ((*store)->Get(key).value(), value) << key;
  }
  EXPECT_GT((*store)->stats().disk_reads, 0u);  // cold keys hit the log
}

TEST_F(ResidencyTest, OverwriteOfEvictedKeyWorks) {
  auto store = NoVoHT::Open(Options(2));
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "old").ok());
  }
  // k0 is surely evicted by now; overwrite and read back.
  ASSERT_TRUE((*store)->Put("k0", "new-value").ok());
  EXPECT_EQ((*store)->Get("k0").value(), "new-value");
}

TEST_F(ResidencyTest, AppendToEvictedKeyLoadsThenExtends) {
  auto store = NoVoHT::Open(Options(2));
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("target", "base").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*store)->Put("filler" + std::to_string(i), "x").ok());
  }
  ASSERT_TRUE((*store)->Append("target", "+more").ok());
  EXPECT_EQ((*store)->Get("target").value(), "base+more");
}

TEST_F(ResidencyTest, AppendDirtyValuesSurviveEviction) {
  // Appended values are not contiguous in the log; eviction must re-log
  // them as full puts first.
  auto store = NoVoHT::Open(Options(3));
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*store)->Append("list" + std::to_string(i), "a").ok());
    ASSERT_TRUE((*store)->Append("list" + std::to_string(i), "b").ok());
    ASSERT_TRUE((*store)->Append("list" + std::to_string(i), "c").ok());
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE((*store)->Put("evict-fuel" + std::to_string(i), "x").ok());
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*store)->Get("list" + std::to_string(i)).value(), "abc") << i;
  }
}

TEST_F(ResidencyTest, RemoveEvictedKey) {
  auto store = NoVoHT::Open(Options(2));
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "v").ok());
  }
  EXPECT_TRUE((*store)->Remove("k0").ok());
  EXPECT_EQ((*store)->Get("k0").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*store)->Size(), 19u);
}

TEST_F(ResidencyTest, ForEachIncludesEvictedPairs) {
  auto store = NoVoHT::Open(Options(3));
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE((*store)
                    ->Put("k" + std::to_string(i), "v" + std::to_string(i))
                    .ok());
  }
  std::map<std::string, std::string> seen;
  (*store)->ForEach([&seen](std::string_view k, std::string_view v) {
    seen.emplace(k, v);
  });
  EXPECT_EQ(seen.size(), 25u);
  EXPECT_EQ(seen["k7"], "v7");
}

TEST_F(ResidencyTest, CompactionPreservesEvictedValues) {
  NoVoHTOptions options = Options(4);
  options.gc_garbage_ratio = 1e9;  // manual compaction only
  auto store = NoVoHT::Open(options);
  ASSERT_TRUE(store.ok());
  Rng rng(3);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 40; ++i) {
    std::string key = "k" + std::to_string(i);
    model[key] = rng.AsciiString(32);
    ASSERT_TRUE((*store)->Put(key, model[key]).ok());
  }
  ASSERT_TRUE((*store)->Compact().ok());
  for (const auto& [key, value] : model) {
    EXPECT_EQ((*store)->Get(key).value(), value) << key;
  }
  // Offsets were rewritten into the compacted log; still under cap.
  EXPECT_LE((*store)->stats().resident_values, 4u);
}

TEST_F(ResidencyTest, ReopenEnforcesCap) {
  {
    auto store = NoVoHT::Open(Options(0));  // unbounded first life
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE((*store)->Put("k" + std::to_string(i), "v").ok());
    }
  }
  auto store = NoVoHT::Open(Options(5));
  ASSERT_TRUE(store.ok());
  auto stats = (*store)->stats();
  EXPECT_EQ(stats.entries, 50u);
  EXPECT_LE(stats.resident_values, 5u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ((*store)->Get("k" + std::to_string(i)).value(), "v");
  }
}

TEST_F(ResidencyTest, StressWithEvictionCompactionAndReopen) {
  NoVoHTOptions options = Options(16);
  options.gc_min_log_bytes = 2048;
  options.gc_garbage_ratio = 0.4;
  std::map<std::string, std::string> model;
  Rng rng(77);
  for (int cycle = 0; cycle < 3; ++cycle) {
    auto store = NoVoHT::Open(options);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 800; ++i) {
      std::string key = "key" + std::to_string(rng.Below(120));
      double dice = rng.NextDouble();
      if (dice < 0.5) {
        std::string value = rng.AsciiString(24);
        ASSERT_TRUE((*store)->Put(key, value).ok());
        model[key] = value;
      } else if (dice < 0.75) {
        std::string extra = rng.AsciiString(8);
        ASSERT_TRUE((*store)->Append(key, extra).ok());
        model[key] += extra;
      } else {
        Status status = (*store)->Remove(key);
        if (model.erase(key)) {
          EXPECT_TRUE(status.ok());
        } else {
          EXPECT_EQ(status.code(), StatusCode::kNotFound);
        }
      }
    }
    for (const auto& [key, value] : model) {
      ASSERT_EQ((*store)->Get(key).value(), value) << "cycle " << cycle;
    }
    EXPECT_LE((*store)->stats().resident_values, 16u);
  }
}

}  // namespace
}  // namespace zht
