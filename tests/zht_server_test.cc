// Unit tests of ZhtServer::Handle — the protocol state machine exercised
// directly, without a cluster harness: ownership checks and REDIRECT
// payloads, epoch piggybacking, MIGRATING responses, replica traffic,
// membership pull/push, the migration message trio, and the append
// dedup window.
#include <gtest/gtest.h>

#include "core/zht_server.h"
#include "net/loopback.h"
#include "serialize/metrics_codec.h"

namespace zht {
namespace {

class ZhtServerUnitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    addresses_ = {NodeAddress{"10.0.0.1", 50000},
                  NodeAddress{"10.0.0.2", 50000},
                  NodeAddress{"10.0.0.3", 50000}};
    table_ = MembershipTable::CreateUniform(24, addresses_);
    transport_ = std::make_unique<LoopbackTransport>(&network_);
  }

  std::unique_ptr<ZhtServer> MakeServer(InstanceId self, int replicas = 0) {
    ZhtServerOptions options;
    options.self = self;
    options.cluster.num_replicas = replicas;
    return std::make_unique<ZhtServer>(table_, options, transport_.get());
  }

  // A key owned by the given instance (brute-force search).
  std::string KeyOwnedBy(InstanceId owner) {
    for (int i = 0; i < 10000; ++i) {
      std::string key = "key-" + std::to_string(i);
      if (table_.OwnerOf(table_.PartitionOfKey(key)) == owner) return key;
    }
    ADD_FAILURE() << "no key found for instance " << owner;
    return "";
  }

  Request DataRequest(OpCode op, const std::string& key,
                      const std::string& value = "") {
    Request request;
    request.op = op;
    request.seq = ++seq_;
    request.key = key;
    request.value = value;
    request.epoch = table_.epoch();
    return request;
  }

  std::vector<NodeAddress> addresses_;
  MembershipTable table_;
  LoopbackNetwork network_;
  std::unique_ptr<LoopbackTransport> transport_;
  std::uint64_t seq_ = 0;
};

TEST_F(ZhtServerUnitTest, OwnerServesAndEchoesSeq) {
  auto server = MakeServer(0);
  std::string key = KeyOwnedBy(0);
  Response resp = server->Handle(DataRequest(OpCode::kInsert, key, "v"));
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.seq, seq_);
  resp = server->Handle(DataRequest(OpCode::kLookup, key));
  EXPECT_EQ(resp.value, "v");
}

TEST_F(ZhtServerUnitTest, WrongOwnerRedirectsWithOwnerAddress) {
  auto server = MakeServer(0);
  std::string key = KeyOwnedBy(2);
  Response resp = server->Handle(DataRequest(OpCode::kInsert, key, "v"));
  EXPECT_EQ(resp.status_as_object().code(), StatusCode::kRedirect);
  EXPECT_EQ(resp.redirect_host, "10.0.0.3");
  EXPECT_EQ(resp.redirect_port, 50000);
  EXPECT_FALSE(resp.membership.empty());  // piggybacked table for the
                                          // lazy client update
  EXPECT_EQ(server->stats().redirects, 1u);
  EXPECT_EQ(server->stats().ops, 0u);  // nothing applied
}

TEST_F(ZhtServerUnitTest, RedirectMembershipIsApplicable) {
  auto server = MakeServer(0);
  std::string key = KeyOwnedBy(1);
  Request request = DataRequest(OpCode::kLookup, key);
  request.epoch = 0;  // very stale client
  Response resp = server->Handle(std::move(request));
  ASSERT_EQ(resp.status_as_object().code(), StatusCode::kRedirect);
  MembershipTable fresh;
  EXPECT_TRUE(fresh.ApplyUpdate(resp.membership).ok());
  EXPECT_EQ(fresh.instance_count(), 3u);
}

TEST_F(ZhtServerUnitTest, PingReportsEpoch) {
  auto server = MakeServer(0);
  Request ping;
  ping.op = OpCode::kPing;
  ping.seq = 9;
  Response resp = server->Handle(std::move(ping));
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.epoch, table_.epoch());
}

TEST_F(ZhtServerUnitTest, ReplicaTrafficBypassesOwnershipCheck) {
  auto server = MakeServer(0);
  std::string key = KeyOwnedBy(2);  // not ours
  Request request = DataRequest(OpCode::kInsert, key, "copy");
  request.server_origin = true;
  request.replica_index = 1;
  Response resp = server->Handle(std::move(request));
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(server->TotalEntries(), 1u);
}

TEST_F(ZhtServerUnitTest, ClientFailoverReadServedByChainMember) {
  // Instance 1 is the first successor of instance 0's partitions.
  auto server = MakeServer(1, /*replicas=*/1);
  std::string key = KeyOwnedBy(0);
  // Seed the replica copy.
  Request seed = DataRequest(OpCode::kInsert, key, "v");
  seed.server_origin = true;
  seed.replica_index = 1;
  EXPECT_TRUE(server->Handle(std::move(seed)).ok());
  // Client failover read: replica_index=1, not server-origin.
  Request read = DataRequest(OpCode::kLookup, key);
  read.replica_index = 1;
  Response resp = server->Handle(std::move(read));
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.value, "v");
}

TEST_F(ZhtServerUnitTest, FailoverToNonChainMemberStillRedirects) {
  // Instance 2 is NOT in the 2-member chain of instance 0's partitions.
  auto server = MakeServer(2, /*replicas=*/1);
  std::string key = KeyOwnedBy(0);
  Request read = DataRequest(OpCode::kLookup, key);
  read.replica_index = 1;
  Response resp = server->Handle(std::move(read));
  EXPECT_EQ(resp.status_as_object().code(), StatusCode::kRedirect);
}

TEST_F(ZhtServerUnitTest, MembershipPullFullAndDelta) {
  auto server = MakeServer(0);
  Request pull;
  pull.op = OpCode::kMembershipPull;
  pull.seq = 1;
  pull.epoch = 0;  // wants a full snapshot
  Response resp = server->Handle(std::move(pull));
  auto full = MembershipTable::DecodeFull(resp.membership);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, table_);

  Request delta_pull;
  delta_pull.op = OpCode::kMembershipPull;
  delta_pull.seq = 2;
  delta_pull.epoch = table_.epoch();  // up to date: empty delta
  resp = server->Handle(std::move(delta_pull));
  MembershipTable copy = table_;
  EXPECT_TRUE(copy.ApplyUpdate(resp.membership).ok());
  EXPECT_EQ(copy, table_);
}

TEST_F(ZhtServerUnitTest, MembershipPushAdvancesEpoch) {
  auto server = MakeServer(0);
  MembershipTable updated = table_;
  updated.SetOwner(3, 1);
  Request push;
  push.op = OpCode::kMembershipPush;
  push.seq = 1;
  push.value = updated.EncodeDelta(table_.epoch());
  push.server_origin = true;
  Response resp = server->Handle(std::move(push));
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.epoch, updated.epoch());
  EXPECT_EQ(server->table().OwnerOf(3), 1u);
}

TEST_F(ZhtServerUnitTest, MigrationTrioMovesPairs) {
  auto source = MakeServer(0);
  auto target_slot = std::make_shared<AsyncRequestHandler>();
  NodeAddress target_address = network_.Register(
      [target_slot](Request&& req, ResponseCallback done) {
        (*target_slot)(std::move(req), std::move(done));
      });
  ZhtServerOptions target_options;
  target_options.self = 1;
  ZhtServer target(table_, target_options, transport_.get());
  *target_slot = target.AsyncHandler();

  std::string key = KeyOwnedBy(0);
  ASSERT_TRUE(source->Handle(DataRequest(OpCode::kInsert, key, "mv")).ok());
  PartitionId p = table_.PartitionOfKey(key);

  ASSERT_TRUE(source->MigratePartitionTo(p, target_address).ok());
  EXPECT_EQ(source->TotalEntries(), 0u);
  EXPECT_EQ(target.TotalEntries(), 1u);
  EXPECT_EQ(source->stats().migrations_out, 1u);
  EXPECT_EQ(target.stats().migrations_in, 1u);
}

TEST_F(ZhtServerUnitTest, SecondMigrationOfSamePartitionWhileActiveFails) {
  auto source = MakeServer(0);
  // Target that never answers: migration will hang on timeout — instead
  // use a down address so MigrateBegin fails fast and the lock releases.
  NodeAddress dead = network_.Register([](Request&& req) {
    Response resp;
    resp.seq = req.seq;
    return resp;
  });
  network_.SetDown(dead, true);
  std::string key = KeyOwnedBy(0);
  source->Handle(DataRequest(OpCode::kInsert, key, "v"));
  PartitionId p = table_.PartitionOfKey(key);
  EXPECT_FALSE(source->MigratePartitionTo(p, dead).ok());
  // Lock released after failure: data still there and servable.
  Response resp = source->Handle(DataRequest(OpCode::kLookup, key));
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.value, "v");
}

TEST_F(ZhtServerUnitTest, DuplicateAppendDroppedOnce) {
  auto server = MakeServer(0);
  std::string key = KeyOwnedBy(0);
  Request append = DataRequest(OpCode::kAppend, key, "x");
  append.client_id = 77;
  Request duplicate = append;  // identical (client_id, seq): a retransmit
  EXPECT_TRUE(server->Handle(std::move(append)).ok());
  EXPECT_TRUE(server->Handle(std::move(duplicate)).ok());
  Response resp = server->Handle(DataRequest(OpCode::kLookup, key));
  EXPECT_EQ(resp.value, "x");  // applied exactly once
  EXPECT_EQ(server->stats().duplicate_appends_dropped, 1u);
}

TEST_F(ZhtServerUnitTest, DistinctSeqAppendsBothApply) {
  auto server = MakeServer(0);
  std::string key = KeyOwnedBy(0);
  Request a = DataRequest(OpCode::kAppend, key, "x");
  a.client_id = 77;
  Request b = DataRequest(OpCode::kAppend, key, "y");  // new seq
  b.client_id = 77;
  server->Handle(std::move(a));
  server->Handle(std::move(b));
  EXPECT_EQ(server->Handle(DataRequest(OpCode::kLookup, key)).value, "xy");
}

TEST_F(ZhtServerUnitTest, AnonymousAppendsNeverDeduped) {
  auto server = MakeServer(0);
  std::string key = KeyOwnedBy(0);
  Request a = DataRequest(OpCode::kAppend, key, "x");
  a.client_id = 0;  // no identity: dedup impossible by design
  Request b = a;
  server->Handle(std::move(a));
  server->Handle(std::move(b));
  EXPECT_EQ(server->Handle(DataRequest(OpCode::kLookup, key)).value, "xx");
}

TEST_F(ZhtServerUnitTest, BroadcastAppliesLocally) {
  auto server = MakeServer(0);
  Request bcast;
  bcast.op = OpCode::kBroadcast;
  bcast.seq = 1;
  bcast.key = "bkey";
  bcast.value = "bval";
  Response resp = server->Handle(std::move(bcast));
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(server->stats().broadcasts, 1u);
  server->FlushAsyncReplication();
}

TEST_F(ZhtServerUnitTest, RemoveMissingKeyNotFound) {
  auto server = MakeServer(0);
  std::string key = KeyOwnedBy(0);
  Response resp = server->Handle(DataRequest(OpCode::kRemove, key));
  EXPECT_EQ(resp.status_as_object().code(), StatusCode::kNotFound);
}

// STATS now answers with the versioned structured metrics encoding; the
// legacy text keys survive as named gauges/counters.
TEST_F(ZhtServerUnitTest, StatsReturnsDecodableStructuredMetrics) {
  auto server = MakeServer(0);
  std::string key = KeyOwnedBy(0);
  EXPECT_TRUE(server->Handle(DataRequest(OpCode::kInsert, key, "v")).ok());
  EXPECT_TRUE(server->Handle(DataRequest(OpCode::kLookup, key)).ok());

  Request stats_req;
  stats_req.op = OpCode::kStats;
  stats_req.seq = 99;
  Response resp = server->Handle(std::move(stats_req));
  ASSERT_TRUE(resp.ok());

  auto snapshot = DecodeMetricsSnapshot(resp.value);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->ValueOf("instance"), 0);
  EXPECT_EQ(snapshot->ValueOf("entries"), 1);
  EXPECT_GE(snapshot->ValueOf("ops"), 2);
  // Acceptance: at least one per-opcode latency histogram with samples.
  const MetricValue* insert_hist =
      snapshot->Find("server.op.insert.latency_ns");
  ASSERT_NE(insert_hist, nullptr);
  EXPECT_EQ(insert_hist->kind, MetricKind::kHistogram);
  EXPECT_EQ(insert_hist->histogram.count, 1u);
  const MetricValue* lookup_hist =
      snapshot->Find("server.op.lookup.latency_ns");
  ASSERT_NE(lookup_hist, nullptr);
  EXPECT_EQ(lookup_hist->histogram.count, 1u);
}

// Scripted ops → exact counter deltas, via two STATS snapshots.
TEST_F(ZhtServerUnitTest, StatsCountersTrackScriptedOps) {
  auto server = MakeServer(0);
  auto snapshot_now = [&] {
    Request req;
    req.op = OpCode::kStats;
    req.seq = ++seq_;
    Response resp = server->Handle(std::move(req));
    auto snapshot = DecodeMetricsSnapshot(resp.value);
    EXPECT_TRUE(snapshot.ok());
    return std::move(*snapshot);
  };

  MetricsSnapshot before = snapshot_now();
  std::string key = KeyOwnedBy(0);
  std::string other = KeyOwnedBy(1);  // not ours: redirected, not served
  EXPECT_TRUE(server->Handle(DataRequest(OpCode::kInsert, key, "v")).ok());
  EXPECT_TRUE(server->Handle(DataRequest(OpCode::kAppend, key, "w")).ok());
  EXPECT_TRUE(server->Handle(DataRequest(OpCode::kLookup, key)).ok());
  server->Handle(DataRequest(OpCode::kInsert, other, "x"));
  MetricsSnapshot after = snapshot_now();

  // `ops` counts store-applied operations only — the redirected insert
  // never reaches the store; the per-opcode histograms time every handled
  // request (what a client waits for), so the redirect IS in there.
  EXPECT_EQ(after.ValueOf("ops") - before.ValueOf("ops"), 3);
  EXPECT_EQ(after.ValueOf("redirects") - before.ValueOf("redirects"), 1);
  EXPECT_EQ(after.ValueOf("server.redirects") -
                before.ValueOf("server.redirects"),
            1);
  auto hist_count = [](const MetricsSnapshot& snapshot, const char* name) {
    const MetricValue* entry = snapshot.Find(name);
    return entry == nullptr ? std::uint64_t{0} : entry->histogram.count;
  };
  EXPECT_EQ(hist_count(after, "server.op.insert.latency_ns") -
                hist_count(before, "server.op.insert.latency_ns"),
            2u);
  EXPECT_EQ(hist_count(after, "server.op.append.latency_ns") -
                hist_count(before, "server.op.append.latency_ns"),
            1u);
  EXPECT_EQ(hist_count(after, "server.op.lookup.latency_ns") -
                hist_count(before, "server.op.lookup.latency_ns"),
            1u);
}

// Replication fan-out lands in the histogram and sync/async counters.
TEST_F(ZhtServerUnitTest, StatsReplicationMetrics) {
  auto server = MakeServer(0, /*replicas=*/2);
  std::string key = KeyOwnedBy(0);
  EXPECT_TRUE(server->Handle(DataRequest(OpCode::kInsert, key, "v")).ok());
  server->FlushAsyncReplication();

  MetricsSnapshot snapshot = server->MetricsSnapshotNow();
  const MetricValue* fanout = snapshot.Find("server.replication.fanout");
  ASSERT_NE(fanout, nullptr);
  EXPECT_EQ(fanout->histogram.count, 1u);
  EXPECT_EQ(fanout->histogram.sum, 2u);  // two replicas per chain write
  EXPECT_EQ(snapshot.ValueOf("server.replication.sync"), 1);
  EXPECT_EQ(snapshot.ValueOf("server.replication.async"), 1);
  EXPECT_EQ(snapshot.ValueOf("replications_sync"), 1);
  EXPECT_EQ(snapshot.ValueOf("replications_async"), 1);
}

}  // namespace
}  // namespace zht
