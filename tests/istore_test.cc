#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/local_cluster.h"
#include "istore/gf256.h"
#include "istore/istore.h"
#include "istore/reed_solomon.h"
#include "net/loopback.h"

namespace zht::istore {
namespace {

// ---- GF(256) ----------------------------------------------------------

TEST(Gf256Test, FieldAxiomsSampled) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    std::uint8_t a = static_cast<std::uint8_t>(rng.Next());
    std::uint8_t b = static_cast<std::uint8_t>(rng.Next());
    std::uint8_t c = static_cast<std::uint8_t>(rng.Next());
    // Commutativity and associativity of multiplication.
    EXPECT_EQ(Gf256::Mul(a, b), Gf256::Mul(b, a));
    EXPECT_EQ(Gf256::Mul(a, Gf256::Mul(b, c)),
              Gf256::Mul(Gf256::Mul(a, b), c));
    // Distributivity over addition (xor).
    EXPECT_EQ(Gf256::Mul(a, Gf256::Add(b, c)),
              Gf256::Add(Gf256::Mul(a, b), Gf256::Mul(a, c)));
  }
}

TEST(Gf256Test, MultiplicativeInverse) {
  for (int a = 1; a < 256; ++a) {
    std::uint8_t inv = Gf256::Inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(Gf256::Mul(static_cast<std::uint8_t>(a), inv), 1) << a;
  }
}

TEST(Gf256Test, DivisionInvertsMultiplication) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    std::uint8_t a = static_cast<std::uint8_t>(rng.Next());
    std::uint8_t b = static_cast<std::uint8_t>(rng.Next() | 1);
    EXPECT_EQ(Gf256::Div(Gf256::Mul(a, b), b), a);
  }
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  std::uint8_t acc = 1;
  for (std::uint32_t e = 0; e < 300; ++e) {
    EXPECT_EQ(Gf256::Pow(3, e), acc) << e;
    acc = Gf256::Mul(acc, 3);
  }
}

TEST(GfMatrixTest, InverseRoundTrip) {
  Rng rng(3);
  GfMatrix m(5, 5);
  // Random matrices over GF(256) are almost surely invertible; retry if not.
  for (int attempt = 0; attempt < 10; ++attempt) {
    for (std::size_t r = 0; r < 5; ++r) {
      for (std::size_t c = 0; c < 5; ++c) {
        m.at(r, c) = static_cast<std::uint8_t>(rng.Next());
      }
    }
    auto inv = m.Inverted();
    if (!inv.ok()) continue;
    GfMatrix product = m.Multiply(*inv);
    for (std::size_t r = 0; r < 5; ++r) {
      for (std::size_t c = 0; c < 5; ++c) {
        EXPECT_EQ(product.at(r, c), r == c ? 1 : 0);
      }
    }
    return;
  }
  FAIL() << "no invertible matrix in 10 attempts";
}

TEST(GfMatrixTest, SingularRejected) {
  GfMatrix zero(3, 3);
  EXPECT_FALSE(zero.Inverted().ok());
}

// ---- Reed-Solomon -------------------------------------------------------

class ReedSolomonTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ReedSolomonTest, AnyKChunksReconstruct) {
  auto [k, n] = GetParam();
  auto codec = ReedSolomon::Create(k, n);
  ASSERT_TRUE(codec.ok());
  Rng rng(17);
  std::string data = rng.AsciiString(1000 + rng.Below(500));
  auto chunks = codec->Encode(data);
  ASSERT_EQ(chunks.size(), static_cast<std::size_t>(n));

  // Try several k-subsets, including all-parity ones.
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<int> ids;
    std::vector<std::string> subset;
    // Random distinct k chunk ids.
    std::vector<int> pool(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
    for (int i = 0; i < k; ++i) {
      std::size_t pick = rng.Below(pool.size());
      ids.push_back(pool[pick]);
      subset.push_back(chunks[static_cast<std::size_t>(pool[pick])]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    auto decoded = codec->Decode(ids, subset, data.size());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, data) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReedSolomonTest,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(1, 3),
                      std::make_pair(2, 4), std::make_pair(4, 6),
                      std::make_pair(6, 8), std::make_pair(10, 14),
                      std::make_pair(30, 32)));

TEST(ReedSolomonBasicTest, SystematicFirstKChunksAreData) {
  auto codec = ReedSolomon::Create(3, 5);
  ASSERT_TRUE(codec.ok());
  std::string data = "abcdefghi";  // 3 stripes of 3
  auto chunks = codec->Encode(data);
  EXPECT_EQ(chunks[0], "abc");
  EXPECT_EQ(chunks[1], "def");
  EXPECT_EQ(chunks[2], "ghi");
}

TEST(ReedSolomonBasicTest, FewerThanKFails) {
  auto codec = ReedSolomon::Create(3, 5);
  ASSERT_TRUE(codec.ok());
  auto chunks = codec->Encode("hello world!");
  auto decoded = codec->Decode({0, 1}, {chunks[0], chunks[1]}, 12);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kUnavailable);
}

TEST(ReedSolomonBasicTest, PaddingTrimmedExactly) {
  auto codec = ReedSolomon::Create(4, 6);
  ASSERT_TRUE(codec.ok());
  std::string data = "xyz";  // much smaller than k
  auto chunks = codec->Encode(data);
  auto decoded = codec->Decode({2, 3, 4, 5},
                               {chunks[2], chunks[3], chunks[4], chunks[5]},
                               data.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomonBasicTest, InvalidParamsRejected) {
  EXPECT_FALSE(ReedSolomon::Create(0, 4).ok());
  EXPECT_FALSE(ReedSolomon::Create(5, 4).ok());
  EXPECT_FALSE(ReedSolomon::Create(1, 300).ok());
}

// ---- IStore end-to-end ---------------------------------------------------

class IStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LocalClusterOptions options;
    options.num_instances = 4;
    auto cluster = LocalCluster::Start(options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(*cluster);
    client_ = std::make_unique<ClientHandle>(cluster_->CreateClient());

    for (int i = 0; i < 8; ++i) {
      chunk_servers_.push_back(std::make_unique<ChunkServer>());
      chunk_addresses_.push_back(
          chunk_network_.Register(chunk_servers_.back()->AsHandler()));
    }
    chunk_transport_ = std::make_unique<LoopbackTransport>(&chunk_network_);
    store_ = std::make_unique<IStore>(client_->get(), chunk_addresses_,
                                      chunk_transport_.get());
  }

  std::unique_ptr<LocalCluster> cluster_;
  std::unique_ptr<ClientHandle> client_;
  LoopbackNetwork chunk_network_;
  std::vector<std::unique_ptr<ChunkServer>> chunk_servers_;
  std::vector<NodeAddress> chunk_addresses_;
  std::unique_ptr<LoopbackTransport> chunk_transport_;
  std::unique_ptr<IStore> store_;
};

TEST_F(IStoreTest, PutGetRoundTrip) {
  Rng rng(5);
  std::string data = rng.AsciiString(10000);
  ASSERT_TRUE(store_->Put("obj1", data).ok());
  auto back = store_->Get("obj1");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, data);
}

TEST_F(IStoreTest, ChunksAreDispersedAcrossAllNodes) {
  ASSERT_TRUE(store_->Put("spread", std::string(4096, 'x')).ok());
  for (const auto& server : chunk_servers_) {
    EXPECT_EQ(server->chunks_stored(), 1u);
  }
}

TEST_F(IStoreTest, SurvivesParityManyFailures) {
  Rng rng(6);
  std::string data = rng.AsciiString(5000);
  ASSERT_TRUE(store_->Put("resilient", data).ok());
  // Default parity = 2: kill two chunk servers.
  chunk_network_.SetDown(chunk_addresses_[0], true);
  chunk_network_.SetDown(chunk_addresses_[3], true);
  auto back = store_->Get("resilient");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, data);
}

TEST_F(IStoreTest, TooManyFailuresUnrecoverable) {
  ASSERT_TRUE(store_->Put("lost", "precious data").ok());
  for (int i = 0; i < 3; ++i) {
    chunk_network_.SetDown(chunk_addresses_[static_cast<std::size_t>(i)],
                           true);
  }
  EXPECT_FALSE(store_->Get("lost").ok());
}

TEST_F(IStoreTest, DeleteRemovesChunksAndMetadata) {
  ASSERT_TRUE(store_->Put("temp", std::string(1000, 'y')).ok());
  ASSERT_TRUE(store_->Delete("temp").ok());
  EXPECT_EQ(store_->Get("temp").status().code(), StatusCode::kNotFound);
  for (const auto& server : chunk_servers_) {
    EXPECT_EQ(server->chunks_stored(), 0u);
  }
}

TEST_F(IStoreTest, ManifestRoundTrip) {
  ObjectManifest m;
  m.k = 6;
  m.n = 8;
  m.size = 123456;
  m.chunk_nodes = {0, 1, 2, 3, 4, 5, 6, 7};
  auto decoded = ObjectManifest::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST_F(IStoreTest, SurvivesMetadataNodeFailureWithReplication) {
  // Full-stack failure test: the ZHT cluster holding the manifests runs
  // with replication; killing the manifest's primary must not lose the
  // object (chunk servers are all healthy).
  LocalClusterOptions options;
  options.num_instances = 4;
  options.cluster.num_replicas = 1;
  auto cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok());
  ZhtClientOptions client_options;
  client_options.failure_detector.failures_to_mark_dead = 1;
  client_options.failure_detector.initial_backoff = 0;
  client_options.sleep_on_backoff = false;
  auto metadata_client = (*cluster)->CreateClient(client_options);
  IStore store(metadata_client.get(), chunk_addresses_,
               chunk_transport_.get());

  ASSERT_TRUE(store.Put("critical", "object-bytes").ok());
  (*cluster)->FlushAllAsyncReplication();

  PartitionId p = metadata_client->table().PartitionOfKey("i:critical");
  InstanceId owner = metadata_client->table().OwnerOf(p);
  (*cluster)->KillInstance(owner);

  auto back = store.Get("critical");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, "object-bytes");
}

TEST_F(IStoreTest, MetadataLivesInZht) {
  ASSERT_TRUE(store_->Put("meta-check", "data").ok());
  auto raw = (*client_)->Lookup("i:meta-check");
  ASSERT_TRUE(raw.ok());
  auto manifest = ObjectManifest::Decode(*raw);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->n, 8);
  EXPECT_EQ(manifest->k, 6);
  EXPECT_GE(store_->metadata_ops(), 1u);
}

}  // namespace
}  // namespace zht::istore
