// Google-benchmark micro suite: hash functions (§III.E), the wire codec
// (the protobuf substitution, §III.G), NoVoHT primitive ops (§III.I), the
// partition map, and Reed-Solomon coding (§V.B).
#include <benchmark/benchmark.h>

#include <filesystem>

#include "bench/workload.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "hashing/hash_functions.h"
#include "hashing/partition_space.h"
#include "istore/reed_solomon.h"
#include "novoht/novoht.h"
#include "serialize/envelope.h"

namespace zht {
namespace {

// Shared with bench_traffic: the workload library owns key generation so
// every bench draws from the same deterministic key space.
std::vector<std::string> MakeKeys(std::size_t count, std::size_t length) {
  return bench::MakeKeySet(count, length, /*seed=*/11);
}

void BM_HashFnv1a64(benchmark::State& state) {
  auto keys = MakeKeys(1024, static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fnv1a64(keys[i++ & 1023]));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashFnv1a64)->Arg(15)->Arg(64)->Arg(256);

void BM_HashJenkins64(benchmark::State& state) {
  auto keys = MakeKeys(1024, static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Jenkins64(keys[i++ & 1023]));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashJenkins64)->Arg(15)->Arg(64)->Arg(256);

void BM_PartitionOfKey(benchmark::State& state) {
  PartitionSpace space(1u << 20);
  auto keys = MakeKeys(1024, 15);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.PartitionOfKey(keys[i++ & 1023]));
  }
}
BENCHMARK(BM_PartitionOfKey);

// The observability hot path: one histogram Record per handled request.
// Must stay a handful of relaxed atomic ops (no locks, no allocation).
void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  Rng rng(7);
  std::vector<std::int64_t> samples(1024);
  for (auto& sample : samples) {
    sample = static_cast<std::int64_t>(rng.Below(100'000'000));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    histogram.Record(samples[i++ & 1023]);
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_CounterIncrement(benchmark::State& state) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Increment();
  }
}
BENCHMARK(BM_CounterIncrement);

void BM_RequestEncode(benchmark::State& state) {
  Request request;
  request.op = OpCode::kInsert;
  request.seq = 123456;
  request.key = std::string(15, 'k');
  request.value = std::string(static_cast<std::size_t>(state.range(0)), 'v');
  request.epoch = 42;
  for (auto _ : state) {
    benchmark::DoNotOptimize(request.Encode());
  }
}
BENCHMARK(BM_RequestEncode)->Arg(132)->Arg(1024)->Arg(65536);

void BM_RequestDecode(benchmark::State& state) {
  Request request;
  request.op = OpCode::kInsert;
  request.seq = 123456;
  request.key = std::string(15, 'k');
  request.value = std::string(static_cast<std::size_t>(state.range(0)), 'v');
  std::string encoded = request.Encode();
  for (auto _ : state) {
    auto decoded = Request::Decode(encoded);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_RequestDecode)->Arg(132)->Arg(1024)->Arg(65536);

void BM_NoVoHTPut(benchmark::State& state) {
  const bool persistent = state.range(0) != 0;
  std::string path;
  NoVoHTOptions options;
  if (persistent) {
    path = (std::filesystem::temp_directory_path() / "bm_novoht.nvt")
               .string();
    std::filesystem::remove(path);
    options.path = path;
  }
  auto store = NoVoHT::Open(options);
  auto keys = MakeKeys(4096, 15);
  std::size_t i = 0;
  for (auto _ : state) {
    (*store)->Put(keys[i++ & 4095], "value-payload-132-bytes............");
  }
  if (persistent) std::filesystem::remove(path);
}
BENCHMARK(BM_NoVoHTPut)->Arg(0)->Arg(1);  // 0 = memory, 1 = WAL on disk

void BM_NoVoHTGet(benchmark::State& state) {
  auto store = NoVoHT::Open(NoVoHTOptions{});
  auto keys = MakeKeys(4096, 15);
  for (const auto& key : keys) (*store)->Put(key, "payload");
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*store)->Get(keys[i++ & 4095]));
  }
}
BENCHMARK(BM_NoVoHTGet);

// Skewed read pattern (arg = zipf s * 10): how the store behaves when a
// handful of ranks absorb most probes — the access distribution the hot-key
// cache upstream is built around.
void BM_NoVoHTGetZipf(benchmark::State& state) {
  auto store = NoVoHT::Open(NoVoHTOptions{});
  auto keys = MakeKeys(4096, 15);
  for (const auto& key : keys) (*store)->Put(key, "payload");
  bench::ZipfGenerator zipf(keys.size(),
                            static_cast<double>(state.range(0)) / 10.0,
                            /*seed=*/17);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*store)->Get(keys[zipf.Next()]));
  }
}
BENCHMARK(BM_NoVoHTGetZipf)->Arg(9)->Arg(11);

void BM_NoVoHTAppend(benchmark::State& state) {
  auto store = NoVoHT::Open(NoVoHTOptions{});
  for (auto _ : state) {
    (*store)->Append("directory-key", "entry;");
  }
}
BENCHMARK(BM_NoVoHTAppend);

void BM_ReedSolomonEncode(benchmark::State& state) {
  auto codec = istore::ReedSolomon::Create(6, 8);
  Rng rng(3);
  std::string data =
      rng.AsciiString(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Encode(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ReedSolomonEncode)->Arg(64 << 10)->Arg(1 << 20);

void BM_ReedSolomonDecodeDegraded(benchmark::State& state) {
  auto codec = istore::ReedSolomon::Create(6, 8);
  Rng rng(4);
  std::string data =
      rng.AsciiString(static_cast<std::size_t>(state.range(0)));
  auto chunks = codec->Encode(data);
  // Worst case: two data chunks lost, parity used.
  std::vector<int> ids = {2, 3, 4, 5, 6, 7};
  std::vector<std::string> subset;
  for (int id : ids) subset.push_back(chunks[static_cast<std::size_t>(id)]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->Decode(ids, subset, data.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ReedSolomonDecodeDegraded)->Arg(64 << 10)->Arg(1 << 20);

}  // namespace
}  // namespace zht

BENCHMARK_MAIN();
