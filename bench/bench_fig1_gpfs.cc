// Figure 1: time per operation (touch/create) on GPFS vs number of
// processors on a Blue Gene/P, one directory vs many directories.
// Regenerated from the centralized-lock contention model calibrated to the
// paper's measured anchors (5 ms @1, 393 ms many-dir / 2449 ms one-dir
// @512 nodes, ~63 s one-dir @16K cores).
#include "bench/bench_util.h"
#include "fusionfs/metadata.h"

int main() {
  using namespace zht::bench;
  using zht::fusionfs::GpfsModel;

  Banner("Figure 1",
         "Time per operation (touch) on GPFS vs scale (model of the "
         "paper's measurement)");
  GpfsModel model;
  PrintRow({"cores", "many-dir (ms)", "one-dir (ms)"});
  for (std::uint64_t cores : {1ull, 4ull, 16ull, 64ull, 256ull, 1024ull,
                              4096ull, 16384ull}) {
    PrintRow({FmtInt(cores), Fmt(model.ManyDirMsPerOp(cores), 1),
              Fmt(model.OneDirMsPerOp(cores), 1)});
  }
  Note("shape to reproduce: ideal would be flat; GPFS grows ~linearly with "
       "concurrency, saturating its metadata servers at 4-32 cores; "
       "one-directory (shared lock) is ~6x worse than many-directory at "
       "512 nodes and reaches minutes at 16K cores");
  return 0;
}
