// Figure 13: latency with 1/2/4/8 ZHT instances per node, 1 to 8K BG/P
// nodes. Paper: 4 instances per (4-core) node raises latency from 1.1 ms
// to 2.08 ms at 8K nodes — cores are oversubscribed — but aggregate
// throughput still rises 2.2x (Figure 14).
#include "bench/bench_util.h"
#include "sim/kvs_sim.h"

int main() {
  using namespace zht::bench;
  using namespace zht::sim;

  Banner("Figure 13",
         "Latency vs scale with 1/2/4/8 instances per node (ms)");
  PrintRow({"nodes", "1 inst/node", "2 inst/node", "4 inst/node",
            "8 inst/node"},
           15);
  const std::vector<std::uint64_t> kNodeSweep =
      SmokeMode() ? std::vector<std::uint64_t>{1ull, 16ull}
                  : std::vector<std::uint64_t>{1ull, 16ull, 64ull, 256ull,
                                               1024ull, 4096ull, 8192ull};
  for (std::uint64_t nodes : kNodeSweep) {
    std::vector<std::string> row{FmtInt(nodes)};
    for (std::uint32_t instances : {1u, 2u, 4u, 8u}) {
      KvsSimParams params;
      params.num_nodes = nodes;
      params.instances_per_node = instances;
      params.ops_per_client = nodes >= 4096 ? 6 : 24;
      row.push_back(Fmt(RunKvsSim(params).mean_latency_ms, 2));
    }
    PrintRow(row, 15);
  }
  Note("paper anchors: 1.1 ms (1 inst/node) vs 2.08 ms (4 inst/node = one "
       "per core, 32K instances total) at 8K nodes; 8 inst/node pushes "
       "past the 4 cores and climbs further");
  return 0;
}
