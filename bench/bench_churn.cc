// Churn campaign: rolling joins / failures / rejoins / departures against
// a live LocalCluster while history-checked clients hammer it, swept over
// the pluggable placement policies (contiguous | memento | rendezvous).
//
// Reported per policy:
//   - partitions/keys moved by a single 1-node join (the policy's churn
//     cost — memento must move strictly fewer keys than contiguous);
//   - availability dip: the longest wall-clock window with no successful
//     client operation across the whole campaign;
//   - redirects per membership epoch (lazy-update amplification);
//   - retry / shed amplification and coalesced membership_pulls;
//   - pairs and bytes migrated per membership event;
//   - max/mean partition-load skew under zipf(0.99) keys.
//
// Gates (exit 1): the recorded history must pass the linearizability
// checker, no measurement window during the single rolling join may see
// zero successes, and MementoHash must move strictly fewer keys than the
// contiguous policy on the 1-node join.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/workload.h"
#include "core/local_cluster.h"
#include "tests/history_checker.h"

namespace {

using namespace zht;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct PolicyOutcome {
  std::string policy;
  std::uint64_t partitions_moved_join = 0;
  std::uint64_t keys_moved_join = 0;
  std::uint64_t pairs_migrated = 0;
  std::uint64_t bytes_migrated = 0;
  std::uint64_t membership_events = 0;
  double longest_gap_ms = 0;
  double redirects_per_epoch = 0;
  double retry_amplification = 0;
  double shed_amplification = 0;
  std::uint64_t membership_pulls = 0;
  double load_skew_max_over_mean = 0;
  bool history_ok = false;
  bool join_window_ok = false;
};

// A traffic thread: register-discipline ops (every insert value unique for
// its key, so the checker can pin reads to writes) with success timestamps
// collected for the availability-dip measurement.
struct Worker {
  ZhtClient* client = nullptr;
  HistoryRecorder* recorder = nullptr;
  const std::vector<std::string>* keys = nullptr;
  std::uint64_t id = 0;
  std::atomic<bool>* stop = nullptr;
  Clock::time_point epoch_start;
  std::vector<double> success_ms;  // offsets from epoch_start
  std::vector<double> attempt_ms;  // every completed op, success or not
  std::uint64_t seq = 0;

  void Run() {
    Rng rng(1000 + id);
    while (!stop->load(std::memory_order_relaxed)) {
      const std::string& key =
          (*keys)[rng.Next() % keys->size()];
      StatusCode code;
      if (rng.Next() % 5 < 3) {
        std::string value =
            "v_t" + std::to_string(id) + "_" + std::to_string(++seq);
        std::uint64_t op = recorder->Begin(id, OpCode::kInsert, key, value);
        code = client->Insert(key, value).code();
        recorder->End(op, code);
      } else {
        std::uint64_t op = recorder->Begin(id, OpCode::kLookup, key, "");
        auto got = client->Lookup(key);
        code = got.status().code();
        recorder->End(op, code, got.ok() ? *got : "");
      }
      const double t = MsSince(epoch_start);
      attempt_ms.push_back(t);
      if (code == StatusCode::kOk) success_ms.push_back(t);
    }
  }
};

std::vector<InstanceId> OwnersSnapshot(const MembershipTable& table) {
  std::vector<InstanceId> owners(table.num_partitions());
  for (PartitionId p = 0; p < table.num_partitions(); ++p) {
    owners[p] = table.OwnerOf(p);
  }
  return owners;
}

struct MigrationTotals {
  std::uint64_t pairs = 0;
  std::uint64_t bytes = 0;
};

MigrationTotals MigratedSoFar(LocalCluster& cluster) {
  MigrationTotals totals;
  for (std::size_t i = 0; i < cluster.instance_count(); ++i) {
    ZhtServerStats stats = cluster.server(i)->stats();
    totals.pairs += stats.migration_pairs_streamed;
    totals.bytes += stats.migration_bytes_streamed;
  }
  return totals;
}

// Longest interval (ms) between consecutive successes over [0, span_ms],
// counting the lead-in before the first success and the tail after the
// last one.
double LongestGap(std::vector<double> stamps, double span_ms) {
  if (stamps.empty()) return span_ms;
  std::sort(stamps.begin(), stamps.end());
  double longest = stamps.front();
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    longest = std::max(longest, stamps[i] - stamps[i - 1]);
  }
  return std::max(longest, span_ms - stamps.back());
}

// Up to 8 equal slices of [0, span_ms], each at least 10 ms so a brief
// scheduler stall (routine when the smoke suite runs under a parallel
// ctest) cannot starve a whole window on its own.
int WindowsFor(double span_ms) {
  return std::max(1, std::min(8, static_cast<int>(span_ms / 10.0)));
}

// Every one of `windows` equal slices of [0, span_ms] in which at least
// one op completed must contain at least one success — the "availability
// never drops to zero for a full measurement window" smoke gate. A slice
// where no op completed at all is a scheduler stall (routine under
// sanitizers plus a parallel ctest), not an availability dip: the ops in
// flight across it land in a later slice, and counting it would fail the
// gate on host load rather than on the cluster.
bool AllWindowsServed(const std::vector<double>& successes,
                      const std::vector<double>& attempts, double span_ms,
                      int windows) {
  std::vector<bool> served(static_cast<std::size_t>(windows), false);
  std::vector<bool> tried(static_cast<std::size_t>(windows), false);
  auto slot = [&](double t) {
    auto w = static_cast<std::size_t>(t / span_ms * windows);
    return w >= served.size() ? served.size() - 1 : w;
  };
  for (double t : attempts) tried[slot(t)] = true;
  for (double t : successes) served[slot(t)] = true;
  for (std::size_t w = 0; w < served.size(); ++w) {
    if (tried[w] && !served[w]) return false;
  }
  return true;
}

PolicyOutcome RunPolicy(const std::string& policy) {
  PolicyOutcome out;
  out.policy = policy;

  LocalClusterOptions options;
  options.num_instances = 4;
  options.num_partitions = zht::bench::Smoke(128u, 48u);
  options.cluster.num_replicas = 2;
  options.cluster.placement_policy = policy;
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return out;

  // Preload: workload pairs measure keys-moved; a smaller register pool
  // carries the history-checked traffic.
  const std::size_t kPairs = zht::bench::Smoke<std::size_t>(3000, 300);
  zht::bench::Workload w = zht::bench::MakeWorkload(kPairs, 7);
  std::vector<std::string> pool;
  const std::size_t kPool = zht::bench::Smoke<std::size_t>(512, 96);
  for (std::size_t i = 0; i < kPool; ++i) {
    pool.push_back("churn_reg_" + std::to_string(i));
  }
  HistoryRecorder recorder;
  {
    auto loader = (*cluster)->CreateClient();
    for (std::size_t i = 0; i < w.keys.size(); ++i) {
      if (!loader->Insert(w.keys[i], w.values[i]).ok()) return out;
    }
    // Seed the register pool through the recorder so the checker knows
    // about the initial values its first reads observe.
    for (const std::string& key : pool) {
      const std::string value = "v_seed_" + key;
      std::uint64_t op = recorder.Begin(99, OpCode::kInsert, key, value);
      StatusCode code = loader->Insert(key, value).code();
      recorder.End(op, code);
      if (code != StatusCode::kOk) return out;
    }
  }

  // Traffic clients: short detection, no backoff sleeps — the campaign
  // measures protocol behavior, not timer values.
  ZhtClientOptions client_options;
  client_options.max_attempts = 16;
  client_options.failure_detector.failures_to_mark_dead = 4;
  client_options.failure_detector.initial_backoff = 0;
  client_options.sleep_on_backoff = false;
  const int kThreads = 3;
  std::vector<ClientHandle> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back((*cluster)->CreateClient(client_options));
  }

  std::atomic<bool> stop{false};
  std::vector<Worker> workers(kThreads);
  Clock::time_point campaign_start = Clock::now();
  for (int t = 0; t < kThreads; ++t) {
    workers[t].client = clients[static_cast<std::size_t>(t)].get();
    workers[t].recorder = &recorder;
    workers[t].keys = &pool;
    workers[t].id = static_cast<std::uint64_t>(t);
    workers[t].stop = &stop;
    workers[t].epoch_start = campaign_start;
  }
  std::vector<std::thread> threads;
  for (auto& worker : workers) {
    threads.emplace_back([&worker] { worker.Run(); });
  }

  const auto settle = std::chrono::milliseconds(zht::bench::Smoke(60, 25));
  std::this_thread::sleep_for(settle);

  // -- Event 1: a single rolling join, the measured one ----------------------
  std::vector<InstanceId> owners_before =
      OwnersSnapshot((*cluster)->TableSnapshot());
  std::uint64_t redirects_before = 0;
  for (auto& client : clients) redirects_before += client->stats().redirects_followed;
  std::uint32_t epoch_before = (*cluster)->TableSnapshot().epoch();
  MigrationTotals migrated_before = MigratedSoFar(**cluster);
  double join_window_start = MsSince(campaign_start);

  auto joined = (*cluster)->JoinNewInstance();
  if (!joined.ok()) { stop = true; for (auto& t : threads) t.join(); return out; }
  std::this_thread::sleep_for(settle);

  double join_window_end = MsSince(campaign_start);
  MembershipTable after_join = (*cluster)->TableSnapshot();
  std::vector<InstanceId> owners_after = OwnersSnapshot(after_join);
  for (PartitionId p = 0; p < after_join.num_partitions(); ++p) {
    if (owners_before[p] != owners_after[p]) ++out.partitions_moved_join;
  }
  for (const std::string& key : w.keys) {
    PartitionId p = after_join.PartitionOfKey(key);
    if (owners_before[p] != owners_after[p]) ++out.keys_moved_join;
  }

  // -- Events 2..4: kill + failure handling, rejoin, departure ---------------
  const InstanceId victim = 1;
  if (std::getenv("CHURN_JOIN_ONLY")) {
    stop = true;
    for (auto& t : threads) t.join();
    (*cluster)->FlushAllAsyncReplication();
    auto check0 = CheckHistory(recorder.Events());
    std::fprintf(stderr, "join-only %s: %s\n", policy.c_str(),
                 check0.ok() ? "OK" : check0.ToString().c_str());
    out.history_ok = check0.ok();
    return out;
  }
  (*cluster)->KillInstance(victim);
  (void)(*cluster)->manager(0)->HandleFailure(victim);
  std::this_thread::sleep_for(settle);

  if (std::getenv("CHURN_KILL_ONLY")) {
    stop = true;
    for (auto& t : threads) t.join();
    (*cluster)->FlushAllAsyncReplication();
    auto check0 = CheckHistory(recorder.Events());
    std::fprintf(stderr, "kill-only %s: %s\n", policy.c_str(),
                 check0.ok() ? "OK" : check0.ToString().c_str());
    out.history_ok = check0.ok();
    return out;
  }
  auto rejoined = (*cluster)->RejoinInstance(victim);
  std::this_thread::sleep_for(settle);
  if (std::getenv("CHURN_REJOIN_ONLY")) {
    stop = true;
    for (auto& t : threads) t.join();
    (*cluster)->FlushAllAsyncReplication();
    auto check0 = CheckHistory(recorder.Events());
    std::fprintf(stderr, "rejoin-only %s: %s\n", policy.c_str(),
                 check0.ok() ? "OK" : check0.ToString().c_str());
    out.history_ok = check0.ok();
    return out;
  }

  Status departed = (*cluster)->manager(0)->Depart(*joined);
  std::this_thread::sleep_for(settle);
  out.membership_events = 2;  // the join and the handled failure
  if (rejoined.ok()) ++out.membership_events;
  if (departed.ok()) ++out.membership_events;

  stop = true;
  for (auto& t : threads) t.join();
  // Quiesce replication/repair streams before the cluster tears down.
  (*cluster)->FlushAllAsyncReplication();
  double campaign_ms = MsSince(campaign_start);

  // -- Aggregate ------------------------------------------------------------
  MembershipTable final_table = (*cluster)->TableSnapshot();
  std::uint32_t epoch_after = final_table.epoch();
  std::uint64_t redirects_after = 0, ops = 0, retries = 0, sheds = 0;
  for (auto& client : clients) {
    const ZhtClientStats& stats = client->stats();
    redirects_after += stats.redirects_followed;
    ops += stats.ops;
    retries += stats.retries;
    sheds += stats.shed_backoffs;
    out.membership_pulls += stats.membership_pulls;
  }
  const std::uint32_t epochs =
      epoch_after > epoch_before ? epoch_after - epoch_before : 1;
  out.redirects_per_epoch =
      static_cast<double>(redirects_after - redirects_before) / epochs;
  out.retry_amplification = ops ? static_cast<double>(retries) / ops : 0;
  out.shed_amplification = ops ? static_cast<double>(sheds) / ops : 0;

  MigrationTotals migrated_after = MigratedSoFar(**cluster);
  out.pairs_migrated = migrated_after.pairs - migrated_before.pairs;
  out.bytes_migrated = migrated_after.bytes - migrated_before.bytes;

  std::vector<double> stamps;
  std::vector<double> join_stamps;
  std::vector<double> join_attempts;
  for (const Worker& worker : workers) {
    for (double t : worker.success_ms) {
      stamps.push_back(t);
      if (t >= join_window_start && t <= join_window_end) {
        join_stamps.push_back(t - join_window_start);
      }
    }
    for (double t : worker.attempt_ms) {
      if (t >= join_window_start && t <= join_window_end) {
        join_attempts.push_back(t - join_window_start);
      }
    }
  }
  out.longest_gap_ms = LongestGap(stamps, campaign_ms);
  out.join_window_ok = AllWindowsServed(
      join_stamps, join_attempts, join_window_end - join_window_start,
      WindowsFor(join_window_end - join_window_start));

  auto check = CheckHistory(recorder.Events());
  out.history_ok = check.ok();
  if (!check.ok()) {
    std::fprintf(stderr, "history violation (%s):\n%s", policy.c_str(),
                 check.ToString().c_str());
  }

  // -- Zipf load skew over the final placement -------------------------------
  zht::bench::ZipfGenerator zipf(w.keys.size(), 0.99, 42);
  const std::size_t kSamples = zht::bench::Smoke<std::size_t>(200000, 20000);
  std::vector<std::uint64_t> hits(final_table.instance_count(), 0);
  for (std::size_t i = 0; i < kSamples; ++i) {
    const std::string& key = w.keys[zipf.Next()];
    ++hits[final_table.OwnerOf(final_table.PartitionOfKey(key))];
  }
  std::uint64_t max_hits = 0, total_hits = 0;
  std::size_t alive = 0;
  for (InstanceId id = 0; id < final_table.instance_count(); ++id) {
    if (!final_table.Instance(id).alive) continue;
    ++alive;
    total_hits += hits[id];
    max_hits = std::max(max_hits, hits[id]);
  }
  const double mean_hits =
      alive ? static_cast<double>(total_hits) / alive : 1.0;
  out.load_skew_max_over_mean =
      mean_hits > 0 ? static_cast<double>(max_hits) / mean_hits : 0;
  return out;
}

// The campaign above runs on the loopback network (kills are loopback-
// only); this phase repeats the measured rolling join + departure against
// real epoll servers over TCP sockets, so the redirect/migration path is
// also exercised through the framed wire protocol and reactor-bound
// shards.
struct TcpJoinOutcome {
  double longest_gap_ms = 0;
  bool history_ok = false;
  bool join_window_ok = false;
};

TcpJoinOutcome RunTcpJoin() {
  TcpJoinOutcome out;

  LocalClusterOptions options;
  options.num_instances = 3;
  options.num_partitions = zht::bench::Smoke(64u, 32u);
  options.cluster.num_replicas = 1;
  options.cluster.placement_policy = "memento";
  options.transport = ClusterTransport::kTcp;
  options.num_reactors = 2;
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return out;

  std::vector<std::string> pool;
  const std::size_t kPool = zht::bench::Smoke<std::size_t>(128, 48);
  for (std::size_t i = 0; i < kPool; ++i) {
    pool.push_back("tcp_churn_" + std::to_string(i));
  }
  HistoryRecorder recorder;
  {
    auto loader = (*cluster)->CreateClient();
    for (const std::string& key : pool) {
      const std::string value = "v_seed_" + key;
      std::uint64_t op = recorder.Begin(99, OpCode::kInsert, key, value);
      StatusCode code = loader->Insert(key, value).code();
      recorder.End(op, code);
      if (code != StatusCode::kOk) return out;
    }
  }

  ZhtClientOptions client_options;
  client_options.max_attempts = 16;
  client_options.failure_detector.failures_to_mark_dead = 4;
  client_options.failure_detector.initial_backoff = 0;
  client_options.sleep_on_backoff = false;
  constexpr int kThreads = 2;
  std::vector<ClientHandle> clients;
  std::vector<Worker> workers(kThreads);
  std::atomic<bool> stop{false};
  Clock::time_point start = Clock::now();
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back((*cluster)->CreateClient(client_options));
    workers[t].client = clients[static_cast<std::size_t>(t)].get();
    workers[t].recorder = &recorder;
    workers[t].keys = &pool;
    workers[t].id = static_cast<std::uint64_t>(t);
    workers[t].stop = &stop;
    workers[t].epoch_start = start;
  }
  std::vector<std::thread> threads;
  for (auto& worker : workers) {
    threads.emplace_back([&worker] { worker.Run(); });
  }

  const auto settle = std::chrono::milliseconds(zht::bench::Smoke(60, 25));
  std::this_thread::sleep_for(settle);
  const double join_start = MsSince(start);
  auto joined = (*cluster)->JoinNewInstance();
  std::this_thread::sleep_for(settle);
  const double join_end = MsSince(start);
  if (joined.ok()) {
    (void)(*cluster)->manager(0)->Depart(*joined);
    std::this_thread::sleep_for(settle);
  }

  stop = true;
  for (auto& t : threads) t.join();
  (*cluster)->FlushAllAsyncReplication();
  const double span_ms = MsSince(start);

  std::vector<double> stamps;
  std::vector<double> join_stamps;
  std::vector<double> join_attempts;
  for (const Worker& worker : workers) {
    for (double t : worker.success_ms) {
      stamps.push_back(t);
      if (t >= join_start && t <= join_end) {
        join_stamps.push_back(t - join_start);
      }
    }
    for (double t : worker.attempt_ms) {
      if (t >= join_start && t <= join_end) {
        join_attempts.push_back(t - join_start);
      }
    }
  }
  out.longest_gap_ms = LongestGap(stamps, span_ms);
  out.join_window_ok =
      joined.ok() &&
      AllWindowsServed(join_stamps, join_attempts, join_end - join_start,
                       WindowsFor(join_end - join_start));

  auto check = CheckHistory(recorder.Events());
  out.history_ok = check.ok();
  if (!check.ok()) {
    std::fprintf(stderr, "history violation (tcp join):\n%s",
                 check.ToString().c_str());
  }
  return out;
}

}  // namespace

int main() {
  using namespace zht::bench;

  Banner("Churn",
         "Rolling membership churn under history-checked traffic, "
         "per placement policy");

  const std::vector<std::string> kPolicies = {"contiguous", "memento",
                                              "rendezvous"};
  std::vector<PolicyOutcome> outcomes;
  for (const std::string& policy : kPolicies) {
    outcomes.push_back(RunPolicy(policy));
  }

  PrintRow({"policy", "parts_moved", "keys_moved", "gap_ms", "redir/epoch",
            "retry_amp", "pulls", "skew", "pairs_mig", "hist"},
           13);
  bool ok = true;
  std::uint64_t contiguous_keys_moved = 0, memento_keys_moved = 0;
  for (const PolicyOutcome& o : outcomes) {
    PrintRow({o.policy, FmtInt(o.partitions_moved_join),
              FmtInt(o.keys_moved_join), Fmt(o.longest_gap_ms, 2),
              Fmt(o.redirects_per_epoch, 2), Fmt(o.retry_amplification, 3),
              FmtInt(o.membership_pulls), Fmt(o.load_skew_max_over_mean, 2),
              FmtInt(o.pairs_migrated), o.history_ok ? "ok" : "FAIL"},
             13);
    const std::string prefix = o.policy + ".";
    Report().AddMetric(prefix + "partitions_moved_per_join",
                       static_cast<double>(o.partitions_moved_join));
    Report().AddMetric(prefix + "keys_moved_per_join",
                       static_cast<double>(o.keys_moved_join));
    Report().AddMetric(prefix + "longest_no_success_gap_ms", o.longest_gap_ms);
    Report().AddMetric(prefix + "redirects_per_epoch", o.redirects_per_epoch);
    Report().AddMetric(prefix + "retry_amplification", o.retry_amplification);
    Report().AddMetric(prefix + "shed_amplification", o.shed_amplification);
    Report().AddMetric(prefix + "membership_pulls",
                       static_cast<double>(o.membership_pulls));
    Report().AddMetric(prefix + "pairs_migrated",
                       static_cast<double>(o.pairs_migrated));
    Report().AddMetric(prefix + "bytes_migrated",
                       static_cast<double>(o.bytes_migrated));
    Report().AddMetric(prefix + "bytes_migrated_per_event",
                       o.membership_events
                           ? static_cast<double>(o.bytes_migrated) /
                                 o.membership_events
                           : 0);
    Report().AddMetric(prefix + "load_skew_max_over_mean",
                       o.load_skew_max_over_mean);
    Report().AddMetric(prefix + "history_ok", o.history_ok ? 1 : 0);
    Report().AddMetric(prefix + "join_window_ok", o.join_window_ok ? 1 : 0);
    if (!o.history_ok) ok = false;
    if (!o.join_window_ok) {
      std::fprintf(stderr,
                   "%s: a measurement window during the rolling join saw "
                   "zero successful ops\n",
                   o.policy.c_str());
      ok = false;
    }
    if (o.policy == "contiguous") contiguous_keys_moved = o.keys_moved_join;
    if (o.policy == "memento") memento_keys_moved = o.keys_moved_join;
  }

  Report().SetParam("instances", 4.0);
  Report().SetParam("replicas", 2.0);
  Report().SetParam("zipf_s", 0.99);

  if (memento_keys_moved >= contiguous_keys_moved) {
    std::fprintf(stderr,
                 "memento moved %llu keys on join, contiguous %llu — memento "
                 "must move strictly fewer\n",
                 static_cast<unsigned long long>(memento_keys_moved),
                 static_cast<unsigned long long>(contiguous_keys_moved));
    ok = false;
  }

  const TcpJoinOutcome tcp = RunTcpJoin();
  PrintRow({"tcp-join", "-", "-", Fmt(tcp.longest_gap_ms, 2), "-", "-", "-",
            "-", "-", tcp.history_ok ? "ok" : "FAIL"},
           13);
  Report().AddMetric("tcp.longest_no_success_gap_ms", tcp.longest_gap_ms);
  Report().AddMetric("tcp.history_ok", tcp.history_ok ? 1 : 0);
  Report().AddMetric("tcp.join_window_ok", tcp.join_window_ok ? 1 : 0);
  if (!tcp.history_ok || !tcp.join_window_ok) {
    std::fprintf(stderr,
                 "tcp rolling join %s\n",
                 !tcp.history_ok ? "violated the history checker"
                                 : "saw a zero-success measurement window");
    ok = false;
  }

  Note("contiguous re-splits the whole range on a join (~1/2 of keys move); "
       "memento/rendezvous only hand the newcomer its ~1/(k+1) share — the "
       "redirect and migration machinery is identical for all three; the "
       "tcp-join row repeats the rolling join against real epoll servers");
  return ok ? 0 : 1;
}
