// Figure 10: ZHT vs Cassandra vs Memcached — aggregate throughput vs scale
// (1 to 64 nodes, live in-process cluster, one closed-loop client thread
// per 8 server instances, 100 us injected wire latency). Paper: ZHT ~7x
// Cassandra; Memcached ~27% above ZHT.
#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>

#include "baselines/cassandra_lite.h"
#include "baselines/memcached_lite.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "core/local_cluster.h"
#include "net/loopback.h"
#include "novoht/novoht.h"

namespace zht::bench {
namespace {

constexpr Nanos kWireLatency = 100 * kNanosPerMicro;
const int kOpsPerThread = Smoke(150, 40);

// One closed-loop client per node (capped): calls mostly sleep on the
// injected wire latency, so they overlap even on one physical core.
std::uint32_t ThreadsFor(std::uint32_t nodes) {
  return std::max(1u, std::min(32u, nodes));
}

double ZhtThroughput(std::uint32_t nodes) {
  LocalClusterOptions options;
  options.num_instances = nodes;
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return -1;
  (*cluster)->network().SetLatency(kWireLatency);

  std::uint32_t threads = ThreadsFor(nodes);
  Stopwatch watch(SystemClock::Instance());
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&cluster, t] {
      auto client = (*cluster)->CreateClient();
      Workload w = MakeWorkload(kOpsPerThread, 100 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        client->Insert(w.keys[static_cast<std::size_t>(i)],
                       w.values[static_cast<std::size_t>(i)]);
        client->Lookup(w.keys[static_cast<std::size_t>(i)]);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  double seconds = ToSeconds(watch.Elapsed());
  (*cluster)->network().SetLatency(0);
  return static_cast<double>(threads) * 2 * kOpsPerThread / seconds;
}

double CassandraThroughput(std::uint32_t size) {
  struct Slot {
    RequestHandler handler;
  };
  LoopbackNetwork network;
  std::vector<std::shared_ptr<Slot>> slots;
  std::vector<NodeAddress> ring;
  for (std::uint32_t i = 0; i < size; ++i) {
    auto slot = std::make_shared<Slot>();
    ring.push_back(network.Register(
        [slot](Request&& req) { return slot->handler(std::move(req)); }));
    slots.push_back(slot);
  }
  LoopbackTransport node_transport(&network);
  std::vector<std::unique_ptr<CassandraLiteNode>> nodes;
  for (std::uint32_t i = 0; i < size; ++i) {
    CassandraLiteOptions options;
    options.self = i;
    options.ring_size = size;
    options.per_op_overhead = 300 * kNanosPerMicro;
    nodes.push_back(
        std::make_unique<CassandraLiteNode>(options, ring, &node_transport));
    slots[i]->handler = nodes.back()->AsHandler();
  }
  network.SetLatency(kWireLatency);

  std::uint32_t threads = ThreadsFor(size);
  Stopwatch watch(SystemClock::Instance());
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&network, &ring, t] {
      LoopbackTransport transport(&network);
      CassandraLiteClient client(ring, &transport);
      Workload w = MakeWorkload(kOpsPerThread, 200 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        client.Put(w.keys[static_cast<std::size_t>(i)],
                   w.values[static_cast<std::size_t>(i)]);
        client.Get(w.keys[static_cast<std::size_t>(i)]);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  double seconds = ToSeconds(watch.Elapsed());
  network.SetLatency(0);
  return static_cast<double>(threads) * 2 * kOpsPerThread / seconds;
}

double MemcachedThroughput(std::uint32_t size) {
  LoopbackNetwork network;
  std::vector<std::unique_ptr<MemcachedLiteServer>> servers;
  std::vector<NodeAddress> addresses;
  for (std::uint32_t i = 0; i < size; ++i) {
    servers.push_back(std::make_unique<MemcachedLiteServer>());
    addresses.push_back(network.Register(servers.back()->AsHandler()));
  }
  network.SetLatency(kWireLatency);

  std::uint32_t threads = ThreadsFor(size);
  Stopwatch watch(SystemClock::Instance());
  std::vector<std::thread> workers;
  for (std::uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&network, &addresses, t] {
      LoopbackTransport transport(&network);
      MemcachedLiteClient client(addresses, &transport);
      Workload w = MakeWorkload(kOpsPerThread, 300 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        client.Set(w.keys[static_cast<std::size_t>(i)],
                   w.values[static_cast<std::size_t>(i)]);
        client.Get(w.keys[static_cast<std::size_t>(i)]);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  double seconds = ToSeconds(watch.Elapsed());
  network.SetLatency(0);
  return static_cast<double>(threads) * 2 * kOpsPerThread / seconds;
}

}  // namespace
}  // namespace zht::bench

int main() {
  using namespace zht::bench;

  Banner("Figure 10",
         "ZHT vs Cassandra vs Memcached — throughput vs scale, live "
         "cluster (ops/s)");
  PrintRow({"nodes", "ZHT", "Cassandra", "Memcached"});
  Report().SetParam("ops_per_thread", kOpsPerThread);
  const std::vector<std::uint32_t> kNodeSweep =
      SmokeMode() ? std::vector<std::uint32_t>{1u, 4u}
                  : std::vector<std::uint32_t>{1u, 2u, 4u, 8u, 16u, 32u, 64u};
  for (std::uint32_t nodes : kNodeSweep) {
    const double zht = ZhtThroughput(nodes);
    PrintRow({FmtInt(nodes), Fmt(zht, 0), Fmt(CassandraThroughput(nodes), 0),
              Fmt(MemcachedThroughput(nodes), 0)});
    Report().AddMetric("zht.ops_per_s.n" + std::to_string(nodes), zht);
  }
  Note("shape to reproduce (paper): ZHT several times Cassandra's "
       "throughput (multi-hop routing consumes ring capacity); Memcached "
       "modestly above ZHT; gap between ZHT and Cassandra widens with "
       "scale");
  return 0;
}
