// Ablation (§III.D, §IV.G): server architecture, two axes.
//
//  1. Event-driven epoll vs the abandoned thread-per-request prototype.
//     The paper: "the current epoll-based ZHT outperforms the multithread
//     version 3X". Connection-per-request clients — the pattern that
//     killed the prototype.
//  2. Reactor scaling: the multi-reactor epoll server at 1/2/4/8 event
//     loops under cached concurrent clients, against the same
//     thread-per-request baseline. The paper scales across cores with one
//     single-threaded instance per core; reactors drive the same cores
//     from one instance. Expect ~linear speedup up to the host's core
//     count (≥2.5× at 4 reactors on a ≥4-core host); on fewer cores the
//     sweep records the flat profile.
#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "net/epoll_server.h"
#include "net/tcp_client.h"
#include "net/threaded_server.h"
#include "novoht/memory_map.h"

namespace zht::bench {
namespace {

Response StoreHandler(MemoryMap& store, std::mutex& mu, Request&& request) {
  Response resp;
  resp.seq = request.seq;
  std::lock_guard<std::mutex> lock(mu);
  switch (request.op) {
    case OpCode::kInsert:
      resp.status = store.Put(request.key, request.value).raw();
      break;
    case OpCode::kLookup: {
      auto value = store.Get(request.key);
      if (value.ok()) {
        resp.value = std::move(*value);
      } else {
        resp.status = value.status().raw();
      }
      break;
    }
    default:
      break;
  }
  return resp;
}

// Striped handler state for the reactor sweep: with one global mutex the
// handler itself would serialize the reactors and hide any scaling.
struct StripedStore {
  static constexpr std::size_t kStripes = 16;
  MemoryMap maps[kStripes];
  std::mutex mus[kStripes];

  Response Handle(Request&& request) {
    const std::size_t stripe =
        std::hash<std::string>{}(request.key) % kStripes;
    return StoreHandler(maps[stripe], mus[stripe], std::move(request));
  }
};

// Cached concurrent clients (one pinned connection each, 50/50
// insert/lookup): the steady-state traffic shape where reactor scaling
// shows, as opposed to the connect-per-request storm above.
double RunCachedStorm(const NodeAddress& address, int threads, int ops_each) {
  Stopwatch watch(SystemClock::Instance());
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&address, t, ops_each] {
      TcpClient client;
      Workload w = MakeWorkload(static_cast<std::size_t>(ops_each),
                                900 + static_cast<std::uint64_t>(t));
      Request request;
      for (int i = 0; i < ops_each; ++i) {
        request.op = (i & 1) ? OpCode::kLookup : OpCode::kInsert;
        request.seq = static_cast<std::uint64_t>(i + 1);
        request.key = w.keys[static_cast<std::size_t>(i)];
        request.value = w.values[static_cast<std::size_t>(i)];
        client.Call(address, request, 2 * kNanosPerSec);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  return threads * ops_each / ToSeconds(watch.Elapsed());
}

double RunStorm(const NodeAddress& address, int threads, int ops_each) {
  Stopwatch watch(SystemClock::Instance());
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&address, t, ops_each] {
      // No connection caching: connect per request.
      TcpClient client(TcpClientOptions{.cache_connections = false});
      Workload w = MakeWorkload(static_cast<std::size_t>(ops_each),
                                500 + static_cast<std::uint64_t>(t));
      Request request;
      request.op = OpCode::kInsert;
      for (int i = 0; i < ops_each; ++i) {
        request.seq = static_cast<std::uint64_t>(i + 1);
        request.key = w.keys[static_cast<std::size_t>(i)];
        request.value = w.values[static_cast<std::size_t>(i)];
        client.Call(address, request, 2 * kNanosPerSec);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  return threads * ops_each / ToSeconds(watch.Elapsed());
}

}  // namespace
}  // namespace zht::bench

int main() {
  using namespace zht;
  using namespace zht::bench;

  Banner("Server-architecture ablation (§III.D)",
         "epoll event loop vs thread-per-request, real TCP, "
         "connection-per-request clients");

  constexpr int kThreads = 4;
  const int kOpsEach = Smoke(500, 100);

  MemoryMap epoll_store;
  std::mutex epoll_mu;
  auto epoll_server = EpollServer::Create(
      EpollServerOptions{}, [&](Request&& req) {
        return StoreHandler(epoll_store, epoll_mu, std::move(req));
      });
  if (!epoll_server.ok()) return 1;
  (*epoll_server)->Start();
  double epoll_tput = RunStorm((*epoll_server)->address(), kThreads,
                               kOpsEach);
  Report().AddMetric("epoll.loop_wakeups",
                     static_cast<double>((*epoll_server)->loop_wakeups()));
  (*epoll_server)->Stop();

  MemoryMap threaded_store;
  std::mutex threaded_mu;
  auto threaded_server = ThreadedServer::Create(
      "127.0.0.1", 0, [&](Request&& req) {
        return StoreHandler(threaded_store, threaded_mu, std::move(req));
      });
  if (!threaded_server.ok()) return 1;
  (*threaded_server)->Start();
  double threaded_tput = RunStorm((*threaded_server)->address(), kThreads,
                                  kOpsEach);
  (*threaded_server)->Stop();

  PrintRow({"architecture", "throughput (ops/s)"}, 24);
  PrintRow({"epoll event-driven", Fmt(epoll_tput, 0)}, 24);
  PrintRow({"thread-per-request", Fmt(threaded_tput, 0)}, 24);
  std::printf("\nepoll / threaded = %.2fx (paper: 3x on BG/P-era "
              "hardware; thread create/teardown per request is the cost)\n",
              epoll_tput / threaded_tput);
  Report().AddMetric("epoll.ops_per_s", epoll_tput);
  Report().AddMetric("threaded.ops_per_s", threaded_tput);

  // ---- Reactor sweep (§IV.G) ------------------------------------------

  Banner("Reactor scaling",
         "multi-reactor epoll at 1/2/4/8 loops, cached concurrent clients");
  constexpr int kStormThreads = 8;
  const int kStormOpsEach = Smoke(2000, 200);
  const unsigned cores = std::thread::hardware_concurrency();

  // Thread-per-request baseline under the same cached traffic.
  double threaded_cached = 0;
  {
    StripedStore store;
    auto server = ThreadedServer::Create("127.0.0.1", 0, [&](Request&& req) {
      return store.Handle(std::move(req));
    });
    if (!server.ok()) return 1;
    (*server)->Start();
    threaded_cached =
        RunCachedStorm((*server)->address(), kStormThreads, kStormOpsEach);
    (*server)->Stop();
  }

  PrintRow({"reactors", "throughput (ops/s)", "vs 1 reactor"}, 22);
  double one_reactor = 0;
  double four_reactor = 0;
  for (int reactors : {1, 2, 4, 8}) {
    StripedStore store;
    EpollServerOptions options;
    options.num_reactors = reactors;
    auto server = EpollServer::Create(options, [&](Request&& req) {
      return store.Handle(std::move(req));
    });
    if (!server.ok()) return 1;
    (*server)->Start();
    double tput =
        RunCachedStorm((*server)->address(), kStormThreads, kStormOpsEach);
    (*server)->Stop();
    if (reactors == 1) one_reactor = tput;
    if (reactors == 4) four_reactor = tput;
    PrintRow({std::to_string(reactors), Fmt(tput, 0),
              Fmt(tput / one_reactor, 2) + "x"},
             22);
    Report().AddMetric("reactors." + std::to_string(reactors) + ".ops_per_s",
                       tput);
  }
  PrintRow({"thread-per-req", Fmt(threaded_cached, 0),
            Fmt(threaded_cached / one_reactor, 2) + "x"},
           22);
  std::printf("\n4 reactors / 1 reactor = %.2fx on %u cores (≥2.5x expected "
              "on a >=4-core host; flat on fewer cores)\n",
              four_reactor / one_reactor, cores);
  Report().AddMetric("reactors.speedup_4v1", four_reactor / one_reactor);
  Report().AddMetric("threaded_cached.ops_per_s", threaded_cached);
  Report().AddMetric("host.cores", static_cast<double>(cores));
  return 0;
}
