// Ablation (§III.D): event-driven epoll server vs the abandoned
// thread-per-request prototype. The paper: "the current epoll-based ZHT
// outperforms the multithread version 3X". Live measurement over real TCP
// on localhost; clients run WITHOUT connection caching so every request
// costs the threaded server a fresh connection+thread, the pattern that
// killed the prototype.
#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "net/epoll_server.h"
#include "net/tcp_client.h"
#include "net/threaded_server.h"
#include "novoht/memory_map.h"

namespace zht::bench {
namespace {

Response StoreHandler(MemoryMap& store, std::mutex& mu, Request&& request) {
  Response resp;
  resp.seq = request.seq;
  std::lock_guard<std::mutex> lock(mu);
  switch (request.op) {
    case OpCode::kInsert:
      resp.status = store.Put(request.key, request.value).raw();
      break;
    case OpCode::kLookup: {
      auto value = store.Get(request.key);
      if (value.ok()) {
        resp.value = std::move(*value);
      } else {
        resp.status = value.status().raw();
      }
      break;
    }
    default:
      break;
  }
  return resp;
}

double RunStorm(const NodeAddress& address, int threads, int ops_each) {
  Stopwatch watch(SystemClock::Instance());
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&address, t, ops_each] {
      // No connection caching: connect per request.
      TcpClient client(TcpClientOptions{.cache_connections = false});
      Workload w = MakeWorkload(static_cast<std::size_t>(ops_each),
                                500 + static_cast<std::uint64_t>(t));
      Request request;
      request.op = OpCode::kInsert;
      for (int i = 0; i < ops_each; ++i) {
        request.seq = static_cast<std::uint64_t>(i + 1);
        request.key = w.keys[static_cast<std::size_t>(i)];
        request.value = w.values[static_cast<std::size_t>(i)];
        client.Call(address, request, 2 * kNanosPerSec);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  return threads * ops_each / ToSeconds(watch.Elapsed());
}

}  // namespace
}  // namespace zht::bench

int main() {
  using namespace zht;
  using namespace zht::bench;

  Banner("Server-architecture ablation (§III.D)",
         "epoll event loop vs thread-per-request, real TCP, "
         "connection-per-request clients");

  constexpr int kThreads = 4;
  const int kOpsEach = Smoke(500, 100);

  MemoryMap epoll_store;
  std::mutex epoll_mu;
  auto epoll_server = EpollServer::Create(
      EpollServerOptions{}, [&](Request&& req) {
        return StoreHandler(epoll_store, epoll_mu, std::move(req));
      });
  if (!epoll_server.ok()) return 1;
  (*epoll_server)->Start();
  double epoll_tput = RunStorm((*epoll_server)->address(), kThreads,
                               kOpsEach);
  Report().AddMetric("epoll.loop_wakeups",
                     static_cast<double>((*epoll_server)->loop_wakeups()));
  (*epoll_server)->Stop();

  MemoryMap threaded_store;
  std::mutex threaded_mu;
  auto threaded_server = ThreadedServer::Create(
      "127.0.0.1", 0, [&](Request&& req) {
        return StoreHandler(threaded_store, threaded_mu, std::move(req));
      });
  if (!threaded_server.ok()) return 1;
  (*threaded_server)->Start();
  double threaded_tput = RunStorm((*threaded_server)->address(), kThreads,
                                  kOpsEach);
  (*threaded_server)->Stop();

  PrintRow({"architecture", "throughput (ops/s)"}, 24);
  PrintRow({"epoll event-driven", Fmt(epoll_tput, 0)}, 24);
  PrintRow({"thread-per-request", Fmt(threaded_tput, 0)}, 24);
  std::printf("\nepoll / threaded = %.2fx (paper: 3x on BG/P-era "
              "hardware; thread create/teardown per request is the cost)\n",
              epoll_tput / threaded_tput);
  Report().AddMetric("epoll.ops_per_s", epoll_tput);
  Report().AddMetric("threaded.ops_per_s", threaded_tput);
  return 0;
}
