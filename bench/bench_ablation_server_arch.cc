// Ablation (§III.D, §IV.G): server architecture, two axes.
//
//  1. Event-driven epoll vs the abandoned thread-per-request prototype.
//     The paper: "the current epoll-based ZHT outperforms the multithread
//     version 3X". Connection-per-request clients — the pattern that
//     killed the prototype.
//  2. Reactor scaling: a real ZhtServer (one partition-ownership shard per
//     reactor, DESIGN.md §9) behind the multi-reactor epoll server at
//     1/2/4/8 event loops, against a thread-per-request baseline over the
//     same store. Clients shard their connections by key, so placement
//     re-homes each connection to the reactor owning its keys and the
//     shard mailboxes see (almost) no cross-reactor forwards — the sweep
//     records per-reactor forwarded_ops / mailbox_depth_p99 /
//     owned_partitions alongside throughput. The paper scales across
//     cores with one single-threaded instance per core; reactors drive
//     the same cores from one instance. Expect ~linear speedup up to the
//     host's core count (≥2.5× at 4 reactors on a ≥4-core host); on fewer
//     cores the sweep records the flat profile.
#include <algorithm>
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "core/local_cluster.h"
#include "core/zht_server.h"
#include "membership/membership_table.h"
#include "net/epoll_server.h"
#include "net/tcp_client.h"
#include "net/threaded_server.h"
#include "novoht/memory_map.h"

namespace zht::bench {
namespace {

Response StoreHandler(MemoryMap& store, std::mutex& mu, Request&& request) {
  Response resp;
  resp.seq = request.seq;
  std::lock_guard<std::mutex> lock(mu);
  switch (request.op) {
    case OpCode::kInsert:
      resp.status = store.Put(request.key, request.value).raw();
      break;
    case OpCode::kLookup: {
      auto value = store.Get(request.key);
      if (value.ok()) {
        resp.value = std::move(*value);
      } else {
        resp.status = value.status().raw();
      }
      break;
    }
    default:
      break;
  }
  return resp;
}

// Cached concurrent clients whose connections shard by key (50/50
// insert/lookup): thread t's pinned connection carries only keys whose
// partition maps to shard t % shards, so the server's placement function
// re-homes the connection to the owning reactor on its first request and
// every later request already lands where it executes. This is the
// steady-state traffic shape where reactor scaling shows, as opposed to
// the connect-per-request storm above.
double RunShardedStorm(const NodeAddress& address, int threads, int ops_each,
                       const MembershipTable& table, int shards) {
  // Partition one workload pool by owning shard (partition % shards, the
  // same mapping ZhtServer uses).
  Workload pool = MakeWorkload(
      static_cast<std::size_t>(threads) * static_cast<std::size_t>(ops_each),
      4242);
  std::vector<std::vector<std::size_t>> by_shard(
      static_cast<std::size_t>(shards));
  for (std::size_t i = 0; i < pool.keys.size(); ++i) {
    by_shard[table.PartitionOfKey(pool.keys[i]) %
             static_cast<std::size_t>(shards)]
        .push_back(i);
  }
  Stopwatch watch(SystemClock::Instance());
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::vector<std::size_t>& mine =
          by_shard[static_cast<std::size_t>(t % shards)];
      if (mine.empty()) return;
      TcpClient client;
      Request request;
      for (int i = 0; i < ops_each; ++i) {
        const std::size_t idx = mine[static_cast<std::size_t>(i) % mine.size()];
        request.op = (i & 1) ? OpCode::kLookup : OpCode::kInsert;
        request.seq = static_cast<std::uint64_t>(i + 1);
        request.key = pool.keys[idx];
        request.value = pool.values[idx];
        client.Call(address, request, 2 * kNanosPerSec);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  return threads * ops_each / ToSeconds(watch.Elapsed());
}

double RunStorm(const NodeAddress& address, int threads, int ops_each) {
  Stopwatch watch(SystemClock::Instance());
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&address, t, ops_each] {
      // No connection caching: connect per request.
      TcpClient client(TcpClientOptions{.cache_connections = false});
      Workload w = MakeWorkload(static_cast<std::size_t>(ops_each),
                                500 + static_cast<std::uint64_t>(t));
      Request request;
      request.op = OpCode::kInsert;
      for (int i = 0; i < ops_each; ++i) {
        request.seq = static_cast<std::uint64_t>(i + 1);
        request.key = w.keys[static_cast<std::size_t>(i)];
        request.value = w.values[static_cast<std::size_t>(i)];
        client.Call(address, request, 2 * kNanosPerSec);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  return threads * ops_each / ToSeconds(watch.Elapsed());
}

}  // namespace
}  // namespace zht::bench

int main() {
  using namespace zht;
  using namespace zht::bench;

  Banner("Server-architecture ablation (§III.D)",
         "epoll event loop vs thread-per-request, real TCP, "
         "connection-per-request clients");

  constexpr int kThreads = 4;
  const int kOpsEach = Smoke(500, 100);

  MemoryMap epoll_store;
  std::mutex epoll_mu;
  auto epoll_server = EpollServer::Create(
      EpollServerOptions{}, [&](Request&& req) {
        return StoreHandler(epoll_store, epoll_mu, std::move(req));
      });
  if (!epoll_server.ok()) return 1;
  (*epoll_server)->Start();
  double epoll_tput = RunStorm((*epoll_server)->address(), kThreads,
                               kOpsEach);
  Report().AddMetric("epoll.loop_wakeups",
                     static_cast<double>((*epoll_server)->loop_wakeups()));
  (*epoll_server)->Stop();

  MemoryMap threaded_store;
  std::mutex threaded_mu;
  auto threaded_server = ThreadedServer::Create(
      "127.0.0.1", 0, [&](Request&& req) {
        return StoreHandler(threaded_store, threaded_mu, std::move(req));
      });
  if (!threaded_server.ok()) return 1;
  (*threaded_server)->Start();
  double threaded_tput = RunStorm((*threaded_server)->address(), kThreads,
                                  kOpsEach);
  (*threaded_server)->Stop();

  PrintRow({"architecture", "throughput (ops/s)"}, 24);
  PrintRow({"epoll event-driven", Fmt(epoll_tput, 0)}, 24);
  PrintRow({"thread-per-request", Fmt(threaded_tput, 0)}, 24);
  std::printf("\nepoll / threaded = %.2fx (paper: 3x on BG/P-era "
              "hardware; thread create/teardown per request is the cost)\n",
              epoll_tput / threaded_tput);
  Report().AddMetric("epoll.ops_per_s", epoll_tput);
  Report().AddMetric("threaded.ops_per_s", threaded_tput);

  // ---- Reactor sweep (§IV.G) ------------------------------------------

  Banner("Reactor scaling",
         "real ZhtServer (one ownership shard per reactor) behind the "
         "multi-reactor epoll front-end at 1/2/4/8 loops, key-sharded "
         "cached clients");
  constexpr int kStormThreads = 8;
  const int kStormOpsEach = Smoke(2000, 200);
  const unsigned cores = std::thread::hardware_concurrency();
  const double storm_total =
      static_cast<double>(kStormThreads) * kStormOpsEach;

  // Single-instance membership: the placeholder address is never dialed
  // (one instance = no redirects, no replication); the table's only jobs
  // here are key→partition and partition%shards routing.
  MembershipTable table =
      MembershipTable::CreateUniform(64, {NodeAddress{"127.0.0.1", 0}});

  // Thread-per-request baseline over the same ZhtServer store: every
  // request burns a thread that blocks in the shard drain, so the only
  // variable against the sweep below is the server architecture.
  double threaded_cached = 0;
  {
    TcpClient peer_transport;
    ZhtServerOptions server_options;
    auto zht =
        std::make_unique<ZhtServer>(table, server_options, &peer_transport);
    auto server =
        ThreadedServer::Create("127.0.0.1", 0, zht->AsyncHandler());
    if (!server.ok()) return 1;
    (*server)->Start();
    threaded_cached =
        RunShardedStorm((*server)->address(), kStormThreads, kStormOpsEach,
                        table, static_cast<int>(zht->num_shards()));
    (*server)->Stop();
    zht.reset();
  }

  PrintRow({"reactors", "throughput (ops/s)", "vs 1 reactor", "forwarded"},
           20);
  double one_reactor = 0;
  double four_reactor = 0;
  for (int reactors : {1, 2, 4, 8}) {
    TcpClient peer_transport;
    ZhtServerOptions server_options;
    server_options.num_shards = static_cast<std::size_t>(reactors);
    auto zht =
        std::make_unique<ZhtServer>(table, server_options, &peer_transport);
    EpollServerOptions options;
    options.num_reactors = reactors;
    auto server = EpollServer::Create(options, zht->AsyncHandler());
    if (!server.ok()) return 1;
    // Bind shard s to reactor s, install partition-affine placement, start.
    LocalCluster::WireReactors(*zht, **server);
    double tput = RunShardedStorm((*server)->address(), kStormThreads,
                                  kStormOpsEach, table, reactors);

    // Per-reactor mailbox telemetry, read while the executors are live.
    double forwarded = 0;
    double mailbox_p99 = 0;
    for (int s = 0; s < reactors; ++s) {
      forwarded += static_cast<double>(
          zht->ShardForwardedOps(static_cast<std::size_t>(s)));
      mailbox_p99 =
          std::max(mailbox_p99,
                   zht->ShardMailboxDepth(static_cast<std::size_t>(s))
                       .Percentile(99));
    }
    std::vector<std::size_t> owned = zht->ShardPartitionCounts();
    (*server)->Stop();
    zht.reset();

    const double forwarded_ratio = forwarded / storm_total;
    if (reactors == 1) one_reactor = tput;
    if (reactors == 4) four_reactor = tput;
    PrintRow({std::to_string(reactors), Fmt(tput, 0),
              Fmt(tput / one_reactor, 2) + "x",
              Fmt(100.0 * forwarded_ratio, 1) + "%"},
             20);
    const std::string prefix = "reactors." + std::to_string(reactors);
    Report().AddMetric(prefix + ".ops_per_s", tput);
    Report().AddMetric(prefix + ".forwarded_ops", forwarded);
    Report().AddMetric(prefix + ".forwarded_ratio", forwarded_ratio);
    Report().AddMetric(prefix + ".mailbox_depth_p99", mailbox_p99);
    for (std::size_t s = 0; s < owned.size(); ++s) {
      Report().AddMetric(
          prefix + ".shard." + std::to_string(s) + ".owned_partitions",
          static_cast<double>(owned[s]));
    }
    // Key-sharded connections re-home to their owning reactor, so almost
    // nothing crosses a mailbox; a high ratio means placement routing
    // broke. Enforced in smoke mode so `ctest -L bench_smoke` catches it.
    if (SmokeMode() && forwarded_ratio >= 0.05) {
      std::fprintf(stderr,
                   "FAIL: forwarded ratio %.3f >= 0.05 at %d reactors with "
                   "key-sharded clients\n",
                   forwarded_ratio, reactors);
      return 1;
    }
  }
  PrintRow({"thread-per-req", Fmt(threaded_cached, 0),
            Fmt(threaded_cached / one_reactor, 2) + "x", "-"},
           20);
  std::printf("\n4 reactors / 1 reactor = %.2fx on %u cores (≥2.5x expected "
              "on a >=4-core host; flat on fewer cores)\n",
              four_reactor / one_reactor, cores);
  Report().AddMetric("reactors.speedup_4v1", four_reactor / one_reactor);
  Report().AddMetric("threaded_cached.ops_per_s", threaded_cached);
  Report().AddMetric("host.cores", static_cast<double>(cores));
  return 0;
}
