// Figure 19: MATRIX vs Falkon — average efficiency (256..2048 cores) for
// 100K sleep tasks of 1/2/4/8 s. Paper: MATRIX 92%-97%; Falkon 18%-82%.
// Falkon here runs its hierarchical-distribution configuration (long
// effective poll turnaround), the regime behind the paper's efficiency
// numbers [5].
#include "bench/bench_util.h"
#include "matrix/matrix_sim.h"

int main() {
  using namespace zht;
  using namespace zht::bench;
  using namespace zht::matrix;

  Banner("Figure 19",
         "MATRIX vs Falkon — average efficiency over 256..2048 cores, "
         "100K sleep tasks (virtual time)");
  PrintRow({"task length", "MATRIX", "Falkon"});

  const std::vector<std::uint32_t> scales = {256, 512, 1024, 2048};
  for (double seconds : {1.0, 2.0, 4.0, 8.0}) {
    double matrix_sum = 0;
    double falkon_sum = 0;
    for (std::uint32_t cores : scales) {
      MatrixSimParams matrix;
      matrix.executors = cores;
      matrix.num_tasks = 100'000;
      matrix.task_duration = static_cast<Nanos>(seconds * kNanosPerSec);
      matrix.per_task_overhead = 80 * kNanosPerMilli;
      matrix_sum += RunMatrixSim(matrix).efficiency;

      FalkonSimParams falkon;
      falkon.executors = cores;
      falkon.num_tasks = 100'000;
      falkon.task_duration = static_cast<Nanos>(seconds * kNanosPerSec);
      falkon_sum += RunFalkonSim(falkon).efficiency;
    }
    PrintRow({Fmt(seconds, 0) + " s",
              Fmt(100.0 * matrix_sum / scales.size(), 1) + "%",
              Fmt(100.0 * falkon_sum / scales.size(), 1) + "%"});
  }
  Note("paper: MATRIX 92%-97% across 1-8 s tasks; Falkon 18% (1 s) to 82% "
       "(8 s) — MATRIX wins across the board and the gap closes only as "
       "tasks get coarse");
  return 0;
}
