// Ablation of NoVoHT's bounded-memory residency (§III.A: "by tuning the
// number of Key-Value pairs that are allowed [to] stay in memory, users
// can achieve the balance between performance and memory consumption"):
// sweep the resident-value cap and measure Get latency and the
// disk-read fraction against the same 100K-pair store.
#include <filesystem>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "novoht/novoht.h"

int main() {
  using namespace zht;
  using namespace zht::bench;
  namespace fs = std::filesystem;

  Banner("NoVoHT residency ablation (§III.A)",
         "Get latency vs resident-value cap (100K pairs, 132 B values)");

  fs::path dir = fs::temp_directory_path() / "zht_residency_bench";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const std::size_t kPairs = Smoke<std::size_t>(100'000, 5'000);
  Workload w = MakeWorkload(kPairs, 7);

  PrintRow({"resident cap", "resident", "get (us)", "disk reads",
            "evictions"},
           15);
  std::vector<std::uint64_t> caps{0, kPairs, kPairs / 2, kPairs / 10,
                                  kPairs / 100};
  for (std::uint64_t cap : caps) {
    NoVoHTOptions options;
    options.path = (dir / ("cap" + std::to_string(cap))).string();
    options.max_resident_values = cap;
    options.initial_buckets = kPairs / 2;
    auto store = NoVoHT::Open(options);
    if (!store.ok()) return 1;
    for (std::size_t i = 0; i < kPairs; ++i) {
      (*store)->Put(w.keys[i], w.values[i]);
    }
    // Uniform random reads over the whole key space.
    Rng rng(cap + 3);
    Stopwatch watch(SystemClock::Instance());
    const int kReads = Smoke(50'000, 2'000);
    for (int i = 0; i < kReads; ++i) {
      (*store)->Get(w.keys[rng.Below(kPairs)]);
    }
    double us = ToMicros(watch.Elapsed()) / kReads;
    auto stats = (*store)->stats();
    PrintRow({cap == 0 ? "unbounded" : FmtInt(cap),
              FmtInt(stats.resident_values), Fmt(us, 2),
              FmtInt(stats.disk_reads), FmtInt(stats.evictions)},
             15);
  }
  fs::remove_all(dir);
  Note("the paper's memory/performance balance knob: shrinking the "
       "resident set trades Get latency (log preads) for memory; keys stay "
       "in memory so routing and existence checks never touch disk");
  return 0;
}
