// Failover: kill one server under client traffic and measure the two
// recovery latencies the paper's fault-tolerance story cares about —
// time from the kill to the first successful operation on a key the
// victim owned (client failover + promotion), and time from the kill to
// full re-replication (every partition back to digest-identical copies
// on its whole alive chain, via checkpoint shipping from the surviving
// owners). Loopback-scale absolutes; the shape is that first-success is
// detection-bound and far ahead of full rebuild.
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "core/local_cluster.h"

namespace {

using namespace zht;

// Alive members of the partition's chain per the current table.
std::vector<InstanceId> AliveChain(const MembershipTable& table, PartitionId p,
                                   int replicas) {
  std::vector<InstanceId> alive;
  for (InstanceId id : table.ReplicaChain(p, replicas)) {
    if (table.Instance(id).alive) alive.push_back(id);
  }
  return alive;
}

bool Converged(LocalCluster& cluster, int replicas) {
  MembershipTable table = cluster.TableSnapshot();
  for (PartitionId p = 0; p < table.num_partitions(); ++p) {
    auto alive = AliveChain(table, p, replicas);
    if (alive.empty()) return false;
    PartitionDigest owner = cluster.server(alive[0])->PartitionDigestOf(p);
    for (std::size_t i = 1; i < alive.size(); ++i) {
      if (!(cluster.server(alive[i])->PartitionDigestOf(p) == owner)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace zht::bench;
  using namespace zht;

  Banner("Failover", "Kill-to-first-success and kill-to-full-re-replication");

  const int kReplicas = 2;
  LocalClusterOptions options;
  options.num_instances = 6;
  options.num_partitions = Smoke(96u, 24u);
  options.cluster.num_replicas = kReplicas;
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return 1;

  const std::size_t kPairs = Smoke<std::size_t>(8000, 400);
  Workload w = MakeWorkload(kPairs);
  {
    auto loader = (*cluster)->CreateClient();
    for (std::size_t i = 0; i < w.keys.size(); ++i) {
      if (!loader->Insert(w.keys[i], w.values[i]).ok()) return 1;
    }
  }
  (*cluster)->FlushAllAsyncReplication();
  if (!Converged(**cluster, kReplicas)) return 1;

  // A client that fails over quickly: short detection threshold, no
  // backoff sleeps — the measurement is the protocol, not the timers.
  ZhtClientOptions client_options;
  client_options.max_attempts = 24;
  client_options.failure_detector.failures_to_mark_dead = 4;
  client_options.failure_detector.initial_backoff = 0;
  client_options.sleep_on_backoff = false;
  auto client = (*cluster)->CreateClient(client_options);

  // A key the victim owns, so the first post-kill lookup must fail over.
  const InstanceId victim = 1;
  MembershipTable table = (*cluster)->TableSnapshot();
  std::string victim_key;
  for (const std::string& key : w.keys) {
    auto chain = table.ReplicaChain(table.PartitionOfKey(key), kReplicas);
    if (!chain.empty() && chain[0] == victim) {
      victim_key = key;
      break;
    }
  }
  if (victim_key.empty()) return 1;

  (*cluster)->KillInstance(victim);
  Stopwatch watch(SystemClock::Instance());

  // First successful op on a victim-owned key: client detection + replica
  // failover (and, once the manager broadcast lands, the promoted owner).
  double first_success_ms = -1.0;
  for (int attempt = 0; attempt < 10000; ++attempt) {
    if (client->Lookup(victim_key).ok()) {
      first_success_ms = watch.ElapsedMillis();
      break;
    }
  }
  if (first_success_ms < 0) return 1;

  // Full re-replication: every partition digest-identical across its
  // whole alive chain again — the surviving owners' rebuild streams have
  // all landed and swapped in.
  double full_re_replication_ms = -1.0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    (*cluster)->FlushAllAsyncReplication();
    if (Converged(**cluster, kReplicas)) {
      full_re_replication_ms = watch.ElapsedMillis();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (full_re_replication_ms < 0) return 1;

  std::uint64_t rebuilds = 0;
  std::uint64_t pairs_streamed = 0;
  for (std::size_t i = 0; i < (*cluster)->instance_count(); ++i) {
    ZhtServerStats stats = (*cluster)->server(i)->stats();
    rebuilds += stats.rebuilds_completed;
    pairs_streamed += stats.rebuild_pairs_streamed;
  }

  PrintRow({"metric", "value"}, 34);
  PrintRow({"kill_to_first_success (ms)", Fmt(first_success_ms, 2)}, 34);
  PrintRow({"kill_to_full_re_replication (ms)", Fmt(full_re_replication_ms, 2)},
           34);
  PrintRow({"rebuild streams completed", FmtInt(rebuilds)}, 34);
  PrintRow({"pairs streamed", FmtInt(pairs_streamed)}, 34);

  Report().SetParam("instances", static_cast<double>(options.num_instances));
  Report().SetParam("replicas", static_cast<double>(kReplicas));
  Report().SetParam("preloaded_pairs", static_cast<double>(kPairs));
  Report().AddMetric("kill_to_first_success_ms", first_success_ms);
  Report().AddMetric("kill_to_full_re_replication_ms", full_re_replication_ms);
  Report().AddMetric("rebuild_pairs_streamed",
                     static_cast<double>(pairs_streamed));

  Note("first success is detection-bound (a handful of failed probes); "
       "full re-replication adds the checkpoint streams from every "
       "surviving owner of the victim's partitions");
  return 0;
}
