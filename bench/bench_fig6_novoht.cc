// Figure 6: NoVoHT vs KyotoCabinet(-like) vs BerkeleyDB(-like) vs
// std::unordered_map — latency per operation vs number of key/value pairs.
// The paper sweeps 1M/10M/100M pairs on a 48-core server; this testbed is
// a single core, so the sweep is scaled to 100K/300K/1M pairs (the claim —
// NoVoHT flat and microseconds, persistence costing only ~3 us, disk
// stores slower and growing — is scale-free).
#include <filesystem>
#include <memory>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "novoht/btree_db.h"
#include "novoht/hashdb_file.h"
#include "novoht/memory_map.h"
#include "novoht/novoht.h"

namespace zht::bench {
namespace {

namespace fs = std::filesystem;

double MicrosPerOp(KVStore& store, const Workload& w) {
  Stopwatch watch(SystemClock::Instance());
  for (std::size_t i = 0; i < w.keys.size(); ++i) {
    store.Put(w.keys[i], w.values[i]);
  }
  for (std::size_t i = 0; i < w.keys.size(); ++i) {
    store.Get(w.keys[i]);
  }
  for (std::size_t i = 0; i < w.keys.size(); ++i) {
    store.Remove(w.keys[i]);
  }
  return ToMicros(watch.Elapsed()) /
         static_cast<double>(3 * w.keys.size());
}

}  // namespace
}  // namespace zht::bench

int main() {
  using namespace zht;
  using namespace zht::bench;

  Banner("Figure 6",
         "NoVoHT vs KyotoCabinet-like vs BerkeleyDB-like vs unordered_map "
         "(us per op: insert+get+remove)");
  Note("paper sweeps 1M/10M/100M pairs; scaled here to 100K/300K/1M "
       "(single-core testbed)");

  fs::path dir = fs::temp_directory_path() / "zht_fig6";
  fs::remove_all(dir);
  fs::create_directories(dir);

  PrintRow({"pairs", "NoVoHT", "NoVoHT(no persist)", "KC-like HashDB",
            "BDB-like BTree", "unordered_map"},
           20);

  const std::vector<std::size_t> kPairSweep =
      SmokeMode() ? std::vector<std::size_t>{2'000ul}
                  : std::vector<std::size_t>{100'000ul, 300'000ul,
                                             1'000'000ul};
  for (std::size_t pairs : kPairSweep) {
    Workload w = MakeWorkload(pairs, /*seed=*/pairs);
    std::vector<std::string> row{FmtInt(pairs)};

    {
      NoVoHTOptions options;
      options.path = (dir / ("novoht_" + std::to_string(pairs))).string();
      options.initial_buckets = pairs / 2;
      auto store = NoVoHT::Open(options);
      const double us = MicrosPerOp(**store, w);
      row.push_back(Fmt(us, 2));
      Report().AddMetric("novoht.us_per_op." + std::to_string(pairs), us);
    }
    {
      NoVoHTOptions options;  // memory only
      options.initial_buckets = pairs / 2;
      auto store = NoVoHT::Open(options);
      row.push_back(Fmt(MicrosPerOp(**store, w), 2));
    }
    {
      auto store = HashDBFile::Open(
          (dir / ("hashdb_" + std::to_string(pairs))).string(), pairs);
      row.push_back(Fmt(MicrosPerOp(**store, w), 2));
    }
    {
      BTreeDBOptions options;
      options.path = (dir / ("btree_" + std::to_string(pairs))).string();
      options.cache_pages = 64;
      auto store = BTreeDB::Open(options);
      row.push_back(Fmt(MicrosPerOp(**store, w), 2));
    }
    {
      MemoryMap store;
      row.push_back(Fmt(MicrosPerOp(store, w), 2));
    }
    PrintRow(row, 20);
  }
  fs::remove_all(dir);
  Note("shape to reproduce: NoVoHT near-flat and within a few us of the "
       "pure in-memory stores (persistence adds ~3 us/op); the disk-bound "
       "stores are several times slower and degrade with scale "
       "(BDB-like worst, as in the paper)");
  return 0;
}
