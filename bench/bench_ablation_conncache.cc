// Ablation (§III.F): the LRU TCP connection cache. The paper: "we
// implemented a LRU cache for TCP connections, which makes TCP work almost
// as fast as UDP". Live measurement over real sockets on localhost:
// TCP-cached vs TCP-uncached vs UDP against one epoll ZHT instance.
#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/stats.h"
#include "core/zht_server.h"
#include "net/epoll_server.h"
#include "net/tcp_client.h"
#include "net/udp_client.h"

namespace zht::bench {
namespace {

double MeanLatencyUs(ClientTransport& transport, const NodeAddress& address,
                     const Workload& w) {
  LatencyStats stats;
  Request request;
  for (std::size_t i = 0; i < w.keys.size(); ++i) {
    request.op = OpCode::kInsert;
    request.seq = i + 1;
    request.key = w.keys[i];
    request.value = w.values[i];
    Stopwatch op(SystemClock::Instance());
    auto result = transport.Call(address, request, 2 * kNanosPerSec);
    if (result.ok()) stats.Record(op.Elapsed());
  }
  return stats.MeanMicros();
}

}  // namespace
}  // namespace zht::bench

int main() {
  using namespace zht;
  using namespace zht::bench;

  Banner("Connection-cache ablation (§III.F)",
         "TCP with/without the LRU connection cache vs ack-based UDP, "
         "real sockets, one ZHT instance");

  // A real single-instance ZHT server behind the epoll loop.
  MembershipTable table = MembershipTable::CreateUniform(
      64, {NodeAddress{"127.0.0.1", 0}});
  TcpClient peer_transport;
  ZhtServerOptions server_options;
  ZhtServer zht(table, server_options, &peer_transport);
  auto server = EpollServer::Create(EpollServerOptions{}, zht.AsyncHandler());
  if (!server.ok()) return 1;
  (*server)->Start();
  NodeAddress address = (*server)->address();

  Workload w = MakeWorkload(Smoke<std::size_t>(2000, 300));

  TcpClient cached(TcpClientOptions{.cache_connections = true});
  double cached_us = MeanLatencyUs(cached, address, w);

  TcpClient uncached(TcpClientOptions{.cache_connections = false});
  double uncached_us = MeanLatencyUs(uncached, address, w);

  UdpClient udp;
  double udp_us = MeanLatencyUs(udp, address, w);

  (*server)->Stop();

  PrintRow({"transport", "latency (us)", "vs UDP"}, 22);
  PrintRow({"TCP + conn cache", Fmt(cached_us, 1),
            Fmt(cached_us / udp_us, 2) + "x"},
           22);
  PrintRow({"TCP no cache", Fmt(uncached_us, 1),
            Fmt(uncached_us / udp_us, 2) + "x"},
           22);
  PrintRow({"UDP (ack-based)", Fmt(udp_us, 1), "1.00x"}, 22);
  std::printf("\ncache hits: %llu / connects: %llu / evictions: %llu "
              "(uncached client made %llu connects)\n",
              static_cast<unsigned long long>(cached.cache_hits()),
              static_cast<unsigned long long>(cached.connects()),
              static_cast<unsigned long long>(cached.evictions()),
              static_cast<unsigned long long>(uncached.connects()));
  Report().AddMetric("tcp_cached.latency_us", cached_us);
  Report().AddMetric("tcp_uncached.latency_us", uncached_us);
  Report().AddMetric("udp.latency_us", udp_us);
  Report().AddMetric("tcp_cached.cache_hits",
                     static_cast<double>(cached.cache_hits()));
  Report().AddMetric("tcp_cached.connects",
                     static_cast<double>(cached.connects()));
  Report().AddMetric("tcp_cached.evictions",
                     static_cast<double>(cached.evictions()));
  Report().AddMetric("tcp_uncached.connects",
                     static_cast<double>(uncached.connects()));
  Note("paper claim: caching makes TCP track UDP; without the cache every "
       "op pays connection establishment");
  return 0;
}
