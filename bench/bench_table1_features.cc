// Table 1: comparison between ZHT and other DHT implementations.
// Columns: implementation, routing time, persistence, dynamic membership,
// append. Instead of restating the paper, each capability is PROBED
// against the live systems built in this repository; the literature-only
// rows (C-MPI, Dynamo) are reported from the paper.
#include <filesystem>

#include "baselines/cassandra_lite.h"
#include "baselines/cmpi_lite.h"
#include "baselines/memcached_lite.h"
#include "bench/bench_util.h"
#include "core/local_cluster.h"
#include "net/loopback.h"
#include "novoht/novoht.h"

namespace zht::bench {
namespace {

const std::size_t kProbeOps = Smoke<std::size_t>(200, 50);

// Measured routing hops for ZHT: requests answered directly = 0 hops.
std::string ProbeZhtRouting() {
  LocalClusterOptions options;
  options.num_instances = 16;
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return "?";
  auto client = (*cluster)->CreateClient();
  Workload w = MakeWorkload(kProbeOps);
  for (std::size_t i = 0; i < w.keys.size(); ++i) {
    client->Insert(w.keys[i], w.values[i]);
  }
  // Redirects would appear in client stats; with a fresh table there are
  // none — zero hops. During migration/failover it is bounded by 2.
  return client->stats().redirects_followed == 0 ? "0 to 2 (probed 0)"
                                                 : "0 to 2";
}

std::string ProbeCassandraRouting() {
  LoopbackNetwork network;
  struct Slot {
    RequestHandler handler;
  };
  std::vector<std::shared_ptr<Slot>> slots;
  std::vector<NodeAddress> ring;
  constexpr std::uint32_t kNodes = 64;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    auto slot = std::make_shared<Slot>();
    ring.push_back(network.Register(
        [slot](Request&& req) { return slot->handler(std::move(req)); }));
    slots.push_back(slot);
  }
  LoopbackTransport transport(&network);
  std::vector<std::unique_ptr<CassandraLiteNode>> nodes;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    CassandraLiteOptions options;
    options.self = i;
    options.ring_size = kNodes;
    nodes.push_back(
        std::make_unique<CassandraLiteNode>(options, ring, &transport));
    slots[i]->handler = nodes.back()->AsHandler();
  }
  CassandraLiteClient client(ring, &transport);
  Workload w = MakeWorkload(kProbeOps);
  for (std::size_t i = 0; i < w.keys.size(); ++i) {
    client.Put(w.keys[i], w.values[i]);
  }
  std::uint64_t forwards = 0;
  for (const auto& node : nodes) forwards += node->forwards();
  double hops = static_cast<double>(forwards) / static_cast<double>(kProbeOps);
  return "log(N) (probed " + Fmt(hops, 1) + " hops @64)";
}

std::string ProbeCmpiRouting() {
  LoopbackNetwork network;
  struct Slot {
    RequestHandler handler;
  };
  std::vector<std::shared_ptr<Slot>> slots;
  std::vector<NodeAddress> world;
  constexpr std::uint32_t kRanks = 64;
  for (std::uint32_t i = 0; i < kRanks; ++i) {
    auto slot = std::make_shared<Slot>();
    world.push_back(network.Register(
        [slot](Request&& req) { return slot->handler(std::move(req)); }));
    slots.push_back(slot);
  }
  LoopbackTransport transport(&network);
  std::vector<std::unique_ptr<CmpiLiteNode>> nodes;
  for (std::uint32_t i = 0; i < kRanks; ++i) {
    CmpiLiteOptions options;
    options.rank = i;
    options.world_size = kRanks;
    nodes.push_back(
        std::make_unique<CmpiLiteNode>(options, world, &transport));
    slots[i]->handler = nodes.back()->AsHandler();
  }
  CmpiLiteClient client(world, &transport);
  Workload w = MakeWorkload(kProbeOps);
  for (std::size_t i = 0; i < w.keys.size(); ++i) {
    client.Put(w.keys[i], w.values[i]);
  }
  std::uint64_t forwards = 0;
  for (const auto& node : nodes) forwards += node->forwards();
  return "log(N) (probed " + Fmt(static_cast<double>(forwards) / static_cast<double>(kProbeOps), 1) +
         " hops @64)";
}

std::string ProbeZhtPersistence() {
  // NoVoHT: write, destroy, reopen, read back.
  std::string path =
      (std::filesystem::temp_directory_path() / "table1_probe.nvt").string();
  std::filesystem::remove(path);
  NoVoHTOptions options;
  options.path = path;
  {
    auto store = NoVoHT::Open(options);
    if (!store.ok()) return "?";
    (*store)->Put("persist", "yes");
  }
  auto reopened = NoVoHT::Open(options);
  std::string verdict =
      reopened.ok() && (*reopened)->Get("persist").ok() ? "Yes (probed)"
                                                        : "BROKEN";
  std::filesystem::remove(path);
  return verdict;
}

std::string ProbeZhtDynamicMembership() {
  LocalClusterOptions options;
  options.num_instances = 2;
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return "?";
  auto client = (*cluster)->CreateClient();
  client->Insert("k", "v");
  auto joined = (*cluster)->JoinNewInstance();
  bool still = client->Lookup("k").ok();
  return joined.ok() && still ? "Yes (probed)" : "BROKEN";
}

std::string ProbeZhtAppend() {
  LocalClusterOptions options;
  options.num_instances = 2;
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return "?";
  auto client = (*cluster)->CreateClient();
  client->Append("a", "1");
  client->Append("a", "2");
  return client->Lookup("a").value_or("") == "12" ? "Yes (probed)" : "BROKEN";
}

std::string ProbeMemcachedAppendAndPersistence() {
  MemcachedLiteServer server;
  Request request;
  request.op = OpCode::kAppend;
  request.key = "k";
  request.value = "v";
  Response resp = server.Handle(std::move(request));
  return resp.status_as_object().code() == StatusCode::kNotSupported
             ? "No (probed)"
             : "?";
}

}  // namespace
}  // namespace zht::bench

int main() {
  using namespace zht::bench;
  Banner("Table 1", "Comparison between ZHT and other DHT implementations");
  Note("'(this repo)' rows are capability probes against this repo's "
       "implementations; the Dynamo row is from the paper (Amazon-internal, "
       "not runnable anywhere)");

  PrintRow({"Name", "Impl.", "Routing Time", "Persistence", "Dyn.member.",
            "Append"},
           18);
  PrintRow({"Cassandra", "Java", "log(N)", "Yes", "Yes", "No"}, 18);
  PrintRow({"  (this repo)", "C++",
            ProbeCassandraRouting(), "No*", "No*",
            "No"},
           18);
  PrintRow({"Memcached", "C", "2", "No", "No", "No"}, 18);
  PrintRow({"  (this repo)", "C++", "0 (static shard)",
            "No", "No", ProbeMemcachedAppendAndPersistence()},
           18);
  PrintRow({"C-MPI", "C/MPI", "log(N)", "No", "No", "No"}, 18);
  PrintRow({"  (this repo)", "C++", ProbeCmpiRouting(), "No", "No", "No"},
           18);
  PrintRow({"Dynamo", "Java", "0 to log(N)", "Yes", "Yes", "No"}, 18);
  PrintRow({"ZHT", "C++", ProbeZhtRouting(), ProbeZhtPersistence(),
            ProbeZhtDynamicMembership(), ProbeZhtAppend()},
           18);
  std::printf("\n* cassandra-lite reproduces only the routing/consistency "
              "mechanisms the paper compares against\n");
  return 0;
}
