// Figure 12: latency overhead of replication (1 and 2 replicas vs none) at
// 2 to 1K nodes. Paper: asynchronous replication costs ~20% for one
// replica and ~30% for two; synchronous replication would have cost
// ~100%/200% (§IV.F). Simulated series on the torus model plus a live
// measurement on the in-process cluster.
#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/stats.h"
#include "core/local_cluster.h"
#include "sim/kvs_sim.h"

namespace zht::bench {
namespace {

double LiveInsertLatencyUs(int replicas) {
  LocalClusterOptions options;
  options.num_instances = 8;
  options.cluster.num_replicas = replicas;
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return -1;
  // A touch of wire latency so the sync-replication round trip is visible.
  (*cluster)->network().SetLatency(20 * zht::kNanosPerMicro);
  auto client = (*cluster)->CreateClient();
  Workload w = MakeWorkload(Smoke<std::size_t>(400, 100));
  LatencyStats stats;
  for (std::size_t i = 0; i < w.keys.size(); ++i) {
    Stopwatch op(SystemClock::Instance());
    client->Insert(w.keys[i], w.values[i]);
    stats.Record(op.Elapsed());
  }
  (*cluster)->network().SetLatency(0);
  (*cluster)->FlushAllAsyncReplication();
  Report().AddLatency("live.insert.r" + std::to_string(replicas), stats);
  Report().AddSnapshot("live.r" + std::to_string(replicas) + ".server0",
                       (*cluster)->server(0)->MetricsSnapshotNow());
  return stats.MeanMicros();
}

}  // namespace
}  // namespace zht::bench

int main() {
  using namespace zht::bench;
  using namespace zht::sim;

  Banner("Figure 12", "Replication overhead vs scale (simulated torus)");
  PrintRow({"nodes", "no replica (ms)", "1 replica", "overhead", "2 replicas",
            "overhead"},
           16);
  const std::vector<std::uint64_t> kNodeSweep =
      SmokeMode() ? std::vector<std::uint64_t>{2ull, 16ull}
                  : std::vector<std::uint64_t>{2ull, 16ull, 64ull, 256ull,
                                               1024ull};
  for (std::uint64_t nodes : kNodeSweep) {
    std::vector<std::string> row{FmtInt(nodes)};
    double base = 0;
    for (int replicas : {0, 1, 2}) {
      KvsSimParams params;
      params.num_nodes = nodes;
      params.replicas = replicas;
      params.ops_per_client = 24;
      double latency = RunKvsSim(params).mean_latency_ms;
      if (replicas == 0) {
        base = latency;
        row.push_back(Fmt(latency, 3));
      } else {
        row.push_back(Fmt(latency, 3));
        row.push_back("+" + Fmt(100.0 * (latency / base - 1.0), 0) + "%");
      }
    }
    PrintRow(row, 16);
  }
  Note("paper: ~+20% for 1 replica, ~+30% for 2 — the asynchronous design "
       "keeps it far below the ~100%/200% a synchronous scheme would cost");

  std::printf("\nsynchronous-replication ablation (simulated, 256 nodes):\n");
  {
    KvsSimParams base;
    base.num_nodes = 256;
    base.ops_per_client = 24;
    double t0 = RunKvsSim(base).mean_latency_ms;
    KvsSimParams sync = base;
    sync.replicas = 1;
    sync.sync_secondary = true;
    double t1 = RunKvsSim(sync).mean_latency_ms;
    KvsSimParams async = base;
    async.replicas = 1;
    double ta = RunKvsSim(async).mean_latency_ms;
    std::printf("  none: %.3f ms   async+1: %.3f ms (+%.0f%%)   "
                "sync+1: %.3f ms (+%.0f%%)\n",
                t0, ta, 100.0 * (ta / t0 - 1.0), t1,
                100.0 * (t1 / t0 - 1.0));
  }

  std::printf("\nlive in-process measurement (8 instances, sync secondary "
              "+ async rest — this repo's default consistency):\n");
  double l0 = LiveInsertLatencyUs(0);
  double l1 = LiveInsertLatencyUs(1);
  double l2 = LiveInsertLatencyUs(2);
  std::printf("  0 replicas: %.1f us   1: %.1f us (+%.0f%%)   "
              "2: %.1f us (+%.0f%%)\n",
              l0, l1, 100.0 * (l1 / l0 - 1.0), l2,
              100.0 * (l2 / l0 - 1.0));
  return 0;
}
