// Figure 4: concurrent performance with 1 to 1K partitions per ZHT
// instance — latency must stay essentially flat (the paper measures
// 0.73 ms → 0.77 ms on BG/P; here the absolute numbers are loopback-scale
// but the flatness is the claim).
#include "bench/bench_util.h"
#include "common/stats.h"
#include "core/local_cluster.h"

int main() {
  using namespace zht;
  using namespace zht::bench;

  Banner("Figure 4",
         "Latency vs number of partitions per instance (1 instance)");
  PrintRow({"partitions", "avg latency (us)", "p99 (us)"});

  const int kOps = Smoke(3000, 200);
  Workload workload = MakeWorkload(static_cast<std::size_t>(kOps));
  Report().SetParam("ops_per_phase", kOps);
  double base = 0;

  const std::vector<std::uint32_t> kPartitionSweep =
      SmokeMode() ? std::vector<std::uint32_t>{1u, 10u}
                  : std::vector<std::uint32_t>{1u, 10u, 100u, 1000u};
  for (std::uint32_t partitions : kPartitionSweep) {
    LocalClusterOptions options;
    options.num_instances = 1;
    options.num_partitions = partitions;
    auto cluster = LocalCluster::Start(options);
    if (!cluster.ok()) return 1;
    auto client = (*cluster)->CreateClient();

    LatencyStats stats;
    Stopwatch watch(SystemClock::Instance());
    for (int i = 0; i < kOps; ++i) {
      Stopwatch op(SystemClock::Instance());
      client->Insert(workload.keys[static_cast<std::size_t>(i)],
                     workload.values[static_cast<std::size_t>(i)]);
      stats.Record(op.Elapsed());
    }
    for (int i = 0; i < kOps; ++i) {
      Stopwatch op(SystemClock::Instance());
      client->Lookup(workload.keys[static_cast<std::size_t>(i)]);
      stats.Record(op.Elapsed());
    }
    for (int i = 0; i < kOps; ++i) {
      Stopwatch op(SystemClock::Instance());
      client->Remove(workload.keys[static_cast<std::size_t>(i)]);
      stats.Record(op.Elapsed());
    }
    if (partitions == 1) base = stats.MeanMicros();
    PrintRow({FmtInt(partitions), Fmt(stats.MeanMicros(), 2),
              Fmt(ToMicros(stats.Percentile(99)), 2)});
    Report().AddLatency("client.e2e.p" + std::to_string(partitions), stats);
    Report().AddSnapshot("p" + std::to_string(partitions),
                         (*cluster)->server(0)->MetricsSnapshotNow());
  }
  Note("paper: 0.73 ms @1 partition vs 0.77 ms @1K partitions — a 0.04 ms "
       "drift invisible next to the network RTT. The in-process numbers "
       "above (baseline " +
       Fmt(base, 2) +
       " us) show the same story: the absolute cost of going from 1 to 1K "
       "partitions is well under a microsecond (store-map and cache "
       "effects), i.e. partitions are free at network granularity");
  return 0;
}
