// Figure 8: ZHT vs Cassandra vs Memcached — latency vs scale (1 to 64
// nodes on the HEC-Cluster). All three systems run LIVE in-process over
// the loopback network with an injected 100 us one-way message latency
// standing in for the cluster's gigabit-Ethernet hop (the substitution
// documented in DESIGN.md); the per-op differences therefore come from
// each system's real message count and handler work.
#include <filesystem>
#include <memory>

#include "baselines/cassandra_lite.h"
#include "baselines/memcached_lite.h"
#include "bench/bench_util.h"
#include "common/clock.h"
#include "common/stats.h"
#include "core/local_cluster.h"
#include "net/loopback.h"
#include "novoht/novoht.h"

namespace zht::bench {
namespace {

constexpr Nanos kWireLatency = 100 * kNanosPerMicro;  // one way
const int kOps = Smoke(120, 30);

// ZHT persists every mutation (the paper attributes its small latency gap
// vs Memcached to exactly this disk write).
StoreFactory PersistentStores(const std::filesystem::path& dir) {
  return [dir](InstanceId self,
               PartitionId partition) -> std::unique_ptr<KVStore> {
    NoVoHTOptions options;
    options.path = (dir / ("i" + std::to_string(self) + "_p" +
                           std::to_string(partition)))
                       .string();
    auto store = NoVoHT::Open(options);
    return store.ok() ? std::move(*store) : nullptr;
  };
}

double ZhtLatencyMs(std::uint32_t nodes, const Workload& w) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "zht_fig8";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  LocalClusterOptions options;
  options.num_instances = nodes;
  options.store_factory = PersistentStores(dir);
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return -1;
  (*cluster)->network().SetLatency(kWireLatency);
  auto client = (*cluster)->CreateClient();
  LatencyStats stats;
  for (int i = 0; i < kOps; ++i) {
    Stopwatch op(SystemClock::Instance());
    client->Insert(w.keys[static_cast<std::size_t>(i)],
                   w.values[static_cast<std::size_t>(i)]);
    client->Lookup(w.keys[static_cast<std::size_t>(i)]);
    client->Remove(w.keys[static_cast<std::size_t>(i)]);
    stats.Record(op.Elapsed());
  }
  Report().AddLatency("zht.e2e.n" + std::to_string(nodes), stats);
  Report().AddSnapshot("zht.n" + std::to_string(nodes) + ".client",
                       client->metrics().Snapshot());
  (*cluster)->network().SetLatency(0);  // teardown paths shouldn't sleep
  cluster->reset();
  std::filesystem::remove_all(dir);
  return stats.MeanMillis() / 3.0;
}

struct CassandraRing {
  struct Slot {
    RequestHandler handler;
  };
  LoopbackNetwork network;
  std::vector<std::shared_ptr<Slot>> slots;
  std::vector<NodeAddress> ring;
  std::unique_ptr<LoopbackTransport> transport;
  std::vector<std::unique_ptr<CassandraLiteNode>> nodes;

  explicit CassandraRing(std::uint32_t size) {
    for (std::uint32_t i = 0; i < size; ++i) {
      auto slot = std::make_shared<Slot>();
      ring.push_back(network.Register(
          [slot](Request&& req) { return slot->handler(std::move(req)); }));
      slots.push_back(slot);
    }
    transport = std::make_unique<LoopbackTransport>(&network);
    for (std::uint32_t i = 0; i < size; ++i) {
      CassandraLiteOptions options;
      options.self = i;
      options.ring_size = size;
      // Stand-in for the heavier JVM/SEDA stack the paper cites; applied
      // per handled message.
      options.per_op_overhead = 300 * kNanosPerMicro;
      nodes.push_back(
          std::make_unique<CassandraLiteNode>(options, ring,
                                              transport.get()));
      slots[i]->handler = nodes.back()->AsHandler();
    }
    network.SetLatency(kWireLatency);
  }
};

double CassandraLatencyMs(std::uint32_t size, const Workload& w) {
  CassandraRing ring(size);
  CassandraLiteClient client(ring.ring, ring.transport.get());
  LatencyStats stats;
  for (int i = 0; i < kOps; ++i) {
    Stopwatch op(SystemClock::Instance());
    client.Put(w.keys[static_cast<std::size_t>(i)],
               w.values[static_cast<std::size_t>(i)]);
    client.Get(w.keys[static_cast<std::size_t>(i)]);
    client.Remove(w.keys[static_cast<std::size_t>(i)]);
    stats.Record(op.Elapsed());
  }
  ring.network.SetLatency(0);
  return stats.MeanMillis() / 3.0;
}

double MemcachedLatencyMs(std::uint32_t size, const Workload& w) {
  LoopbackNetwork network;
  std::vector<std::unique_ptr<MemcachedLiteServer>> servers;
  std::vector<NodeAddress> addresses;
  for (std::uint32_t i = 0; i < size; ++i) {
    servers.push_back(std::make_unique<MemcachedLiteServer>());
    addresses.push_back(network.Register(servers.back()->AsHandler()));
  }
  LoopbackTransport transport(&network);
  network.SetLatency(kWireLatency);
  MemcachedLiteClient client(addresses, &transport);
  LatencyStats stats;
  for (int i = 0; i < kOps; ++i) {
    Stopwatch op(SystemClock::Instance());
    client.Set(w.keys[static_cast<std::size_t>(i)],
               w.values[static_cast<std::size_t>(i)]);
    client.Get(w.keys[static_cast<std::size_t>(i)]);
    client.Delete(w.keys[static_cast<std::size_t>(i)]);
    stats.Record(op.Elapsed());
  }
  network.SetLatency(0);
  return stats.MeanMillis() / 3.0;
}

}  // namespace
}  // namespace zht::bench

int main() {
  using namespace zht::bench;

  Banner("Figure 8",
         "ZHT vs Cassandra vs Memcached — latency vs scale, live cluster "
         "(ms per op; 100 us injected wire latency)");
  PrintRow({"nodes", "ZHT", "Cassandra", "Memcached"});

  Workload w = MakeWorkload(static_cast<std::size_t>(kOps));
  Report().SetParam("ops_per_scale", kOps);
  const std::vector<std::uint32_t> kNodeSweep =
      SmokeMode() ? std::vector<std::uint32_t>{1u, 4u}
                  : std::vector<std::uint32_t>{1u, 2u, 4u, 8u, 16u, 32u, 64u};
  for (std::uint32_t nodes : kNodeSweep) {
    PrintRow({FmtInt(nodes), Fmt(ZhtLatencyMs(nodes, w), 3),
              Fmt(CassandraLatencyMs(nodes, w), 3),
              Fmt(MemcachedLatencyMs(nodes, w), 3)});
  }
  Note("shape to reproduce (paper): ZHT lowest and near-flat (constant "
       "routing); Cassandra ~3x ZHT and growing with log(N) routing; "
       "Memcached slightly better than ZHT (no disk write, no replication "
       "machinery)");
  return 0;
}
