// Traffic-shape survival suite (ROADMAP item 4): skewed and bursty load
// against one ZhtServer instance, driven straight through HandleAsync so
// the numbers measure server-side capacity, not transport dilution.
//
//   * zipf s in {0.9, 1.1} and a flash crowd (90% of picks on one key),
//     at 99/1 and 50/50 read/write mixes, value sizes 134 B -> 1 MB, each
//     run with the per-shard hot-key cache off and on. Reports ops/sec,
//     p50/p99/p999 per mix, the cache hit ratio, and the on/off speedup.
//   * flash-crowd overload with shard executors deliberately stalled:
//     with admission control ON the server sheds kUnavailable + a
//     retry-after hint at a bounded mailbox depth; with it OFF the same
//     schedule grows the mailbox without bound. Reports shed/served
//     ratios and both depth curves.
//
// Gates (all modes): cache hit ratio > 0 under zipf 1.1, zero stale
// reads (every lookup is checked against a client-side model), sheds
// carry retry_after_us > 0, and the budget bounds the mailbox depth the
// unbudgeted run exceeds. Full mode adds the acceptance bar: cache-on
// throughput >= 1.5x cache-off for the zipf(1.1) 99/1 134 B mix.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "bench/workload.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/zht_server.h"
#include "membership/membership_table.h"
#include "net/loopback.h"

namespace zht::bench {
namespace {

constexpr std::size_t kPartitions = 64;
constexpr std::size_t kCacheEntries = 4096;  // sized to the hot working set
constexpr std::size_t kShedBudget = 64;

// One instance owns every partition; unbound shards drain inline, so a
// HandleAsync call completes synchronously (in-memory store: no
// durability wait, no replication legs).
struct Instance {
  LoopbackNetwork network;
  std::unique_ptr<LoopbackTransport> transport;
  std::unique_ptr<ZhtServer> server;
  std::uint64_t seq = 0;

  explicit Instance(std::size_t cache_entries, std::size_t shed_budget = 0) {
    MembershipTable table = MembershipTable::CreateUniform(
        kPartitions, {NodeAddress{"10.0.0.1", 50000}});
    transport = std::make_unique<LoopbackTransport>(&network);
    ZhtServerOptions options;
    options.cluster.hot_cache_entries = cache_entries;
    options.cluster.shed_queue_budget = shed_budget;
    server = std::make_unique<ZhtServer>(std::move(table), options,
                                         transport.get());
  }

  Response Call(OpCode op, const std::string& key, std::string value = "") {
    Request request;
    request.op = op;
    request.seq = ++seq;
    request.key = key;
    request.value = std::move(value);
    request.epoch = server->table().epoch();
    Response out;
    bool completed = false;
    server->HandleAsync(std::move(request), [&](Response&& resp) {
      out = std::move(resp);
      completed = true;
    });
    if (!completed) {
      std::fprintf(stderr, "FATAL: HandleAsync did not complete inline\n");
      std::abort();
    }
    return out;
  }
};

struct Shape {
  std::string name;     // "zipf0.9", "zipf1.1", "flash"
  double zipf_s = 0;    // 0 = flash crowd instead
};

struct MixResult {
  double kops = 0;
  double hit_ratio = 0;
  std::uint64_t stale_reads = 0;
};

// Values carry a per-key version prefix so every lookup can be checked
// against the client-side model — a cache serving a pre-mutation value
// shows up as a stale read, not a silent pass.
std::string VersionedValue(const std::string& payload, std::uint64_t version) {
  std::string value = std::to_string(version);
  value.push_back('|');
  value += payload;
  return value;
}

MixResult RunMix(Instance& inst, const Shape& shape, double read_fraction,
                 const std::vector<std::string>& keys,
                 const std::string& payload, std::size_t ops,
                 LatencyStats& lat, std::uint64_t seed) {
  ZipfGenerator zipf(keys.size(), shape.zipf_s > 0 ? shape.zipf_s : 1.0, seed);
  FlashCrowdGenerator flash(keys.size(), 0.9, seed);
  Rng mix_rng(seed ^ 0x9e3779b97f4a7c15ull);
  std::vector<std::uint64_t> version(keys.size(), 1);
  // Client-side model of the store: expect[rank] is the exact value the
  // last acked write put there. Kept materialized so the per-read stale
  // check is a comparison, not an allocation, inside the timed loop.
  std::vector<std::string> expect;
  expect.reserve(keys.size());

  // Preload every key at version 1 so reads always find something, then
  // an untimed lookup warmup (same draws for the cache-off and cache-on
  // instance) so the measured window sees a steady-state cache.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    expect.push_back(VersionedValue(payload, 1));
    inst.Call(OpCode::kInsert, keys[i], expect.back());
  }
  for (std::size_t i = 0; i < ops / 2; ++i) {
    const std::size_t rank = shape.zipf_s > 0 ? zipf.Next() : flash.Next();
    inst.Call(OpCode::kLookup, keys[rank]);
  }

  // Materialize the op schedule up front: drawing from the generators is
  // workload synthesis, not the system under test, so it stays out of the
  // timed window (and out of both the cache-off and cache-on numbers).
  struct PlannedOp {
    std::uint32_t rank;
    bool read;
  };
  std::vector<PlannedOp> plan;
  plan.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    const std::size_t rank = shape.zipf_s > 0 ? zipf.Next() : flash.Next();
    plan.push_back({static_cast<std::uint32_t>(rank),
                    mix_rng.NextDouble() < read_fraction});
  }

  const ZhtServerStats before = inst.server->stats();
  MixResult result;
  // Best-of-N trials of the same schedule: on a shared box, OS jitter is
  // multiplicative slowdown only, so the max over trials is the least
  // noisy throughput estimate. Latency samples and the stale check
  // accumulate across every trial (replays keep writing new versions, so
  // each trial re-exercises invalidation).
  const int trials = SmokeMode() ? 1 : 3;
  for (int trial = 0; trial < trials; ++trial) {
    Stopwatch run_watch(SystemClock::Instance());
    for (std::size_t i = 0; i < ops; ++i) {
      const std::size_t rank = plan[i].rank;
      const bool read = plan[i].read;
      const Stopwatch op_watch(SystemClock::Instance());
      if (read) {
        Response resp = inst.Call(OpCode::kLookup, keys[rank]);
        lat.Record(op_watch.Elapsed());
        if (!resp.ok() || resp.value != expect[rank]) ++result.stale_reads;
      } else {
        ++version[rank];
        expect[rank] = VersionedValue(payload, version[rank]);
        inst.Call(OpCode::kInsert, keys[rank], expect[rank]);
        lat.Record(op_watch.Elapsed());
      }
    }
    const double seconds = ToSeconds(run_watch.Elapsed());
    result.kops =
        std::max(result.kops, static_cast<double>(ops) / seconds / 1000.0);
  }

  const ZhtServerStats after = inst.server->stats();
  const std::uint64_t hits = after.hot_cache_hits - before.hot_cache_hits;
  const std::uint64_t misses = after.hot_cache_misses - before.hot_cache_misses;
  if (hits + misses > 0) {
    result.hit_ratio =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
  return result;
}

// ---- Overload: stalled executors, admission control on vs off -------------

struct OverloadResult {
  std::uint64_t shed = 0;
  std::uint64_t served = 0;
  std::uint64_t max_queued = 0;       // peak total mailbox depth
  std::uint32_t min_retry_after = 0;  // smallest hint on a shed response
  std::uint32_t max_retry_after = 0;
  bool bad_shed_envelope = false;  // a shed without kUnavailable+hint
};

OverloadResult RunOverloadInThread(std::size_t shed_budget, std::size_t ops,
                                   const std::vector<std::string>& keys,
                                   const std::string& payload) {
  // Cache off: inserts and lookups must all try to queue, nothing may be
  // answered from the ingress fast path.
  Instance inst(/*cache_entries=*/0, shed_budget);
  const std::size_t num_shards = inst.server->num_shards();
  for (std::size_t s = 0; s < num_shards; ++s) {
    // Bound to an executor nobody runs yet: posts pile up in the mailbox,
    // which is exactly the overload admission control must catch at
    // ingress. The bench thread becomes that executor later to drain.
    inst.server->BindShardExecutor(s, 0, [] {});
  }

  FlashCrowdGenerator flash(keys.size(), 0.9, /*seed=*/7);
  // Shared state only: admitted ops complete later (during the drain
  // below), long after this loop's locals are gone.
  auto state = std::make_shared<OverloadResult>();
  auto completions = std::make_shared<std::uint64_t>(0);
  std::uint64_t max_queued = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    const std::size_t rank = flash.Next();
    Request request;
    request.op = OpCode::kInsert;
    request.seq = ++inst.seq;
    request.key = keys[rank];
    request.value = payload;
    request.epoch = inst.server->table().epoch();
    inst.server->HandleAsync(
        std::move(request), [state, completions](Response&& resp) {
          // While executors are stalled, an inline completion can only be
          // a shed; admitted inserts ack OK from the drain.
          const StatusCode code = static_cast<StatusCode>(resp.status);
          if (code == StatusCode::kUnavailable) {
            ++state->shed;
            if (resp.retry_after_us == 0) {
              state->bad_shed_envelope = true;
            } else {
              if (state->min_retry_after == 0 ||
                  resp.retry_after_us < state->min_retry_after) {
                state->min_retry_after = resp.retry_after_us;
              }
              state->max_retry_after =
                  std::max(state->max_retry_after, resp.retry_after_us);
            }
          }
          ++*completions;
        });
    std::uint64_t depth = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
      depth += inst.server->ShardQueuedNow(s);
    }
    max_queued = std::max(max_queued, depth);
  }

  // Become executor 0 and drain everything that was admitted, so every
  // callback fires and the server can shut down cleanly.
  inst.server->EnterExecutorThread(0);
  inst.server->RunExecutor(0);
  OverloadResult result = *state;
  result.max_queued = max_queued;
  result.served = *completions - result.shed;
  return result;
}

OverloadResult RunOverload(std::size_t shed_budget, std::size_t ops,
                           const std::vector<std::string>& keys,
                           const std::string& payload) {
  // Fresh thread per run: EnterExecutorThread marks the calling thread as
  // an executor in thread-local state keyed by server address, and a
  // later server allocated at the same address would read the stale mark
  // and drain inline instead of queueing.
  OverloadResult result;
  std::thread worker([&] {
    result = RunOverloadInThread(shed_budget, ops, keys, payload);
  });
  worker.join();
  return result;
}

}  // namespace
}  // namespace zht::bench

int main() {
  using namespace zht;
  using namespace zht::bench;

  const std::size_t base_ops = Smoke<std::size_t>(60000, 600);
  const std::vector<std::size_t> value_sizes =
      SmokeMode() ? std::vector<std::size_t>{134, 65536}
                  : std::vector<std::size_t>{134, 4096, 65536, 1048576};
  const std::vector<Shape> shapes = {
      {"zipf0.9", 0.9}, {"zipf1.1", 1.1}, {"flash", 0.0}};
  const std::vector<std::pair<std::string, double>> mixes = {
      {"r99", 0.99}, {"r50", 0.50}};

  Banner("Traffic shapes",
         "skewed/bursty load vs the per-shard hot-key cache (1 instance, "
         "direct HandleAsync)");
  PrintRow({"shape", "mix", "value", "off kops", "on kops", "speedup",
            "hit%", "p999 on (us)"},
           13);
  Report().SetParam("cache_entries", static_cast<double>(kCacheEntries));
  Report().SetParam("shed_budget", static_cast<double>(kShedBudget));

  bool hit_gate = false;     // some zipf1.1 mix saw cache hits
  bool stale_gate_ok = true; // no lookup ever returned a stale value
  double accept_speedup = 0; // zipf1.1 / r99 / 134 B
  bool full_gate_ok = true;

  for (const Shape& shape : shapes) {
    for (const auto& [mix_name, read_fraction] : mixes) {
      for (const std::size_t value_bytes : value_sizes) {
        // Bound the resident set: big values get a smaller key universe
        // and fewer ops (a 1 MB insert is the work being measured, not
        // the loop around it).
        const std::size_t n_keys = std::clamp<std::size_t>(
            (64u << 20) / value_bytes, 64, Smoke<std::size_t>(4096, 512));
        const std::size_t ops =
            std::max<std::size_t>(base_ops / std::max<std::size_t>(
                                                 value_bytes / 4096, 1),
                                  Smoke<std::size_t>(2000, 50));
        const auto keys = MakeKeySet(n_keys, 15, /*seed=*/41);
        const std::string payload = MakeValue(value_bytes, /*seed=*/43);
        const std::string label =
            shape.name + "_" + mix_name + "_v" + std::to_string(value_bytes);

        Instance off(0);
        LatencyStats off_lat;
        MixResult off_r = RunMix(off, shape, read_fraction, keys, payload,
                                 ops, off_lat, /*seed=*/17);
        Instance on(kCacheEntries);
        LatencyStats on_lat;
        MixResult on_r = RunMix(on, shape, read_fraction, keys, payload,
                                ops, on_lat, /*seed=*/17);

        const double speedup = off_r.kops > 0 ? on_r.kops / off_r.kops : 0;
        if (shape.name == "zipf1.1" && on_r.hit_ratio > 0) hit_gate = true;
        if (off_r.stale_reads + on_r.stale_reads > 0) stale_gate_ok = false;
        if (shape.name == "zipf1.1" && mix_name == "r99" &&
            value_bytes == 134) {
          accept_speedup = speedup;
        }

        PrintRow({shape.name, mix_name, std::to_string(value_bytes),
                  Fmt(off_r.kops, 1), Fmt(on_r.kops, 1),
                  Fmt(speedup, 2) + "x", Fmt(on_r.hit_ratio * 100, 1),
                  Fmt(static_cast<double>(on_lat.P999()) / 1000.0, 1)},
                 13);
        Report().AddMetric(label + ".off_kops", off_r.kops);
        Report().AddMetric(label + ".on_kops", on_r.kops);
        Report().AddMetric(label + ".speedup", speedup);
        Report().AddMetric(label + ".hit_ratio", on_r.hit_ratio);
        Report().AddMetric(label + ".stale_reads",
                           static_cast<double>(off_r.stale_reads +
                                               on_r.stale_reads));
        Report().AddLatency(label + ".off.latency", off_lat);
        Report().AddLatency(label + ".on.latency", on_lat);
        std::printf(
            "JSON {\"bench\":\"traffic\",\"shape\":\"%s\",\"mix\":\"%s\","
            "\"value_bytes\":%zu,\"off_kops\":%.1f,\"on_kops\":%.1f,"
            "\"speedup\":%.2f,\"hit_ratio\":%.3f,\"p999_on_ns\":%lld}\n",
            shape.name.c_str(), mix_name.c_str(), value_bytes, off_r.kops,
            on_r.kops, speedup, on_r.hit_ratio,
            static_cast<long long>(on_lat.P999()));
      }
    }
  }

  Banner("Flash-crowd overload",
         "stalled executors; admission control on (budget) vs off");
  PrintRow({"budget", "shed", "served", "shed_ratio", "max_queued",
            "retry_us"},
           13);
  {
    const std::size_t ops = Smoke<std::size_t>(4000, 400);
    const auto keys = MakeKeySet(256, 15, /*seed=*/41);
    const std::string payload = MakeValue(134, /*seed=*/43);

    OverloadResult on = RunOverload(kShedBudget, ops, keys, payload);
    OverloadResult off = RunOverload(0, ops, keys, payload);

    const double on_ratio =
        on.shed + on.served > 0
            ? static_cast<double>(on.shed) /
                  static_cast<double>(on.shed + on.served)
            : 0;
    PrintRow({std::to_string(kShedBudget), FmtInt(on.shed),
              FmtInt(on.served), Fmt(on_ratio, 3), FmtInt(on.max_queued),
              FmtInt(on.min_retry_after) + "-" +
                  FmtInt(on.max_retry_after)},
             13);
    PrintRow({"off", FmtInt(off.shed), FmtInt(off.served), Fmt(0.0, 3),
              FmtInt(off.max_queued), "-"},
             13);
    Report().AddMetric("overload.on.shed", static_cast<double>(on.shed));
    Report().AddMetric("overload.on.served",
                       static_cast<double>(on.served));
    Report().AddMetric("overload.on.shed_ratio", on_ratio);
    Report().AddMetric("overload.on.max_queued",
                       static_cast<double>(on.max_queued));
    Report().AddMetric("overload.on.min_retry_after_us",
                       static_cast<double>(on.min_retry_after));
    Report().AddMetric("overload.on.max_retry_after_us",
                       static_cast<double>(on.max_retry_after));
    Report().AddMetric("overload.off.max_queued",
                       static_cast<double>(off.max_queued));
    std::printf(
        "JSON {\"bench\":\"traffic\",\"section\":\"overload\","
        "\"budget\":%zu,\"shed\":%llu,\"served\":%llu,\"shed_ratio\":%.3f,"
        "\"on_max_queued\":%llu,\"off_max_queued\":%llu}\n",
        kShedBudget, static_cast<unsigned long long>(on.shed),
        static_cast<unsigned long long>(on.served), on_ratio,
        static_cast<unsigned long long>(on.max_queued),
        static_cast<unsigned long long>(off.max_queued));

    // Deterministic in every mode: the budget must actually shed with a
    // usable hint, bound the mailbox, and the unbudgeted run must show
    // the unbounded growth the budget prevents.
    if (on.shed == 0 || on.bad_shed_envelope) {
      std::printf("FAIL: admission control did not shed with retry-after\n");
      return 1;
    }
    if (off.shed != 0 || off.max_queued <= on.max_queued) {
      std::printf("FAIL: unbudgeted run did not out-grow the budgeted one\n");
      return 1;
    }
  }

  Note("cache-on speedup bar (>= 1.5x) applies to the zipf(1.1) 99/1 read "
       "mix at 134 B values; smoke mode checks shape gates only");
  if (!hit_gate) {
    std::printf("FAIL: no cache hits under zipf(1.1)\n");
    return 1;
  }
  if (!stale_gate_ok) {
    std::printf("FAIL: a lookup returned a stale value\n");
    return 1;
  }
  if (!SmokeMode() && accept_speedup < 1.5) {
    std::printf("FAIL: zipf(1.1) 99/1 cache speedup %.2fx < 1.5x\n",
                accept_speedup);
    full_gate_ok = false;
  }
  return full_gate_ok ? 0 : 1;
}
