// Figure 5: ZHT bootstrap time on Blue Gene/P, 64 to 8K nodes, stacked
// into BG/P partition boot + ZHT server start + neighbor-list generation.
// The machine-boot and server-start components come from the calibrated
// model (§III.H anchors: 8 s @1K, 10 s @8K for the ZHT share); the
// neighbor-list component is actually executed: we build the real
// membership table for N instances and time it.
#include "bench/bench_util.h"
#include "common/clock.h"
#include "membership/membership_table.h"
#include "sim/bootstrap_model.h"

int main() {
  using namespace zht;
  using namespace zht::bench;

  Banner("Figure 5", "ZHT bootstrap time vs scale (64 to 8K nodes)");
  PrintRow({"nodes", "BGP boot (s)", "server start (s)", "neighbors (s)",
            "total (s)", "measured neigh (ms)"},
           18);

  const std::vector<std::uint64_t> kNodeSweep =
      SmokeMode() ? std::vector<std::uint64_t>{64ull, 256ull}
                  : std::vector<std::uint64_t>{64ull, 128ull, 256ull, 512ull,
                                               1024ull, 2048ull, 4096ull,
                                               8192ull};
  for (std::uint64_t nodes : kNodeSweep) {
    auto model = sim::ModelBootstrap(nodes);

    // Live measurement of the neighbor-list build: full membership table
    // (addresses + contiguous partition ownership) for `nodes` instances.
    std::vector<NodeAddress> addresses;
    addresses.reserve(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i) {
      addresses.push_back(
          NodeAddress{"10." + std::to_string(i / 65536) + "." +
                          std::to_string((i / 256) % 256) + "." +
                          std::to_string(i % 256),
                      static_cast<std::uint16_t>(50000 + (i % 1000))});
    }
    Stopwatch watch(SystemClock::Instance());
    auto table = MembershipTable::CreateUniform(
        static_cast<std::uint32_t>(nodes * 64), addresses);
    std::string encoded = table.EncodeFull();  // what a node would receive
    double measured_ms = watch.ElapsedMillis();
    (void)encoded;

    PrintRow({FmtInt(nodes), Fmt(model.bgp_partition_boot_s, 1),
              Fmt(model.zht_server_start_s, 1),
              Fmt(model.neighbor_list_s, 2), Fmt(model.total_s, 1),
              Fmt(measured_ms, 1)},
             18);
  }
  Note("shape: no global communication in static bootstrap, so the ZHT "
       "share grows only gently (~8 s @1K → ~10 s @8K) and machine boot "
       "dominates; the measured column shows the real table build is "
       "milliseconds even at 8K nodes");
  return 0;
}
