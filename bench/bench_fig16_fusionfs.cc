// Figure 16: FusionFS vs GPFS — time per metadata operation (file create)
// vs scale, 1 to 512 nodes. Two parts:
//  1. the paper-scale comparison: FusionFS create = FUSE overhead + 3 ZHT
//     ops (parent stat + metadata insert + directory append) with the ZHT
//     op latency coming from the calibrated torus simulator; GPFS from the
//     contention model of Figure 1;
//  2. a live measurement of this repo's metadata service (creates/sec on
//     the in-process cluster), reproducing the >60K creates/sec claim
//     from §V.A at laptop scale.
#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "core/local_cluster.h"
#include "fusionfs/metadata.h"
#include "sim/kvs_sim.h"

namespace zht::bench {
namespace {

// FUSE + local path-resolution overhead per create measured by the paper
// at 1 node: 4.5 ms total with ~0.3 ms of ZHT → ~4.2 ms fixed.
constexpr double kFuseOverheadMs = 4.2;
constexpr int kZhtOpsPerCreate = 3;

double FusionFsCreateMs(std::uint64_t nodes) {
  sim::KvsSimParams params;
  params.num_nodes = nodes;
  params.ops_per_client = 24;
  double zht_ms = sim::RunKvsSim(params).mean_latency_ms;
  return kFuseOverheadMs + kZhtOpsPerCreate * zht_ms;
}

}  // namespace
}  // namespace zht::bench

int main() {
  using namespace zht;
  using namespace zht::bench;
  using fusionfs::GpfsModel;

  Banner("Figure 16", "FusionFS vs GPFS — time per file create (ms)");
  GpfsModel gpfs;
  PrintRow({"nodes", "FusionFS", "GPFS (many dir)", "GPFS ratio"});
  const std::vector<std::uint64_t> kNodeSweep =
      SmokeMode() ? std::vector<std::uint64_t>{1ull, 8ull, 64ull}
                  : std::vector<std::uint64_t>{1ull, 2ull, 4ull, 8ull, 16ull,
                                               32ull, 64ull, 128ull, 256ull,
                                               512ull};
  for (std::uint64_t nodes : kNodeSweep) {
    double fusion = FusionFsCreateMs(nodes);
    double g = gpfs.ManyDirMsPerOp(nodes);
    PrintRow({FmtInt(nodes), Fmt(fusion, 2), Fmt(g, 1),
              Fmt(g / fusion, 1) + "x"});
  }
  Note("paper anchors: FusionFS 4.5 ms @1 node → 8 ms @512 (1.8x growth); "
       "GPFS 5 ms → 393 ms (78x growth) — nearly two orders of magnitude "
       "apart at 512 nodes");

  // Live throughput measurement: concurrent creates through the actual
  // MetadataService over an in-process ZHT cluster.
  std::printf("\nlive metadata throughput (this repo, in-process cluster):\n");
  LocalClusterOptions options;
  options.num_instances = 8;
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return 1;
  {
    auto root = (*cluster)->CreateClient();
    fusionfs::MetadataService fs(root.get());
    fs.Format();
    for (int d = 0; d < 4; ++d) fs.MkDir("/d" + std::to_string(d));
  }
  constexpr int kClients = 4;
  const int kCreates = Smoke(2000, 200);
  Stopwatch watch(SystemClock::Instance());
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&cluster, c, kCreates] {
      auto client = (*cluster)->CreateClient();
      fusionfs::MetadataService fs(client.get());
      for (int i = 0; i < kCreates; ++i) {
        fusionfs::FileMetadata meta;
        fs.CreateFile("/d" + std::to_string(c % 4) + "/f" +
                          std::to_string(c) + "_" + std::to_string(i),
                      meta);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  double seconds = ToSeconds(watch.Elapsed());
  std::printf("  %d concurrent clients created %d files in %.2f s → %.0f "
              "creates/sec (paper: >60K/sec at 2K cores)\n",
              kClients, kClients * kCreates, seconds,
              kClients * kCreates / seconds);
  return 0;
}
