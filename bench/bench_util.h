// Shared helpers for the paper-reproduction benchmark binaries: consistent
// table printing (one bench per table/figure; rows mirror the paper's
// series), workload generation (§IV.A: 15-byte ASCII keys, 132-byte
// values, all-to-all random access), and the JSON telemetry pipeline —
// every bench emits a machine-readable BENCH_<name>.json next to its
// human-readable table (see DESIGN.md §8 and tools/run_benches.sh).
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/stats.h"

namespace zht::bench {

// ---- Smoke mode ------------------------------------------------------------

// ZHT_BENCH_SMOKE=1 shrinks every sweep to seconds-sized parameters so
// `ctest -L bench_smoke` can run each bench and validate its JSON report.
inline bool SmokeMode() {
  const char* env = std::getenv("ZHT_BENCH_SMOKE");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

// Pick the full-size or smoke-size value for a sweep parameter.
template <typename T>
inline T Smoke(T full, T smoke) {
  return SmokeMode() ? smoke : full;
}

// ---- BenchReport -----------------------------------------------------------

// Process-wide collector behind Banner()/PrintRow(): sections and table
// rows are captured automatically; benches add params, scalar metrics,
// latency summaries, histograms, and metrics snapshots explicitly. The
// report writes itself at process exit as BENCH_<name>.json (binary name
// minus the bench_ prefix) into $ZHT_BENCH_DIR (default: cwd).
class BenchReport {
 public:
  static BenchReport& Instance() {
    static BenchReport* report = new BenchReport();  // leaked: alive at exit
    return *report;
  }

  void Begin(const std::string& id, const std::string& title) {
    sections_.push_back(Section{id, title, {}, {}});
    if (!registered_) {
      registered_ = true;
      std::atexit(&BenchReport::WriteAtExit);
    }
  }

  // First row after Begin() is the table header (column names).
  void Row(const std::vector<std::string>& cells) {
    if (sections_.empty()) return;
    Section& section = sections_.back();
    if (section.columns.empty()) {
      section.columns = cells;
    } else {
      section.rows.push_back(cells);
    }
  }

  void SetParam(const std::string& key, const std::string& value) {
    SetOrReplace(params_, key, json::Quote(value));
  }
  void SetParam(const std::string& key, double value) {
    SetOrReplace(params_, key, json::Number(value));
  }

  // Scalar result (throughput, speedup, ...).
  void AddMetric(const std::string& name, double value) {
    SetOrReplace(metrics_, name, json::Number(value));
  }

  // Exact-percentile summary of a LatencyStats (no buckets).
  void AddLatency(const std::string& name, LatencyStats& stats) {
    json::Writer w;
    w.BeginObject();
    w.Key("count");
    w.Uint(stats.count());
    w.Key("mean_ns");
    w.Double(stats.MeanMicros() * 1000.0);
    w.Key("min_ns");
    w.Int(stats.Min());
    w.Key("max_ns");
    w.Int(stats.Max());
    w.Key("p50_ns");
    w.Int(stats.Percentile(50));
    w.Key("p90_ns");
    w.Int(stats.Percentile(90));
    w.Key("p99_ns");
    w.Int(stats.Percentile(99));
    w.Key("p999_ns");
    w.Int(stats.P999());
    w.Key("buckets");
    w.BeginArray();
    w.EndArray();
    w.EndObject();
    SetOrReplace(histograms_, name, w.out());
  }

  // Full log-scale histogram including its sparse buckets.
  void AddHistogram(const std::string& name, const HistogramData& h) {
    json::Writer w;
    w.BeginObject();
    w.Key("count");
    w.Uint(h.count);
    w.Key("mean_ns");
    w.Double(h.Mean());
    w.Key("min_ns");
    w.Uint(h.min);
    w.Key("max_ns");
    w.Uint(h.max);
    w.Key("p50_ns");
    w.Double(h.Percentile(50));
    w.Key("p90_ns");
    w.Double(h.Percentile(90));
    w.Key("p99_ns");
    w.Double(h.Percentile(99));
    w.Key("p999_ns");
    w.Double(h.Percentile(99.9));
    w.Key("buckets");
    w.BeginArray();
    for (const auto& [index, count] : h.buckets) {
      w.BeginArray();
      w.Uint(HistogramData::BucketLower(index));
      w.Uint(HistogramData::BucketUpper(index));
      w.Uint(count);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
    SetOrReplace(histograms_, name, w.out());
  }

  // Splices a metrics snapshot in: counters/gauges land under metrics,
  // histograms under histograms, all prefixed `<prefix>.`.
  void AddSnapshot(const std::string& prefix, const MetricsSnapshot& snapshot) {
    for (const MetricValue& entry : snapshot.entries) {
      const std::string name =
          prefix.empty() ? entry.name : prefix + "." + entry.name;
      if (entry.kind == MetricKind::kHistogram) {
        AddHistogram(name, entry.histogram);
      } else {
        AddMetric(name, static_cast<double>(entry.value));
      }
    }
  }

  std::string ToJson() const {
    json::Writer w;
    w.BeginObject();
    w.Key("schema_version");
    w.Int(1);
    w.Key("name");
    w.String(ReportName());
    w.Key("smoke");
    w.Bool(SmokeMode());
    w.Key("params");
    w.BeginObject();
    for (const auto& [key, rendered] : params_) {
      w.Key(key);
      w.Raw(rendered);
    }
    w.EndObject();
    w.Key("sections");
    w.BeginArray();
    for (const Section& section : sections_) {
      w.BeginObject();
      w.Key("id");
      w.String(section.id);
      w.Key("title");
      w.String(section.title);
      w.Key("columns");
      w.BeginArray();
      for (const std::string& column : section.columns) w.String(column);
      w.EndArray();
      w.Key("rows");
      w.BeginArray();
      for (const auto& row : section.rows) {
        w.BeginArray();
        for (const std::string& cell : row) w.String(cell);
        w.EndArray();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.Key("histograms");
    w.BeginObject();
    for (const auto& [name, rendered] : histograms_) {
      w.Key(name);
      w.Raw(rendered);
    }
    w.EndObject();
    w.Key("metrics");
    w.BeginObject();
    for (const auto& [name, rendered] : metrics_) {
      w.Key(name);
      w.Raw(rendered);
    }
    w.EndObject();
    w.EndObject();
    return w.out();
  }

  // BENCH_<binary name minus "bench_">.json
  static std::string ReportName() {
#ifdef __GLIBC__
    std::string name = program_invocation_short_name;
#else
    std::string name = "report";
#endif
    if (name.rfind("bench_", 0) == 0) name = name.substr(6);
    return name;
  }

  bool Write() const {
    const char* dir = std::getenv("ZHT_BENCH_DIR");
    std::string path = (dir != nullptr && *dir != '\0')
                           ? std::string(dir) + "/"
                           : std::string();
    path += "BENCH_" + ReportName() + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench report: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string body = ToJson();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  struct Section {
    std::string id;
    std::string title;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };
  using Entries = std::vector<std::pair<std::string, std::string>>;

  static void WriteAtExit() { Instance().Write(); }

  static void SetOrReplace(Entries& entries, const std::string& key,
                           std::string rendered) {
    for (auto& [name, value] : entries) {
      if (name == key) {
        value = std::move(rendered);
        return;
      }
    }
    entries.emplace_back(key, std::move(rendered));
  }

  std::vector<Section> sections_;
  Entries params_;
  Entries metrics_;
  Entries histograms_;  // name → pre-rendered JSON object
  bool registered_ = false;
};

inline BenchReport& Report() { return BenchReport::Instance(); }

// ---- Table printing --------------------------------------------------------

inline void Banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
  Report().Begin(id, title);
}

inline void Note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

// Fixed-width row printing: pass header once, then rows of cells. Rows are
// also captured into the JSON report (first row per section = columns).
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) std::printf("%*s", width, cell.c_str());
  std::printf("\n");
  Report().Row(cells);
}

inline std::string Fmt(double value, int decimals = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

inline std::string FmtInt(std::uint64_t value) {
  return std::to_string(value);
}

// The paper's micro-benchmark workload (§IV.A).
struct Workload {
  std::vector<std::string> keys;
  std::vector<std::string> values;
};

inline Workload MakeWorkload(std::size_t count, std::uint64_t seed = 1,
                             std::size_t key_bytes = 15,
                             std::size_t value_bytes = 132) {
  Workload w;
  Rng rng(seed);
  w.keys.reserve(count);
  w.values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    w.keys.push_back(rng.AsciiString(key_bytes));
    w.values.push_back(rng.AsciiString(value_bytes));
  }
  return w;
}

}  // namespace zht::bench
