// Shared helpers for the paper-reproduction benchmark binaries: consistent
// table printing (one bench per table/figure; rows mirror the paper's
// series) and workload generation (§IV.A: 15-byte ASCII keys, 132-byte
// values, all-to-all random access).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"

namespace zht::bench {

inline void Banner(const std::string& id, const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("================================================================\n");
}

inline void Note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

// Fixed-width row printing: pass header once, then rows of cells.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const auto& cell : cells) std::printf("%*s", width, cell.c_str());
  std::printf("\n");
}

inline std::string Fmt(double value, int decimals = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

inline std::string FmtInt(std::uint64_t value) {
  return std::to_string(value);
}

// The paper's micro-benchmark workload (§IV.A).
struct Workload {
  std::vector<std::string> keys;
  std::vector<std::string> values;
};

inline Workload MakeWorkload(std::size_t count, std::uint64_t seed = 1,
                             std::size_t key_bytes = 15,
                             std::size_t value_bytes = 132) {
  Workload w;
  Rng rng(seed);
  w.keys.reserve(count);
  w.values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    w.keys.push_back(rng.AsciiString(key_bytes));
    w.values.push_back(rng.AsciiString(value_bytes));
  }
  return w;
}

}  // namespace zht::bench
