// Figure 15: dynamic-membership cost — time to DOUBLE the number of
// servers (2→4, 4→8, 8→16, 16→32) while clients keep issuing operations.
// Live measurement on the in-process cluster: every join checks out the
// membership table, migrates whole partitions (no rehashing), and ends
// with an incremental broadcast. Paper: roughly constant ~1-2 s per
// doubling on their cluster; here absolute times are loopback-scale, the
// claim is the flat trend.
#include <atomic>
#include <thread>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "core/local_cluster.h"

int main() {
  using namespace zht;
  using namespace zht::bench;

  Banner("Figure 15",
         "Time to double the server count under client load (live)");

  LocalClusterOptions options;
  options.num_instances = 2;
  options.num_partitions = Smoke(2048u, 256u);  // fixed forever; joins move
  auto cluster = LocalCluster::Start(options);
  if (!cluster.ok()) return 1;

  // Preload data so migrations move real pairs.
  {
    auto loader = (*cluster)->CreateClient();
    Workload w = MakeWorkload(Smoke<std::size_t>(20000, 2000));
    for (std::size_t i = 0; i < w.keys.size(); ++i) {
      loader->Insert(w.keys[i], w.values[i]);
    }
  }

  // Background clients stay active during every doubling (the paper's
  // setup: 32 clients performing operations throughout).
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> background_ops{0};
  std::atomic<std::uint64_t> background_errors{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&cluster, &stop, &background_ops,
                          &background_errors, t] {
      ZhtClientOptions client_options;
      client_options.max_attempts = 12;
      auto client = (*cluster)->CreateClient(client_options);
      Workload w = MakeWorkload(512, 900 + t);
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        bool ok = client->Insert(w.keys[i % w.keys.size()],
                                 w.values[i % w.keys.size()])
                      .ok();
        ++background_ops;
        if (!ok) ++background_errors;
        ++i;
      }
    });
  }

  PrintRow({"transition", "time (ms)", "partitions moved", "pairs moved"},
           20);
  std::uint64_t moved_before = 0;
  const std::vector<std::uint32_t> kTargets =
      SmokeMode() ? std::vector<std::uint32_t>{4u, 8u}
                  : std::vector<std::uint32_t>{4u, 8u, 16u, 32u};
  for (std::uint32_t target : kTargets) {
    Stopwatch watch(SystemClock::Instance());
    while ((*cluster)->instance_count() < target) {
      auto joined = (*cluster)->JoinNewInstance();
      if (!joined.ok()) {
        std::fprintf(stderr, "join failed: %s\n",
                     joined.status().ToString().c_str());
        return 1;
      }
    }
    double ms = watch.ElapsedMillis();
    std::uint64_t moved =
        (*cluster)->manager(0)->stats().partitions_migrated;
    std::uint64_t pairs = 0;
    for (std::size_t i = 0; i < (*cluster)->instance_count(); ++i) {
      pairs += (*cluster)->server(i)->TotalEntries();
    }
    PrintRow({FmtInt(target / 2) + " -> " + FmtInt(target), Fmt(ms, 1),
              FmtInt(moved - moved_before), FmtInt(pairs)},
             20);
    moved_before = moved;
  }

  stop.store(true);
  for (auto& client : clients) client.join();
  std::printf("\nbackground clients: %llu ops, %llu failed during all four "
              "doublings (requests to migrating partitions retry and "
              "succeed)\n",
              static_cast<unsigned long long>(background_ops.load()),
              static_cast<unsigned long long>(background_errors.load()));
  Note("shape to reproduce: cost per doubling stays roughly constant with "
       "scale (each join moves half of ONE donor's partitions, independent "
       "of cluster size)");
  return 0;
}
