#include "bench/workload.h"

#include <algorithm>
#include <cmath>

namespace zht::bench {

ZipfGenerator::ZipfGenerator(std::size_t n, double s, std::uint64_t seed)
    : s_(s), rng_(seed) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double total = 0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfGenerator::ProbabilityOf(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

FlashCrowdGenerator::FlashCrowdGenerator(std::size_t n, double hot_fraction,
                                         std::uint64_t seed,
                                         std::size_t hot_rank)
    : n_(n == 0 ? 1 : n),
      hot_fraction_(hot_fraction),
      hot_rank_(hot_rank % (n == 0 ? 1 : n)),
      rng_(seed) {}

std::size_t FlashCrowdGenerator::Next() {
  if (n_ == 1 || rng_.Chance(hot_fraction_)) return hot_rank_;
  // Uniform over the n-1 cold ranks.
  std::size_t pick = rng_.Below(n_ - 1);
  if (pick >= hot_rank_) ++pick;
  return pick;
}

std::vector<std::string> MakeKeySet(std::size_t n, std::size_t key_bytes,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.push_back(rng.AsciiString(key_bytes));
  }
  return keys;
}

std::string MakeValue(std::size_t value_bytes, std::uint64_t seed) {
  return Rng(seed).AsciiString(value_bytes);
}

}  // namespace zht::bench
