// Figure 18: MATRIX vs Falkon — task throughput vs scale (100K NO-OP
// tasks). Paper: Falkon's centralized dispatcher saturates at ~1700
// tasks/s by 256 cores; MATRIX grows from ~1100 tasks/s at 256 cores to
// ~4900 at 2048 with no sign of saturation, tracking ZHT's scaling.
#include "bench/bench_util.h"
#include "matrix/matrix_sim.h"

int main() {
  using namespace zht;
  using namespace zht::bench;
  using namespace zht::matrix;

  Banner("Figure 18",
         "MATRIX vs Falkon — throughput vs scale (100K NO-OP tasks, "
         "virtual time)");
  PrintRow({"cores", "MATRIX (t/s)", "Falkon (t/s)", "MATRIX steals"}, 16);

  for (std::uint32_t cores : {256u, 512u, 1024u, 2048u}) {
    MatrixSimParams matrix;
    matrix.executors = cores;
    auto m = RunMatrixSim(matrix);

    FalkonSimParams falkon;
    falkon.executors = cores;
    // Central-dispatch configuration: executors re-poll quickly; the
    // ~590 us service time per dispatch is the bottleneck (peak ~1700/s).
    falkon.poll_interval = 250 * kNanosPerMilli;
    auto f = RunFalkonSim(falkon);

    PrintRow({FmtInt(cores), Fmt(m.throughput_tasks_s, 0),
              Fmt(f.throughput_tasks_s, 0), FmtInt(m.successful_steals)},
             16);
  }
  Note("paper anchors: Falkon saturates ~1700 tasks/s at 256 cores; MATRIX "
       "1100 → 4900 tasks/s from 256 to 2048 cores (submission-bound near "
       "5K/s, no executor-side saturation)");
  return 0;
}
