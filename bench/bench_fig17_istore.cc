// Figure 17: IStore metadata/chunk throughput at 8/16/32 storage nodes for
// file sizes 10KB..1GB (the paper's workload: 1024 files; at N nodes the
// IDA splits each file into N chunks, all registered through ZHT).
// Smaller files → more metadata-intensive; the paper reports >500
// chunks/sec at 32 nodes.
//
// Live run: real erasure coding, real chunk servers, ZHT metadata. File
// counts are scaled per size so the bench completes on one core; the
// 1 GB series is approximated by 64 MB unless ZHT_BENCH_FULL=1.
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "core/local_cluster.h"
#include "istore/istore.h"
#include "net/loopback.h"

namespace zht::bench {
namespace {

struct SizePoint {
  const char* label;
  std::size_t bytes;
  int files;
};

double ChunksPerSec(std::uint32_t nodes, const SizePoint& point,
                    LocalCluster& zht_cluster) {
  using istore::ChunkServer;
  using istore::IStore;
  using istore::IStoreOptions;

  LoopbackNetwork network;
  std::vector<std::unique_ptr<ChunkServer>> servers;
  std::vector<NodeAddress> addresses;
  for (std::uint32_t i = 0; i < nodes; ++i) {
    servers.push_back(std::make_unique<ChunkServer>());
    addresses.push_back(network.Register(servers.back()->AsHandler()));
  }
  LoopbackTransport transport(&network);
  ClientHandle metadata = zht_cluster.CreateClient();
  IStoreOptions options;
  options.parity = 2;
  IStore store(metadata.get(), addresses, &transport, options);

  Rng rng(nodes * 31 + point.bytes % 97);
  std::string payload = rng.AsciiString(point.bytes);

  Stopwatch watch(SystemClock::Instance());
  std::uint64_t chunks = 0;
  for (int f = 0; f < point.files; ++f) {
    std::string name = std::string(point.label) + "-" + std::to_string(f);
    if (!store.Put(name, payload).ok()) return -1;
    chunks += nodes;
    auto back = store.Get(name);  // read path included, as in the paper
    if (!back.ok()) return -1;
  }
  return static_cast<double>(chunks) / ToSeconds(watch.Elapsed());
}

}  // namespace
}  // namespace zht::bench

int main() {
  using namespace zht;
  using namespace zht::bench;

  const bool full = std::getenv("ZHT_BENCH_FULL") != nullptr;
  Banner("Figure 17",
         "IStore chunk throughput (chunks/s) vs storage nodes and file "
         "size — live erasure coding + ZHT metadata");
  if (!full) {
    Note("largest series scaled to 64MB (set ZHT_BENCH_FULL=1 for 1GB)");
  }

  const std::vector<SizePoint> sizes =
      SmokeMode()
          ? std::vector<SizePoint>{{"10KB", 10 * 1024, 8},
                                   {"1MB", 1 << 20, 2}}
          : std::vector<SizePoint>{
                {"10KB", 10 * 1024, 64},
                {"100KB", 100 * 1024, 32},
                {"1MB", 1 << 20, 16},
                {"10MB", 10 << 20, 4},
                {"100MB",
                 full ? std::size_t{100} << 20 : std::size_t{32} << 20, 2},
                {"1GB", full ? std::size_t{1} << 30 : std::size_t{64} << 20,
                 1},
            };

  LocalClusterOptions zht_options;
  zht_options.num_instances = 4;
  auto zht_cluster = LocalCluster::Start(zht_options);
  if (!zht_cluster.ok()) return 1;

  std::vector<std::string> header{"file size"};
  for (std::uint32_t nodes : {8u, 16u, 32u}) {
    header.push_back(FmtInt(nodes) + " nodes");
  }
  PrintRow(header, 16);
  for (const auto& point : sizes) {
    std::vector<std::string> row{point.label};
    for (std::uint32_t nodes : {8u, 16u, 32u}) {
      row.push_back(Fmt(ChunksPerSec(nodes, point, **zht_cluster), 0));
    }
    PrintRow(row, 16);
  }
  Note("shape to reproduce: throughput in chunks/s grows with node count "
       "and falls with file size (large files become bandwidth-bound, "
       "small files metadata-bound); paper: ~500+ chunks/s at 32 nodes for "
       "small files");
  return 0;
}
