// Figure 9: throughput vs scale on the BG/P torus model (1 to 8K nodes,
// 1 instance + 1 client per node, closed loop). Paper: near-linear growth
// to ~7.4M ops/s at 8K nodes for ZHT (TCP cached) and Memcached.
#include "bench/bench_util.h"
#include "sim/kvs_sim.h"

int main() {
  using namespace zht::bench;
  using namespace zht::sim;

  Banner("Figure 9", "Throughput vs scale on the BG/P torus model (ops/s)");
  PrintRow({"nodes", "TCP no-cache", "TCP cached", "UDP", "Memcached"},
           16);

  const std::vector<std::uint64_t> kNodeSweep =
      SmokeMode() ? std::vector<std::uint64_t>{1ull, 8ull, 64ull}
                  : std::vector<std::uint64_t>{1ull, 2ull, 4ull, 8ull, 16ull,
                                               32ull, 64ull, 128ull, 256ull,
                                               512ull, 1024ull, 2048ull,
                                               4096ull, 8192ull};
  for (std::uint64_t nodes : kNodeSweep) {
    std::vector<std::string> row{FmtInt(nodes)};
    for (SimProtocol protocol :
         {SimProtocol::kZhtTcpNoCache, SimProtocol::kZhtTcpCached,
          SimProtocol::kZhtUdp, SimProtocol::kMemcached}) {
      KvsSimParams params;
      params.num_nodes = nodes;
      params.protocol = protocol;
      params.ops_per_client = nodes >= 4096 ? 8 : 32;
      row.push_back(Fmt(RunKvsSim(params).throughput_ops, 0));
    }
    PrintRow(row, 16);
  }
  Note("shape to reproduce: near-linear scaling; ZHT (cached TCP / UDP) "
       "approaching ~7M ops/s at 8K nodes; uncached TCP roughly half; "
       "Memcached below ZHT throughout");
  return 0;
}
