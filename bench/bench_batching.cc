// Batched & pipelined request path: MultiInsert/MultiLookup (one BATCH
// envelope per owner instance, pipelined over the cached connection)
// against the same workload issued one op per round-trip. Run over the
// loopback network with injected wire latency and over real cached-TCP
// sockets on localhost. Emits one machine-readable JSON line per
// transport; acceptance is batched >= 2x per-op on both.
#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "core/local_cluster.h"
#include "net/loopback.h"

namespace zht::bench {
namespace {

const std::size_t kOps = Smoke<std::size_t>(2048, 256);
constexpr std::size_t kBatchSize = 64;
constexpr Nanos kLoopbackWireLatency = 25 * kNanosPerMicro;

struct Throughputs {
  double per_op_kops = 0;    // insert+lookup ops/sec (thousands), one op/call
  double batched_kops = 0;   // same workload through MultiInsert/MultiLookup
  double speedup = 0;
};

double PerOpKops(ZhtClient& client, const Workload& w) {
  Stopwatch watch(SystemClock::Instance());
  for (std::size_t i = 0; i < w.keys.size(); ++i) {
    if (!client.Insert(w.keys[i], w.values[i]).ok()) return -1;
  }
  for (std::size_t i = 0; i < w.keys.size(); ++i) {
    if (!client.Lookup(w.keys[i]).ok()) return -1;
  }
  return 2.0 * static_cast<double>(w.keys.size()) /
         ToSeconds(watch.Elapsed()) / 1000.0;
}

double BatchedKops(ZhtClient& client, const Workload& w) {
  std::vector<KeyValue> pairs;
  pairs.reserve(w.keys.size());
  for (std::size_t i = 0; i < w.keys.size(); ++i) {
    pairs.push_back(KeyValue{w.keys[i], w.values[i]});
  }
  Stopwatch watch(SystemClock::Instance());
  for (std::size_t at = 0; at < pairs.size(); at += kBatchSize) {
    std::size_t n = std::min(kBatchSize, pairs.size() - at);
    auto statuses = client.MultiInsert(
        std::span<const KeyValue>(pairs.data() + at, n));
    for (const Status& status : statuses) {
      if (!status.ok()) return -1;
    }
  }
  for (std::size_t at = 0; at < w.keys.size(); at += kBatchSize) {
    std::size_t n = std::min(kBatchSize, w.keys.size() - at);
    auto values = client.MultiLookup(
        std::span<const std::string>(w.keys.data() + at, n));
    for (const auto& value : values) {
      if (!value.ok()) return -1;
    }
  }
  return 2.0 * static_cast<double>(w.keys.size()) /
         ToSeconds(watch.Elapsed()) / 1000.0;
}

Throughputs Run(LocalCluster& cluster, std::uint64_t seed,
                const std::string& label) {
  Throughputs t;
  auto client = cluster.CreateClient();
  t.per_op_kops = PerOpKops(*client, MakeWorkload(kOps, seed));
  t.batched_kops = BatchedKops(*client, MakeWorkload(kOps, seed + 1));
  if (t.per_op_kops > 0 && t.batched_kops > 0) {
    t.speedup = t.batched_kops / t.per_op_kops;
  }
  // Real per-call latency histograms from the client's metrics registry
  // (client.op.*.latency_ns, client.op.batch.latency_ns, batch sizes).
  BenchReport::Instance().AddSnapshot(label + ".client",
                                      client->metrics().Snapshot());
  return t;
}

void Report(const std::string& transport, const Throughputs& t) {
  PrintRow({transport, Fmt(t.per_op_kops, 1), Fmt(t.batched_kops, 1),
            Fmt(t.speedup, 2) + "x"},
           18);
  BenchReport::Instance().AddMetric(transport + ".per_op_kops",
                                    t.per_op_kops);
  BenchReport::Instance().AddMetric(transport + ".batched_kops",
                                    t.batched_kops);
  BenchReport::Instance().AddMetric(transport + ".speedup", t.speedup);
  std::printf(
      "JSON {\"bench\":\"batching\",\"transport\":\"%s\","
      "\"batch_size\":%zu,\"per_op_kops\":%.1f,\"batched_kops\":%.1f,"
      "\"speedup\":%.2f}\n",
      transport.c_str(), kBatchSize, t.per_op_kops, t.batched_kops,
      t.speedup);
}

}  // namespace
}  // namespace zht::bench

int main() {
  using namespace zht;
  using namespace zht::bench;

  Banner("Batching ablation",
         "per-op round-trips vs BATCH envelopes (batch size 64), "
         "insert+lookup, 4 instances");
  PrintRow({"transport", "per-op kops", "batched kops", "speedup"}, 18);

  bool ok = true;

  {
    LocalClusterOptions options;
    options.num_instances = 4;
    auto cluster = LocalCluster::Start(options);
    if (!cluster.ok()) return 1;
    (*cluster)->network().SetLatency(kLoopbackWireLatency);
    Throughputs t = Run(**cluster, /*seed=*/11, "loopback");
    (*cluster)->network().SetLatency(0);
    Report("loopback-25us", t);
    ok = ok && t.speedup >= 2.0;
  }

  {
    LocalClusterOptions options;
    options.num_instances = 4;
    options.transport = ClusterTransport::kTcp;
    auto cluster = LocalCluster::Start(options);
    if (!cluster.ok()) return 1;
    Throughputs t = Run(**cluster, /*seed=*/23, "tcp");
    Report("tcp-cached", t);
    ok = ok && t.speedup >= 2.0;
  }

  Note("batched path shards keys by owner, packs one BATCH envelope per "
       "instance, and pipelines chunk frames on the cached connection");
  if (!ok && !SmokeMode()) {
    std::printf("FAIL: batched path did not reach 2x per-op throughput\n");
    return 1;
  }
  return 0;
}
