// Figure 11: measured and simulated efficiency vs scale (1 to 8K nodes on
// the BG/P; 1 to 1M nodes simulated). Efficiency = throughput relative to
// the ideal extrapolation of the best 2-node performance — equivalently
// t(2 nodes)/t(N). The paper's anchors: ~51% at 8K nodes, 8% at 1M nodes
// (~7 ms), "which at 1M nodes still gives ~150M ops/sec".
#include "bench/bench_util.h"
#include "sim/kvs_sim.h"

int main() {
  using namespace zht::bench;
  using namespace zht::sim;

  Banner("Figure 11", "Efficiency vs scale (ZHT, simulated torus)");

  KvsSimParams base;
  base.num_nodes = 2;
  base.ops_per_client = 16;  // identical workload shape to the rows below
  double t2 = RunKvsSim(base).mean_latency_ms;

  PrintRow({"nodes", "latency (ms)", "efficiency", "throughput (ops/s)"},
           20);
  const std::vector<std::uint64_t> kNodeSweep =
      SmokeMode() ? std::vector<std::uint64_t>{2ull, 64ull, 1024ull}
                  : std::vector<std::uint64_t>{2ull, 64ull, 1024ull, 8192ull,
                                               65536ull, 262144ull,
                                               1048576ull};
  for (std::uint64_t nodes : kNodeSweep) {
    KvsSimParams params;
    params.num_nodes = nodes;
    params.ops_per_client = nodes >= 65536 ? 2 : 16;
    auto result = RunKvsSim(params);
    double efficiency = t2 / result.mean_latency_ms;
    // Steady-state closed-loop throughput: one outstanding op per client.
    double steady = static_cast<double>(nodes) /
                    (result.mean_latency_ms / 1000.0);
    PrintRow({FmtInt(nodes), Fmt(result.mean_latency_ms, 2),
              Fmt(100.0 * efficiency, 1) + "%", Fmt(steady, 0)},
             20);
  }
  Note("paper anchors: 100% = 0.6 ms at 2 nodes; ~51% (1.1 ms) at 8K; 8% "
       "(7 ms) at 1M nodes — still ~150M ops/s aggregate. The simulator "
       "matched the paper's own PeerSim results within 3% up to 8K nodes");
  return 0;
}
