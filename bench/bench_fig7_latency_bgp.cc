// Figure 7: ZHT (TCP without connection caching / TCP with caching / UDP)
// vs Memcached — latency vs scale, 1 to 8K Blue Gene/P nodes. Regenerated
// on the calibrated torus discrete-event simulator (the physical BG/P is
// the paper's testbed we substitute; see DESIGN.md).
//
// Calibration (src/sim/torus.h): endpoint software 435 us, 5 us/torus hop,
// 10 us/rack-ring hop — fitted to the paper's 0.6 ms @2 nodes and 1.1 ms
// @8K nodes; everything in between is emergent.
#include "bench/bench_util.h"
#include "sim/kvs_sim.h"

int main() {
  using namespace zht::bench;
  using namespace zht::sim;

  Banner("Figure 7",
         "Latency vs scale on the BG/P torus model (ms per op)");
  PrintRow({"nodes", "TCP no-cache", "TCP cached", "UDP", "Memcached"});

  const std::vector<std::uint64_t> kNodeSweep =
      SmokeMode() ? std::vector<std::uint64_t>{1ull, 8ull, 64ull}
                  : std::vector<std::uint64_t>{1ull, 2ull, 4ull, 8ull, 16ull,
                                               32ull, 64ull, 128ull, 256ull,
                                               512ull, 1024ull, 2048ull,
                                               4096ull, 8192ull};
  for (std::uint64_t nodes : kNodeSweep) {
    std::vector<std::string> row{FmtInt(nodes)};
    for (SimProtocol protocol :
         {SimProtocol::kZhtTcpNoCache, SimProtocol::kZhtTcpCached,
          SimProtocol::kZhtUdp, SimProtocol::kMemcached}) {
      KvsSimParams params;
      params.num_nodes = nodes;
      params.protocol = protocol;
      params.ops_per_client = nodes >= 4096 ? 8 : 32;
      row.push_back(Fmt(RunKvsSim(params).mean_latency_ms, 3));
    }
    PrintRow(row);
  }
  Note("shape to reproduce (paper): TCP-cached == UDP at every scale; both "
       "<0.5 ms at 1 node rising to ~1.1 ms at 8K (multi-rack torus hops); "
       "TCP without caching ~2x worse; Memcached 25%-139% slower than ZHT "
       "across the range");
  return 0;
}
