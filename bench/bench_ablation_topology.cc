// Ablation of the network-aware replica placement (§III.H and §VI): ZHT
// replicates to ring successors, which — because instance ids are laid out
// contiguously on the torus — are network neighbors; "this approach will
// ensure that replicas consume the least amount of shared network
// resources". The ablation scatters replicas to random instances instead
// and measures replication-message hop counts and the latency impact.
#include "bench/bench_util.h"
#include "sim/kvs_sim.h"

int main() {
  using namespace zht::bench;
  using namespace zht::sim;

  Banner("Topology ablation (§III.H / §VI)",
         "Successor (torus-adjacent) vs random replica placement "
         "(2 replicas, simulated torus)");
  PrintRow({"nodes", "succ hops", "rand hops", "succ lat(ms)",
            "rand lat(ms)"},
           15);

  const std::vector<std::uint64_t> kNodeSweep =
      SmokeMode() ? std::vector<std::uint64_t>{64ull, 512ull}
                  : std::vector<std::uint64_t>{64ull, 512ull, 4096ull,
                                               32768ull};
  for (std::uint64_t nodes : kNodeSweep) {
    KvsSimParams successor;
    successor.num_nodes = nodes;
    successor.replicas = 2;
    successor.ops_per_client = nodes >= 4096 ? 8 : 24;
    auto s = RunKvsSim(successor);

    KvsSimParams random = successor;
    random.random_replica_placement = true;
    auto r = RunKvsSim(random);

    PrintRow({FmtInt(nodes), Fmt(s.mean_replication_hops, 1),
              Fmt(r.mean_replication_hops, 1), Fmt(s.mean_latency_ms, 3),
              Fmt(r.mean_latency_ms, 3)},
             15);
  }
  Note("replica copies to successors travel O(1) torus hops regardless of "
       "scale; random placement pays the full mean network distance, which "
       "grows with the machine — the shared-resource argument behind the "
       "paper's placement choice");
  return 0;
}
