// Seeded key-popularity generators for the traffic-shape benches: zipfian
// rank sampling, flash-crowd (all heat on one key for a window), and the
// shared fixed-size key/value factories the per-bench pickers used to
// duplicate. Everything is deterministic under an explicit seed so bench
// runs and distribution-shape tests are reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace zht::bench {

// Samples ranks in [0, n) with P(rank k) proportional to 1/(k+1)^s — the
// zipf distribution production key traffic follows (s around 0.9..1.1 for
// web-scale workloads). Implemented by inverting the precomputed CDF with a
// binary search: O(n) doubles once, O(log n) per sample, exact shape (no
// rejection loop), any s >= 0 (s = 0 degenerates to uniform).
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double s, std::uint64_t seed);

  // Next sampled rank; 0 is the hottest key.
  std::size_t Next();

  // Exact probability mass of one rank (for distribution-shape tests).
  double ProbabilityOf(std::size_t rank) const;

  std::size_t n() const { return cdf_.size(); }
  double s() const { return s_; }

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), cdf_.back() == 1
  double s_ = 0;
  Rng rng_;
};

// Flash crowd: with probability `hot_fraction` the pick is the single hot
// rank, otherwise uniform over the remaining n-1 ranks. Models a burst of
// traffic concentrating on one key (one partition, one shard).
class FlashCrowdGenerator {
 public:
  FlashCrowdGenerator(std::size_t n, double hot_fraction, std::uint64_t seed,
                      std::size_t hot_rank = 0);

  std::size_t Next();

  std::size_t hot_rank() const { return hot_rank_; }

 private:
  std::size_t n_;
  double hot_fraction_;
  std::size_t hot_rank_;
  Rng rng_;
};

// The key set the rank generators index into: `n` distinct printable ASCII
// keys of `key_bytes` each (the paper benchmarks 15-byte keys),
// deterministic under `seed`.
std::vector<std::string> MakeKeySet(std::size_t n, std::size_t key_bytes,
                                    std::uint64_t seed);

// One reusable value payload of `value_bytes` (the paper's 134 B metadata
// record by default, up to 1 MB in the traffic sweeps).
std::string MakeValue(std::size_t value_bytes, std::uint64_t seed);

}  // namespace zht::bench
