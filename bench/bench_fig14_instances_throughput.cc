// Figure 14: aggregate throughput with 1/2/4/8 instances per node, 1 to 8K
// BG/P nodes. Paper: 8K nodes × 4 instances → 16.1M ops/s, a 2.2x gain
// over 1 instance/node (7.3M) despite the higher per-op latency.
#include "bench/bench_util.h"
#include "sim/kvs_sim.h"

int main() {
  using namespace zht::bench;
  using namespace zht::sim;

  Banner("Figure 14",
         "Throughput vs scale with 1/2/4/8 instances per node (ops/s)");
  PrintRow({"nodes", "1 inst/node", "2 inst/node", "4 inst/node",
            "8 inst/node"},
           15);
  const std::vector<std::uint64_t> kNodeSweep =
      SmokeMode() ? std::vector<std::uint64_t>{1ull, 16ull}
                  : std::vector<std::uint64_t>{1ull, 16ull, 64ull, 256ull,
                                               1024ull, 4096ull, 8192ull};
  for (std::uint64_t nodes : kNodeSweep) {
    std::vector<std::string> row{FmtInt(nodes)};
    for (std::uint32_t instances : {1u, 2u, 4u, 8u}) {
      KvsSimParams params;
      params.num_nodes = nodes;
      params.instances_per_node = instances;
      params.ops_per_client = nodes >= 4096 ? 6 : 24;
      row.push_back(Fmt(RunKvsSim(params).throughput_ops, 0));
    }
    PrintRow(row, 15);
  }
  Note("paper: one instance per core is the sweet spot — 4 inst/node gives "
       "~2.2x aggregate throughput at 8K nodes (16.1M vs 7.3M ops/s); "
       "8 inst/node oversubscribes the 4 cores for little further gain");
  return 0;
}
