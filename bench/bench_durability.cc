// Durability ablation (DESIGN.md §10): concurrent-writer insert throughput
// of one NoVoHT store under the three durability modes. every_op pays one
// fdatasync per mutation; group_commit amortizes one fdatasync over every
// writer in the commit window, so with 16 concurrent writers it must
// recover most of the cost (the acceptance bar: ≥ 5× every_op).
//
// Both durable modes are also checked for the property the modes exist to
// provide: a copy of the log taken after the last ack must recover every
// acked insert (acked_op_survival = 1.0).
#include <filesystem>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "novoht/novoht.h"

int main() {
  using namespace zht;
  using namespace zht::bench;
  namespace fs = std::filesystem;

  Banner("NoVoHT durability ablation (§10)",
         "16-writer insert throughput: none vs group_commit vs every_op");

  fs::path dir = fs::temp_directory_path() / "zht_durability_bench";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const int kWriters = 16;
  const int kOpsPerWriter = Smoke(2'000, 50);
  const std::string value(132, 'd');
  Report().SetParam("writers", static_cast<double>(kWriters));
  Report().SetParam("ops_per_writer", static_cast<double>(kOpsPerWriter));

  PrintRow({"mode", "ops", "secs", "ops/s", "fsyncs", "survival"}, 13);

  double ops_per_sec[3] = {0, 0, 0};
  const DurabilityMode kModes[] = {DurabilityMode::kNone,
                                   DurabilityMode::kGroupCommit,
                                   DurabilityMode::kEveryOp};
  for (int m = 0; m < 3; ++m) {
    const DurabilityMode mode = kModes[m];
    NoVoHTOptions options;
    options.path = (dir / (std::string(DurabilityModeName(mode)) + ".nvt"))
                       .string();
    options.durability = mode;  // wait_for_durable: ack ⇒ durable
    auto store = NoVoHT::Open(options);
    if (!store.ok()) {
      std::fprintf(stderr, "open: %s\n", store.status().ToString().c_str());
      return 1;
    }

    Stopwatch watch(SystemClock::Instance());
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (int i = 0; i < kOpsPerWriter; ++i) {
          std::string key =
              "t" + std::to_string(w) + "_i" + std::to_string(i);
          if (!(*store)->Put(key, value).ok()) std::abort();
        }
      });
    }
    for (std::thread& t : writers) t.join();
    const double secs = ToMicros(watch.Elapsed()) / 1e6;
    const std::uint64_t total =
        static_cast<std::uint64_t>(kWriters) * kOpsPerWriter;
    ops_per_sec[m] = static_cast<double>(total) / secs;

    // Every Put above was acked, and in the durable modes ack ⇒ fsynced:
    // a crash now (simulated by copying the log) must lose nothing.
    double survival = 1.0;
    std::uint64_t fsyncs = 0;
    if (mode != DurabilityMode::kNone) {
      auto stats = (*store)->stats();
      fsyncs = mode == DurabilityMode::kGroupCommit
                   ? stats.group_commits
                   : total;
      fs::path crashed = dir / "crashed.nvt";
      fs::copy_file(options.path, crashed,
                    fs::copy_options::overwrite_existing);
      NoVoHTOptions reopen;
      reopen.path = crashed.string();
      auto recovered = NoVoHT::Open(reopen);
      std::uint64_t found = 0;
      if (recovered.ok()) {
        for (int w = 0; w < kWriters; ++w) {
          for (int i = 0; i < kOpsPerWriter; ++i) {
            if ((*recovered)
                    ->Get("t" + std::to_string(w) + "_i" + std::to_string(i))
                    .ok()) {
              ++found;
            }
          }
        }
      }
      survival = static_cast<double>(found) / static_cast<double>(total);
      fs::remove(crashed);

      StoreDurabilityMetrics metrics;
      if ((*store)->durability_metrics(&metrics)) {
        const std::string prefix =
            std::string("novoht.") + DurabilityModeName(mode);
        Report().AddHistogram(prefix + ".group_commit.fsync_micros",
                              metrics.fsync_micros);
        if (mode == DurabilityMode::kGroupCommit) {
          Report().AddHistogram(prefix + ".group_commit.batch_size",
                                metrics.group_commit_batch);
        }
      }
      Report().AddMetric(
          std::string("acked_op_survival.") + DurabilityModeName(mode),
          survival);
    }

    PrintRow({DurabilityModeName(mode), FmtInt(total), Fmt(secs, 3),
              FmtInt(static_cast<std::uint64_t>(ops_per_sec[m])),
              FmtInt(fsyncs), Fmt(survival, 3)},
             13);
    Report().AddMetric(
        std::string("insert_ops_per_sec.") + DurabilityModeName(mode),
        ops_per_sec[m]);
  }

  const double speedup = ops_per_sec[1] / ops_per_sec[2];
  Report().AddMetric("group_commit_speedup_vs_every_op", speedup);
  std::printf("\ngroup_commit speedup over every_op: %.1fx\n", speedup);
  Note("group commit rides one fdatasync for the whole commit window; "
       "every_op serializes a sync per mutation. Both modes recover every "
       "acked insert from a crash-copied log (survival = 1.0).");

  fs::remove_all(dir);
  return 0;
}
