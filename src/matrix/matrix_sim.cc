#include "matrix/matrix_sim.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace zht::matrix {
namespace {

using sim::Simulator;

struct MatrixState {
  const MatrixSimParams& params;
  Simulator& simulator;
  Rng rng;

  enum class Mode { kIdle, kWorking, kStealing };
  struct Executor {
    std::deque<std::uint32_t> queue;  // task ids (durations are uniform)
    Mode mode = Mode::kIdle;
    Nanos backoff;
    int failed_steals = 0;
  };

  std::vector<Executor> executors;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  Nanos last_completion = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t successful_steals = 0;
  std::uint64_t tasks_stolen = 0;

  MatrixState(const MatrixSimParams& p, Simulator& s)
      : params(p), simulator(s), rng(p.seed),
        executors(p.executors) {
    for (auto& e : executors) e.backoff = p.steal_backoff;
  }

  void Wake(std::uint32_t id) {
    Executor& e = executors[id];
    if (e.mode != Mode::kIdle) return;
    if (!e.queue.empty()) {
      RunOne(id);
    } else if (completed < params.num_tasks) {
      // Out of local work while the run is incomplete: go steal.
      BeginSteal(id);
    }
  }

  void RunOne(std::uint32_t id) {
    Executor& e = executors[id];
    e.queue.pop_front();
    e.mode = Mode::kWorking;
    e.failed_steals = 0;
    e.backoff = params.steal_backoff;
    Nanos done = params.per_task_overhead + params.task_duration;
    simulator.After(done, [this, id] {
      Executor& ex = executors[id];
      ex.mode = Mode::kIdle;
      ++completed;
      last_completion = simulator.now();
      Wake(id);
    });
  }

  void BeginSteal(std::uint32_t id) {
    if (executors.size() < 2) return;
    Executor& e = executors[id];
    e.mode = Mode::kStealing;
    simulator.After(params.steal_cost, [this, id] { FinishSteal(id); });
  }

  void FinishSteal(std::uint32_t id) {
    Executor& e = executors[id];
    ++steal_attempts;
    std::uint32_t victim_id = static_cast<std::uint32_t>(
        rng.Below(executors.size() - 1));
    if (victim_id >= id) ++victim_id;
    Executor& victim = executors[victim_id];

    if (victim.queue.size() >= 2) {
      // Steal half (oldest first), the adaptive work-stealing batch.
      std::size_t take = victim.queue.size() / 2;
      for (std::size_t i = 0; i < take; ++i) {
        e.queue.push_back(victim.queue.front());
        victim.queue.pop_front();
      }
      ++successful_steals;
      tasks_stolen += take;
      e.failed_steals = 0;
      e.backoff = params.steal_backoff;
      e.mode = Mode::kIdle;
      Wake(id);
      return;
    }

    // Failed: exponential back-off before the next attempt (unless the run
    // is over).
    ++e.failed_steals;
    e.backoff = std::min(e.backoff * 2, params.steal_backoff_max);
    e.mode = Mode::kIdle;
    if (completed < params.num_tasks) {
      Nanos delay = e.backoff;
      simulator.After(delay, [this, id] { Wake(id); });
    }
  }
};

}  // namespace

MatrixSimResult RunMatrixSim(const MatrixSimParams& params) {
  Simulator simulator;
  MatrixState state(params, simulator);

  // The submitting client pushes tasks at its serialization rate, either
  // balanced round-robin or all to executor 0 ("the client could submit
  // tasks to arbitrary node, or to all the nodes in a balanced
  // distribution", §V.C — stealing redistributes in the unbalanced case).
  for (std::uint64_t i = 0; i < params.num_tasks; ++i) {
    Nanos when = static_cast<Nanos>(i + 1) * params.submit_cpu;
    std::uint32_t target =
        params.balanced_submission
            ? static_cast<std::uint32_t>(i % params.executors)
            : 0;
    simulator.At(when, [&state, target, i] {
      state.executors[target].queue.push_back(
          static_cast<std::uint32_t>(i));
      ++state.submitted;
      state.Wake(target);
    });
  }
  // Kick every executor once so idle ones begin probing for work even
  // before anything lands in their own queue.
  for (std::uint32_t e = 0; e < params.executors; ++e) {
    simulator.At(params.submit_cpu, [&state, e] { state.Wake(e); });
  }
  simulator.Run();

  MatrixSimResult result;
  result.makespan_s = ToSeconds(state.last_completion);
  if (state.last_completion > 0) {
    result.throughput_tasks_s =
        static_cast<double>(state.completed) /
        ToSeconds(state.last_completion);
  }
  double useful = static_cast<double>(params.num_tasks) *
                  ToSeconds(params.task_duration);
  double total = static_cast<double>(params.executors) * result.makespan_s;
  result.efficiency = total > 0 ? useful / total : 0;
  result.steal_attempts = state.steal_attempts;
  result.successful_steals = state.successful_steals;
  result.tasks_stolen = state.tasks_stolen;
  result.zht_status_ops = 2 * state.completed;
  return result;
}

FalkonSimResult RunFalkonSim(const FalkonSimParams& params) {
  Simulator simulator;
  Rng rng(params.seed);

  // Central dispatcher: a single service queue delivering one task per
  // request; executors come back for more after finishing, but only
  // *notice* new work at their next poll boundary.
  Nanos dispatcher_busy = 0;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  Nanos last_completion = 0;

  std::function<void(std::uint32_t)> request_task =
      [&](std::uint32_t executor) {
        if (issued >= params.num_tasks) return;
        ++issued;
        // Queue at the central dispatcher.
        Nanos start = std::max(simulator.now(), dispatcher_busy);
        Nanos dispatched = start + params.dispatch_cpu;
        dispatcher_busy = dispatched;
        // Polling dead time: the executor asked somewhere inside its poll
        // window; on average half an interval passes before it has the
        // task in hand.
        Nanos poll_delay = static_cast<Nanos>(
            rng.Below(static_cast<std::uint64_t>(params.poll_interval) + 1));
        Nanos begin = dispatched + poll_delay;
        Nanos done = begin + params.task_duration;
        simulator.At(done, [&, executor] {
          ++completed;
          last_completion = simulator.now();
          request_task(executor);
        });
      };

  for (std::uint32_t e = 0; e < params.executors; ++e) {
    simulator.At(0, [&request_task, e] { request_task(e); });
  }
  simulator.Run();

  FalkonSimResult result;
  result.makespan_s = ToSeconds(last_completion);
  if (last_completion > 0) {
    result.throughput_tasks_s =
        static_cast<double>(completed) / ToSeconds(last_completion);
  }
  double useful = static_cast<double>(params.num_tasks) *
                  ToSeconds(params.task_duration);
  double total =
      static_cast<double>(params.executors) * result.makespan_s;
  result.efficiency = total > 0 ? useful / total : 0;
  return result;
}

}  // namespace zht::matrix
