// Virtual-time models of MATRIX (distributed, adaptive work stealing, task
// state in ZHT) and Falkon (centralized dispatcher), driving Figures 18
// and 19. Task durations of 0–8 s × 100K tasks make wall-clock execution
// infeasible; the DES runs the same scheduling logic in virtual time.
#pragma once

#include <cstdint>

#include "common/clock.h"

namespace zht::matrix {

struct MatrixSimParams {
  std::uint32_t executors = 256;       // cores
  std::uint64_t num_tasks = 100'000;
  Nanos task_duration = 0;             // NO-OP for throughput runs

  // Per-task management cost at the executor: dequeue, execute fork/join,
  // ZHT status insert + update. Calibrated to the paper's measured MATRIX
  // prototype (Fig. 18: ~1100 tasks/s at 256 cores → ~230 ms/task of
  // management for NO-OP storms; Fig. 19's sleep tasks see ~80 ms).
  Nanos per_task_overhead = 230 * kNanosPerMilli;

  // Client-side submission cost per task (serialize + ZHT insert + send):
  // caps submission near 5K tasks/s, the plateau of Fig. 18.
  Nanos submit_cpu = 200 * kNanosPerMicro;

  bool balanced_submission = true;  // round-robin vs everything to node 0

  // Work stealing (adaptive: exponential back-off after failed attempts).
  Nanos steal_cost = 700 * kNanosPerMicro;  // probe round trip
  Nanos steal_backoff = 1 * kNanosPerMilli;
  Nanos steal_backoff_max = 512 * kNanosPerMilli;

  std::uint64_t seed = 42;
};

struct MatrixSimResult {
  double makespan_s = 0;
  double throughput_tasks_s = 0;
  double efficiency = 0;  // useful core-seconds / total core-seconds
  std::uint64_t steal_attempts = 0;
  std::uint64_t successful_steals = 0;
  std::uint64_t tasks_stolen = 0;
  std::uint64_t zht_status_ops = 0;  // 2 per task (submit + completion)
};

MatrixSimResult RunMatrixSim(const MatrixSimParams& params);

struct FalkonSimParams {
  std::uint32_t executors = 256;
  std::uint64_t num_tasks = 100'000;
  Nanos task_duration = 0;

  // Central dispatcher service time per task delivery: Falkon saturates
  // near 1700 tasks/s on the BG/P (Fig. 18).
  Nanos dispatch_cpu = 590 * kNanosPerMicro;

  // Executors learn of new work by polling the (naively hierarchical)
  // dispatcher; the mean half-interval is dead time charged to each task
  // (Fig. 19's low Falkon efficiency at fine granularity).
  Nanos poll_interval = 8 * kNanosPerSec;

  std::uint64_t seed = 42;
};

struct FalkonSimResult {
  double makespan_s = 0;
  double throughput_tasks_s = 0;
  double efficiency = 0;
};

FalkonSimResult RunFalkonSim(const FalkonSimParams& params);

}  // namespace zht::matrix
