#include "matrix/matrix_live.h"

#include <chrono>

#include "common/rng.h"

namespace zht::matrix {

LiveMatrix::LiveMatrix(const LiveMatrixOptions& options,
                       ZhtClient* status_client)
    : options_(options), status_client_(status_client) {
  for (std::uint32_t i = 0; i < options_.executors; ++i) {
    queues_.push_back(std::make_unique<WorkStealingQueue<LiveTask>>());
  }
  for (std::uint32_t i = 0; i < options_.executors; ++i) {
    workers_.emplace_back([this, i] { ExecutorLoop(i); });
  }
}

LiveMatrix::~LiveMatrix() {
  stopping_.store(true);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void LiveMatrix::Submit(LiveTask task, int executor) {
  if (status_client_ && options_.record_status) {
    std::lock_guard<std::mutex> lock(status_mu_);
    status_client_->Insert("task:" + std::to_string(task.id), "queued");
  }
  std::uint32_t target =
      executor >= 0 ? static_cast<std::uint32_t>(executor) % options_.executors
                    : next_executor_.fetch_add(1) % options_.executors;
  submitted_.fetch_add(1);
  queues_[target]->Push(std::move(task));
}

void LiveMatrix::WaitAll() {
  while (completed_.load(std::memory_order_acquire) <
         submitted_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

Result<std::string> LiveMatrix::TaskStatus(std::uint64_t id) {
  if (!status_client_) {
    return Status(StatusCode::kUnavailable, "no status client");
  }
  std::lock_guard<std::mutex> lock(status_mu_);
  return status_client_->Lookup("task:" + std::to_string(id));
}

void LiveMatrix::ExecutorLoop(std::uint32_t self) {
  Rng rng(0xfeed0000 + self);
  int idle_spins = 0;
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto task = queues_[self]->Pop();
    if (!task) {
      // Steal half from a random victim (adaptive back-off while dry).
      if (options_.executors > 1) {
        std::uint32_t victim = static_cast<std::uint32_t>(
            rng.Below(options_.executors - 1));
        if (victim >= self) ++victim;
        auto stolen = queues_[victim]->StealHalf(/*min_to_steal=*/2);
        if (!stolen.empty()) {
          steals_.fetch_add(1);
          task = std::move(stolen.back());
          stolen.pop_back();
          queues_[self]->PushBatch(std::move(stolen));
        }
      }
      if (!task) {
        ++idle_spins;
        std::this_thread::sleep_for(std::chrono::microseconds(
            std::min(1 << std::min(idle_spins, 10), 1000)));
        continue;
      }
    }
    idle_spins = 0;
    if (task->work) task->work();
    if (status_client_ && options_.record_status) {
      std::lock_guard<std::mutex> lock(status_mu_);
      status_client_->Insert("task:" + std::to_string(task->id), "done");
    }
    completed_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace zht::matrix
