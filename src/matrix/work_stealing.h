// Work-stealing task queue used by MATRIX executors (§V.C, [51]): owners
// push/pop at the bottom (LIFO, cache-friendly); thieves steal a batch of
// half the queue from the top (the adaptive work-stealing policy's
// steal-half heuristic). Mutex-based: MATRIX steals are rare, coarse-grain
// events, not a lock-free fast path.
#pragma once

#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace zht::matrix {

template <typename Task>
class WorkStealingQueue {
 public:
  void Push(Task task) {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }

  std::optional<Task> Pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.empty()) return std::nullopt;
    Task task = std::move(tasks_.back());
    tasks_.pop_back();
    return task;
  }

  // Steals ceil(size/2) tasks from the top (oldest first). Empty result
  // means the victim had fewer than `min_to_steal` tasks.
  std::vector<Task> StealHalf(std::size_t min_to_steal = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t take = (tasks_.size() + 1) / 2;
    if (take < min_to_steal || tasks_.empty()) return {};
    std::vector<Task> stolen;
    stolen.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      stolen.push_back(std::move(tasks_.front()));
      tasks_.pop_front();
    }
    return stolen;
  }

  void PushBatch(std::vector<Task> tasks) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& task : tasks) tasks_.push_back(std::move(task));
  }

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_.size();
  }

  bool Empty() const { return Size() == 0; }

 private:
  mutable std::mutex mu_;
  std::deque<Task> tasks_;
};

}  // namespace zht::matrix
