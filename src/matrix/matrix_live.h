// Live (real-thread) MATRIX execution engine: one worker thread per
// executor, each with a work-stealing queue; task state (submitted →
// finished) lives in ZHT so any client can monitor progress by key lookup
// (§V.C). Used by tests and the example at laptop scale; the large-scale
// numbers come from matrix_sim.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/zht_client.h"
#include "matrix/work_stealing.h"

namespace zht::matrix {

struct LiveTask {
  std::uint64_t id = 0;
  std::function<void()> work;  // may be empty (NO-OP)
};

struct LiveMatrixOptions {
  std::uint32_t executors = 4;
  // Status keys are "task:<id>" with values "queued"/"done".
  bool record_status = true;
};

class LiveMatrix {
 public:
  // `status_client` may be null (no status recording).
  LiveMatrix(const LiveMatrixOptions& options, ZhtClient* status_client);
  ~LiveMatrix();

  LiveMatrix(const LiveMatrix&) = delete;
  LiveMatrix& operator=(const LiveMatrix&) = delete;

  // Submits to a specific executor (or round-robin when executor = -1).
  void Submit(LiveTask task, int executor = -1);

  // Blocks until every submitted task has completed.
  void WaitAll();

  // Queries a task's status through ZHT.
  Result<std::string> TaskStatus(std::uint64_t id);

  std::uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  void ExecutorLoop(std::uint32_t self);

  LiveMatrixOptions options_;
  ZhtClient* status_client_;
  std::mutex status_mu_;  // ZhtClient is single-threaded

  std::vector<std::unique_ptr<WorkStealingQueue<LiveTask>>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint32_t> next_executor_{0};
};

}  // namespace zht::matrix
