// MembershipTable (§III.B–C): the zero-hop routing state. Every node holds
// the full table: instance addresses plus the partition→instance ownership
// map. Lookups are O(1); membership changes bump an epoch and are shipped
// either as incremental deltas (manager broadcast, lazy client refresh) or
// as full snapshots.
//
// The number of partitions n is fixed forever (it is the maximum number of
// instances the deployment can grow to); ownership of partitions moves.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "hashing/partition_space.h"
#include "hashing/placement_policy.h"
#include "net/address.h"

namespace zht {

using InstanceId = std::uint32_t;

struct InstanceInfo {
  InstanceId id = 0;
  NodeAddress address;
  std::uint32_t physical_node = 0;  // instances on one machine share this
  bool alive = true;

  bool operator==(const InstanceInfo&) const = default;
};

class MembershipTable {
 public:
  MembershipTable() : space_(1) {}
  MembershipTable(std::uint32_t num_partitions, HashKind hash_kind);

  // Builds the static-bootstrap table (§III.C): partitions are distributed
  // over the given instances per the placement policy (the default
  // contiguous policy reproduces the paper's even contiguous split).
  // instances_per_node groups consecutive addresses onto physical nodes.
  // The placement kind is recorded in the table (and travels in full
  // snapshots) so every participant migrates against the same policy.
  static MembershipTable CreateUniform(
      std::uint32_t num_partitions, const std::vector<NodeAddress>& instances,
      std::uint32_t instances_per_node = 1,
      HashKind hash_kind = HashKind::kFnv1a,
      PlacementKind placement = PlacementKind::kContiguous);

  // ---- Routing --------------------------------------------------------

  std::uint32_t epoch() const { return epoch_; }
  std::uint32_t num_partitions() const { return space_.num_partitions(); }
  const PartitionSpace& space() const { return space_; }
  PlacementKind placement() const { return placement_; }

  PartitionId PartitionOfKey(std::string_view key) const {
    return space_.PartitionOfKey(key);
  }

  InstanceId OwnerOf(PartitionId p) const { return partition_owner_[p]; }
  const InstanceInfo& Instance(InstanceId id) const { return instances_[id]; }
  std::size_t instance_count() const { return instances_.size(); }
  const std::vector<InstanceInfo>& instances() const { return instances_; }

  // Replica chain for a partition: the owner followed by the next
  // `num_replicas` instances in ring order that live on *distinct physical
  // nodes* ("nodes in close proximity (according to the UUID) of the
  // original hashed location", §III.H).
  std::vector<InstanceId> ReplicaChain(PartitionId p,
                                       int num_replicas) const;

  // Partitions currently owned by an instance.
  std::vector<PartitionId> PartitionsOf(InstanceId id) const;

  // Sorted ids of the alive instances — the `live` set placement policies
  // assign over.
  std::vector<InstanceId> AliveIds() const;

  // Instance registered at `address`, if any (rejoin detection).
  std::optional<InstanceId> FindByAddress(const NodeAddress& address) const;

  // Instance with the most partitions (join target, §III.C) and fewest
  // (departure target). Dead instances excluded.
  std::optional<InstanceId> MostLoaded() const;
  std::optional<InstanceId> LeastLoaded(
      std::optional<InstanceId> excluding = std::nullopt) const;

  // ---- Mutation (each call bumps the epoch) ----------------------------

  InstanceId AddInstance(const NodeAddress& address,
                         std::uint32_t physical_node);
  void SetOwner(PartitionId p, InstanceId owner);
  void MarkDead(InstanceId id);
  void MarkAlive(InstanceId id);

  // ---- Serialization ---------------------------------------------------

  std::string EncodeFull() const;
  static Result<MembershipTable> DecodeFull(std::string_view data);

  // Incremental delta covering (since_epoch, current]; falls back to a full
  // snapshot when the change log no longer reaches back that far. Apply
  // with ApplyUpdate (which accepts either form).
  std::string EncodeDelta(std::uint32_t since_epoch) const;
  Status ApplyUpdate(std::string_view data);

  bool operator==(const MembershipTable& other) const {
    return epoch_ == other.epoch_ && placement_ == other.placement_ &&
           instances_ == other.instances_ &&
           partition_owner_ == other.partition_owner_;
  }

 private:
  struct Change {
    std::uint32_t epoch;
    // Exactly one of these applies:
    std::optional<InstanceInfo> instance;          // added/updated instance
    std::optional<std::pair<PartitionId, InstanceId>> ownership;
  };

  void RecordChange(Change change);

  PartitionSpace space_;
  PlacementKind placement_ = PlacementKind::kContiguous;
  std::uint32_t epoch_ = 0;
  std::vector<InstanceInfo> instances_;
  std::vector<InstanceId> partition_owner_;
  std::vector<Change> changelog_;  // bounded
  static constexpr std::size_t kMaxChangelog = 4096;
  std::uint32_t changelog_base_epoch_ = 0;  // oldest epoch fully covered
};

}  // namespace zht
