#include "membership/membership_table.h"

#include <algorithm>
#include <unordered_set>

#include "serialize/wire.h"

namespace zht {
namespace {

constexpr std::uint8_t kMarkerFull = 1;
constexpr std::uint8_t kMarkerDelta = 2;
constexpr std::uint8_t kChangeInstance = 1;
constexpr std::uint8_t kChangeOwnership = 2;

void EncodeInstance(wire::Writer& w, const InstanceInfo& info) {
  w.PutVarint(info.id);
  w.PutVarint(info.address.host.size());
  w.PutBytes(info.address.host);
  w.PutVarint(info.address.port);
  w.PutVarint(info.physical_node);
  w.PutVarint(info.alive ? 1 : 0);
}

bool DecodeInstance(wire::Reader& r, InstanceInfo* info) {
  std::uint64_t id, hlen, port, node, alive;
  std::string_view host;
  if (!r.GetVarint(&id) || !r.GetVarint(&hlen) || !r.GetBytes(hlen, &host) ||
      !r.GetVarint(&port) || !r.GetVarint(&node) || !r.GetVarint(&alive)) {
    return false;
  }
  info->id = static_cast<InstanceId>(id);
  info->address.host.assign(host);
  info->address.port = static_cast<std::uint16_t>(port);
  info->physical_node = static_cast<std::uint32_t>(node);
  info->alive = alive != 0;
  return true;
}

}  // namespace

MembershipTable::MembershipTable(std::uint32_t num_partitions,
                                 HashKind hash_kind)
    : space_(num_partitions, hash_kind) {
  partition_owner_.assign(num_partitions, 0);
}

MembershipTable MembershipTable::CreateUniform(
    std::uint32_t num_partitions, const std::vector<NodeAddress>& instances,
    std::uint32_t instances_per_node, HashKind hash_kind,
    PlacementKind placement) {
  MembershipTable table(num_partitions, hash_kind);
  table.placement_ = placement;
  if (instances_per_node == 0) instances_per_node = 1;
  for (std::size_t i = 0; i < instances.size(); ++i) {
    table.instances_.push_back(
        InstanceInfo{static_cast<InstanceId>(i), instances[i],
                     static_cast<std::uint32_t>(i / instances_per_node),
                     /*alive=*/true});
  }
  if (!instances.empty()) {
    const PlacementPolicy& policy = GetPlacementPolicy(placement);
    std::vector<InstanceId> live = table.AliveIds();
    for (PartitionId p = 0; p < num_partitions; ++p) {
      table.partition_owner_[p] = policy.DesiredOwner(p, num_partitions, live);
    }
  }
  table.epoch_ = 1;
  table.changelog_base_epoch_ = 1;  // no history before bootstrap
  return table;
}

std::vector<InstanceId> MembershipTable::ReplicaChain(PartitionId p,
                                                      int num_replicas) const {
  std::vector<InstanceId> chain;
  if (instances_.empty()) return chain;
  InstanceId owner = partition_owner_[p];
  chain.push_back(owner);
  if (num_replicas <= 0) return chain;

  std::unordered_set<std::uint32_t> used_nodes{
      instances_[owner].physical_node};
  const std::size_t k = instances_.size();
  for (std::size_t step = 1; step < k && static_cast<int>(chain.size()) - 1 <
                                             num_replicas; ++step) {
    const InstanceInfo& candidate = instances_[(owner + step) % k];
    if (!candidate.alive) continue;
    if (used_nodes.count(candidate.physical_node)) continue;
    used_nodes.insert(candidate.physical_node);
    chain.push_back(candidate.id);
  }
  return chain;
}

std::vector<PartitionId> MembershipTable::PartitionsOf(InstanceId id) const {
  std::vector<PartitionId> out;
  for (PartitionId p = 0; p < partition_owner_.size(); ++p) {
    if (partition_owner_[p] == id) out.push_back(p);
  }
  return out;
}

std::vector<InstanceId> MembershipTable::AliveIds() const {
  std::vector<InstanceId> out;
  for (const auto& info : instances_) {
    if (info.alive) out.push_back(info.id);
  }
  return out;  // ids are vector indices, so this is sorted
}

std::optional<InstanceId> MembershipTable::FindByAddress(
    const NodeAddress& address) const {
  for (const auto& info : instances_) {
    if (info.address == address) return info.id;
  }
  return std::nullopt;
}

std::optional<InstanceId> MembershipTable::MostLoaded() const {
  std::vector<std::uint32_t> counts(instances_.size(), 0);
  for (InstanceId owner : partition_owner_) ++counts[owner];
  std::optional<InstanceId> best;
  std::uint32_t best_count = 0;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (!instances_[i].alive) continue;
    if (!best || counts[i] > best_count) {
      best = static_cast<InstanceId>(i);
      best_count = counts[i];
    }
  }
  return best;
}

std::optional<InstanceId> MembershipTable::LeastLoaded(
    std::optional<InstanceId> excluding) const {
  std::vector<std::uint32_t> counts(instances_.size(), 0);
  for (InstanceId owner : partition_owner_) ++counts[owner];
  std::optional<InstanceId> best;
  std::uint32_t best_count = 0;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    if (!instances_[i].alive) continue;
    if (excluding && *excluding == i) continue;
    if (!best || counts[i] < best_count) {
      best = static_cast<InstanceId>(i);
      best_count = counts[i];
    }
  }
  return best;
}

void MembershipTable::RecordChange(Change change) {
  changelog_.push_back(std::move(change));
  if (changelog_.size() > kMaxChangelog) {
    std::size_t drop = changelog_.size() - kMaxChangelog;
    changelog_base_epoch_ = changelog_[drop - 1].epoch;
    changelog_.erase(changelog_.begin(),
                     changelog_.begin() + static_cast<std::ptrdiff_t>(drop));
  }
}

InstanceId MembershipTable::AddInstance(const NodeAddress& address,
                                        std::uint32_t physical_node) {
  InstanceId id = static_cast<InstanceId>(instances_.size());
  instances_.push_back(InstanceInfo{id, address, physical_node, true});
  ++epoch_;
  RecordChange(Change{epoch_, instances_.back(), std::nullopt});
  return id;
}

void MembershipTable::SetOwner(PartitionId p, InstanceId owner) {
  partition_owner_[p] = owner;
  ++epoch_;
  RecordChange(Change{epoch_, std::nullopt, std::make_pair(p, owner)});
}

void MembershipTable::MarkDead(InstanceId id) {
  instances_[id].alive = false;
  ++epoch_;
  RecordChange(Change{epoch_, instances_[id], std::nullopt});
}

void MembershipTable::MarkAlive(InstanceId id) {
  instances_[id].alive = true;
  ++epoch_;
  RecordChange(Change{epoch_, instances_[id], std::nullopt});
}

std::string MembershipTable::EncodeFull() const {
  std::string out;
  wire::Writer w(&out);
  out.push_back(static_cast<char>(kMarkerFull));
  w.PutVarint(epoch_);
  w.PutVarint(space_.num_partitions());
  w.PutVarint(static_cast<std::uint64_t>(space_.hash_kind()));
  w.PutVarint(static_cast<std::uint64_t>(placement_));
  w.PutVarint(instances_.size());
  for (const auto& info : instances_) EncodeInstance(w, info);
  // Run-length encode the ownership vector (contiguous ranges dominate).
  std::vector<std::pair<InstanceId, std::uint64_t>> runs;
  for (InstanceId owner : partition_owner_) {
    if (!runs.empty() && runs.back().first == owner) {
      ++runs.back().second;
    } else {
      runs.emplace_back(owner, 1);
    }
  }
  w.PutVarint(runs.size());
  for (const auto& [owner, length] : runs) {
    w.PutVarint(owner);
    w.PutVarint(length);
  }
  return out;
}

Result<MembershipTable> MembershipTable::DecodeFull(std::string_view data) {
  if (data.empty() || static_cast<std::uint8_t>(data[0]) != kMarkerFull) {
    return Status(StatusCode::kCorruption, "not a full membership snapshot");
  }
  wire::Reader r(data.substr(1));
  std::uint64_t epoch, nparts, hash_kind, placement, ninstances;
  if (!r.GetVarint(&epoch) || !r.GetVarint(&nparts) ||
      !r.GetVarint(&hash_kind) || !r.GetVarint(&placement) ||
      !r.GetVarint(&ninstances)) {
    return Status(StatusCode::kCorruption, "membership header");
  }
  if (placement > static_cast<std::uint64_t>(PlacementKind::kRendezvous)) {
    return Status(StatusCode::kCorruption, "membership placement kind");
  }
  MembershipTable table(static_cast<std::uint32_t>(nparts),
                        static_cast<HashKind>(hash_kind));
  table.placement_ = static_cast<PlacementKind>(placement);
  table.epoch_ = static_cast<std::uint32_t>(epoch);
  table.changelog_base_epoch_ = table.epoch_;
  for (std::uint64_t i = 0; i < ninstances; ++i) {
    InstanceInfo info;
    if (!DecodeInstance(r, &info)) {
      return Status(StatusCode::kCorruption, "membership instance");
    }
    table.instances_.push_back(info);
  }
  std::uint64_t nruns;
  if (!r.GetVarint(&nruns)) {
    return Status(StatusCode::kCorruption, "membership runs");
  }
  std::size_t p = 0;
  for (std::uint64_t i = 0; i < nruns; ++i) {
    std::uint64_t owner, length;
    if (!r.GetVarint(&owner) || !r.GetVarint(&length)) {
      return Status(StatusCode::kCorruption, "membership run");
    }
    for (std::uint64_t j = 0; j < length && p < table.partition_owner_.size();
         ++j, ++p) {
      table.partition_owner_[p] = static_cast<InstanceId>(owner);
    }
  }
  if (p != table.partition_owner_.size()) {
    return Status(StatusCode::kCorruption, "membership runs short");
  }
  return table;
}

std::string MembershipTable::EncodeDelta(std::uint32_t since_epoch) const {
  if (since_epoch < changelog_base_epoch_ || since_epoch > epoch_) {
    return EncodeFull();  // history trimmed (or requester is ahead): snapshot
  }
  std::string out;
  wire::Writer w(&out);
  out.push_back(static_cast<char>(kMarkerDelta));
  w.PutVarint(since_epoch);
  w.PutVarint(epoch_);
  std::uint64_t count = 0;
  for (const auto& change : changelog_) {
    if (change.epoch > since_epoch) ++count;
  }
  w.PutVarint(count);
  for (const auto& change : changelog_) {
    if (change.epoch <= since_epoch) continue;
    w.PutVarint(change.epoch);
    if (change.instance) {
      out.push_back(static_cast<char>(kChangeInstance));
      EncodeInstance(w, *change.instance);
    } else {
      out.push_back(static_cast<char>(kChangeOwnership));
      w.PutVarint(change.ownership->first);
      w.PutVarint(change.ownership->second);
    }
  }
  return out;
}

Status MembershipTable::ApplyUpdate(std::string_view data) {
  if (data.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty membership update");
  }
  std::uint8_t marker = static_cast<std::uint8_t>(data[0]);
  if (marker == kMarkerFull) {
    auto table = DecodeFull(data);
    if (!table.ok()) return table.status();
    if (table->epoch_ <= epoch_ && !instances_.empty()) {
      return Status::Ok();  // stale snapshot; keep ours
    }
    *this = std::move(*table);
    return Status::Ok();
  }
  if (marker != kMarkerDelta) {
    return Status(StatusCode::kCorruption, "unknown membership marker");
  }
  wire::Reader r(data.substr(1));
  std::uint64_t from, to, count;
  if (!r.GetVarint(&from) || !r.GetVarint(&to) || !r.GetVarint(&count)) {
    return Status(StatusCode::kCorruption, "delta header");
  }
  if (from > epoch_) {
    return Status(StatusCode::kInvalidArgument,
                  "delta starts after our epoch; need a snapshot");
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t change_epoch;
    if (!r.GetVarint(&change_epoch)) {
      return Status(StatusCode::kCorruption, "delta change epoch");
    }
    std::string_view kind_byte;
    if (!r.GetBytes(1, &kind_byte)) {
      return Status(StatusCode::kCorruption, "delta change kind");
    }
    std::uint8_t kind = static_cast<std::uint8_t>(kind_byte[0]);
    if (kind == kChangeInstance) {
      InstanceInfo info;
      if (!DecodeInstance(r, &info)) {
        return Status(StatusCode::kCorruption, "delta instance");
      }
      if (change_epoch <= epoch_) continue;  // already have it
      if (info.id < instances_.size()) {
        instances_[info.id] = info;
      } else if (info.id == instances_.size()) {
        instances_.push_back(info);
      } else {
        return Status(StatusCode::kCorruption, "delta instance id gap");
      }
      epoch_ = static_cast<std::uint32_t>(change_epoch);
      RecordChange(Change{epoch_, info, std::nullopt});
    } else if (kind == kChangeOwnership) {
      std::uint64_t partition, owner;
      if (!r.GetVarint(&partition) || !r.GetVarint(&owner)) {
        return Status(StatusCode::kCorruption, "delta ownership");
      }
      if (change_epoch <= epoch_) continue;
      if (partition >= partition_owner_.size()) {
        return Status(StatusCode::kCorruption, "delta partition range");
      }
      partition_owner_[partition] = static_cast<InstanceId>(owner);
      epoch_ = static_cast<std::uint32_t>(change_epoch);
      RecordChange(Change{
          epoch_, std::nullopt,
          std::make_pair(static_cast<PartitionId>(partition),
                         static_cast<InstanceId>(owner))});
    } else {
      return Status(StatusCode::kCorruption, "delta change kind value");
    }
  }
  if (to > epoch_) epoch_ = static_cast<std::uint32_t>(to);
  return Status::Ok();
}

}  // namespace zht
