#include "common/log.h"

namespace zht {

Logger& Logger::Instance() {
  static Logger logger;
  return logger;
}

void Logger::Write(LogLevel level, const std::string& message) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%s] %s\n", kNames[static_cast<int>(level)],
               message.c_str());
}

}  // namespace zht
