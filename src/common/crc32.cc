#include "common/crc32.h"

#include <array>

namespace zht {
namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // CRC-32C (Castagnoli)

std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32c(std::string_view data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = BuildTable();
  std::uint32_t crc = ~seed;
  for (unsigned char c : data) {
    crc = kTable[(crc ^ c) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace zht
