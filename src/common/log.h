// Minimal leveled logger. Single-threaded hot paths never format unless the
// level is enabled; output is line-buffered to stderr.
#pragma once

#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace zht {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  static Logger& Instance();

  void SetLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  void Write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

namespace log_internal {

class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() { Logger::Instance().Write(level_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define ZHT_LOG(level)                                   \
  if (!::zht::Logger::Instance().Enabled(level)) {       \
  } else                                                 \
    ::zht::log_internal::LineBuilder(level)

#define ZHT_DEBUG ZHT_LOG(::zht::LogLevel::kDebug)
#define ZHT_INFO ZHT_LOG(::zht::LogLevel::kInfo)
#define ZHT_WARN ZHT_LOG(::zht::LogLevel::kWarn)
#define ZHT_ERROR ZHT_LOG(::zht::LogLevel::kError)

}  // namespace zht
