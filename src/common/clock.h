// Clock abstraction: all protocol code measures time through Clock so the
// identical logic runs against wall time (live clusters) and virtual time
// (the discrete-event simulator used for the paper's large-scale results).
#pragma once

#include <chrono>
#include <cstdint>

namespace zht {

// Nanoseconds since an arbitrary epoch; only differences are meaningful.
using Nanos = std::int64_t;

constexpr Nanos kNanosPerMicro = 1'000;
constexpr Nanos kNanosPerMilli = 1'000'000;
constexpr Nanos kNanosPerSec = 1'000'000'000;

inline double ToMillis(Nanos ns) {
  return static_cast<double>(ns) / kNanosPerMilli;
}
inline double ToMicros(Nanos ns) {
  return static_cast<double>(ns) / kNanosPerMicro;
}
inline double ToSeconds(Nanos ns) {
  return static_cast<double>(ns) / kNanosPerSec;
}

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Nanos Now() const = 0;
};

// Monotonic wall clock for live runs.
class SystemClock final : public Clock {
 public:
  Nanos Now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // Process-wide instance; stateless, so sharing is safe.
  static SystemClock& Instance();
};

// Manually advanced clock for tests and the simulator.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Nanos start = 0) : now_(start) {}

  Nanos Now() const override { return now_; }
  void Advance(Nanos delta) { now_ += delta; }
  void Set(Nanos t) { now_ = t; }

 private:
  Nanos now_;
};

// Simple stopwatch over any Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock)
      : clock_(clock), start_(clock.Now()) {}

  Nanos Elapsed() const { return clock_.Now() - start_; }
  double ElapsedMillis() const { return ToMillis(Elapsed()); }
  void Restart() { start_ = clock_.Now(); }

 private:
  const Clock& clock_;
  Nanos start_;
};

}  // namespace zht
