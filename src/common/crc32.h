// CRC32 (Castagnoli polynomial, software table implementation) used to
// protect NoVoHT log records and migration payloads.
#pragma once

#include <cstdint>
#include <string_view>

namespace zht {

std::uint32_t Crc32c(std::string_view data, std::uint32_t seed = 0);

}  // namespace zht
