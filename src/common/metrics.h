// MetricsRegistry: named monotonic counters, gauges, and fixed-bucket
// log-scale latency histograms. The hot-path contract is strict: once a
// component has resolved its Counter*/Gauge*/Histogram* pointers (at
// construction), Record/Add are lock-free relaxed atomics — the registry
// mutex is taken only when a metric is first registered or when a snapshot
// is cut. Histograms are mergeable (bucket-wise) and answer p50/p90/p99
// within one sub-bucket's relative error (1/16) in O(buckets).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace zht {

// Monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Point-in-time signed level (queue depth, resident bytes, ...).
class Gauge {
 public:
  void Set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Plain (non-atomic) histogram state: what a snapshot carries, what goes on
// the wire, and where percentile math lives. Bucket layout is log-linear
// (HdrHistogram-style): values 0..15 get exact unit buckets; above that,
// each power-of-two octave is split into 16 linear sub-buckets, so the
// relative width of any bucket is at most 1/16.
struct HistogramData {
  // 16 exact buckets + 16 sub-buckets for each octave 4..63.
  static constexpr std::uint32_t kNumBuckets = 16 + 60 * 16;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // meaningful only when count > 0
  std::uint64_t max = 0;
  // Sparse: only non-zero buckets, ascending by index.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

  // Maps a value to its bucket index.
  static std::uint32_t BucketIndex(std::uint64_t value) {
    if (value < 16) return static_cast<std::uint32_t>(value);
    const int octave = std::bit_width(value) - 1;  // >= 4
    const int shift = octave - 4;
    return static_cast<std::uint32_t>(
        16 + (octave - 4) * 16 +
        ((value >> shift) & 15));
  }
  // Inclusive lower / exclusive upper bound of a bucket.
  static std::uint64_t BucketLower(std::uint32_t index) {
    if (index < 16) return index;
    const std::uint32_t b = index - 16;
    const int octave = static_cast<int>(b / 16) + 4;
    const std::uint64_t sub = b % 16;
    return (std::uint64_t{16} + sub) << (octave - 4);
  }
  static std::uint64_t BucketUpper(std::uint32_t index) {
    if (index < 16) return index + 1;
    const std::uint32_t b = index - 16;
    const int octave = static_cast<int>(b / 16) + 4;
    return BucketLower(index) + (std::uint64_t{1} << (octave - 4));
  }

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  // p in [0, 100]. Walks the cumulative distribution and interpolates
  // linearly inside the target bucket; exact for values < 16 (unit
  // buckets), within one sub-bucket (<= 1/16 relative) above.
  double Percentile(double p) const;

  // Bucket-wise addition; equivalent to having recorded the union.
  void Merge(const HistogramData& other);
};

// Thread-safe recorder over the HistogramData bucket layout. Record is
// O(1): a handful of relaxed atomic adds plus CAS loops for min/max —
// never a lock.
class Histogram {
 public:
  void Record(std::int64_t value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  double Percentile(double p) const { return Snapshot().Percentile(p); }
  double Mean() const { return Snapshot().Mean(); }

  // Consistent-enough copy for reporting (individual loads are relaxed;
  // concurrent recording may skew count vs buckets by in-flight ops).
  HistogramData Snapshot() const;

  // Adds a plain snapshot into this recorder (bucket-wise).
  void Merge(const HistogramData& other);

 private:
  std::atomic<std::uint64_t> buckets_[HistogramData::kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

// ---- Snapshots -------------------------------------------------------------

enum class MetricKind : std::uint8_t {
  kCounter = 1,
  kGauge = 2,
  kHistogram = 3,
};

struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;      // counter / gauge payload
  HistogramData histogram;     // histogram payload
};

// A point-in-time copy of a registry (plus any values spliced in by the
// reporter). Entries stay sorted by name when produced by Snapshot().
struct MetricsSnapshot {
  std::vector<MetricValue> entries;

  const MetricValue* Find(std::string_view name) const;
  // 0 when absent or not a counter/gauge.
  std::int64_t ValueOf(std::string_view name) const;

  void AddCounter(std::string name, std::uint64_t value);
  void AddGauge(std::string name, std::int64_t value);
  void AddHistogram(std::string name, HistogramData data);
};

// ---- Registry --------------------------------------------------------------

// Get-or-create by name; returned pointers are stable for the registry's
// lifetime (node-based storage), so callers resolve once and record
// lock-free forever after.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace zht
