// Status and Result types used across all ZHT modules.
//
// The paper's API returns 0 for success and a non-zero code carrying error
// information (§III.A); StatusCode mirrors that convention so integer codes
// can cross the wire unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace zht {

enum class StatusCode : std::int32_t {
  kOk = 0,
  kNotFound = 1,        // lookup/remove on a missing key
  kExists = 2,          // insert refused (reserved; ZHT inserts overwrite)
  kTimeout = 3,         // request timed out (possible node failure)
  kRedirect = 4,        // partition moved; response carries new membership
  kMigrating = 5,       // partition locked for migration; request queued
  kCapacity = 6,        // store is full (bounded NoVoHT) or value too large
  kNetwork = 7,         // transport-level failure
  kCorruption = 8,      // persistence log failed integrity checks
  kUnavailable = 9,     // all replicas of the partition are down
  kInvalidArgument = 10,
  kNotSupported = 11,   // operation unsupported by this store (e.g. append)
  kInternal = 12,
};

std::string_view StatusCodeName(StatusCode code);

// Lightweight status: a code plus an optional human-readable detail.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string detail)
      : code_(code), detail_(std::move(detail)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& detail() const { return detail_; }

  // Integer form used on the wire (matches the paper's int return values).
  std::int32_t raw() const { return static_cast<std::int32_t>(code_); }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string detail_;
};

// Result<T>: either a value or an error status. Deliberately minimal; we
// only need the subset of std::expected ergonomics the codebase uses.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {}
  Result(StatusCode code) : status_(code) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace zht
