#include "common/metrics.h"

#include <algorithm>

namespace zht {

// ---- HistogramData ---------------------------------------------------------

double HistogramData::Percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Target rank in [1, count]; interpolate within the bucket that holds it.
  const double target = std::max(1.0, (p / 100.0) * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (const auto& [index, n] : buckets) {
    if (n == 0) continue;
    if (static_cast<double>(cumulative + n) >= target) {
      const double lo = static_cast<double>(
          std::max(BucketLower(index), min));
      const double hi = static_cast<double>(
          std::min(BucketUpper(index), max + 1));
      const double within =
          (target - static_cast<double>(cumulative)) / static_cast<double>(n);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative += n;
  }
  return static_cast<double>(max);
}

void HistogramData::Merge(const HistogramData& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  count += other.count;
  sum += other.sum;
  // Merge two index-sorted sparse runs.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t i = 0, j = 0;
  while (i < buckets.size() || j < other.buckets.size()) {
    if (j >= other.buckets.size() ||
        (i < buckets.size() && buckets[i].first < other.buckets[j].first)) {
      merged.push_back(buckets[i++]);
    } else if (i >= buckets.size() ||
               other.buckets[j].first < buckets[i].first) {
      merged.push_back(other.buckets[j++]);
    } else {
      merged.emplace_back(buckets[i].first,
                          buckets[i].second + other.buckets[j].second);
      ++i;
      ++j;
    }
  }
  buckets = std::move(merged);
}

// ---- Histogram -------------------------------------------------------------

void Histogram::Record(std::int64_t value) {
  const std::uint64_t v =
      value < 0 ? 0 : static_cast<std::uint64_t>(value);
  buckets_[HistogramData::BucketIndex(v)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (v < seen &&
         !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::Snapshot() const {
  HistogramData out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t lo = min_.load(std::memory_order_relaxed);
  out.min = lo == UINT64_MAX ? 0 : lo;
  out.max = max_.load(std::memory_order_relaxed);
  for (std::uint32_t i = 0; i < HistogramData::kNumBuckets; ++i) {
    const std::uint64_t n = buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) out.buckets.emplace_back(i, n);
  }
  return out;
}

void Histogram::Merge(const HistogramData& other) {
  if (other.count == 0) return;
  for (const auto& [index, n] : other.buckets) {
    if (index < HistogramData::kNumBuckets) {
      buckets_[index].fetch_add(n, std::memory_order_relaxed);
    }
  }
  count_.fetch_add(other.count, std::memory_order_relaxed);
  sum_.fetch_add(other.sum, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (other.min < seen && !min_.compare_exchange_weak(
                                 seen, other.min, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (other.max > seen && !max_.compare_exchange_weak(
                                 seen, other.max, std::memory_order_relaxed)) {
  }
}

// ---- MetricsSnapshot -------------------------------------------------------

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const auto& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::int64_t MetricsSnapshot::ValueOf(std::string_view name) const {
  const MetricValue* entry = Find(name);
  if (entry == nullptr || entry->kind == MetricKind::kHistogram) return 0;
  return entry->value;
}

void MetricsSnapshot::AddCounter(std::string name, std::uint64_t value) {
  MetricValue entry;
  entry.name = std::move(name);
  entry.kind = MetricKind::kCounter;
  entry.value = static_cast<std::int64_t>(value);
  entries.push_back(std::move(entry));
}

void MetricsSnapshot::AddGauge(std::string name, std::int64_t value) {
  MetricValue entry;
  entry.name = std::move(name);
  entry.kind = MetricKind::kGauge;
  entry.value = value;
  entries.push_back(std::move(entry));
}

void MetricsSnapshot::AddHistogram(std::string name, HistogramData data) {
  MetricValue entry;
  entry.name = std::move(name);
  entry.kind = MetricKind::kHistogram;
  entry.histogram = std::move(data);
  entries.push_back(std::move(entry));
}

// ---- MetricsRegistry -------------------------------------------------------

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.entries.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    out.AddCounter(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.AddGauge(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    out.AddHistogram(name, histogram->Snapshot());
  }
  // Each kind's map is sorted; interleave them into one global name order.
  std::sort(out.entries.begin(), out.entries.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace zht
