#include "common/config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace zht {
namespace {

std::string Trim(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  std::size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

Result<Config> Config::Parse(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = Trim(line);
    if (line.empty()) continue;
    std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status(StatusCode::kInvalidArgument,
                    "config line " + std::to_string(lineno) + " missing '='");
    }
    std::string key = Trim(line.substr(0, eq));
    std::string value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status(StatusCode::kInvalidArgument,
                    "config line " + std::to_string(lineno) + " empty key");
    }
    config.entries_[key] = value;
  }
  return config;
}

Result<Config> Config::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status(StatusCode::kNotFound, "config file not found: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

void Config::Set(const std::string& key, const std::string& value) {
  entries_[key] = value;
}

void Config::SetInt(const std::string& key, std::int64_t value) {
  entries_[key] = std::to_string(value);
}

bool Config::Has(const std::string& key) const {
  return entries_.count(key) > 0;
}

std::string Config::GetString(const std::string& key,
                              const std::string& fallback) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? fallback : it->second;
}

std::int64_t Config::GetInt(const std::string& key,
                            std::int64_t fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* end = nullptr;
  std::int64_t value = std::strtoll(it->second.c_str(), &end, 0);
  return (end && *end == '\0') ? value : fallback;
}

double Config::GetDouble(const std::string& key, double fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? value : fallback;
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return fallback;
}

std::string Config::Serialize() const {
  std::ostringstream out;
  for (const auto& [key, value] : entries_) {
    out << key << " = " << value << "\n";
  }
  return out.str();
}

}  // namespace zht
