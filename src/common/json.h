// Minimal JSON support for the telemetry pipeline: an append-style writer
// (used by BenchReport and the structured-stats renderers) and a small
// recursive-descent parser (used by the bench schema checker and tests).
// No external dependencies; numbers are doubles, objects preserve insertion
// order on write and are key→value maps on read.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace zht::json {

// Escapes and quotes a string per RFC 8259.
std::string Quote(std::string_view raw);

// Formats a double as a JSON number (integers render without a fraction;
// non-finite values render as 0 — JSON has no NaN/Inf).
std::string Number(double value);

// ---- Writer ----------------------------------------------------------------

// Streaming writer: push containers/values in document order. Commas and
// key separators are inserted automatically.
class Writer {
 public:
  std::string& out() { return out_; }

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  // Inside an object: writes `"key":` and leaves the value to the caller's
  // next push (value, BeginObject, or BeginArray).
  void Key(std::string_view key);

  void String(std::string_view value) { Value(Quote(value)); }
  void Double(double value) { Value(Number(value)); }
  void Int(std::int64_t value) { Value(std::to_string(value)); }
  void Uint(std::uint64_t value) { Value(std::to_string(value)); }
  void Bool(bool value) { Value(value ? "true" : "false"); }
  void Null() { Value("null"); }
  // Pre-rendered JSON fragment.
  void Raw(std::string_view fragment) { Value(std::string(fragment)); }

 private:
  void Open(char c);
  void Close(char c);
  void Value(const std::string& rendered);
  void MaybeComma();

  std::string out_;
  // Per-depth "needs a comma before the next element" flags.
  std::vector<bool> comma_;
  bool pending_key_ = false;
};

// ---- Parsed values ---------------------------------------------------------

enum class Kind : std::uint8_t {
  kNull,
  kBool,
  kNumber,
  kString,
  kArray,
  kObject,
};

struct Value {
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // Object member access; nullptr when absent or not an object.
  const Value* Get(std::string_view key) const;
};

// Parses a complete JSON document (trailing whitespace allowed, trailing
// garbage is an error).
Result<Value> Parse(std::string_view text);

}  // namespace zht::json
