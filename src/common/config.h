// Key=value configuration, mirroring ZHT's zht.cfg / neighbor.conf files.
// Supports '#' comments, typed getters with defaults, and round-tripping.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace zht {

class Config {
 public:
  Config() = default;

  // Parses "key = value" lines; '#' starts a comment; blank lines ignored.
  static Result<Config> Parse(const std::string& text);
  static Result<Config> FromFile(const std::string& path);

  void Set(const std::string& key, const std::string& value);
  void SetInt(const std::string& key, std::int64_t value);

  bool Has(const std::string& key) const;

  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  std::int64_t GetInt(const std::string& key, std::int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  std::string Serialize() const;

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace zht
