#include "common/clock.h"

namespace zht {

SystemClock& SystemClock::Instance() {
  static SystemClock clock;
  return clock;
}

}  // namespace zht
