#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace zht::json {

std::string Quote(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Number(double value) {
  if (!std::isfinite(value)) return "0";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// ---- Writer ----------------------------------------------------------------

void Writer::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!comma_.empty()) {
    if (comma_.back()) out_.push_back(',');
    comma_.back() = true;
  }
}

void Writer::Open(char c) {
  MaybeComma();
  out_.push_back(c);
  comma_.push_back(false);
}

void Writer::Close(char c) {
  out_.push_back(c);
  if (!comma_.empty()) comma_.pop_back();
}

void Writer::Key(std::string_view key) {
  MaybeComma();
  out_ += Quote(key);
  out_.push_back(':');
  pending_key_ = true;
}

void Writer::Value(const std::string& rendered) {
  MaybeComma();
  out_ += rendered;
}

// ---- Parser ----------------------------------------------------------------

const Value* Value::Get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(std::string(key));
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    auto value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return value;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status(StatusCode::kInvalidArgument,
                  "json: " + what + " at offset " + std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    if (++depth_ > 128) return Fail("nesting too deep");
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};

    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') {
      if (!ConsumeWord("null")) return Fail("bad literal");
      Value v;
      v.kind = Kind::kNull;
      return v;
    }
    return ParseNumber();
  }

  Result<Value> ParseObject() {
    Value v;
    v.kind = Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return v;
    for (;;) {
      SkipWhitespace();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':'");
      auto member = ParseValue();
      if (!member.ok()) return member;
      v.object[key->string] = std::move(*member);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Fail("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray() {
    Value v;
    v.kind = Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return v;
    for (;;) {
      auto element = ParseValue();
      if (!element.ok()) return element;
      v.array.push_back(std::move(*element));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Fail("expected ',' or ']'");
    }
  }

  Result<Value> ParseString() {
    if (!Consume('"')) return Fail("expected string");
    Value v;
    v.kind = Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          v.string.push_back(e);
          break;
        case 'n':
          v.string.push_back('\n');
          break;
        case 'r':
          v.string.push_back('\r');
          break;
        case 't':
          v.string.push_back('\t');
          break;
        case 'b':
          v.string.push_back('\b');
          break;
        case 'f':
          v.string.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogates pass through as
          // replacement-free bytes; telemetry strings are ASCII).
          if (code < 0x80) {
            v.string.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            v.string.push_back(static_cast<char>(0xC0 | (code >> 6)));
            v.string.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            v.string.push_back(static_cast<char>(0xE0 | (code >> 12)));
            v.string.push_back(
                static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            v.string.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  Result<Value> ParseBool() {
    Value v;
    v.kind = Kind::kBool;
    if (ConsumeWord("true")) {
      v.boolean = true;
      return v;
    }
    if (ConsumeWord("false")) {
      v.boolean = false;
      return v;
    }
    return Fail("bad literal");
  }

  Result<Value> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        digits = digits || (c >= '0' && c <= '9');
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) return Fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    Value v;
    v.kind = Kind::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace zht::json
