// Deterministic, fast PRNG (splitmix64 seeding a xoshiro256**).
// Every randomized component takes an explicit seed so simulator runs,
// benchmarks, and tests are reproducible.
#pragma once

#include <cstdint>
#include <string>

namespace zht {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed'2013'0775ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    auto rotl = [](std::uint64_t v, int k) {
      return (v << k) | (v >> (64 - k));
    };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  std::int64_t Between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(Below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  double NextDouble() {  // [0, 1)
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool Chance(double p) { return NextDouble() < p; }

  // Random printable ASCII string (the paper's keys are variable-length
  // ASCII, typically 15 bytes in the benchmarks).
  std::string AsciiString(std::size_t length) {
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    std::string out;
    out.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      out.push_back(kAlphabet[Below(sizeof(kAlphabet) - 1)]);
    }
    return out;
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace zht
