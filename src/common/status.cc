#include "common/status.h"

namespace zht {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kExists: return "EXISTS";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kRedirect: return "REDIRECT";
    case StatusCode::kMigrating: return "MIGRATING";
    case StatusCode::kCapacity: return "CAPACITY";
    case StatusCode::kNetwork: return "NETWORK";
    case StatusCode::kCorruption: return "CORRUPTION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotSupported: return "NOT_SUPPORTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(StatusCodeName(code_));
  if (!detail_.empty()) {
    out += ": ";
    out += detail_;
  }
  return out;
}

}  // namespace zht
