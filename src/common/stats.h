// Latency/throughput accumulators used by benchmarks and the simulator.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace zht {

// Streaming summary plus reservoir-free exact percentiles (we keep all
// samples; benchmark sample counts are bounded).
class LatencyStats {
 public:
  void Record(Nanos sample) {
    samples_.push_back(sample);
    sum_ += sample;
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  Nanos sum() const { return sum_; }

  double MeanMillis() const {
    return samples_.empty()
               ? 0.0
               : ToMillis(sum_) / static_cast<double>(samples_.size());
  }
  double MeanMicros() const {
    return samples_.empty()
               ? 0.0
               : ToMicros(sum_) / static_cast<double>(samples_.size());
  }

  Nanos Min() const {
    return samples_.empty()
               ? 0
               : *std::min_element(samples_.begin(), samples_.end());
  }
  Nanos Max() const {
    return samples_.empty()
               ? 0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  // p in [0, 100]. Linear interpolation between the two ranks straddling
  // the requested quantile (the "exclusive" definition: p=50 over {a, b}
  // is their midpoint, not a).
  Nanos Percentile(double p) {
    if (samples_.empty()) return 0;
    Sort();
    if (p <= 0) return samples_.front();
    if (p >= 100) return samples_.back();
    const double rank =
        (p / 100.0) * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double fraction = rank - static_cast<double>(lo);
    if (lo + 1 >= samples_.size()) return samples_.back();
    const double interpolated =
        static_cast<double>(samples_[lo]) +
        fraction *
            static_cast<double>(samples_[lo + 1] - samples_[lo]);
    return static_cast<Nanos>(interpolated + 0.5);
  }

  // Tail shortcuts for the traffic benches: interpolated p999 plus the
  // exact k-th-from-the-end order statistic (no interpolation — the
  // tail sample actually observed, for "worst 0.1%" style reporting).
  Nanos P999() { return Percentile(99.9); }
  Nanos TailExact(double p) {
    if (samples_.empty()) return 0;
    Sort();
    if (p <= 0) return samples_.front();
    if (p >= 100) return samples_.back();
    const auto rank = static_cast<std::size_t>(
        std::ceil((p / 100.0) * static_cast<double>(samples_.size())));
    return samples_[std::min(rank == 0 ? 0 : rank - 1, samples_.size() - 1)];
  }

  // When both sides are already sorted the runs are merged in place
  // (O(n+m)) and the result stays sorted; otherwise the merged vector is
  // lazily re-sorted on the next percentile query.
  void Merge(const LatencyStats& other) {
    const std::size_t middle = samples_.size();
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sum_ += other.sum_;
    if (sorted_ && other.sorted_) {
      std::inplace_merge(samples_.begin(),
                         samples_.begin() + static_cast<std::ptrdiff_t>(middle),
                         samples_.end());
    } else {
      sorted_ = false;
    }
  }

  void Clear() {
    samples_.clear();
    sum_ = 0;
    sorted_ = true;
  }

 private:
  void Sort() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<Nanos> samples_;
  Nanos sum_ = 0;
  bool sorted_ = true;
};

// Throughput helper: ops over a wall/virtual interval.
inline double OpsPerSec(std::uint64_t ops, Nanos elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(ops) / ToSeconds(elapsed);
}

}  // namespace zht
