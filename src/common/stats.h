// Latency/throughput accumulators used by benchmarks and the simulator.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace zht {

// Streaming summary plus reservoir-free exact percentiles (we keep all
// samples; benchmark sample counts are bounded).
class LatencyStats {
 public:
  void Record(Nanos sample) {
    samples_.push_back(sample);
    sum_ += sample;
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  Nanos sum() const { return sum_; }

  double MeanMillis() const {
    return samples_.empty()
               ? 0.0
               : ToMillis(sum_) / static_cast<double>(samples_.size());
  }
  double MeanMicros() const {
    return samples_.empty()
               ? 0.0
               : ToMicros(sum_) / static_cast<double>(samples_.size());
  }

  Nanos Min() const {
    return samples_.empty()
               ? 0
               : *std::min_element(samples_.begin(), samples_.end());
  }
  Nanos Max() const {
    return samples_.empty()
               ? 0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  // p in [0, 100].
  Nanos Percentile(double p) {
    if (samples_.empty()) return 0;
    Sort();
    double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    auto idx = static_cast<std::size_t>(rank);
    return samples_[idx];
  }

  void Merge(const LatencyStats& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sum_ += other.sum_;
    sorted_ = false;
  }

  void Clear() {
    samples_.clear();
    sum_ = 0;
    sorted_ = true;
  }

 private:
  void Sort() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<Nanos> samples_;
  Nanos sum_ = 0;
  bool sorted_ = true;
};

// Throughput helper: ops over a wall/virtual interval.
inline double OpsPerSec(std::uint64_t ops, Nanos elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(ops) / ToSeconds(elapsed);
}

}  // namespace zht
