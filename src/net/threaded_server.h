// ThreadedServer: the thread-per-connection architecture ZHT prototyped and
// abandoned (§III.D — "the overheads of starting, managing, and stopping
// threads was too high ... the current epoll-based ZHT outperforms the
// multithread version 3X"). Kept as the ablation baseline for
// bench_ablation_server_arch. TCP only.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/address.h"
#include "net/transport.h"

namespace zht {

class ThreadedServer {
 public:
  static Result<std::unique_ptr<ThreadedServer>> Create(
      const std::string& host, std::uint16_t port, AsyncRequestHandler handler);
  // Convenience for synchronous handlers (wrapped via ToAsync).
  static Result<std::unique_ptr<ThreadedServer>> Create(
      const std::string& host, std::uint16_t port, RequestHandler handler);

  ~ThreadedServer();

  ThreadedServer(const ThreadedServer&) = delete;
  ThreadedServer& operator=(const ThreadedServer&) = delete;

  Status Start();
  void Stop();

  const NodeAddress& address() const { return address_; }
  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  ThreadedServer(AsyncRequestHandler handler) : handler_(std::move(handler)) {}

  void AcceptLoop();
  void ServeConnection(int fd);

  // Each worker thread blocks on its request's completion (CallBlocking):
  // thread-per-connection already burns a thread per client, so parking it
  // until the async handler responds costs nothing extra — precisely the
  // overhead this baseline exists to measure.
  AsyncRequestHandler handler_;
  NodeAddress address_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::mutex workers_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace zht
