// Stream framing for TCP: [length u32 LE][payload]. UDP datagrams carry the
// payload bare (datagram boundaries are the frames).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace zht {

constexpr std::size_t kMaxFrameBytes = 64u << 20;  // 64 MiB sanity cap

inline std::string FrameMessage(std::string_view payload) {
  std::string out;
  out.reserve(4 + payload.size());
  std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
  }
  out.append(payload.data(), payload.size());
  return out;
}

// Incremental frame extractor over an accumulating buffer. Returns the next
// complete payload and consumes it, or nullopt if more bytes are needed.
// Sets *malformed if the stream is unrecoverable (oversized frame).
inline std::optional<std::string> ExtractFrame(std::string& buffer,
                                               bool* malformed) {
  *malformed = false;
  if (buffer.size() < 4) return std::nullopt;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buffer[i]))
         << (8 * i);
  }
  if (n > kMaxFrameBytes) {
    *malformed = true;
    return std::nullopt;
  }
  if (buffer.size() < 4 + static_cast<std::size_t>(n)) return std::nullopt;
  std::string payload = buffer.substr(4, n);
  buffer.erase(0, 4 + n);
  return payload;
}

}  // namespace zht
