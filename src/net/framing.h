// Stream framing for TCP: [length u32 LE][payload]. UDP datagrams carry the
// payload bare (datagram boundaries are the frames).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace zht {

constexpr std::size_t kMaxFrameBytes = 64u << 20;  // 64 MiB sanity cap

inline std::string FrameMessage(std::string_view payload) {
  std::string out;
  out.reserve(4 + payload.size());
  std::uint32_t n = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((n >> (8 * i)) & 0xff));
  }
  out.append(payload.data(), payload.size());
  return out;
}

// Cursor-based frame extractor: reads the next complete frame at *offset
// and advances *offset past it, WITHOUT mutating the buffer. Draining a
// pipelined burst is O(bytes) total — the caller compacts the consumed
// prefix once at the end (vs an erase-per-frame front shift, which made a
// k-frame burst O(bytes × k)). The returned view aliases `buffer`: it is
// invalidated by any mutation of the underlying string, so copy out (or
// fully decode) before appending/compacting.
// Sets *malformed if the stream is unrecoverable (oversized frame).
inline std::optional<std::string_view> ExtractFrameAt(std::string_view buffer,
                                                      std::size_t* offset,
                                                      bool* malformed) {
  *malformed = false;
  if (buffer.size() < *offset + 4) return std::nullopt;
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(buffer[*offset + i]))
         << (8 * i);
  }
  if (n > kMaxFrameBytes) {
    *malformed = true;
    return std::nullopt;
  }
  if (buffer.size() - *offset - 4 < static_cast<std::size_t>(n)) {
    return std::nullopt;
  }
  std::string_view payload = buffer.substr(*offset + 4, n);
  *offset += 4 + static_cast<std::size_t>(n);
  return payload;
}

// Convenience form for callers that extract a frame at a time and want the
// buffer consumed eagerly (one erase per frame — fine for single-response
// reads; hot multi-frame paths use ExtractFrameAt + a single compact).
inline std::optional<std::string> ExtractFrame(std::string& buffer,
                                               bool* malformed) {
  std::size_t offset = 0;
  auto payload = ExtractFrameAt(buffer, &offset, malformed);
  if (!payload) return std::nullopt;
  std::string out(*payload);
  buffer.erase(0, offset);
  return out;
}

}  // namespace zht
