// Loopback transport: an in-process "network" mapping addresses to request
// handlers. Lets a whole ZHT cluster (servers + managers + clients) run in
// one process with zero kernel round-trips. Infrastructure-level failure
// (down nodes) and latency modeling live here; message-level faults (drops,
// duplicates, partitions) are injected by wrapping any transport — this one
// included — in FaultInjectingTransport (net/fault_injection.h).
#pragma once

#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "net/transport.h"
#include "serialize/batch.h"

namespace zht {

class LoopbackNetwork {
 public:
  // Registers a handler and returns its synthetic address ("loop" host,
  // sequential ports). Handlers are stored in asynchronous form; the
  // RequestHandler overloads wrap via ToAsync.
  NodeAddress Register(AsyncRequestHandler handler);
  NodeAddress Register(RequestHandler handler);
  void Register(const NodeAddress& address, AsyncRequestHandler handler);
  void Register(const NodeAddress& address, RequestHandler handler);
  void Unregister(const NodeAddress& address);

  // Infrastructure failure: a down node times out every delivery.
  void SetDown(const NodeAddress& address, bool down);
  bool IsDown(const NodeAddress& address) const;
  // Fixed artificial one-way latency applied twice per call (slows real
  // time; use only in small tests).
  void SetLatency(Nanos latency) { latency_ = latency; }

  // Delivers a request (called by LoopbackTransport).
  Result<Response> Deliver(const NodeAddress& to, const Request& request);

  std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<NodeAddress, AsyncRequestHandler> handlers_;
  std::unordered_map<NodeAddress, bool> down_;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<Nanos> latency_{0};
  std::uint16_t next_port_ = 1;
};

class LoopbackTransport final : public ClientTransport {
 public:
  explicit LoopbackTransport(LoopbackNetwork* network) : network_(network) {}

  Result<Response> Call(const NodeAddress& to, const Request& request,
                        Nanos timeout) override {
    (void)timeout;  // loopback failures surface as kTimeout directly
    return network_->Deliver(to, request);
  }

  // One delivery for the whole batch: the BATCH envelope crosses the
  // in-process "wire" as a single message, matching a single frame on TCP.
  Result<std::vector<Response>> CallBatch(const NodeAddress& to,
                                          std::span<const Request> requests,
                                          Nanos timeout) override {
    if (requests.empty()) return std::vector<Response>{};
    Request carrier = PackBatchRequest(requests, requests.front().seq);
    auto response = network_->Deliver(to, carrier);
    if (!response.ok()) return response.status();
    if (response->status ==
            Status(StatusCode::kInvalidArgument).raw() &&
        response->value.empty()) {
      // Peer does not speak BATCH (e.g. a manager): fall back to per-op.
      return ClientTransport::CallBatch(to, requests, timeout);
    }
    return UnpackBatchResponse(*response, requests.size());
  }

 private:
  LoopbackNetwork* network_;
};

}  // namespace zht
