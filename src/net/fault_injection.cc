#include "net/fault_injection.h"

#include <algorithm>
#include <thread>

namespace zht {
namespace {

// splitmix64: the decision for a rule's k-th match is a pure function of
// (plan seed, rule id, k), independent of how calls interleave with other
// rules or threads.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double MixToUnit(std::uint64_t x) {  // [0, 1)
  return static_cast<double>(Mix(x) >> 11) * (1.0 / 9007199254740992.0);
}

bool Contains(const std::vector<NodeAddress>& group, const NodeAddress& a) {
  return std::find(group.begin(), group.end(), a) != group.end();
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropRequest: return "drop-request";
    case FaultKind::kDropResponse: return "drop-response";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "duplicate";
  }
  return "unknown";
}

int FaultPlan::AddRule(const FaultRule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(ActiveRule{next_id_, rule, 0, 0});
  return next_id_++;
}

void FaultPlan::RemoveRule(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(rules_, [id](const ActiveRule& r) { return r.id == id; });
}

int FaultPlan::AddPartition(std::vector<NodeAddress> group_a,
                            std::vector<NodeAddress> group_b) {
  std::lock_guard<std::mutex> lock(mu_);
  partitions_.push_back(
      PartitionCut{next_id_, std::move(group_a), std::move(group_b)});
  return next_id_++;
}

void FaultPlan::RemovePartition(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(partitions_,
                [id](const PartitionCut& p) { return p.id == id; });
}

void FaultPlan::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  partitions_.clear();
}

FaultDecision FaultPlan::Decide(const std::optional<NodeAddress>& from,
                                const NodeAddress& to, OpCode op,
                                bool server_origin) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.decisions;
  FaultDecision decision;

  if (from) {
    for (const PartitionCut& cut : partitions_) {
      const bool a_to_b = Contains(cut.group_a, *from) &&
                          Contains(cut.group_b, to);
      const bool b_to_a = Contains(cut.group_b, *from) &&
                          Contains(cut.group_a, to);
      if (a_to_b || b_to_a) {
        decision.drop_request = true;
        ++stats_.partition_blocks;
        ++stats_.dropped_requests;
        return decision;  // blocked outright; no point evaluating rules
      }
    }
  }

  for (ActiveRule& active : rules_) {
    const FaultRule& rule = active.rule;
    if (rule.to && *rule.to != to) continue;
    if (rule.op && *rule.op != op) continue;
    if (rule.client_only && server_origin) continue;
    const std::uint64_t match = active.matches++;
    if (match < rule.skip_first) continue;
    if (active.injected >= rule.max_faults) continue;
    const std::uint64_t draw =
        seed_ ^ (static_cast<std::uint64_t>(active.id) << 32) ^ match;
    if (rule.probability < 1.0 && MixToUnit(draw) >= rule.probability) {
      continue;
    }
    ++active.injected;
    switch (rule.kind) {
      case FaultKind::kDropRequest:
        decision.drop_request = true;
        ++stats_.dropped_requests;
        break;
      case FaultKind::kDropResponse:
        decision.drop_response = true;
        ++stats_.dropped_responses;
        break;
      case FaultKind::kDuplicate:
        decision.duplicate = true;
        ++stats_.duplicates;
        break;
      case FaultKind::kDelay: {
        Nanos jitter = rule.delay_jitter > 0
                           ? static_cast<Nanos>(MixToUnit(Mix(draw)) *
                                                static_cast<double>(
                                                    rule.delay_jitter))
                           : 0;
        decision.delay += rule.delay + jitter;
        ++stats_.delays;
        break;
      }
    }
  }
  return decision;
}

FaultPlanStats FaultPlan::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Result<Response> FaultInjectingTransport::Call(const NodeAddress& to,
                                               const Request& request,
                                               Nanos timeout) {
  FaultDecision d =
      plan_->Decide(self_, to, request.op, request.server_origin);
  if (d.drop_request) {
    return Status(StatusCode::kTimeout, "injected: request dropped");
  }
  if (d.delay > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(d.delay));
  }
  auto response = inner_->Call(to, request, timeout);
  if (d.duplicate) {
    // The retransmitted copy also reaches the peer; the caller still gets
    // one reply (the first), as with a duplicated datagram.
    auto second = inner_->Call(to, request, timeout);
    if (!response.ok()) response = std::move(second);
  }
  if (d.drop_response) {
    return Status(StatusCode::kTimeout, "injected: response dropped");
  }
  return response;
}

Result<std::vector<Response>> FaultInjectingTransport::CallBatch(
    const NodeAddress& to, std::span<const Request> requests, Nanos timeout) {
  if (requests.empty()) return inner_->CallBatch(to, requests, timeout);
  FaultDecision d = plan_->Decide(self_, to, OpCode::kBatch,
                                  requests.front().server_origin);
  if (d.drop_request) {
    return Status(StatusCode::kTimeout, "injected: batch dropped");
  }
  if (d.delay > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(d.delay));
  }
  auto responses = inner_->CallBatch(to, requests, timeout);
  if (d.duplicate) {
    auto second = inner_->CallBatch(to, requests, timeout);
    if (!responses.ok()) responses = std::move(second);
  }
  if (d.drop_response) {
    return Status(StatusCode::kTimeout, "injected: batch response dropped");
  }
  return responses;
}

// ---- History recording --------------------------------------------------

std::uint64_t HistoryRecorder::Begin(std::uint64_t client, OpCode op,
                                     std::string_view key,
                                     std::string_view argument) {
  std::lock_guard<std::mutex> lock(mu_);
  HistoryEvent event;
  event.id = events_.size() + 1;
  event.client = client;
  event.op = op;
  event.key.assign(key);
  event.argument.assign(argument);
  event.invoked = next_time_++;
  events_.push_back(std::move(event));
  return events_.back().id;
}

void HistoryRecorder::End(std::uint64_t id, StatusCode result,
                          std::string_view returned) {
  std::lock_guard<std::mutex> lock(mu_);
  HistoryEvent& event = events_.at(id - 1);
  event.completed = next_time_++;
  event.result = result;
  event.returned.assign(returned);
}

std::vector<HistoryEvent> HistoryRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t HistoryRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void HistoryRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  next_time_ = 1;
}

}  // namespace zht
