// UdpClient: acknowledgement-based UDP RPC (§III.F — "every time a message
// is sent, the sender is waiting for an acknowledge message"; the response
// datagram is the acknowledgement). Lost datagrams are retransmitted with
// exponential back-off; stale responses are discarded by sequence number.
#pragma once

#include <cstdint>
#include <mutex>

#include "net/transport.h"

namespace zht {

struct UdpClientOptions {
  int max_attempts = 4;           // initial send + retransmits
  Nanos initial_rto = 50 * kNanosPerMilli;  // doubles per retransmit
  // CallBatch packs sub-requests into BATCH-envelope datagrams of at most
  // this payload size, kept under a typical Ethernet MTU so no fragment
  // relies on IP-level fragmentation.
  std::size_t max_datagram_bytes = 1400;
};

class UdpClient final : public ClientTransport {
 public:
  explicit UdpClient(UdpClientOptions options = {});
  ~UdpClient() override;

  UdpClient(const UdpClient&) = delete;
  UdpClient& operator=(const UdpClient&) = delete;

  Result<Response> Call(const NodeAddress& to, const Request& request,
                        Nanos timeout) override;

  // Fragments the batch into MTU-sized BATCH datagrams; each fragment is an
  // independent ack'd exchange (a lost fragment retransmits alone). Safe
  // across retransmits: append dedup keys on each sub-op's (client, seq).
  Result<std::vector<Response>> CallBatch(const NodeAddress& to,
                                          std::span<const Request> requests,
                                          Nanos timeout) override;

  std::uint64_t retransmits() const { return retransmits_; }

 private:
  UdpClientOptions options_;
  std::mutex call_mu_;  // one in-flight datagram exchange at a time
  int fd_ = -1;
  std::uint64_t next_seq_ = 1;
  std::uint64_t retransmits_ = 0;
};

}  // namespace zht
