#include "net/loopback.h"

#include "common/clock.h"

namespace zht {

NodeAddress LoopbackNetwork::Register(AsyncRequestHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeAddress address{"loop", next_port_++};
  handlers_[address] = std::move(handler);
  return address;
}

NodeAddress LoopbackNetwork::Register(RequestHandler handler) {
  return Register(ToAsync(std::move(handler)));
}

void LoopbackNetwork::Register(const NodeAddress& address,
                               AsyncRequestHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[address] = std::move(handler);
  // Keep auto-assigned ports clear of explicitly chosen ones (a restarted
  // cluster re-registers instances at their recorded addresses).
  if (address.host == "loop" && address.port >= next_port_) {
    next_port_ = static_cast<std::uint16_t>(address.port + 1);
  }
}

void LoopbackNetwork::Register(const NodeAddress& address,
                               RequestHandler handler) {
  Register(address, ToAsync(std::move(handler)));
}

void LoopbackNetwork::Unregister(const NodeAddress& address) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_.erase(address);
  down_.erase(address);
}

void LoopbackNetwork::SetDown(const NodeAddress& address, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  down_[address] = down;
}

bool LoopbackNetwork::IsDown(const NodeAddress& address) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = down_.find(address);
  return it != down_.end() && it->second;
}

Result<Response> LoopbackNetwork::Deliver(const NodeAddress& to,
                                          const Request& request) {
  AsyncRequestHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto down_it = down_.find(to);
    if (down_it != down_.end() && down_it->second) {
      return Status(StatusCode::kTimeout, "node down: " + to.ToString());
    }
    auto it = handlers_.find(to);
    if (it == handlers_.end()) {
      return Status(StatusCode::kNetwork, "no such node: " + to.ToString());
    }
    handler = it->second;  // copy so the handler runs outside the lock
  }
  Nanos latency = latency_.load(std::memory_order_relaxed);
  if (latency > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(latency));
  }
  Request copy = request;
  // The calling (client) thread parks until the async handler completes;
  // an unbound ZhtServer drains the target shard inline on this thread, so
  // the common case never actually blocks.
  Response response = CallBlocking(handler, std::move(copy));
  if (latency > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(latency));
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

}  // namespace zht
