// TcpClient: synchronous TCP RPC with an LRU connection cache (§III.F —
// "we implemented a LRU cache for TCP connections, which makes TCP work
// almost as fast as UDP"). With caching disabled, every call pays a fresh
// connect/teardown, the configuration the paper's "TCP without connection
// caching" series measures.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "net/transport.h"

namespace zht {

struct TcpClientOptions {
  bool cache_connections = true;
  std::size_t cache_capacity = 64;  // open sockets kept per client
  // CallBatch splits batches into BATCH-envelope frames of at most this
  // payload size; the frames are written back-to-back (one send for the
  // common single-frame case) and their responses read pipelined.
  std::size_t max_batch_bytes = 1u << 20;
};

class TcpClient final : public ClientTransport {
 public:
  explicit TcpClient(TcpClientOptions options = {}) : options_(options) {}
  ~TcpClient() override;

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  Result<Response> Call(const NodeAddress& to, const Request& request,
                        Nanos timeout) override;

  // Pipelined batch: every BATCH-envelope frame goes out before the first
  // response is read, so the batch pays one round-trip (per frame chunk)
  // instead of one per operation.
  Result<std::vector<Response>> CallBatch(const NodeAddress& to,
                                          std::span<const Request> requests,
                                          Nanos timeout) override;

  void Invalidate(const NodeAddress& to) override;

  // Cache telemetry (§III.F): a miss opens a fresh connection (so misses
  // == connects when caching is on); evictions count sockets closed to
  // stay within cache_capacity.
  std::uint64_t connects() const { return connects_; }
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  // Pops a cached connection to `to` or opens a fresh one. Caller holds
  // call_mu_ and owns the returned fd until Release/close.
  Result<int> Acquire(const NodeAddress& to, const Clock& clock,
                      Nanos deadline, bool* from_cache);
  void Release(const NodeAddress& to, int fd, bool healthy);
  void EvictLru();

  TcpClientOptions options_;
  // Serializes calls: the ZHT server shares one peer transport between its
  // handler thread and its async-replication worker.
  std::mutex call_mu_;
  // LRU over cached sockets: most-recently-used at the front.
  std::list<NodeAddress> lru_;
  struct Cached {
    int fd;
    std::list<NodeAddress>::iterator lru_it;
  };
  std::unordered_map<NodeAddress, Cached> cache_;
  std::uint64_t connects_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace zht
