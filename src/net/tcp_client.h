// TcpClient: synchronous TCP RPC with an LRU connection cache (§III.F —
// "we implemented a LRU cache for TCP connections, which makes TCP work
// almost as fast as UDP"). With caching disabled, every call pays a fresh
// connect/teardown, the configuration the paper's "TCP without connection
// caching" series measures.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "net/transport.h"

namespace zht {

struct TcpClientOptions {
  bool cache_connections = true;
  std::size_t cache_capacity = 64;  // open sockets kept per client
};

class TcpClient final : public ClientTransport {
 public:
  explicit TcpClient(TcpClientOptions options = {}) : options_(options) {}
  ~TcpClient() override;

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  Result<Response> Call(const NodeAddress& to, const Request& request,
                        Nanos timeout) override;

  void Invalidate(const NodeAddress& to) override;

  std::uint64_t connects() const { return connects_; }
  std::uint64_t cache_hits() const { return cache_hits_; }

 private:
  void Release(const NodeAddress& to, int fd, bool healthy);
  void EvictLru();

  TcpClientOptions options_;
  // Serializes calls: the ZHT server shares one peer transport between its
  // handler thread and its async-replication worker.
  std::mutex call_mu_;
  // LRU over cached sockets: most-recently-used at the front.
  std::list<NodeAddress> lru_;
  struct Cached {
    int fd;
    std::list<NodeAddress>::iterator lru_it;
  };
  std::unordered_map<NodeAddress, Cached> cache_;
  std::uint64_t connects_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace zht
