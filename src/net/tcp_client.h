// TcpClient: synchronous TCP RPC with an LRU connection cache (§III.F —
// "we implemented a LRU cache for TCP connections, which makes TCP work
// almost as fast as UDP"). With caching disabled, every call pays a fresh
// connect/teardown, the configuration the paper's "TCP without connection
// caching" series measures.
//
// Thread-safe: calls are NOT globally serialized. The cache is a
// per-destination pool of idle sockets under one registry mutex that is
// held only for pool bookkeeping — never across connect() or request I/O.
// A caller pops an idle socket (or opens a fresh one) and owns it
// exclusively for the duration of the RPC, so N concurrent callers — e.g.
// N server reactors doing sync replication plus the async-replication
// worker — proceed in parallel even toward the same peer, each on its own
// socket.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "net/transport.h"

namespace zht {

struct TcpClientOptions {
  bool cache_connections = true;
  std::size_t cache_capacity = 64;  // idle sockets kept per client
  // CallBatch splits batches into BATCH-envelope frames of at most this
  // payload size; the frames are written back-to-back (one send for the
  // common single-frame case) and their responses read pipelined.
  std::size_t max_batch_bytes = 1u << 20;
};

class TcpClient final : public ClientTransport {
 public:
  explicit TcpClient(TcpClientOptions options = {}) : options_(options) {}
  ~TcpClient() override;

  TcpClient(const TcpClient&) = delete;
  TcpClient& operator=(const TcpClient&) = delete;

  Result<Response> Call(const NodeAddress& to, const Request& request,
                        Nanos timeout) override;

  // Pipelined batch: every BATCH-envelope frame goes out before the first
  // response is read, so the batch pays one round-trip (per frame chunk)
  // instead of one per operation.
  Result<std::vector<Response>> CallBatch(const NodeAddress& to,
                                          std::span<const Request> requests,
                                          Nanos timeout) override;

  void Invalidate(const NodeAddress& to) override;

  // Cache telemetry (§III.F): a miss opens a fresh connection (so misses
  // == connects when caching is on); evictions count idle sockets closed
  // to stay within cache_capacity.
  std::uint64_t connects() const {
    return connects_.load(std::memory_order_relaxed);
  }
  std::uint64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  // Pops an idle pooled socket to `to` or opens a fresh one (the connect
  // happens with no lock held). The caller owns the returned fd until
  // Release/close.
  Result<int> Acquire(const NodeAddress& to, const Clock& clock,
                      Nanos deadline, bool* from_cache);
  void Release(const NodeAddress& to, int fd, bool healthy);
  void EvictLruLocked();  // caller holds cache_mu_

  TcpClientOptions options_;

  // Idle-socket registry. cache_mu_ guards lru_/idle_ only; sockets in use
  // are owned exclusively by their caller and appear in neither.
  std::mutex cache_mu_;
  struct IdleSocket {
    NodeAddress to;
    int fd;
  };
  // Most-recently-released at the front; evict from the back.
  std::list<IdleSocket> lru_;
  // Per-destination pool: iterators into lru_, most-recent at the back.
  std::unordered_map<NodeAddress, std::vector<std::list<IdleSocket>::iterator>>
      idle_;

  std::atomic<std::uint64_t> connects_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace zht
