// NodeAddress: how a ZHT instance is reached. An instance is identified by
// host:port (§III.B: "A ZHT instance can be identified by a combination of
// IP address and port").
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace zht {

struct NodeAddress {
  std::string host;
  std::uint16_t port = 0;

  bool valid() const { return !host.empty() && port != 0; }

  std::string ToString() const { return host + ":" + std::to_string(port); }

  static Result<NodeAddress> Parse(const std::string& text) {
    std::size_t colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Status(StatusCode::kInvalidArgument, "bad address: " + text);
    }
    char* end = nullptr;
    long port = std::strtol(text.c_str() + colon + 1, &end, 10);
    if (!end || *end != '\0' || port <= 0 || port > 65535) {
      return Status(StatusCode::kInvalidArgument, "bad port in: " + text);
    }
    return NodeAddress{text.substr(0, colon),
                       static_cast<std::uint16_t>(port)};
  }

  auto operator<=>(const NodeAddress&) const = default;
};

}  // namespace zht

template <>
struct std::hash<zht::NodeAddress> {
  std::size_t operator()(const zht::NodeAddress& a) const noexcept {
    return std::hash<std::string>()(a.host) * 31 + a.port;
  }
};
