// Transport interfaces. ZHT separates protocol logic from byte movement so
// the same client/server code runs over TCP (with or without connection
// caching), UDP (ack-based), or the in-process loopback used by tests.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "net/address.h"
#include "serialize/envelope.h"

namespace zht {

// Server-side handler surface. Every server front-end (epoll, threaded,
// loopback) consumes the asynchronous form; the synchronous form exists for
// tests and simple components (managers, baselines) and is adapted with
// ToAsync — there is exactly one definition of each, here.
//
// RequestHandler: invoked once per decoded request; the return value is
// sent back to the requester. May be called concurrently and must be
// thread-safe when bound to a multi-reactor server.
using RequestHandler = std::function<Response(Request&&)>;

// Completion for one asynchronous request. Invoked exactly once, possibly
// on a different thread than the handler call (a reactor draining its
// mailbox, a durability flusher, a replication finisher). Front-ends must
// tolerate any invoking thread.
using ResponseCallback = std::function<void(Response&&)>;

// Asynchronous request entry point (ZhtServer::HandleAsync). The handler
// takes ownership of the request and promises to invoke `done` exactly
// once; it must not block the calling thread on I/O or replication.
using AsyncRequestHandler =
    std::function<void(Request&&, ResponseCallback)>;

// Lifts a synchronous handler into the asynchronous contract (completes
// inline on the calling thread).
inline AsyncRequestHandler ToAsync(RequestHandler handler) {
  return [handler = std::move(handler)](Request&& request,
                                        ResponseCallback done) {
    done(handler(std::move(request)));
  };
}

// Drives one asynchronous call to completion, blocking the calling thread.
// The latch is shared-owned so a handler that completes late (e.g. after a
// timeout-free caller already returned) never touches a dead stack frame.
inline Response CallBlocking(const AsyncRequestHandler& handler,
                             Request&& request) {
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Response response;
  };
  auto latch = std::make_shared<Latch>();
  handler(std::move(request), [latch](Response&& response) {
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      latch->response = std::move(response);
      latch->done = true;
    }
    latch->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->done; });
  return std::move(latch->response);
}

// Adapts an asynchronous handler back to the synchronous signature (the
// thin blocking shim tests and the thread-per-connection server use).
inline RequestHandler ToBlocking(AsyncRequestHandler handler) {
  return [handler = std::move(handler)](Request&& request) {
    return CallBlocking(handler, std::move(request));
  };
}

// Client-side synchronous RPC. Implementations used as server peer links
// (replication, migration) are called from every reactor plus the async-
// replication worker, so the bundled transports are thread-safe: TcpClient
// uses a per-destination connection pool, and loopback delivery is
// re-entrant. Per-call state stays on the caller's stack.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  virtual Result<Response> Call(const NodeAddress& to, const Request& request,
                                Nanos timeout) = 0;

  // Batched RPC: sends `requests` to one destination and returns exactly
  // requests.size() responses in order, or a batch-level error (transport
  // failure / undecodable reply) in which case no partial results are
  // surfaced. `timeout` covers the whole batch. The default walks the batch
  // with one Call() per request, so every transport is batch-correct;
  // transports override it to put many sub-requests on the wire per frame
  // (TCP: one framed write + pipelined reads, UDP: MTU-sized fragments,
  // loopback: a single delivery).
  virtual Result<std::vector<Response>> CallBatch(
      const NodeAddress& to, std::span<const Request> requests,
      Nanos timeout) {
    std::vector<Response> responses;
    responses.reserve(requests.size());
    for (const Request& request : requests) {
      auto response = Call(to, request, timeout);
      if (!response.ok()) return response.status();
      responses.push_back(std::move(*response));
    }
    return responses;
  }

  // Drops any cached connection to `to` (used when a node is marked dead).
  virtual void Invalidate(const NodeAddress& /*to*/) {}
};

}  // namespace zht
