// Transport interfaces. ZHT separates protocol logic from byte movement so
// the same client/server code runs over TCP (with or without connection
// caching), UDP (ack-based), or the in-process loopback used by tests.
#pragma once

#include <functional>
#include <memory>

#include "common/clock.h"
#include "net/address.h"
#include "serialize/envelope.h"

namespace zht {

// Server-side: invoked once per decoded request; the return value is sent
// back to the requester. Handlers run on the owning server's event thread
// (ZHT instances are single-threaded by design, §IV.G).
using RequestHandler = std::function<Response(Request&&)>;

// Client-side synchronous RPC. Implementations are NOT required to be
// thread-safe; each client thread owns its transport (matching ZHT's
// one-client-per-process deployment model).
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  virtual Result<Response> Call(const NodeAddress& to, const Request& request,
                                Nanos timeout) = 0;

  // Drops any cached connection to `to` (used when a node is marked dead).
  virtual void Invalidate(const NodeAddress& /*to*/) {}
};

}  // namespace zht
