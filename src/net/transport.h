// Transport interfaces. ZHT separates protocol logic from byte movement so
// the same client/server code runs over TCP (with or without connection
// caching), UDP (ack-based), or the in-process loopback used by tests.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/clock.h"
#include "net/address.h"
#include "serialize/envelope.h"

namespace zht {

// Server-side: invoked once per decoded request; the return value is sent
// back to the requester. With a single-reactor EpollServer the handler runs
// on one event thread (the paper's architecture, §IV.G); with multiple
// reactors — or the loopback network, whose callers may be concurrent — it
// is invoked from several threads at once and must be thread-safe
// (ZhtServer::Handle is; see DESIGN.md §9).
using RequestHandler = std::function<Response(Request&&)>;

// Client-side synchronous RPC. Implementations used as server peer links
// (replication, migration) are called from every reactor plus the async-
// replication worker, so the bundled transports are thread-safe: TcpClient
// uses a per-destination connection pool, and loopback delivery is
// re-entrant. Per-call state stays on the caller's stack.
class ClientTransport {
 public:
  virtual ~ClientTransport() = default;

  virtual Result<Response> Call(const NodeAddress& to, const Request& request,
                                Nanos timeout) = 0;

  // Batched RPC: sends `requests` to one destination and returns exactly
  // requests.size() responses in order, or a batch-level error (transport
  // failure / undecodable reply) in which case no partial results are
  // surfaced. `timeout` covers the whole batch. The default walks the batch
  // with one Call() per request, so every transport is batch-correct;
  // transports override it to put many sub-requests on the wire per frame
  // (TCP: one framed write + pipelined reads, UDP: MTU-sized fragments,
  // loopback: a single delivery).
  virtual Result<std::vector<Response>> CallBatch(
      const NodeAddress& to, std::span<const Request> requests,
      Nanos timeout) {
    std::vector<Response> responses;
    responses.reserve(requests.size());
    for (const Request& request : requests) {
      auto response = Call(to, request, timeout);
      if (!response.ok()) return response.status();
      responses.push_back(std::move(*response));
    }
    return responses;
  }

  // Drops any cached connection to `to` (used when a node is marked dead).
  virtual void Invalidate(const NodeAddress& /*to*/) {}
};

}  // namespace zht
