// Deterministic fault injection (§III.H, §III.I): a decorator over any
// ClientTransport that applies a seeded, scripted FaultPlan — per-destination
// and per-opcode request drops, drop-response-after-apply (the server state
// mutates but the caller sees a timeout), fixed/jittered delays, duplicate
// delivery (a retransmission whose first copy also arrived), bounded fault
// windows, and symmetric network partitions.
//
// Decisions are pure functions of (seed, rule id, per-rule match index), not
// of a shared RNG stream, so a schedule whose probabilistic rules match only
// single-threaded traffic replays bit-for-bit from its seed. Rules matching
// probability 1.0 are deterministic under any interleaving.
//
// HistoryRecorder rides along: it stamps client operations with logical
// invocation/completion timestamps so a checker (tests/history_checker.h)
// can validate the recorded history against a sequential map model.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "net/transport.h"

namespace zht {

enum class FaultKind : std::uint8_t {
  kDropRequest,   // fail before delivery: the peer never sees the message
  kDropResponse,  // deliver (peer state applies), then discard the reply
  kDelay,         // deliver after a fixed + jittered pause
  kDuplicate,     // deliver twice back-to-back (retransmit with a lost ack)
};

std::string_view FaultKindName(FaultKind kind);

// One scripted fault. Unset matchers mean "any"; `skip_first`/`max_faults`
// bound the rule to an N-call window of its own matches.
struct FaultRule {
  FaultKind kind = FaultKind::kDropRequest;
  std::optional<NodeAddress> to;  // match a single destination
  std::optional<OpCode> op;       // match a single opcode (batches: kBatch)
  bool client_only = false;       // skip server_origin (peer/manager) traffic
  double probability = 1.0;       // per matching call
  Nanos delay = 0;                // kDelay: fixed part
  Nanos delay_jitter = 0;         // kDelay: uniform extra in [0, jitter)
  std::uint64_t skip_first = 0;   // let this many matches through unfaulted
  std::uint64_t max_faults = std::numeric_limits<std::uint64_t>::max();
};

// What a single call should suffer (the union of every matching rule).
struct FaultDecision {
  bool drop_request = false;
  bool drop_response = false;
  bool duplicate = false;
  Nanos delay = 0;
};

struct FaultPlanStats {
  std::uint64_t decisions = 0;
  std::uint64_t dropped_requests = 0;   // includes partition blocks
  std::uint64_t dropped_responses = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t delays = 0;
  std::uint64_t partition_blocks = 0;
};

// A thread-safe, shareable fault script. Every FaultInjectingTransport of a
// cluster points at one plan, so a test scripts the whole deployment's
// network behavior in one place.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0xfa'017'ab1eULL) : seed_(seed) {}

  // Returns a handle for RemoveRule.
  int AddRule(const FaultRule& rule);
  void RemoveRule(int id);

  // Symmetric partition: traffic between the two groups is blocked in both
  // directions (calls whose transport has no identity are never blocked).
  int AddPartition(std::vector<NodeAddress> group_a,
                   std::vector<NodeAddress> group_b);
  void RemovePartition(int id);

  // Removes every rule and partition (counters keep accumulating).
  void Clear();

  FaultDecision Decide(const std::optional<NodeAddress>& from,
                       const NodeAddress& to, OpCode op, bool server_origin);

  FaultPlanStats stats() const;

 private:
  struct ActiveRule {
    int id = 0;
    FaultRule rule;
    std::uint64_t matches = 0;   // calls that matched the rule's filters
    std::uint64_t injected = 0;  // faults actually applied
  };
  struct PartitionCut {
    int id = 0;
    std::vector<NodeAddress> group_a;
    std::vector<NodeAddress> group_b;
  };

  const std::uint64_t seed_;
  mutable std::mutex mu_;
  std::vector<ActiveRule> rules_;
  std::vector<PartitionCut> partitions_;
  int next_id_ = 1;
  FaultPlanStats stats_;
};

// The decorator. Owns the wrapped transport; shares the plan. `self`
// identifies which node's traffic this transport carries (used by
// partitions; clients typically have no identity).
class FaultInjectingTransport final : public ClientTransport {
 public:
  FaultInjectingTransport(std::unique_ptr<ClientTransport> inner,
                          std::shared_ptr<FaultPlan> plan,
                          std::optional<NodeAddress> self = std::nullopt)
      : inner_(std::move(inner)), plan_(std::move(plan)),
        self_(std::move(self)) {}

  Result<Response> Call(const NodeAddress& to, const Request& request,
                        Nanos timeout) override;

  // The whole batch shares one carrier on the wire, so it suffers one
  // decision (matched as OpCode::kBatch): a dropped request loses every
  // sub-op, a dropped response loses every ack after every sub-op applied.
  Result<std::vector<Response>> CallBatch(const NodeAddress& to,
                                          std::span<const Request> requests,
                                          Nanos timeout) override;

  void Invalidate(const NodeAddress& to) override { inner_->Invalidate(to); }

  ClientTransport* inner() { return inner_.get(); }

 private:
  std::unique_ptr<ClientTransport> inner_;
  std::shared_ptr<FaultPlan> plan_;
  std::optional<NodeAddress> self_;
};

// ---- History recording --------------------------------------------------

// One client-visible operation. Timestamps are ticks of a recorder-global
// logical clock: `invoked` when the client issued the call, `completed`
// when it returned (0 while still pending). The operation's true effect
// point, if any, lies somewhere in [invoked, completed].
struct HistoryEvent {
  std::uint64_t id = 0;      // 1-based, assigned by Begin
  std::uint64_t client = 0;  // logical client issuing the op
  OpCode op = OpCode::kPing;
  std::string key;
  std::string argument;      // insert/append payload
  std::uint64_t invoked = 0;
  std::uint64_t completed = 0;
  // Pending events (completed == 0) are treated like timeouts: the op may
  // or may not have taken effect.
  StatusCode result = StatusCode::kTimeout;
  std::string returned;      // lookup payload
};

// Thread-safe log of operations for the history checker. The recorder does
// not interpose on the transport: callers bracket each logical operation
// with Begin/End so the window covers the client's whole retry loop (which
// is what a linearizability window must span).
class HistoryRecorder {
 public:
  std::uint64_t Begin(std::uint64_t client, OpCode op, std::string_view key,
                      std::string_view argument);
  void End(std::uint64_t id, StatusCode result, std::string_view returned = {});

  std::vector<HistoryEvent> Events() const;
  std::size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::uint64_t next_time_ = 1;
  std::vector<HistoryEvent> events_;
};

}  // namespace zht
