#include "net/tcp_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/framing.h"
#include "serialize/batch.h"

namespace zht {
namespace {

// Blocking-with-deadline write of the whole buffer.
Status WriteWithDeadline(int fd, std::string_view data, const Clock& clock,
                         Nanos deadline) {
  std::size_t written = 0;
  while (written < data.size()) {
    Nanos remaining = deadline - clock.Now();
    if (remaining <= 0) return Status(StatusCode::kTimeout, "write timeout");
    pollfd pfd{fd, POLLOUT, 0};
    int pr = ::poll(&pfd, 1, static_cast<int>(remaining / kNanosPerMilli) + 1);
    if (pr < 0 && errno != EINTR) {
      return Status(StatusCode::kNetwork, "poll failed");
    }
    if (pr <= 0) continue;
    ssize_t n = ::send(fd, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Status(StatusCode::kNetwork,
                    std::string("send: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

// Reads one frame. `carry` accumulates stream bytes across calls;
// `carry_offset` is the consumed-frame cursor (frames are not erased per
// read — the pipelined CallBatch loop drains many frames from one buffer,
// and a per-frame front erase would make that quadratic).
Result<std::string> ReadFrameWithDeadline(int fd, const Clock& clock,
                                          Nanos deadline, std::string* carry,
                                          std::size_t* carry_offset) {
  char buf[1 << 16];
  for (;;) {
    bool malformed = false;
    if (auto payload = ExtractFrameAt(*carry, carry_offset, &malformed)) {
      return std::string(*payload);
    }
    if (malformed) return Status(StatusCode::kCorruption, "bad frame");

    Nanos remaining = deadline - clock.Now();
    if (remaining <= 0) return Status(StatusCode::kTimeout, "read timeout");
    pollfd pfd{fd, POLLIN, 0};
    int pr = ::poll(&pfd, 1, static_cast<int>(remaining / kNanosPerMilli) + 1);
    if (pr < 0 && errno != EINTR) {
      return Status(StatusCode::kNetwork, "poll failed");
    }
    if (pr <= 0) continue;
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n == 0) return Status(StatusCode::kNetwork, "peer closed");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Status(StatusCode::kNetwork,
                    std::string("read: ") + std::strerror(errno));
    }
    carry->append(buf, static_cast<std::size_t>(n));
  }
}

Result<int> ConnectTo(const NodeAddress& to, const Clock& clock,
                      Nanos deadline) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(to.port);
  if (::inet_pton(AF_INET, to.host.c_str(), &addr.sin_addr) != 1) {
    return Status(StatusCode::kInvalidArgument, "bad host: " + to.host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status(StatusCode::kNetwork, "socket failed");
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return Status(StatusCode::kNetwork,
                  std::string("connect: ") + std::strerror(errno));
  }
  if (rc < 0) {
    // Await completion with the deadline.
    for (;;) {
      Nanos remaining = deadline - clock.Now();
      if (remaining <= 0) {
        ::close(fd);
        return Status(StatusCode::kTimeout, "connect timeout");
      }
      pollfd pfd{fd, POLLOUT, 0};
      int pr =
          ::poll(&pfd, 1, static_cast<int>(remaining / kNanosPerMilli) + 1);
      if (pr < 0 && errno != EINTR) {
        ::close(fd);
        return Status(StatusCode::kNetwork, "poll failed");
      }
      if (pr > 0) break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status(StatusCode::kNetwork,
                    std::string("connect: ") + std::strerror(err));
    }
  }
  return fd;
}

}  // namespace

TcpClient::~TcpClient() {
  for (auto& idle : lru_) ::close(idle.fd);
}

void TcpClient::EvictLruLocked() {
  if (lru_.empty()) return;
  IdleSocket victim = lru_.back();
  auto victim_it = std::prev(lru_.end());
  auto pool = idle_.find(victim.to);
  if (pool != idle_.end()) {
    auto& slots = pool->second;
    slots.erase(std::remove(slots.begin(), slots.end(), victim_it),
                slots.end());
    if (slots.empty()) idle_.erase(pool);
  }
  lru_.pop_back();
  ::close(victim.fd);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void TcpClient::Release(const NodeAddress& to, int fd, bool healthy) {
  if (!healthy || !options_.cache_connections) {
    ::close(fd);
    return;
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  while (lru_.size() >= options_.cache_capacity) EvictLruLocked();
  lru_.push_front(IdleSocket{to, fd});
  idle_[to].push_back(lru_.begin());
}

void TcpClient::Invalidate(const NodeAddress& to) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto pool = idle_.find(to);
  if (pool == idle_.end()) return;
  for (auto it : pool->second) {
    ::close(it->fd);
    lru_.erase(it);
  }
  idle_.erase(pool);
}

Result<int> TcpClient::Acquire(const NodeAddress& to, const Clock& clock,
                               Nanos deadline, bool* from_cache) {
  *from_cache = false;
  if (options_.cache_connections) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto pool = idle_.find(to);
    if (pool != idle_.end() && !pool->second.empty()) {
      // Most-recently-released socket first (it is the least likely to
      // have gone stale behind an idle timeout).
      auto it = pool->second.back();
      pool->second.pop_back();
      if (pool->second.empty()) idle_.erase(pool);
      int fd = it->fd;
      lru_.erase(it);
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      *from_cache = true;
      return fd;
    }
  }
  connects_.fetch_add(1, std::memory_order_relaxed);
  return ConnectTo(to, clock, deadline);
}

Result<Response> TcpClient::Call(const NodeAddress& to, const Request& request,
                                 Nanos timeout) {
  const Clock& clock = SystemClock::Instance();
  const Nanos deadline = clock.Now() + timeout;
  const std::string frame = FrameMessage(request.Encode());

  // A cached connection may have gone stale (server restarted, idle
  // timeout): a failure on a cached socket earns exactly one retry on a
  // fresh connection. Failures on a fresh connection are definitive.
  for (int round = 0; round < 2; ++round) {
    bool from_cache = false;
    auto acquired = Acquire(to, clock, deadline, &from_cache);
    if (!acquired.ok()) return acquired.status();
    int fd = *acquired;
    if (round > 0) from_cache = false;

    Status status = WriteWithDeadline(fd, frame, clock, deadline);
    if (status.ok()) {
      std::string carry;
      std::size_t carry_offset = 0;
      auto payload =
          ReadFrameWithDeadline(fd, clock, deadline, &carry, &carry_offset);
      if (payload.ok()) {
        auto response = Response::Decode(*payload);
        if (!response.ok()) {
          ::close(fd);
          return response.status();
        }
        Release(to, fd, /*healthy=*/true);
        return *response;
      }
      status = payload.status();
    }
    ::close(fd);
    if (from_cache && status.code() == StatusCode::kNetwork) {
      continue;  // stale cached socket: one fresh retry
    }
    return status;
  }
  return Status(StatusCode::kNetwork, "unreachable");
}

Result<std::vector<Response>> TcpClient::CallBatch(
    const NodeAddress& to, std::span<const Request> requests, Nanos timeout) {
  if (requests.empty()) return std::vector<Response>{};
  if (requests.size() == 1) {
    auto response = Call(to, requests.front(), timeout);
    if (!response.ok()) return response.status();
    return std::vector<Response>{std::move(*response)};
  }

  const Clock& clock = SystemClock::Instance();
  const Nanos deadline = clock.Now() + timeout;

  // Chunk under the frame budget, then concatenate every chunk's BATCH
  // frame: one write puts the whole pipeline on the wire before the first
  // response is read.
  auto chunks = ChunkBatch(requests, options_.max_batch_bytes);
  std::string wire_bytes;
  std::uint64_t seq = requests.front().seq != 0 ? requests.front().seq : 1;
  for (const auto& chunk : chunks) {
    Request carrier = PackBatchRequest(chunk, seq++);
    wire_bytes += FrameMessage(carrier.Encode());
  }

  for (int round = 0; round < 2; ++round) {
    bool from_cache = false;
    auto acquired = Acquire(to, clock, deadline, &from_cache);
    if (!acquired.ok()) return acquired.status();
    int fd = *acquired;
    if (round > 0) from_cache = false;

    Status status = WriteWithDeadline(fd, wire_bytes, clock, deadline);
    if (status.ok()) {
      std::string carry;
      std::size_t carry_offset = 0;
      std::vector<Response> responses;
      responses.reserve(requests.size());
      for (const auto& chunk : chunks) {
        auto payload =
            ReadFrameWithDeadline(fd, clock, deadline, &carry, &carry_offset);
        if (!payload.ok()) {
          status = payload.status();
          break;
        }
        auto carrier = Response::Decode(*payload);
        if (!carrier.ok()) {
          ::close(fd);
          return carrier.status();
        }
        auto subs = UnpackBatchResponse(*carrier, chunk.size());
        if (!subs.ok()) {
          ::close(fd);
          return subs.status();
        }
        for (auto& sub : *subs) responses.push_back(std::move(sub));
      }
      if (responses.size() == requests.size()) {
        Release(to, fd, /*healthy=*/true);
        return responses;
      }
    }
    ::close(fd);
    if (from_cache && status.code() == StatusCode::kNetwork) {
      continue;  // stale cached socket: one fresh retry
    }
    return status;
  }
  return Status(StatusCode::kNetwork, "unreachable");
}

}  // namespace zht
