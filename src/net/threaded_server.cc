#include "net/threaded_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/framing.h"

namespace zht {

Result<std::unique_ptr<ThreadedServer>> ThreadedServer::Create(
    const std::string& host, std::uint16_t port, RequestHandler handler) {
  return Create(host, port, ToAsync(std::move(handler)));
}

Result<std::unique_ptr<ThreadedServer>> ThreadedServer::Create(
    const std::string& host, std::uint16_t port, AsyncRequestHandler handler) {
  std::unique_ptr<ThreadedServer> server(
      new ThreadedServer(std::move(handler)));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status(StatusCode::kInvalidArgument, "bad host: " + host);
  }
  server->listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (server->listen_fd_ < 0) {
    return Status(StatusCode::kInternal, "socket failed");
  }
  int one = 1;
  ::setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  if (::bind(server->listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Status(StatusCode::kInternal, "bind failed");
  }
  if (::listen(server->listen_fd_, 128) < 0) {
    return Status(StatusCode::kInternal, "listen failed");
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  ::getsockname(server->listen_fd_, reinterpret_cast<sockaddr*>(&actual),
                &len);
  server->address_ = NodeAddress{host, ntohs(actual.sin_port)};
  return server;
}

ThreadedServer::~ThreadedServer() { Stop(); }

Status ThreadedServer::Start() {
  if (running_.exchange(true)) return Status::Ok();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void ThreadedServer::Stop() {
  if (!running_.exchange(false)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void ThreadedServer::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // One thread per connection: this is precisely the overhead the paper
    // measured against.
    std::lock_guard<std::mutex> lock(workers_mu_);
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void ThreadedServer::ServeConnection(int fd) {
  std::string in;
  char buf[1 << 16];
  while (running_.load(std::memory_order_relaxed)) {
    pollfd pfd{fd, POLLIN, 0};
    int pr = ::poll(&pfd, 1, 100);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) continue;
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    in.append(buf, static_cast<std::size_t>(n));
    bool malformed = false;
    while (auto payload = ExtractFrame(in, &malformed)) {
      auto request = Request::Decode(*payload);
      Response response;
      if (request.ok()) {
        requests_served_.fetch_add(1, std::memory_order_relaxed);
        response = CallBlocking(handler_, std::move(*request));
      } else {
        response.status = Status(StatusCode::kCorruption).raw();
      }
      std::string frame = FrameMessage(response.Encode());
      std::size_t written = 0;
      while (written < frame.size()) {
        ssize_t w = ::write(fd, frame.data() + written,
                            frame.size() - written);
        if (w < 0) {
          if (errno == EINTR) continue;
          malformed = true;
          break;
        }
        written += static_cast<std::size_t>(w);
      }
      if (malformed) break;
    }
    if (malformed) break;
  }
  ::close(fd);
}

}  // namespace zht
