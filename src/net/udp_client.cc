#include "net/udp_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "serialize/batch.h"

namespace zht {

UdpClient::UdpClient(UdpClientOptions options) : options_(options) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
}

UdpClient::~UdpClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Response> UdpClient::Call(const NodeAddress& to, const Request& request,
                                 Nanos timeout) {
  std::lock_guard<std::mutex> lock(call_mu_);
  if (fd_ < 0) return Status(StatusCode::kNetwork, "udp socket unavailable");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(to.port);
  if (::inet_pton(AF_INET, to.host.c_str(), &addr.sin_addr) != 1) {
    return Status(StatusCode::kInvalidArgument, "bad host: " + to.host);
  }

  // Ensure a matchable sequence number (callers usually set one already).
  Request sent = request;
  if (sent.seq == 0) sent.seq = next_seq_++;
  std::string payload = sent.Encode();

  const Clock& clock = SystemClock::Instance();
  Nanos deadline = clock.Now() + timeout;
  Nanos rto = options_.initial_rto;

  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) ++retransmits_;
    if (::sendto(fd_, payload.data(), payload.size(), 0,
                 reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      return Status(StatusCode::kNetwork,
                    std::string("sendto: ") + std::strerror(errno));
    }

    Nanos attempt_deadline = std::min(deadline, clock.Now() + rto);
    rto *= 2;  // exponential back-off

    char buf[64 << 10];
    for (;;) {
      Nanos remaining = attempt_deadline - clock.Now();
      if (remaining <= 0) break;  // retransmit
      pollfd pfd{fd_, POLLIN, 0};
      int pr =
          ::poll(&pfd, 1, static_cast<int>(remaining / kNanosPerMilli) + 1);
      if (pr < 0 && errno != EINTR) {
        return Status(StatusCode::kNetwork, "poll failed");
      }
      if (pr <= 0) continue;
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return Status(StatusCode::kNetwork,
                      std::string("recv: ") + std::strerror(errno));
      }
      auto response =
          Response::Decode(std::string_view(buf, static_cast<std::size_t>(n)));
      if (!response.ok()) continue;  // garbage datagram
      if (response->seq != sent.seq) continue;  // stale duplicate
      return *response;
    }
    if (clock.Now() >= deadline) break;
  }
  return Status(StatusCode::kTimeout,
                "no acknowledgement from " + to.ToString());
}

Result<std::vector<Response>> UdpClient::CallBatch(
    const NodeAddress& to, std::span<const Request> requests, Nanos timeout) {
  if (requests.empty()) return std::vector<Response>{};
  if (requests.size() == 1) {
    auto response = Call(to, requests.front(), timeout);
    if (!response.ok()) return response.status();
    return std::vector<Response>{std::move(*response)};
  }

  const Clock& clock = SystemClock::Instance();
  const Nanos deadline = clock.Now() + timeout;

  auto chunks = ChunkBatch(requests, options_.max_datagram_bytes);
  std::vector<Response> responses;
  responses.reserve(requests.size());
  for (const auto& chunk : chunks) {
    Nanos remaining = deadline - clock.Now();
    if (remaining <= 0) return Status(StatusCode::kTimeout, "batch timeout");
    // Call() assigns the carrier's datagram seq, acks it, and retransmits
    // on loss; a retransmitted carrier re-applies sub-ops whose own seqs
    // are unchanged, so server-side append dedup still holds.
    Request carrier = PackBatchRequest(chunk, /*seq=*/0);
    auto reply = Call(to, carrier, remaining);
    if (!reply.ok()) return reply.status();
    auto subs = UnpackBatchResponse(*reply, chunk.size());
    if (!subs.ok()) return subs.status();
    for (auto& sub : *subs) responses.push_back(std::move(sub));
  }
  return responses;
}

}  // namespace zht
