// EpollServer: the event-driven server architecture the paper converged on
// (§III.D) after finding thread-per-request 3× slower. One epoll loop per
// ZHT instance serves both the TCP listener and the UDP socket; request
// handling is single-threaded (multiple instances per node scale across
// cores, §IV.G).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/status.h"
#include "net/address.h"
#include "net/transport.h"

namespace zht {

struct EpollServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = pick an ephemeral port
  bool enable_tcp = true;
  bool enable_udp = true;
  int listen_backlog = 128;
};

class EpollServer {
 public:
  static Result<std::unique_ptr<EpollServer>> Create(
      const EpollServerOptions& options, RequestHandler handler);

  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  // Spawns the event-loop thread. Idempotent.
  Status Start();
  // Stops the loop and joins the thread. Idempotent.
  void Stop();

  // Bound address (with the actual port when 0 was requested).
  const NodeAddress& address() const { return address_; }

  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  // Readiness-loop telemetry: epoll_wait returns that delivered at least
  // one event, and UDP datagrams pulled off the socket.
  std::uint64_t loop_wakeups() const {
    return loop_wakeups_.load(std::memory_order_relaxed);
  }
  std::uint64_t udp_datagrams() const {
    return udp_datagrams_.load(std::memory_order_relaxed);
  }

 private:
  EpollServer(EpollServerOptions options, RequestHandler handler);

  Status Setup();
  void Loop();
  void AcceptAll();
  void HandleReadable(int fd);
  void HandleWritable(int fd);
  void HandleUdp();
  void CloseConnection(int fd);
  void ProcessBuffered(int fd);

  struct Connection {
    std::string in;
    std::string out;
    std::size_t out_offset = 0;
  };

  EpollServerOptions options_;
  RequestHandler handler_;
  NodeAddress address_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int udp_fd_ = -1;
  int wake_fd_ = -1;

  std::unordered_map<int, Connection> connections_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> loop_wakeups_{0};
  std::atomic<std::uint64_t> udp_datagrams_{0};
};

}  // namespace zht
