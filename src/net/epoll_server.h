// EpollServer: the event-driven server architecture the paper converged on
// (§III.D) after finding thread-per-request 3× slower. The paper runs one
// single-threaded event loop per ZHT instance and scales across cores by
// deploying multiple instances per node (§IV.G); this implementation
// generalizes that to a multi-reactor design — `num_reactors` event-loop
// threads, each with its own epoll fd and its own connection map:
//
//  - reactor 0 owns the TCP listener; accepted connections are assigned
//    round-robin and handed off through a per-reactor eventfd + queue;
//  - the UDP socket is owned by one designated reactor (the last), so
//    datagram handling and response sends never race;
//  - each connection lives on exactly one reactor for its whole life, so
//    the read/decode/handle/write path touches no shared mutable state.
//
// With num_reactors = 1 this degenerates to the paper's architecture. With
// N reactors a single instance drives N cores, which requires the request
// handler to be thread-safe (ZhtServer::Handle is; see DESIGN.md §9).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/address.h"
#include "net/transport.h"

namespace zht {

struct EpollServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = pick an ephemeral port
  bool enable_tcp = true;
  bool enable_udp = true;
  int listen_backlog = 128;
  // Event-loop threads. Values < 1 are clamped to 1. The handler runs on
  // whichever reactor owns the connection (or the UDP socket), so any
  // handler used with num_reactors > 1 must be thread-safe.
  int num_reactors = 1;
};

class EpollServer {
 public:
  static Result<std::unique_ptr<EpollServer>> Create(
      const EpollServerOptions& options, RequestHandler handler);

  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  // Spawns the event-loop threads. Idempotent.
  Status Start();
  // Stops the loops and joins the threads. Idempotent.
  void Stop();

  // Bound address (with the actual port when 0 was requested).
  const NodeAddress& address() const { return address_; }

  int num_reactors() const { return static_cast<int>(reactors_.size()); }

  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  // Readiness-loop telemetry: epoll_wait returns that delivered at least
  // one event (summed over reactors), and UDP datagrams pulled off the
  // socket.
  std::uint64_t loop_wakeups() const {
    return loop_wakeups_.load(std::memory_order_relaxed);
  }
  std::uint64_t udp_datagrams() const {
    return udp_datagrams_.load(std::memory_order_relaxed);
  }
  // Connections ever assigned to reactor `i` (accept-time distribution).
  std::uint64_t connections_assigned(int i) const {
    return reactors_[static_cast<std::size_t>(i)]->assigned.load(
        std::memory_order_relaxed);
  }

 private:
  EpollServer(EpollServerOptions options, RequestHandler handler);

  struct Connection {
    std::string in;
    std::size_t in_offset = 0;  // consumed-frame cursor into `in`
    std::string out;
    std::size_t out_offset = 0;
  };

  // One event loop: epoll fd + wake eventfd + the connections it owns.
  // Everything except `handoff` is touched only by this reactor's thread.
  struct Reactor {
    int index = 0;
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    std::unordered_map<int, Connection> connections;
    std::atomic<std::uint64_t> assigned{0};
    // Accepted fds parked by reactor 0 until this reactor adopts them.
    std::mutex handoff_mu;
    std::vector<int> handoff;
  };

  Status Setup();
  void Loop(Reactor& r);
  void AcceptAll();           // reactor 0 only
  void AdoptHandoff(Reactor& r);
  void HandleReadable(Reactor& r, int fd);
  void HandleWritable(Reactor& r, int fd);
  void HandleUdp();           // UDP reactor only
  void CloseConnection(Reactor& r, int fd);
  void ProcessBuffered(Reactor& r, int fd);

  friend struct EpollServerTestPeer;  // reaches ProcessBuffered in tests

  EpollServerOptions options_;
  RequestHandler handler_;
  NodeAddress address_;

  int listen_fd_ = -1;
  int udp_fd_ = -1;
  std::size_t udp_reactor_ = 0;  // which reactor owns udp_fd_

  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::size_t next_reactor_ = 0;  // acceptor's round-robin cursor

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> loop_wakeups_{0};
  std::atomic<std::uint64_t> udp_datagrams_{0};
};

}  // namespace zht
