// EpollServer: the event-driven server architecture the paper converged on
// (§III.D) after finding thread-per-request 3× slower. The paper runs one
// single-threaded event loop per ZHT instance and scales across cores by
// deploying multiple instances per node (§IV.G); this implementation
// generalizes that to a multi-reactor design — `num_reactors` event-loop
// threads, each with its own epoll fd and its own connection map:
//
//  - reactor 0 owns the TCP listener; accepted connections are assigned
//    round-robin and handed off through a per-reactor eventfd + queue;
//  - the UDP socket is owned by one designated reactor (the last), so
//    datagram reads never race (response sendto is per-datagram atomic);
//  - each connection lives on exactly one reactor at a time, so the
//    read/decode/dispatch/write path touches no shared mutable state.
//
// The request path is asynchronous: decoded requests are dispatched through
// an AsyncRequestHandler and the response arrives later via callback. A
// connection pipelines many requests; responses are written back in request
// order through per-connection completion slots (out-of-order completions
// park until their turn). Callbacks that fire on a different thread than
// the owning reactor are marshalled through a per-reactor completion queue
// drained by that reactor's loop.
//
// Partition-affine routing: an optional placement function inspects the
// first request decoded on a connection and, if it prefers a different
// reactor, the whole connection (fd + buffered bytes) is re-homed to that
// reactor before the request is dispatched. Clients that shard their
// connections by key therefore land every request on the reactor that owns
// the key's partition, and the shard mailboxes see no cross-reactor
// forwards (see ZhtServer::PreferredExecutor and DESIGN.md §9).
//
// With num_reactors = 1 this degenerates to the paper's architecture.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/address.h"
#include "net/transport.h"

namespace zht {

struct EpollServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = pick an ephemeral port
  bool enable_tcp = true;
  bool enable_udp = true;
  int listen_backlog = 128;
  // Event-loop threads. Values < 1 are clamped to 1. The handler runs on
  // whichever reactor owns the connection (or the UDP socket), so any
  // handler used with num_reactors > 1 must be thread-safe.
  int num_reactors = 1;
};

class EpollServer {
 public:
  static Result<std::unique_ptr<EpollServer>> Create(
      const EpollServerOptions& options, AsyncRequestHandler handler);
  // Convenience for synchronous handlers (tests, echo servers): wrapped via
  // ToAsync, so every response completes inline on the reactor.
  static Result<std::unique_ptr<EpollServer>> Create(
      const EpollServerOptions& options, RequestHandler handler);

  ~EpollServer();

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  // Executor integration (all pre-Start only). `on_start` runs once on the
  // reactor thread before its first epoll_wait (ZhtServer uses it to claim
  // the thread as executor `i`); `on_wake` runs after every batch of epoll
  // events and completions (ZhtServer drains the shard mailboxes bound to
  // executor `i` there).
  void SetReactorHooks(int reactor, std::function<void()> on_start,
                       std::function<void()> on_wake);
  // Routes connections to reactors: called once per connection with its
  // first decoded request; a return in [0, num_reactors) re-homes the
  // connection to that reactor, anything else leaves it where accept-time
  // round-robin put it.
  void SetPlacement(std::function<int(const Request&)> placement);
  // A thread-safe functor that wakes reactor `i`'s event loop (writes its
  // eventfd). Valid for the server's whole lifetime; ZhtServer installs it
  // as the shard waker so cross-thread mailbox posts interrupt epoll_wait.
  std::function<void()> ReactorWaker(int reactor);

  // Spawns the event-loop threads. Idempotent.
  Status Start();
  // Stops the loops and joins the threads. Idempotent. Sockets stay open
  // (closed by the destructor) so late completion callbacks from a handler
  // that is still winding down never touch a recycled fd.
  void Stop();

  // Bound address (with the actual port when 0 was requested).
  const NodeAddress& address() const { return address_; }

  int num_reactors() const { return static_cast<int>(reactors_.size()); }

  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  // Readiness-loop telemetry: epoll_wait returns that delivered at least
  // one event (summed over reactors), and UDP datagrams pulled off the
  // socket.
  std::uint64_t loop_wakeups() const {
    return loop_wakeups_.load(std::memory_order_relaxed);
  }
  std::uint64_t udp_datagrams() const {
    return udp_datagrams_.load(std::memory_order_relaxed);
  }
  // Connections ever assigned to reactor `i` (accept-time distribution).
  std::uint64_t connections_assigned(int i) const {
    return reactors_[static_cast<std::size_t>(i)]->assigned.load(
        std::memory_order_relaxed);
  }
  // Connections re-homed to the placement-preferred reactor.
  std::uint64_t connections_rehomed() const {
    return connections_rehomed_.load(std::memory_order_relaxed);
  }

 private:
  EpollServer(EpollServerOptions options, AsyncRequestHandler handler);

  struct Connection {
    std::string in;
    std::size_t in_offset = 0;  // consumed-frame cursor into `in`
    std::string out;
    std::size_t out_offset = 0;
    // Pipelining bookkeeping: requests are assigned slots in arrival order;
    // responses are framed into `out` strictly by slot. A completion for a
    // slot ahead of `flushed_slot` parks until the gap fills.
    std::uint64_t id = 0;            // guards against fd reuse
    std::uint64_t next_slot = 0;     // next request's slot
    std::uint64_t flushed_slot = 0;  // first slot not yet framed
    std::unordered_map<std::uint64_t, std::string> parked;
    bool placed = false;  // placement consulted for this connection
  };

  // One event loop: epoll fd + wake eventfd + the connections it owns.
  // Everything except `handoff` and `done` is touched only by this
  // reactor's thread.
  struct Reactor {
    int index = 0;
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    std::thread::id thread_id;  // set by Loop before on_start
    std::unordered_map<int, Connection> connections;
    std::atomic<std::uint64_t> assigned{0};
    std::function<void()> on_start;
    std::function<void()> on_wake;
    // Accepted or re-homed fds (with any buffered state) parked here until
    // this reactor adopts them.
    std::mutex handoff_mu;
    std::vector<std::pair<int, Connection>> handoff;
    // Cross-thread response completions, drained by this reactor's loop.
    std::mutex done_mu;
    std::vector<std::function<void()>> done;
  };

  Status Setup();
  void Loop(Reactor& r);
  void AcceptAll();           // reactor 0 only
  void AdoptHandoff(Reactor& r);
  void DrainCompletions(Reactor& r);
  void HandleReadable(Reactor& r, int fd);
  void HandleWritable(Reactor& r, int fd);
  void HandleUdp();           // UDP reactor only
  void CloseConnection(Reactor& r, int fd);
  void ProcessBuffered(Reactor& r, int fd);
  // Detaches the connection from `r` and parks it (with its buffered input
  // rewound to `rewind_offset`) on `target`'s handoff queue.
  void MoveConnection(Reactor& r, int fd, std::size_t rewind_offset,
                      Reactor& target);
  // Frames `encoded` into the connection's slot, draining any consecutive
  // parked successors; must run on the owning reactor's thread.
  void CompleteLocal(Reactor& r, int fd, std::uint64_t conn_id,
                     std::uint64_t slot, std::string encoded);
  // Routes a completion to the owning reactor: inline when already on its
  // thread, else through its done queue + eventfd.
  void CompleteResponse(std::size_t reactor, int fd, std::uint64_t conn_id,
                        std::uint64_t slot, Response&& response);

  friend struct EpollServerTestPeer;  // reaches ProcessBuffered in tests

  EpollServerOptions options_;
  AsyncRequestHandler handler_;
  std::function<int(const Request&)> placement_;
  NodeAddress address_;

  int listen_fd_ = -1;
  int udp_fd_ = -1;
  std::size_t udp_reactor_ = 0;  // which reactor owns udp_fd_

  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::size_t next_reactor_ = 0;  // acceptor's round-robin cursor
  std::atomic<std::uint64_t> next_conn_id_{1};

  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> loop_wakeups_{0};
  std::atomic<std::uint64_t> udp_datagrams_{0};
  std::atomic<std::uint64_t> connections_rehomed_{0};
};

}  // namespace zht
