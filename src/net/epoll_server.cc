#include "net/epoll_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.h"
#include "net/framing.h"

namespace zht {
namespace {

Status MakeNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status(StatusCode::kInternal, "fcntl O_NONBLOCK failed");
  }
  return Status::Ok();
}

Result<sockaddr_in> ResolveIpv4(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status(StatusCode::kInvalidArgument, "not an IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

EpollServer::EpollServer(EpollServerOptions options,
                         AsyncRequestHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

Result<std::unique_ptr<EpollServer>> EpollServer::Create(
    const EpollServerOptions& options, AsyncRequestHandler handler) {
  std::unique_ptr<EpollServer> server(
      new EpollServer(options, std::move(handler)));
  Status status = server->Setup();
  if (!status.ok()) return status;
  return server;
}

Result<std::unique_ptr<EpollServer>> EpollServer::Create(
    const EpollServerOptions& options, RequestHandler handler) {
  return Create(options, ToAsync(std::move(handler)));
}

Status EpollServer::Setup() {
  auto addr = ResolveIpv4(options_.host, options_.port);
  if (!addr.ok()) return addr.status();

  const int n_reactors = options_.num_reactors < 1 ? 1 : options_.num_reactors;
  for (int i = 0; i < n_reactors; ++i) {
    auto r = std::make_unique<Reactor>();
    r->index = i;
    r->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (r->epoll_fd < 0) return Status(StatusCode::kInternal, "epoll_create1");
    r->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (r->wake_fd < 0) return Status(StatusCode::kInternal, "eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = r->wake_fd;
    ::epoll_ctl(r->epoll_fd, EPOLL_CTL_ADD, r->wake_fd, &ev);
    reactors_.push_back(std::move(r));
  }
  // The UDP socket is owned by the last reactor: distinct from the acceptor
  // when N > 1, and the same single loop when N == 1.
  udp_reactor_ = reactors_.size() - 1;

  std::uint16_t bound_port = options_.port;

  if (options_.enable_tcp) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return Status(StatusCode::kInternal, "socket");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&*addr),
               sizeof(*addr)) < 0) {
      return Status(StatusCode::kInternal,
                    std::string("bind: ") + std::strerror(errno));
    }
    if (::listen(listen_fd_, options_.listen_backlog) < 0) {
      return Status(StatusCode::kInternal, "listen");
    }
    Status s = MakeNonBlocking(listen_fd_);
    if (!s.ok()) return s;

    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&actual), &len);
    bound_port = ntohs(actual.sin_port);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(reactors_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
  }

  if (options_.enable_udp) {
    udp_fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
    if (udp_fd_ < 0) return Status(StatusCode::kInternal, "udp socket");
    sockaddr_in udp_addr = *addr;
    udp_addr.sin_port = htons(bound_port);  // share the TCP port number
    if (::bind(udp_fd_, reinterpret_cast<sockaddr*>(&udp_addr),
               sizeof(udp_addr)) < 0) {
      return Status(StatusCode::kInternal,
                    std::string("udp bind: ") + std::strerror(errno));
    }
    if (bound_port == 0) {
      sockaddr_in actual{};
      socklen_t len = sizeof(actual);
      ::getsockname(udp_fd_, reinterpret_cast<sockaddr*>(&actual), &len);
      bound_port = ntohs(actual.sin_port);
    }
    Status s = MakeNonBlocking(udp_fd_);
    if (!s.ok()) return s;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = udp_fd_;
    ::epoll_ctl(reactors_[udp_reactor_]->epoll_fd, EPOLL_CTL_ADD, udp_fd_,
                &ev);
  }

  address_ = NodeAddress{options_.host, bound_port};
  return Status::Ok();
}

EpollServer::~EpollServer() {
  Stop();
  for (auto& r : reactors_) {
    for (auto& [fd, conn] : r->connections) ::close(fd);
    {
      std::lock_guard<std::mutex> lock(r->handoff_mu);
      for (auto& [fd, conn] : r->handoff) ::close(fd);
      r->handoff.clear();
    }
    if (r->wake_fd >= 0) ::close(r->wake_fd);
    if (r->epoll_fd >= 0) ::close(r->epoll_fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (udp_fd_ >= 0) ::close(udp_fd_);
}

void EpollServer::SetReactorHooks(int reactor, std::function<void()> on_start,
                                  std::function<void()> on_wake) {
  auto& r = reactors_[static_cast<std::size_t>(reactor)];
  r->on_start = std::move(on_start);
  r->on_wake = std::move(on_wake);
}

void EpollServer::SetPlacement(std::function<int(const Request&)> placement) {
  placement_ = std::move(placement);
}

std::function<void()> EpollServer::ReactorWaker(int reactor) {
  int wake_fd = reactors_[static_cast<std::size_t>(reactor)]->wake_fd;
  return [wake_fd] {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd, &one, sizeof(one));
  };
}

Status EpollServer::Start() {
  if (running_.exchange(true)) return Status::Ok();
  for (auto& r : reactors_) {
    Reactor* raw = r.get();
    raw->thread = std::thread([this, raw] { Loop(*raw); });
  }
  return Status::Ok();
}

void EpollServer::Stop() {
  if (!running_.exchange(false)) return;
  for (auto& r : reactors_) {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(r->wake_fd, &one, sizeof(one));
    if (r->thread.joinable()) r->thread.join();
  }
}

void EpollServer::Loop(Reactor& r) {
  r.thread_id = std::this_thread::get_id();
  if (r.on_start) r.on_start();
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_relaxed)) {
    int n = ::epoll_wait(r.epoll_fd, events, kMaxEvents, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      ZHT_ERROR << "epoll_wait failed: " << std::strerror(errno);
      break;
    }
    if (n > 0) loop_wakeups_.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      std::uint32_t mask = events[i].events;
      if (fd == r.wake_fd) {
        std::uint64_t drained;
        [[maybe_unused]] ssize_t rd =
            ::read(r.wake_fd, &drained, sizeof(drained));
        AdoptHandoff(r);
        continue;
      }
      if (fd == listen_fd_) {
        AcceptAll();
        continue;
      }
      if (fd == udp_fd_) {
        HandleUdp();
        continue;
      }
      if (mask & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(r, fd);
        continue;
      }
      if (mask & EPOLLIN) HandleReadable(r, fd);
      if (r.connections.count(fd) && (mask & EPOLLOUT)) HandleWritable(r, fd);
    }
    // Responses that completed on other threads (flusher, finisher, another
    // reactor's shard) since the last pass, then the executor hook so
    // shard mailbox posts targeting this reactor are drained promptly.
    DrainCompletions(r);
    if (r.on_wake) r.on_wake();
  }
}

void EpollServer::AcceptAll() {
  Reactor& r0 = *reactors_[0];
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    Connection conn;
    conn.id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);

    // Round-robin distribution: reactor 0 adopts its own share directly;
    // every other reactor gets the fd through its handoff queue and is
    // woken via its eventfd, registering the fd in its own epoll set.
    Reactor& target = *reactors_[next_reactor_ % reactors_.size()];
    ++next_reactor_;
    target.assigned.fetch_add(1, std::memory_order_relaxed);
    if (&target == &r0) {
      r0.connections.emplace(fd, std::move(conn));
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      ::epoll_ctl(r0.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    } else {
      {
        std::lock_guard<std::mutex> lock(target.handoff_mu);
        target.handoff.emplace_back(fd, std::move(conn));
      }
      std::uint64_t one_ev = 1;
      [[maybe_unused]] ssize_t n =
          ::write(target.wake_fd, &one_ev, sizeof(one_ev));
    }
  }
}

void EpollServer::AdoptHandoff(Reactor& r) {
  std::vector<std::pair<int, Connection>> adopted;
  {
    std::lock_guard<std::mutex> lock(r.handoff_mu);
    adopted.swap(r.handoff);
  }
  for (auto& [fd, conn] : adopted) {
    r.connections.emplace(fd, std::move(conn));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    // A re-homed connection arrives with its first frame already buffered
    // (rewound by MoveConnection); consume it now rather than waiting for
    // more bytes.
    ProcessBuffered(r, fd);
  }
}

void EpollServer::DrainCompletions(Reactor& r) {
  std::vector<std::function<void()>> done;
  {
    std::lock_guard<std::mutex> lock(r.done_mu);
    done.swap(r.done);
  }
  for (auto& fn : done) fn();
}

void EpollServer::HandleReadable(Reactor& r, int fd) {
  auto it = r.connections.find(fd);
  if (it == r.connections.end()) return;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      it->second.in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {  // peer closed
      CloseConnection(r, fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(r, fd);
    return;
  }
  ProcessBuffered(r, fd);
}

void EpollServer::MoveConnection(Reactor& r, int fd, std::size_t rewind_offset,
                                 Reactor& target) {
  auto it = r.connections.find(fd);
  if (it == r.connections.end()) return;
  Connection moved = std::move(it->second);
  moved.in_offset = rewind_offset;  // target re-decodes the triggering frame
  ::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  r.connections.erase(it);
  connections_rehomed_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(target.handoff_mu);
    target.handoff.emplace_back(fd, std::move(moved));
  }
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(target.wake_fd, &one, sizeof(one));
}

void EpollServer::ProcessBuffered(Reactor& r, int fd) {
  // Frames are consumed through the connection's cursor (no per-frame
  // erase); the buffer compacts once after the drain. `handler_` may be
  // reentrant (it can stop the server, complete inline — growing this
  // connection's out buffer — or, indirectly, grow this reactor's
  // connection map, rehashing it), so no reference into the map is held
  // across a handler call: the connection is re-found — and the reference
  // re-bound — after every request.
  bool malformed = false;
  for (;;) {
    auto it = r.connections.find(fd);
    if (it == r.connections.end()) return;
    Connection& conn = it->second;
    const std::size_t pre_offset = conn.in_offset;
    auto payload = ExtractFrameAt(conn.in, &conn.in_offset, &malformed);
    if (!payload) break;
    auto request = Request::Decode(*payload);  // copies out of conn.in
    if (!request.ok()) {
      Response response;
      response.status = Status(StatusCode::kCorruption).raw();
      const std::uint64_t slot = conn.next_slot++;
      CompleteLocal(r, fd, conn.id, slot, FrameMessage(response.Encode()));
      continue;
    }
    if (!conn.placed) {
      conn.placed = true;
      if (placement_) {
        int preferred = placement_(*request);
        if (preferred >= 0 &&
            preferred < static_cast<int>(reactors_.size()) &&
            preferred != r.index && conn.out.empty() &&
            conn.out_offset == 0 && conn.parked.empty() &&
            conn.next_slot == conn.flushed_slot) {
          // Re-home the whole connection to the reactor that owns this
          // request's partition; it will re-decode this frame itself.
          MoveConnection(r, fd, pre_offset, *reactors_[preferred]);
          return;
        }
      }
    }
    const std::uint64_t slot = conn.next_slot++;
    const std::uint64_t conn_id = conn.id;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t reactor_index = static_cast<std::size_t>(r.index);
    handler_(std::move(*request),
             [this, reactor_index, fd, conn_id, slot](Response&& response) {
               CompleteResponse(reactor_index, fd, conn_id, slot,
                                std::move(response));
             });
  }
  auto it = r.connections.find(fd);
  if (it == r.connections.end()) return;
  if (malformed) {
    CloseConnection(r, fd);
    return;
  }
  Connection& conn = it->second;
  if (conn.in_offset > 0) {
    conn.in.erase(0, conn.in_offset);
    conn.in_offset = 0;
  }
  if (!conn.out.empty()) HandleWritable(r, fd);
}

void EpollServer::CompleteResponse(std::size_t reactor, int fd,
                                   std::uint64_t conn_id, std::uint64_t slot,
                                   Response&& response) {
  Reactor& r = *reactors_[reactor];
  std::string encoded = FrameMessage(response.Encode());
  // Inline when already on the owning reactor's thread (the hot path: the
  // handler completed synchronously inside ProcessBuffered) and when the
  // loops are not running (tests drive ProcessBuffered directly).
  if (std::this_thread::get_id() == r.thread_id ||
      !running_.load(std::memory_order_acquire)) {
    CompleteLocal(r, fd, conn_id, slot, std::move(encoded));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(r.done_mu);
    r.done.push_back([this, &r, fd, conn_id, slot,
                      encoded = std::move(encoded)]() mutable {
      CompleteLocal(r, fd, conn_id, slot, std::move(encoded));
    });
  }
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(r.wake_fd, &one, sizeof(one));
}

void EpollServer::CompleteLocal(Reactor& r, int fd, std::uint64_t conn_id,
                                std::uint64_t slot, std::string encoded) {
  auto it = r.connections.find(fd);
  // The connection may have died (or the fd been recycled for a new one)
  // while its response was in flight: drop the orphaned completion.
  if (it == r.connections.end() || it->second.id != conn_id) return;
  Connection& conn = it->second;
  if (slot != conn.flushed_slot) {
    conn.parked.emplace(slot, std::move(encoded));  // out-of-order: park
    return;
  }
  conn.out += encoded;
  ++conn.flushed_slot;
  // Drain any successors that completed early and parked behind this slot.
  for (auto parked = conn.parked.find(conn.flushed_slot);
       parked != conn.parked.end();
       parked = conn.parked.find(conn.flushed_slot)) {
    conn.out += parked->second;
    conn.parked.erase(parked);
    ++conn.flushed_slot;
  }
  HandleWritable(r, fd);
}

void EpollServer::HandleWritable(Reactor& r, int fd) {
  auto it = r.connections.find(fd);
  if (it == r.connections.end()) return;
  Connection& conn = it->second;
  while (conn.out_offset < conn.out.size()) {
    ssize_t n = ::write(fd, conn.out.data() + conn.out_offset,
                        conn.out.size() - conn.out_offset);
    if (n > 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT;
      ev.data.fd = fd;
      ::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, fd, &ev);
      return;
    }
    if (errno == EINTR) continue;
    CloseConnection(r, fd);
    return;
  }
  conn.out.clear();
  conn.out_offset = 0;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  ::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, fd, &ev);
}

void EpollServer::HandleUdp() {
  char buf[64 << 10];
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    ssize_t n = ::recvfrom(udp_fd_, buf, sizeof(buf), 0,
                           reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    udp_datagrams_.fetch_add(1, std::memory_order_relaxed);
    auto request = Request::Decode(std::string_view(buf, static_cast<std::size_t>(n)));
    const int fd = udp_fd_;
    // The response datagram doubles as the acknowledgement (§III.F); sendto
    // is per-datagram atomic, so completing from any thread is safe. The
    // peer address travels by value inside the callback.
    auto reply = [fd, peer, peer_len](Response&& response) {
      std::string payload = response.Encode();
      ::sendto(fd, payload.data(), payload.size(), 0,
               reinterpret_cast<const sockaddr*>(&peer), peer_len);
    };
    if (request.ok()) {
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      handler_(std::move(*request), reply);
    } else {
      Response response;
      response.status = Status(StatusCode::kCorruption).raw();
      reply(std::move(response));
    }
  }
}

void EpollServer::CloseConnection(Reactor& r, int fd) {
  ::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  r.connections.erase(fd);
}

}  // namespace zht
