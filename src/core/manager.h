// Manager (§III.B–C): "a service running on each physical node [that]
// takes charge of ... managing the membership table, starting/stopping
// instances, and partition migration."
//
// The manager admits joining nodes (migrating the partitions the placement
// policy assigns to the newcomer — see hashing/placement_policy.h),
// coordinates planned departures, reacts to failure reports (reassigning
// ownership to replicas and rebuilding the replication level), and
// broadcasts incremental membership updates.
#pragma once

#include <mutex>

#include "common/status.h"
#include "core/cluster_options.h"
#include "membership/membership_table.h"
#include "net/transport.h"

namespace zht {

struct ManagerOptions {
  // Shared with servers and clients; migration/repair commands get 2x the
  // peer budget because they stream whole partitions, not single ops.
  ClusterOptions cluster;
};

struct ManagerStats {
  std::uint64_t joins_admitted = 0;
  // Joins that re-used an existing instance id because the joiner came back
  // at a previously registered address (counted inside joins_admitted).
  std::uint64_t rejoins_admitted = 0;
  std::uint64_t departures = 0;
  std::uint64_t failures_handled = 0;
  std::uint64_t partitions_migrated = 0;
  std::uint64_t broadcasts_sent = 0;
  // kRepair commands issued to surviving owners after a failure — one per
  // partition whose replica chain contained the dead instance.
  std::uint64_t repairs_commanded = 0;
};

class Manager {
 public:
  Manager(MembershipTable table, const ManagerOptions& options,
          ClientTransport* transport);

  // Network entry point (JoinRequest, DepartRequest, MembershipPull/Push).
  Response Handle(Request&& request);
  RequestHandler AsHandler() {
    return [this](Request&& req) { return Handle(std::move(req)); };
  }

  // Admits a new, already-running instance: adds it to the table (or, for
  // an instance re-joining at a previously used address, revives its old
  // id so routing state stays consistent), pushes the joiner the current
  // table before anything moves, then migrates exactly the partitions the
  // placement policy wants on a different owner (whole-partition
  // migration, no rehashing) and broadcasts the incremental update.
  Result<InstanceId> AdmitJoin(const NodeAddress& new_instance,
                               std::uint32_t physical_node);

  // Planned departure (§III.C): migrate the instance's partitions to the
  // owners the placement policy picks from the survivors, then mark it
  // gone and broadcast.
  Status Depart(InstanceId id);

  // Unplanned failure: reassign each of the dead instance's partitions to
  // its first alive replica, broadcast, and command the new owners to
  // rebuild the replication level.
  Status HandleFailure(InstanceId id);

  // Sends the (delta since `since_epoch`) table to every alive instance
  // and every peer manager.
  void BroadcastDelta(std::uint32_t since_epoch);

  // Other physical nodes' managers; they receive membership broadcasts so
  // any manager can serve joins and failure reports.
  void SetPeerManagers(std::vector<NodeAddress> peers);

  MembershipTable TableSnapshot() const;
  ManagerStats stats() const;

 private:
  struct PlacementMove {
    PartitionId partition;
    InstanceId from;
    NodeAddress from_address;
    InstanceId to;
    NodeAddress to_address;
  };

  // Diff of the placement policy's desired assignment against the current
  // table over the alive instances; mu_ must be held. Partitions whose
  // current owner is dead are skipped — failure handling owns those.
  std::vector<PlacementMove> PlanPlacementMoves();

  Status CommandMigration(const NodeAddress& source, PartitionId partition,
                          const NodeAddress& target);
  void PushTableTo(const NodeAddress& address, std::uint32_t since_epoch);

  // Replica chain (owner + replicas) of every partition, for diffing
  // across a membership change; mu_ must be held. A member that enters a
  // chain through a join, rejoin, or departure holds no (or stale) data
  // for it until the owner streams a copy — exactly like a member
  // recruited by failure handling — so any chain-changed partition needs
  // a repair commanded, or failover reads against it return stale state.
  std::vector<std::vector<InstanceId>> SnapshotChains() const;

  // kRepair to the alive owner of each partition: digest-probe the chain
  // and stream lost/stale copies (ZhtServer::StartRebuild). Owners ack on
  // acceptance and rebuild online in the background.
  void CommandRepairs(const std::vector<PartitionId>& partitions);

  ManagerOptions options_;
  ClientTransport* transport_;
  mutable std::mutex mu_;
  MembershipTable table_;
  std::vector<NodeAddress> peer_managers_;
  ManagerStats stats_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace zht
