// Manager (§III.B–C): "a service running on each physical node [that]
// takes charge of ... managing the membership table, starting/stopping
// instances, and partition migration."
//
// The manager admits joining nodes (taking partitions from the most-loaded
// instance), coordinates planned departures, reacts to failure reports
// (reassigning ownership to replicas and rebuilding the replication
// level), and broadcasts incremental membership updates.
#pragma once

#include <mutex>

#include "common/status.h"
#include "core/cluster_options.h"
#include "membership/membership_table.h"
#include "net/transport.h"

namespace zht {

struct ManagerOptions {
  // Shared with servers and clients; migration/repair commands get 2x the
  // peer budget because they stream whole partitions, not single ops.
  ClusterOptions cluster;
};

struct ManagerStats {
  std::uint64_t joins_admitted = 0;
  std::uint64_t departures = 0;
  std::uint64_t failures_handled = 0;
  std::uint64_t partitions_migrated = 0;
  std::uint64_t broadcasts_sent = 0;
  // kRepair commands issued to surviving owners after a failure — one per
  // partition whose replica chain contained the dead instance.
  std::uint64_t repairs_commanded = 0;
};

class Manager {
 public:
  Manager(MembershipTable table, const ManagerOptions& options,
          ClientTransport* transport);

  // Network entry point (JoinRequest, DepartRequest, MembershipPull/Push).
  Response Handle(Request&& request);
  RequestHandler AsHandler() {
    return [this](Request&& req) { return Handle(std::move(req)); };
  }

  // Admits a new, already-running instance: adds it to the table, moves
  // half of the most-loaded instance's partitions onto it (whole-partition
  // migration, no rehashing), then broadcasts the incremental update.
  Result<InstanceId> AdmitJoin(const NodeAddress& new_instance,
                               std::uint32_t physical_node);

  // Planned departure (§III.C): migrate the instance's partitions to the
  // least-loaded remaining instance, then mark it gone and broadcast.
  Status Depart(InstanceId id);

  // Unplanned failure: reassign each of the dead instance's partitions to
  // its first alive replica, broadcast, and command the new owners to
  // rebuild the replication level.
  Status HandleFailure(InstanceId id);

  // Sends the (delta since `since_epoch`) table to every alive instance
  // and every peer manager.
  void BroadcastDelta(std::uint32_t since_epoch);

  // Other physical nodes' managers; they receive membership broadcasts so
  // any manager can serve joins and failure reports.
  void SetPeerManagers(std::vector<NodeAddress> peers);

  MembershipTable TableSnapshot() const;
  ManagerStats stats() const;

 private:
  Status CommandMigration(const NodeAddress& source, PartitionId partition,
                          const NodeAddress& target);
  void PushTableTo(const NodeAddress& address, std::uint32_t since_epoch);

  ManagerOptions options_;
  ClientTransport* transport_;
  mutable std::mutex mu_;
  MembershipTable table_;
  std::vector<NodeAddress> peer_managers_;
  ManagerStats stats_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace zht
