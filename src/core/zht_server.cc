#include "core/zht_server.h"

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/log.h"
#include "novoht/novoht.h"
#include "serialize/batch.h"
#include "serialize/metrics_codec.h"
#include "serialize/wire.h"

namespace zht {
namespace {

// Packs key/value pairs for MigrateData batches:
// varint count, then per pair: varint klen, varint vlen, key, value.
std::string PackPairs(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::string out;
  wire::Writer w(&out);
  w.PutVarint(pairs.size());
  for (const auto& [key, value] : pairs) {
    w.PutVarint(key.size());
    w.PutVarint(value.size());
    w.PutBytes(key);
    w.PutBytes(value);
  }
  return out;
}

Result<std::vector<std::pair<std::string, std::string>>> UnpackPairs(
    std::string_view data) {
  wire::Reader r(data);
  std::uint64_t count;
  if (!r.GetVarint(&count)) {
    return Status(StatusCode::kCorruption, "pair batch header");
  }
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t klen, vlen;
    std::string_view key, value;
    if (!r.GetVarint(&klen) || !r.GetVarint(&vlen) ||
        !r.GetBytes(klen, &key) || !r.GetBytes(vlen, &value)) {
      return Status(StatusCode::kCorruption, "pair batch payload");
    }
    pairs.emplace_back(std::string(key), std::string(value));
  }
  return pairs;
}

std::unique_ptr<KVStore> DefaultStoreFactory(InstanceId, PartitionId) {
  auto store = NoVoHT::Open(NoVoHTOptions{});  // in-memory NoVoHT
  return store.ok() ? std::move(*store) : nullptr;
}

bool IsDataOp(OpCode op) {
  switch (op) {
    case OpCode::kInsert:
    case OpCode::kLookup:
    case OpCode::kRemove:
    case OpCode::kAppend:
      return true;
    default:
      return false;
  }
}

// At-most-once window for the non-idempotent append, per shard (the shard
// is the unit of single-threaded ownership, so dedup needs no lock).
constexpr std::size_t kDedupWindow = 8192;

// Streams issued per rebuild leg before the target is abandoned (the first
// attempt plus re-streams after a failed or mismatched End).
constexpr int kRebuildMaxAttempts = 3;

// Rebuild shadow stores live at the canonical partition id plus this offset,
// so a persistent store factory gives them their own file path and they can
// never collide with a live partition (partition counts are far smaller).
constexpr PartitionId kShadowPartitionOffset = 1u << 20;

// Executor identity of the current thread, per server. A reactor registers
// itself via EnterExecutorThread; every other thread reads as -1.
struct ExecutorTls {
  const void* owner = nullptr;
  int executor = -1;
};
thread_local ExecutorTls tls_executor;

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

StoreFactory MakeNoVoHTStoreFactory(std::string dir,
                                    const ClusterOptions& cluster) {
  return [dir = std::move(dir), cluster](
             InstanceId self,
             PartitionId partition) -> std::unique_ptr<KVStore> {
    NoVoHTOptions options;
    options.path = dir + "/i" + std::to_string(self) + "_p" +
                   std::to_string(partition) + ".novoht";
    options.durability = cluster.durability;
    options.max_commit_latency = cluster.max_commit_latency;
    // The server acks once per request/carrier from the flusher's
    // NotifyDurable callback; mutators must not also block per-op inside
    // the shard drain.
    options.wait_for_durable = false;
    auto store = NoVoHT::Open(options);
    if (!store.ok()) {
      ZHT_WARN << "NoVoHT store factory failed for " << options.path << ": "
               << store.status().ToString();
      return nullptr;
    }
    return std::move(*store);
  };
}

ZhtServer::ZhtServer(MembershipTable table, const ZhtServerOptions& options,
                     ClientTransport* peer_transport)
    : options_(options),
      peer_transport_(peer_transport),
      space_(table.space()),
      epoch_(table.epoch()) {
  if (!options_.store_factory) options_.store_factory = DefaultStoreFactory;

  std::size_t num_shards = options_.num_shards;
  if (num_shards == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_shards = std::max(1u, std::min(4u, hw == 0 ? 1u : hw));
  }
  shards_.reserve(num_shards);
  const std::size_t cache_entries = options_.cluster.hot_cache_entries;
  for (std::size_t s = 0; s < num_shards; ++s) {
    auto shard = s + 1 == num_shards
                     ? std::make_unique<Shard>(std::move(table), cache_entries)
                     : std::make_unique<Shard>(table, cache_entries);
    shard->index = s;
    shards_.push_back(std::move(shard));
  }

  // Resolve every hot-path metric handle once; Record()/Increment() through
  // these pointers never acquires a lock.
  static constexpr const char* kDataOpNames[4] = {"insert", "lookup", "remove",
                                                  "append"};
  for (int i = 0; i < 4; ++i) {
    data_op_hist_[i] = metrics_.GetHistogram(
        std::string("server.op.") + kDataOpNames[i] + ".latency_ns");
  }
  batch_hist_ = metrics_.GetHistogram("server.op.batch.latency_ns");
  batch_size_hist_ = metrics_.GetHistogram("server.batch.size");
  replication_fanout_hist_ = metrics_.GetHistogram("server.replication.fanout");
  mailbox_depth_hist_ = metrics_.GetHistogram("server.mailbox.depth");
  replication_sync_counter_ = metrics_.GetCounter("server.replication.sync");
  replication_async_counter_ = metrics_.GetCounter("server.replication.async");
  redirect_counter_ = metrics_.GetCounter("server.redirects");
  forwards_counter_ = metrics_.GetCounter("reactor.forwards");
  mailbox_full_counter_ = metrics_.GetCounter("reactor.mailbox_full");
  cache_hit_counter_ = metrics_.GetCounter("server.cache.hit");
  cache_miss_counter_ = metrics_.GetCounter("server.cache.miss");
  cache_invalidate_counter_ = metrics_.GetCounter("server.cache.invalidate");
  cache_drop_counter_ = metrics_.GetCounter("server.cache.drop");
  shed_counter_ = metrics_.GetCounter("server.admission.shed");

  const std::size_t num_finishers =
      std::max<std::size_t>(2, std::min<std::size_t>(4, num_shards));
  finishers_.reserve(num_finishers);
  for (std::size_t i = 0; i < num_finishers; ++i) {
    finishers_.emplace_back([this] { FinisherLoop(); });
  }
  async_worker_ = std::thread([this] { AsyncReplicationLoop(); });
}

ZhtServer::~ZhtServer() {
  stopping_.store(true, std::memory_order_release);
  // Contract: the hosting front-end has stopped (joined) its reactors
  // before destroying the server, so this thread may drain every shard
  // itself. Finishers and store flushers are still running and may Post
  // concurrently — the unbind is an atomic store and the waker stays
  // callable (the front-end's fds outlive this server).
  for (auto& shard : shards_) {
    shard->executor.store(-1, std::memory_order_release);
  }
  // Drain remaining mailbox work and wait for every in-flight request to
  // complete (durability callbacks park on store flushers; replication
  // finishers are still running and are stopped only after this).
  for (;;) {
    for (auto& shard : shards_) DrainShared(*shard);
    if (inflight_.load(std::memory_order_acquire) == 0) break;
    std::unique_lock<std::mutex> lock(idle_mu_);
    idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
  {
    std::lock_guard<std::mutex> lock(finisher_mu_);
    finishers_stop_ = true;
  }
  finisher_cv_.notify_all();
  for (std::thread& t : finishers_) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    async_stop_ = true;
  }
  queue_cv_.notify_all();
  if (async_worker_.joinable()) async_worker_.join();
  // Tear the stores down while this server's mutexes and condition
  // variables are still alive: destroying a store joins its flusher
  // thread, which may still be exiting a signal (EnqueueFinisher,
  // OnRequestComplete) issued from its final durability callback.
  for (auto& shard : shards_) shard->stores.clear();
}

// ---------------------------------------------------------------------------
// Mailbox machinery
// ---------------------------------------------------------------------------

int ZhtServer::CurrentExecutor() const {
  return tls_executor.owner == this ? tls_executor.executor : -1;
}

void ZhtServer::EnterExecutorThread(int executor) {
  tls_executor.owner = this;
  tls_executor.executor = executor;
}

void ZhtServer::BindShardExecutor(std::size_t shard, int executor,
                                  std::function<void()> waker) {
  if (shard >= shards_.size() || executor < 0) return;
  // Every executor gets its own SPSC ring into every shard (any reactor may
  // forward to any shard). Binds happen on the setup thread before traffic.
  for (auto& s : shards_) {
    while (s->rings.size() <= static_cast<std::size_t>(executor)) {
      s->rings.push_back(
          std::make_unique<SpscTaskRing>(options_.mailbox_ring_capacity));
    }
  }
  shards_[shard]->executor.store(executor, std::memory_order_release);
  shards_[shard]->waker = std::move(waker);
}

void ZhtServer::Post(Shard& shard, ShardTask task) {
  Enqueue(shard, std::move(task));
  Kick(shard);
}

void ZhtServer::Enqueue(Shard& shard, ShardTask task) {
  const int from = CurrentExecutor();
  const int owner = shard.executor.load(std::memory_order_acquire);
  if (owner >= 0 && from != owner) {
    // Cross-reactor forward: a message into the owner's mailbox, not a
    // lock on the owner's state.
    shard.forwarded.fetch_add(1, kRelaxed);
    forwards_counter_->Increment();
  }
  if (from >= 0 && static_cast<std::size_t>(from) < shard.rings.size()) {
    if (!shard.rings[from]->Push(std::move(task))) {
      // Bounded ring overflowed; spill to the MPSC queue (unbounded) so
      // the producer never blocks inside its own event loop.
      mailbox_full_counter_->Increment();
      shard.overflow.Push(std::move(task));
    }
  } else {
    shard.overflow.Push(std::move(task));
  }
  shard.queued.fetch_add(1, std::memory_order_release);
}

void ZhtServer::Kick(Shard& shard) {
  const int owner = shard.executor.load(std::memory_order_acquire);
  if (owner >= 0) {
    if (CurrentExecutor() == owner) {
      DrainBound(shard);
    } else if (shard.waker) {
      shard.waker();
    }
    return;
  }
  DrainShared(shard);
}

void ZhtServer::DrainBound(Shard& shard) {
  // Owner executor thread only; `draining` guards against a task posting
  // back into its own shard re-entering the drain.
  if (shard.draining) return;
  if (shard.queued.load(std::memory_order_acquire) == 0) return;
  shard.draining = true;
  DrainAll(shard);
  shard.draining = false;
}

void ZhtServer::DrainShared(Shard& shard) {
  // Unbound shards: whichever thread posts drains, serialized by a CAS on
  // `active`. A loser returns — the winner's drain loop covers its task.
  while (shard.queued.load(std::memory_order_acquire) > 0) {
    if (shard.active.exchange(true, std::memory_order_acquire)) return;
    const std::size_t ran = DrainAll(shard);
    shard.active.store(false, std::memory_order_release);
    // queued > 0 with nothing poppable means a producer is mid-push (the
    // MPSC link window); give it a beat and re-check.
    if (ran == 0) std::this_thread::yield();
  }
}

std::size_t ZhtServer::DrainAll(Shard& shard) {
  const std::uint64_t depth = shard.queued.load(std::memory_order_acquire);
  if (depth > 0) {
    shard.mailbox_depth.Record(static_cast<std::int64_t>(depth));
    mailbox_depth_hist_->Record(static_cast<std::int64_t>(depth));
  }
  std::size_t ran = 0;
  for (;;) {
    ShardTask task;
    bool got = false;
    for (auto& ring : shard.rings) {
      if (ring->Pop(&task)) {
        got = true;
        break;
      }
    }
    if (!got) got = shard.overflow.Pop(&task);
    if (!got) break;
    shard.queued.fetch_sub(1, std::memory_order_acq_rel);
    ++ran;
    task(shard);
  }
  return ran;
}

void ZhtServer::RunExecutor(int executor) {
  for (auto& shard : shards_) {
    if (shard->executor.load(std::memory_order_acquire) == executor) {
      DrainBound(*shard);
    }
  }
}

int ZhtServer::PreferredExecutor(const Request& request) const {
  if (!IsDataOp(request.op)) return -1;
  return ShardForPartition(space_.PartitionOfKey(request.key))
      .executor.load(std::memory_order_acquire);
}

void ZhtServer::OnRequestComplete() {
  if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      stopping_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(idle_mu_);
    idle_cv_.notify_all();
  }
}

void ZhtServer::RecordDataOpLatency(OpCode op, Nanos start) {
  const auto op_index = static_cast<std::size_t>(op) - 1;
  if (op_index < 4) {
    data_op_hist_[op_index]->Record(SystemClock::Instance().Now() - start);
  }
}

// ---------------------------------------------------------------------------
// Ingress dispatch
// ---------------------------------------------------------------------------

void ZhtServer::HandleAsync(Request&& request, ResponseCallback done) {
  if (stopping_.load(std::memory_order_acquire)) {
    Response resp;
    resp.seq = request.seq;
    resp.status = Status(StatusCode::kUnavailable, "server stopping").raw();
    done(std::move(resp));
    return;
  }
  inflight_.fetch_add(1, std::memory_order_acq_rel);

  if (IsDataOp(request.op)) {
    // Single-key hot path: partition from the immutable space copy, then
    // one hop into the owning shard's mailbox. No locks anywhere. Cache
    // hits and sheds answer with the raw `done` before any std::function
    // wrapper is built — the hit path's only allocation is the value copy.
    const Nanos start = SystemClock::Instance().Now();
    Shard& shard = ShardForPartition(space_.PartitionOfKey(request.key));
    if (request.op == OpCode::kLookup &&
        TryServeFromCache(shard, request, done, start)) {
      OnRequestComplete();
      return;
    }
    if (MaybeShed(shard, request, done)) {
      OnRequestComplete();
      return;
    }
    const std::size_t charge = request.key.size() + request.value.size();
    shard.inflight_bytes.fetch_add(charge, kRelaxed);
    Post(shard, [this, request = std::move(request), done = std::move(done),
                 start, charge](Shard& sh) mutable {
      sh.inflight_bytes.fetch_sub(charge, kRelaxed);
      ExecDataOp(sh, std::move(request),
                 [this, done = std::move(done)](Response&& resp) mutable {
                   done(std::move(resp));
                   OnRequestComplete();
                 },
                 start);
    });
    return;
  }

  // Every exit path below runs through `finish`, which releases the
  // in-flight reference the destructor waits on.
  ResponseCallback finish = [this,
                             done = std::move(done)](Response&& resp) mutable {
    done(std::move(resp));
    OnRequestComplete();
  };

  switch (request.op) {
    case OpCode::kBatch:
      StartBatch(std::move(request), std::move(finish));
      return;
    case OpCode::kPing: {
      Response resp;
      resp.seq = request.seq;
      resp.epoch = epoch_.load(kRelaxed);
      finish(std::move(resp));
      return;
    }
    case OpCode::kMembershipPull: {
      Post(*shards_.front(),
           [seq = request.seq, since = request.epoch,
            done = std::move(finish)](Shard& sh) mutable {
             Response resp;
             resp.seq = seq;
             resp.epoch = sh.table.epoch();
             resp.membership = since == 0 ? sh.table.EncodeFull()
                                          : sh.table.EncodeDelta(since);
             done(std::move(resp));
           });
      return;
    }
    case OpCode::kMembershipPush:
      StartMembershipPush(std::move(request), std::move(finish));
      return;
    case OpCode::kMigrateBegin: {
      Post(ShardForPartition(request.partition),
           [this, request = std::move(request),
            done = std::move(finish)](Shard& sh) mutable {
             ExecMigrateBegin(sh, std::move(request), std::move(done));
           });
      return;
    }
    case OpCode::kMigrateData: {
      Post(ShardForPartition(request.partition),
           [this, request = std::move(request),
            done = std::move(finish)](Shard& sh) mutable {
             ExecMigrateData(sh, std::move(request), std::move(done));
           });
      return;
    }
    case OpCode::kMigrateEnd: {
      Post(ShardForPartition(request.partition),
           [this, request = std::move(request),
            done = std::move(finish)](Shard& sh) mutable {
             ExecMigrateEnd(sh, std::move(request), std::move(done));
           });
      return;
    }
    case OpCode::kMigrateOut: {
      const std::uint64_t seq = request.seq;
      auto target = NodeAddress::Parse(request.value);
      if (!target.ok()) {
        Response resp;
        resp.seq = seq;
        resp.status = target.status().raw();
        finish(std::move(resp));
        return;
      }
      StartMigrateOut(request.partition, *target,
                      [this, seq, done = std::move(finish)](
                          Status status) mutable {
                        Response resp;
                        resp.seq = seq;
                        resp.status = status.raw();
                        resp.epoch = epoch_.load(kRelaxed);
                        done(std::move(resp));
                      });
      return;
    }
    case OpCode::kRepair: {
      // Ack as soon as the command is accepted — the rebuild streams in the
      // background (the manager needs delivery, not completion; RepairPartition
      // is the blocking form for callers that must wait).
      const PartitionId partition = request.partition;
      Response resp;
      resp.seq = request.seq;
      resp.epoch = epoch_.load(kRelaxed);
      finish(std::move(resp));
      StartRebuild(partition, [partition](Status status) {
        if (!status.ok()) {
          ZHT_WARN << "background rebuild of partition " << partition
                   << " incomplete: " << status.ToString();
        }
      });
      return;
    }
    case OpCode::kDigest: {
      Post(ShardForPartition(request.partition),
           [this, request = std::move(request),
            done = std::move(finish)](Shard& sh) mutable {
             ExecDigest(sh, std::move(request), std::move(done));
           });
      return;
    }
    case OpCode::kRebuildBegin: {
      Post(ShardForPartition(request.partition),
           [this, request = std::move(request),
            done = std::move(finish)](Shard& sh) mutable {
             ExecRebuildBegin(sh, std::move(request), std::move(done));
           });
      return;
    }
    case OpCode::kRebuildData: {
      Post(ShardForPartition(request.partition),
           [this, request = std::move(request),
            done = std::move(finish)](Shard& sh) mutable {
             ExecRebuildData(sh, std::move(request), std::move(done));
           });
      return;
    }
    case OpCode::kRebuildEnd: {
      Post(ShardForPartition(request.partition),
           [this, request = std::move(request),
            done = std::move(finish)](Shard& sh) mutable {
             ExecRebuildEnd(sh, std::move(request), std::move(done));
           });
      return;
    }
    case OpCode::kBroadcast: {
      Post(ShardForPartition(space_.PartitionOfKey(request.key)),
           [this, request = std::move(request),
            done = std::move(finish)](Shard& sh) mutable {
             ExecBroadcast(sh, std::move(request), std::move(done));
           });
      return;
    }
    case OpCode::kStats: {
      // Admin introspection: a versioned structured snapshot (counters,
      // gauges, per-opcode latency histograms) encoded with
      // serialize/metrics_codec.h. The census scatters across every shard;
      // the last shard's continuation encodes and completes — no blocking
      // on the ingress thread.
      const std::uint64_t seq = request.seq;
      ScatterCensus([this, seq, done = std::move(finish)](
                        std::vector<ShardCensus> census) mutable {
        Response resp;
        resp.seq = seq;
        resp.epoch = epoch_.load(kRelaxed);
        resp.value = EncodeMetricsSnapshot(BuildSnapshot(census));
        done(std::move(resp));
      });
      return;
    }
    default: {
      Response resp;
      resp.seq = request.seq;
      resp.status = Status(StatusCode::kInvalidArgument).raw();
      finish(std::move(resp));
      return;
    }
  }
}

Response ZhtServer::Handle(Request&& request) {
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Response response;
  };
  auto latch = std::make_shared<Latch>();
  HandleAsync(std::move(request), [latch](Response&& response) {
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      latch->response = std::move(response);
      latch->done = true;
    }
    latch->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->done; });
  return std::move(latch->response);
}

// ---------------------------------------------------------------------------
// Data ops (inside shard drains)
// ---------------------------------------------------------------------------

Response ZhtServer::RedirectTo(const Shard& shard, InstanceId owner,
                               std::uint64_t seq, std::uint32_t requester_epoch,
                               bool include_membership) {
  // Lazy membership update (§III.C): the wrong-owner reply carries the
  // delta the requester is missing — one message per client per partition
  // move.
  Response resp;
  resp.seq = seq;
  resp.status = Status(StatusCode::kRedirect).raw();
  resp.epoch = shard.table.epoch();
  if (include_membership) {
    resp.membership = shard.table.EncodeDelta(requester_epoch);
  }
  if (owner < shard.table.instance_count()) {
    const auto& info = shard.table.Instance(owner);
    resp.redirect_host = info.address.host;
    resp.redirect_port = info.address.port;
  }
  return resp;
}

ZhtServer::DataRoute ZhtServer::RouteDataOp(Shard& shard,
                                            const Request& request,
                                            std::atomic<bool>* delta_gate) {
  DataRoute route;
  route.partition = shard.table.PartitionOfKey(request.key);
  route.epoch = shard.table.epoch();
  route.chain =
      shard.table.ReplicaChain(route.partition, options_.cluster.num_replicas);

  const bool is_replica_traffic =
      request.server_origin && request.replica_index > 0;
  const bool is_client_failover =
      !request.server_origin && request.replica_index > 0;

  if (!is_replica_traffic) {
    bool in_chain = false;
    for (InstanceId member : route.chain) {
      if (member == options_.self) {
        in_chain = true;
        break;
      }
    }
    const bool is_primary =
        !route.chain.empty() && route.chain[0] == options_.self;
    if (!is_primary && !(is_client_failover && in_chain)) {
      stats_.redirects.fetch_add(1, kRelaxed);
      redirect_counter_->Increment();
      route.redirect =
          RedirectTo(shard, route.chain.empty() ? 0 : route.chain[0],
                     request.seq, request.epoch, /*include_membership=*/true);
      if (delta_gate && !route.redirect->membership.empty()) {
        // A batch piggybacks the delta once, on its first redirected
        // sub-op; shard groups race for the claim and losers strip it.
        bool expected = false;
        if (!delta_gate->compare_exchange_strong(
                expected, true, std::memory_order_acq_rel)) {
          route.redirect->membership.clear();
        }
      }
    }
  }
  return route;
}

bool ZhtServer::IsDuplicateAppend(Shard& shard, const Request& request) {
  const std::uint64_t key = request.DedupKey();
  if (key == 0) return false;
  if (shard.dedup_set.count(key)) return true;
  shard.dedup_ring.push_back(key);
  shard.dedup_set.insert(key);
  if (shard.dedup_ring.size() > kDedupWindow) {
    shard.dedup_set.erase(shard.dedup_ring.front());
    shard.dedup_ring.pop_front();
  }
  return false;
}

KVStore* ZhtServer::StoreIn(Shard& shard, PartitionId partition) {
  auto it = shard.stores.find(partition);
  if (it != shard.stores.end()) return it->second.get();
  std::shared_ptr<KVStore> store =
      options_.store_factory(options_.self, partition);
  KVStore* raw = store.get();
  shard.stores.emplace(partition, std::move(store));
  return raw;
}

std::shared_ptr<KVStore> ZhtServer::ShadowStoreIn(Shard& shard,
                                                  PartitionId partition) {
  auto it = shard.shadow_stores.find(partition);
  if (it != shard.shadow_stores.end()) return it->second;
  std::shared_ptr<KVStore> store =
      options_.store_factory(options_.self, partition + kShadowPartitionOffset);
  shard.shadow_stores.emplace(partition, store);
  return store;
}

void ZhtServer::ReleaseStuckRebuilds(Shard& shard) {
  for (auto it = shard.rebuilding.begin(); it != shard.rebuilding.end();) {
    const PartitionId partition = *it;
    const auto chain =
        shard.table.ReplicaChain(partition, options_.cluster.num_replicas);
    if (!chain.empty() && chain[0] == options_.self) {
      it = shard.rebuilding.erase(it);
    } else {
      ++it;
    }
  }
}

void ZhtServer::ReleaseCompletedHandoffs(Shard& shard) {
  for (auto it = shard.handed_off.begin(); it != shard.handed_off.end();) {
    const PartitionId partition = it->first;
    if (partition < shard.table.num_partitions() &&
        shard.table.OwnerOf(partition) != options_.self) {
      const bool had_data = it->second;
      it = shard.handed_off.erase(it);
      ReleaseHandoff(shard, partition, had_data);
    } else {
      ++it;
    }
  }
}

Status ZhtServer::ApplyToStore(Shard& shard, OpCode op, PartitionId partition,
                               std::string_view key, std::string_view value,
                               std::string* out) {
  KVStore* store = StoreIn(shard, partition);
  if (!store) return Status(StatusCode::kInternal, "store factory failed");
  switch (op) {
    case OpCode::kInsert:
      return store->Put(key, value);
    case OpCode::kLookup: {
      auto result = store->Get(key);
      if (!result.ok()) return result.status();
      if (out) *out = std::move(*result);
      return Status::Ok();
    }
    case OpCode::kRemove:
      return store->Remove(key);
    case OpCode::kAppend:
      return store->Append(key, value);
    default:
      return Status(StatusCode::kInvalidArgument, "not a data op");
  }
}

ZhtServer::ReplicaPlan ZhtServer::MakeReplicaPlan(
    const Shard& shard, const std::vector<InstanceId>& chain) const {
  // Resolve every chain address while the shard's table is at hand, so
  // finishers and the async worker never touch a membership table.
  ReplicaPlan plan;
  plan.chain = chain;
  plan.addresses.reserve(chain.size());
  for (InstanceId id : chain) {
    plan.addresses.push_back(id < shard.table.instance_count()
                                 ? shard.table.Instance(id).address
                                 : NodeAddress{});
  }
  return plan;
}

void ZhtServer::ExecDataOp(Shard& shard, Request&& request,
                           ResponseCallback done, Nanos start) {
  DataRoute route = RouteDataOp(shard, request, nullptr);
  const OpCode op = request.op;
  if (route.redirect) {
    done(std::move(*route.redirect));
    RecordDataOpLatency(op, start);
    return;
  }

  Response resp;
  resp.seq = request.seq;
  resp.epoch = route.epoch;
  if (shard.migrating.count(route.partition) ||
      shard.rebuilding.count(route.partition)) {
    // Partition is locked mid-migration (§III.C "Data Migration") or mid-
    // rebuild (between kRebuildBegin and kRebuildEnd): state cannot be
    // modified; the client backs off and retries, which realizes the
    // paper's request queueing at the sender. Rejecting reads too keeps a
    // rebuilding replica from serving half-streamed state.
    resp.status = Status(StatusCode::kMigrating).raw();
    done(std::move(resp));
    RecordDataOpLatency(op, start);
    return;
  }
  if (op == OpCode::kAppend && IsDuplicateAppend(shard, request)) {
    // Retransmission of an append we already applied: acknowledge success
    // without re-applying.
    stats_.duplicate_appends_dropped.fetch_add(1, kRelaxed);
    resp.status = Status::Ok().raw();
    done(std::move(resp));
    RecordDataOpLatency(op, start);
    return;
  }

  std::string lookup_value;
  Status status = ApplyToStore(shard, op, route.partition, request.key,
                               request.value, &lookup_value);
  stats_.ops.fetch_add(1, kRelaxed);
  if (op == OpCode::kLookup) {
    // Fill in-shard, where this partition's store is ordered: the control
    // flow above guarantees it is owned and not mid-migration/rebuild.
    if (status.ok()) {
      CacheFill(shard, route.partition, request.key, lookup_value);
    }
  } else {
    // Synchronous invalidation before the ack can leave this drain: a
    // later probe can never observe the pre-mutation value (DESIGN.md §13).
    CacheInvalidate(shard, request.key);
  }
  // Replication chain for this mutation. A failover write the client
  // placed on a secondary (replica_index > 0, past members its detector
  // marked dead) must still fan out to every other chain member — acking
  // a single copy would silently drop the replication level to one, and
  // the next failure would lose an acked write. The chain is rotated so
  // this instance leads and the usual leg machinery applies; the rotation
  // (not a suffix) matters because a skipped member may in fact be alive
  // — a spurious detector mark — and serving reads.
  std::vector<InstanceId> replication_chain;
  bool failover_accept = false;
  if (status.ok() && op != OpCode::kLookup &&
      options_.cluster.num_replicas > 0 && !request.server_origin &&
      route.chain.size() > 1) {
    if (request.replica_index == 0) {
      replication_chain = route.chain;
    } else {
      auto self_it =
          std::find(route.chain.begin(), route.chain.end(), options_.self);
      if (self_it != route.chain.end()) {
        replication_chain.push_back(options_.self);
        replication_chain.insert(replication_chain.end(),
                                 std::next(self_it), route.chain.end());
        replication_chain.insert(replication_chain.end(), route.chain.begin(),
                                 self_it);
        failover_accept = true;
      }
    }
  }
  const bool replicate = replication_chain.size() > 1;
  resp.status = status.raw();
  resp.value = std::move(lookup_value);

  std::shared_ptr<KVStore> store;
  std::uint64_t token = 0;
  if (resp.ok() && op != OpCode::kLookup) {
    auto it = shard.stores.find(route.partition);
    if (it != shard.stores.end() && it->second) {
      // The token covers exactly the mutations applied so far, including
      // ours — captured in-shard, where this store is ordered.
      store = it->second;
      token = store->last_commit_token();
    }
  }
  if (token == 0 && !replicate) {
    // Hot path: routed, applied, and acked on the owning shard — zero
    // mutexes end to end.
    done(std::move(resp));
    RecordDataOpLatency(op, start);
    return;
  }

  ReplicaPlan plan;
  if (replicate) {
    plan = MakeReplicaPlan(shard, replication_chain);
    plan.all_sync = failover_accept;
    ApplyRebuildDiversions(shard, route.partition, &plan);
  }
  const PartitionId partition = route.partition;
  auto fin = [this, resp = std::move(resp), request = std::move(request),
              plan = std::move(plan), partition, replicate, op, start,
              done = std::move(done)](Status durable) mutable {
    bool do_replicate = replicate;
    if (!durable.ok()) {
      resp.status = durable.raw();
      do_replicate = false;
    }
    if (!do_replicate) {
      done(std::move(resp));
      RecordDataOpLatency(op, start);
      return;
    }
    // A synchronous hop to the secondary keeps primary+secondary strongly
    // consistent; it is peer I/O, so it runs on a finisher, never inside a
    // shard drain or a flusher callback.
    EnqueueFinisher([this, resp = std::move(resp),
                     request = std::move(request), plan = std::move(plan),
                     partition, op, start, done = std::move(done)]() mutable {
      ReplicateSync(request, partition, plan);
      done(std::move(resp));
      RecordDataOpLatency(op, start);
    });
  };
  if (token != 0) {
    // Ack parks on the store's flusher; no thread blocks for the group
    // commit. Concurrent writers join the same commit window.
    store->NotifyDurable(token, std::move(fin));
  } else {
    fin(Status::Ok());
  }
}

// ---------------------------------------------------------------------------
// BATCH: scatter per-shard groups, gather with completion counting
// ---------------------------------------------------------------------------

void ZhtServer::StartBatch(Request&& request, ResponseCallback done) {
  const Nanos start = SystemClock::Instance().Now();
  Response carrier;
  carrier.seq = request.seq;
  auto batch = BatchRequest::Decode(request.value);
  if (!batch.ok()) {
    carrier.status = batch.status().raw();
    done(std::move(carrier));
    return;
  }
  batch_size_hist_->Record(static_cast<std::int64_t>(batch->ops.size()));

  auto gather = std::make_shared<BatchGather>();
  gather->seq = request.seq;
  gather->epoch = epoch_.load(kRelaxed);
  gather->start = start;
  gather->ops = std::move(batch->ops);
  const std::size_t n = gather->ops.size();
  gather->responses.resize(n);
  gather->replicate.assign(n, 0);
  gather->partitions.assign(n, 0);
  gather->plans.resize(n);
  gather->done = std::move(done);

  // Scatter: group sub-op indices by owning shard; each group lands in its
  // shard's mailbox and fills disjoint response slots.
  std::vector<std::vector<std::size_t>> groups(shards_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const Request& op = gather->ops[i];
    if (IsDataOp(op.op)) {
      const PartitionId partition = space_.PartitionOfKey(op.key);
      gather->partitions[i] = partition;
      groups[partition % shards_.size()].push_back(i);
    } else {
      // Batches carry data operations only; nested batches and control
      // messages are rejected per sub-op, not per batch.
      Response sub;
      sub.seq = op.seq;
      sub.status = Status(StatusCode::kInvalidArgument).raw();
      gather->responses[i] = std::move(sub);
    }
  }
  std::size_t active_groups = 0;
  for (const auto& indices : groups) {
    if (!indices.empty()) ++active_groups;
  }
  if (active_groups == 0) {
    gather->remaining.store(1, kRelaxed);
    CompleteBatchGroup(gather);
    return;
  }
  gather->remaining.store(active_groups, kRelaxed);
  const bool server_batch = request.server_origin;
  for (std::size_t s = 0; s < groups.size(); ++s) {
    if (groups[s].empty()) continue;
    Shard& shard = *shards_[s];
    if (!server_batch) {
      // Admission control applies per shard group: an overloaded shard
      // sheds its slice of the batch while the others proceed.
      const std::uint32_t hint = AdmissionRetryHint(shard);
      if (hint != 0) {
        for (std::size_t i : groups[s]) {
          Response sub;
          sub.seq = gather->ops[i].seq;
          sub.epoch = gather->epoch;
          sub.status =
              Status(StatusCode::kUnavailable, "shard over admission budget")
                  .raw();
          sub.retry_after_us = hint;
          gather->responses[i] = std::move(sub);
        }
        stats_.sheds.fetch_add(groups[s].size(), kRelaxed);
        shed_counter_->Increment(groups[s].size());
        CompleteBatchGroup(gather);
        continue;
      }
    }
    std::size_t charge = 0;
    for (std::size_t i : groups[s]) {
      charge += gather->ops[i].key.size() + gather->ops[i].value.size();
    }
    shard.inflight_bytes.fetch_add(charge, kRelaxed);
    Post(shard, [this, gather, indices = std::move(groups[s]),
                 charge](Shard& sh) mutable {
      sh.inflight_bytes.fetch_sub(charge, kRelaxed);
      ExecBatchGroup(sh, gather, std::move(indices));
    });
  }
}

void ZhtServer::ExecBatchGroup(Shard& shard,
                               const std::shared_ptr<BatchGather>& gather,
                               std::vector<std::size_t> indices) {
  for (std::size_t i : indices) {
    const Request& op = gather->ops[i];
    DataRoute route = RouteDataOp(shard, op, &gather->delta_sent);
    gather->partitions[i] = route.partition;
    if (route.redirect) {
      gather->responses[i] = std::move(*route.redirect);
      continue;
    }
    Response sub;
    sub.seq = op.seq;
    sub.epoch = route.epoch;
    if (shard.migrating.count(route.partition) ||
        shard.rebuilding.count(route.partition)) {
      sub.status = Status(StatusCode::kMigrating).raw();
      gather->responses[i] = std::move(sub);
      continue;
    }
    if (op.op == OpCode::kAppend && IsDuplicateAppend(shard, op)) {
      stats_.duplicate_appends_dropped.fetch_add(1, kRelaxed);
      sub.status = Status::Ok().raw();
      gather->responses[i] = std::move(sub);
      continue;
    }
    if (op.op == OpCode::kLookup && !op.server_origin &&
        CacheLookup(shard, op.key, &sub.value)) {
      // Batch sub-ops reach the shard drain before probing (the scatter
      // loop cannot know each sub-op's shard cheaply), but a hit still
      // skips the store lookup and the replica-chain resolution.
      stats_.ops.fetch_add(1, kRelaxed);
      sub.status = Status::Ok().raw();
      gather->responses[i] = std::move(sub);
      continue;
    }
    std::string lookup_value;
    Status status = ApplyToStore(shard, op.op, route.partition, op.key,
                                 op.value, &lookup_value);
    stats_.ops.fetch_add(1, kRelaxed);
    if (op.op == OpCode::kLookup) {
      if (status.ok()) CacheFill(shard, route.partition, op.key, lookup_value);
    } else {
      CacheInvalidate(shard, op.key);
    }
    if (status.ok() && op.op != OpCode::kLookup &&
        options_.cluster.num_replicas > 0 && !op.server_origin &&
        route.chain.size() > 1) {
      // Same rotation rule as ExecDataOp: a failover write accepted at a
      // secondary fans out to every other chain member, never acks one
      // copy, and its legs all go synchronously.
      std::vector<InstanceId> replication_chain;
      bool failover_accept = false;
      if (op.replica_index == 0) {
        replication_chain = route.chain;
      } else {
        auto self_it =
            std::find(route.chain.begin(), route.chain.end(), options_.self);
        if (self_it != route.chain.end()) {
          replication_chain.push_back(options_.self);
          replication_chain.insert(replication_chain.end(),
                                   std::next(self_it), route.chain.end());
          replication_chain.insert(replication_chain.end(),
                                   route.chain.begin(), self_it);
          failover_accept = true;
        }
      }
      if (replication_chain.size() > 1) {
        gather->replicate[i] = 1;
        gather->plans[i] = MakeReplicaPlan(shard, replication_chain);
        gather->plans[i].all_sync = failover_accept;
        ApplyRebuildDiversions(shard, route.partition, &gather->plans[i]);
      }
    }
    sub.status = status.raw();
    sub.value = std::move(lookup_value);
    gather->responses[i] = std::move(sub);
  }

  // Durable ack, once per touched store: tokens are captured after every
  // sub-op applied (monotone, so the latest covers them all), and one
  // NotifyDurable per store parks on its flusher. The last callback fixes
  // any failed partitions' sub-ops and reports the group done.
  struct TouchedStore {
    std::shared_ptr<KVStore> store;
    std::uint64_t token = 0;
    PartitionId partition = 0;
  };
  std::vector<TouchedStore> touched;
  std::unordered_set<PartitionId> seen;
  for (std::size_t i : indices) {
    const Request& op = gather->ops[i];
    if (op.op == OpCode::kLookup) continue;
    if (!gather->responses[i].ok()) continue;  // redirects/migrating/errors
    const PartitionId partition = gather->partitions[i];
    if (!seen.insert(partition).second) continue;
    auto it = shard.stores.find(partition);
    if (it == shard.stores.end() || !it->second) continue;
    const std::uint64_t token = it->second->last_commit_token();
    if (token != 0) touched.push_back({it->second, token, partition});
  }
  if (touched.empty()) {
    CompleteBatchGroup(gather);
    return;
  }

  struct GroupDurable {
    std::vector<std::size_t> indices;
    std::vector<std::pair<PartitionId, Status>> results;
    std::atomic<std::size_t> pending{0};
  };
  auto group = std::make_shared<GroupDurable>();
  group->indices = std::move(indices);
  group->results.resize(touched.size());
  group->pending.store(touched.size(), kRelaxed);
  for (std::size_t j = 0; j < touched.size(); ++j) {
    const PartitionId partition = touched[j].partition;
    touched[j].store->NotifyDurable(
        touched[j].token, [this, gather, group, j, partition](Status status) {
          group->results[j] = {partition, status};
          if (group->pending.fetch_sub(1, std::memory_order_acq_rel) != 1) {
            return;
          }
          std::unordered_set<PartitionId> failed;
          for (const auto& [p, st] : group->results) {
            if (!st.ok()) failed.insert(p);
          }
          if (!failed.empty()) {
            // Sub-ops on a store that failed to sync were never durable:
            // fail them and drop their replication legs.
            for (std::size_t i : group->indices) {
              if (gather->ops[i].op == OpCode::kLookup) continue;
              if (!failed.count(gather->partitions[i])) continue;
              if (!gather->responses[i].ok()) continue;
              gather->responses[i].status =
                  Status(StatusCode::kInternal).raw();
              gather->replicate[i] = 0;
            }
          }
          CompleteBatchGroup(gather);
        });
  }
}

void ZhtServer::CompleteBatchGroup(
    const std::shared_ptr<BatchGather>& gather) {
  if (gather->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    FinalizeBatch(gather);
  }
}

void ZhtServer::FinalizeBatch(const std::shared_ptr<BatchGather>& gather) {
  BatchResponse out;
  out.responses = std::move(gather->responses);
  std::vector<Request> rep_ops;
  std::vector<PartitionId> rep_parts;
  std::vector<ReplicaPlan> rep_plans;
  for (std::size_t i = 0; i < gather->ops.size(); ++i) {
    if (!gather->replicate[i] || !out.responses[i].ok()) continue;
    rep_ops.push_back(std::move(gather->ops[i]));
    rep_parts.push_back(gather->partitions[i]);
    rep_plans.push_back(std::move(gather->plans[i]));
  }
  Response packed = PackBatchResponse(out, gather->seq, gather->epoch);
  if (rep_ops.empty()) {
    batch_hist_->Record(SystemClock::Instance().Now() - gather->start);
    gather->done(std::move(packed));
    return;
  }
  // Replication is peer I/O: a finisher runs it, then completes the
  // carrier — the client's wait covers the synchronous secondary leg.
  EnqueueFinisher(
      [this, packed = std::move(packed), rep_ops = std::move(rep_ops),
       rep_parts = std::move(rep_parts), rep_plans = std::move(rep_plans),
       start = gather->start, done = std::move(gather->done)]() mutable {
        ReplicateBatchResolved(std::move(rep_ops), rep_parts, rep_plans);
        batch_hist_->Record(SystemClock::Instance().Now() - start);
        done(std::move(packed));
      });
}

// ---------------------------------------------------------------------------
// Membership: shard 0 is the epoch authority; pushes fan out to every shard
// ---------------------------------------------------------------------------

void ZhtServer::StartMembershipPush(Request&& request, ResponseCallback done) {
  auto payload = std::make_shared<std::string>(std::move(request.value));
  const std::uint64_t seq = request.seq;
  Post(*shards_.front(), [this, payload, seq,
                          done = std::move(done)](Shard& s0) mutable {
    Status status = s0.table.ApplyUpdate(*payload);
    ReleaseStuckRebuilds(s0);
    ReleaseCompletedHandoffs(s0);
    // Ownership may have moved with the epoch: a cached entry must never
    // outlive this instance's claim on its partition, and membership
    // changes are rare enough that a full clear is the simplest proof.
    CacheClear(s0);
    const std::uint32_t epoch = s0.table.epoch();
    epoch_.store(epoch, kRelaxed);
    if (shards_.size() == 1) {
      Response resp;
      resp.seq = seq;
      resp.status = status.raw();
      resp.epoch = epoch;
      done(std::move(resp));
      return;
    }
    // Scatter the payload to every other shard; the ack waits for all of
    // them so a subsequent request routed anywhere sees the new table —
    // the same fence the old exclusive table lock provided.
    auto gather = std::make_shared<PushGather>();
    gather->seq = seq;
    gather->epoch = epoch;
    gather->status = status;
    gather->remaining.store(shards_.size() - 1, kRelaxed);
    gather->done = std::move(done);
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      Post(*shards_[s], [this, payload, gather](Shard& sh) {
        sh.table.ApplyUpdate(*payload);
        ReleaseStuckRebuilds(sh);
        ReleaseCompletedHandoffs(sh);
        CacheClear(sh);
        if (gather->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          Response resp;
          resp.seq = gather->seq;
          resp.status = gather->status.raw();
          resp.epoch = gather->epoch;
          gather->done(std::move(resp));
        }
      });
    }
  });
}

// ---------------------------------------------------------------------------
// Migration (§III.C): incoming Begin/Data/End are shard tasks; outgoing
// marks the shard, streams from a finisher, and posts completion back
// ---------------------------------------------------------------------------

void ZhtServer::ExecMigrateBegin(Shard& shard, Request&& request,
                                 ResponseCallback done) {
  Response resp;
  resp.seq = request.seq;
  // Fresh store for the incoming partition (replaces any stale replica
  // copy; the authoritative data is what the source streams to us). The
  // shard drain fences out readers of the old store.
  std::shared_ptr<KVStore> store =
      options_.store_factory(options_.self, request.partition);
  shard.stores[request.partition] = std::move(store);
  // The replaced replica copy may have fed the cache; the stream now owns
  // this partition's contents.
  CacheDropPartition(shard, request.partition);
  resp.epoch = shard.table.epoch();
  done(std::move(resp));
}

void ZhtServer::ExecMigrateData(Shard& shard, Request&& request,
                                ResponseCallback done) {
  Response resp;
  resp.seq = request.seq;
  auto pairs = UnpackPairs(request.value);
  if (!pairs.ok()) {
    resp.status = pairs.status().raw();
    done(std::move(resp));
    return;
  }
  KVStore* store = StoreIn(shard, request.partition);
  if (!store) {
    resp.status = Status(StatusCode::kInternal, "store factory failed").raw();
    done(std::move(resp));
    return;
  }
  for (const auto& [key, value] : *pairs) {
    store->Put(key, value);
    // A failover read between Begin and this carrier may have re-filled
    // the cache from the half-streamed store; the streamed value wins.
    CacheInvalidate(shard, key);
  }
  // Ack the carrier only once its pairs are durable (one wait per carrier);
  // the source treats the ack as "these pairs are safely moved".
  const std::uint64_t token = store->last_commit_token();
  if (token == 0) {
    done(std::move(resp));
    return;
  }
  std::shared_ptr<KVStore> pinned = shard.stores[request.partition];
  pinned->NotifyDurable(
      token, [resp = std::move(resp), done = std::move(done)](
                 Status durable) mutable {
        if (!durable.ok()) resp.status = durable.raw();
        done(std::move(resp));
      });
}

void ZhtServer::ExecMigrateEnd(Shard& shard, Request&& request,
                               ResponseCallback done) {
  Response resp;
  resp.seq = request.seq;
  stats_.migrations_in.fetch_add(1, kRelaxed);
  CacheDropPartition(shard, request.partition);
  resp.epoch = shard.table.epoch();
  done(std::move(resp));
}

void ZhtServer::StartMigrateOut(PartitionId partition,
                                const NodeAddress& target,
                                std::function<void(Status)> done) {
  Post(ShardForPartition(partition),
       [this, partition, target, done = std::move(done)](Shard& sh) mutable {
         if (sh.migrating.count(partition)) {
           done(Status(StatusCode::kMigrating, "partition already migrating"));
           return;
         }
         // Mark and snapshot inside the shard drain: no write can land
         // between the mark and the snapshot, so the stream is exact.
         // Writers arriving after see kMigrating and retry (§III.C "Data
         // Migration").
         sh.migrating.insert(partition);
         CacheDropPartition(sh, partition);
         auto pairs = std::make_shared<
             std::vector<std::pair<std::string, std::string>>>();
         auto it = sh.stores.find(partition);
         if (it != sh.stores.end() && it->second) {
           it->second->ForEach(
               [&pairs](std::string_view k, std::string_view v) {
                 pairs->emplace_back(std::string(k), std::string(v));
               });
         }
         EnqueueFinisher(
             [this, partition, target, pairs, done = std::move(done)]() mutable {
               Status status = StreamPartition(partition, target, *pairs);
               FinishMigrateOut(partition, std::move(status), !pairs->empty(),
                                std::move(done));
             });
       });
}

Status ZhtServer::StreamPartition(
    PartitionId partition, const NodeAddress& target,
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  Request begin;
  begin.op = OpCode::kMigrateBegin;
  begin.partition = partition;
  begin.server_origin = true;
  auto begin_result =
      peer_transport_->Call(target, begin, options_.cluster.peer_timeout);
  if (!begin_result.ok()) return begin_result.status();
  if (!begin_result->ok()) return begin_result->status_as_object();

  // Stream in batches ("moving a partition is as easy as moving a file").
  std::vector<std::pair<std::string, std::string>> batch;
  std::size_t batch_bytes = 0;
  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::Ok();
    Request data;
    data.op = OpCode::kMigrateData;
    data.partition = partition;
    data.server_origin = true;
    data.value = PackPairs(batch);
    batch.clear();
    batch_bytes = 0;
    auto result =
        peer_transport_->Call(target, data, options_.cluster.peer_timeout);
    if (!result.ok()) return result.status();
    if (!result->ok()) return result->status_as_object();
    return Status::Ok();
  };
  for (const auto& pair : pairs) {
    batch_bytes += pair.first.size() + pair.second.size() + 16;
    batch.push_back(pair);
    if (batch_bytes >= options_.migrate_batch_bytes) {
      Status status = flush();
      if (!status.ok()) return status;
    }
  }
  Status status = flush();
  if (!status.ok()) return status;

  Request end;
  end.op = OpCode::kMigrateEnd;
  end.partition = partition;
  end.server_origin = true;
  auto end_result =
      peer_transport_->Call(target, end, options_.cluster.peer_timeout);
  if (!end_result.ok()) return end_result.status();
  if (!end_result->ok()) return end_result->status_as_object();
  std::uint64_t payload_bytes = 0;
  for (const auto& pair : pairs) {
    payload_bytes += pair.first.size() + pair.second.size();
  }
  stats_.migration_pairs_streamed.fetch_add(pairs.size(), kRelaxed);
  stats_.migration_bytes_streamed.fetch_add(payload_bytes, kRelaxed);
  return Status::Ok();
}

void ZhtServer::FinishMigrateOut(PartitionId partition, Status status,
                                 bool had_data,
                                 std::function<void(Status)> done) {
  // Completion posts back to the owning shard: on success the partition is
  // relinquished; either way the migration lock lifts.
  Post(ShardForPartition(partition),
       [this, partition, status = std::move(status), had_data,
        done = std::move(done)](Shard& sh) mutable {
         if (status.ok()) {
           sh.stores.erase(partition);
           stats_.migrations_out.fetch_add(1, kRelaxed);
         }
         // Dropped before the manager can broadcast the new membership:
         // no window where this instance serves cached values for a
         // partition it just handed off.
         CacheDropPartition(sh, partition);
         if (!status.ok()) {
           // Stream failed; the partition stays put and this instance
           // keeps serving it.
           sh.migrating.erase(partition);
         } else if (partition < sh.table.num_partitions() &&
                    sh.table.OwnerOf(partition) == options_.self) {
           // The table still names this instance owner: hold the
           // kMigrating lock until the manager's ownership update lands,
           // or this window serves the just-erased store as primary.
           sh.handed_off.emplace(partition, had_data);
         } else {
           ReleaseHandoff(sh, partition, had_data);
         }
         done(std::move(status));
       });
}

void ZhtServer::ReleaseHandoff(Shard& shard, PartitionId partition,
                               bool had_data) {
  shard.migrating.erase(partition);
  if (!had_data) return;
  const auto chain =
      shard.table.ReplicaChain(partition, options_.cluster.num_replicas);
  if (std::find(chain.begin(), chain.end(), options_.self) != chain.end()) {
    // Still a replica for the partition we just handed off, with nothing
    // left to serve it from: refuse failover reads (rebuilding mark) until
    // the manager-commanded repair streams the copy back. The rebuild's
    // Begin simply re-marks; its End lifts the mark.
    shard.rebuilding.insert(partition);
    CacheDropPartition(shard, partition);
  }
}

Status ZhtServer::MigratePartitionTo(PartitionId partition,
                                     const NodeAddress& target) {
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
  };
  auto latch = std::make_shared<Latch>();
  StartMigrateOut(partition, target, [latch](Status status) {
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      latch->status = std::move(status);
      latch->done = true;
    }
    latch->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->done; });
  return latch->status;
}

// ---------------------------------------------------------------------------
// Anti-entropy + online rebuild (the recovery model; DESIGN.md §Recovery).
// The owner digest-probes its replica chain, streams a checkpoint to the
// members that mismatch, and the FIFO async queue doubles as the catch-up
// replay: sync legs to an in-rebuild destination divert behind the stream's
// End, so the destination converges without ever blocking writes here.
// ---------------------------------------------------------------------------

PartitionDigest ZhtServer::DigestOfStore(const KVStore* store) {
  PartitionDigest digest;
  if (!store) return digest;
  store->ForEach([&digest](std::string_view key, std::string_view value) {
    ++digest.count;
    // Chain the key's CRC into the value's seed so the pair hashes as a
    // unit ((ab, c) and (a, bc) differ); XOR keeps the fold order-free.
    digest.crc ^= Crc32c(value, Crc32c(key));
  });
  return digest;
}

void ZhtServer::ExecDigest(Shard& shard, Request&& request,
                           ResponseCallback done) {
  Response resp;
  resp.seq = request.seq;
  resp.epoch = shard.table.epoch();
  auto it = shard.stores.find(request.partition);
  const KVStore* store = it != shard.stores.end() ? it->second.get() : nullptr;
  // A partition we do not hold digests as {0, 0} — indistinguishable from
  // empty, which is exactly right: both need the full stream.
  resp.value = DigestOfStore(store).Encode();
  done(std::move(resp));
}

void ZhtServer::ExecRebuildBegin(Shard& shard, Request&& request,
                                 ResponseCallback done) {
  Response resp;
  resp.seq = request.seq;
  resp.epoch = shard.table.epoch();
  // The stream lands in a shadow store and only replaces the canonical
  // store after the End digest verifies — a source dying mid-stream (or a
  // torn stream) can never cost this replica its existing copy, which may
  // be the cluster's last. Clear, don't re-create: a persistent store
  // opened twice at one path would race its older self over the log file.
  std::shared_ptr<KVStore> shadow = ShadowStoreIn(shard, request.partition);
  if (!shadow) {
    resp.status = Status(StatusCode::kInternal, "store factory failed").raw();
    done(std::move(resp));
    return;
  }
  Status cleared = shadow->Clear();
  if (!cleared.ok()) {
    resp.status = cleared.raw();
    done(std::move(resp));
    return;
  }
  shard.rebuilding.insert(request.partition);
  // No fills can happen while the rebuilding mark rejects reads, and the
  // entries cached so far describe the copy about to be replaced.
  CacheDropPartition(shard, request.partition);
  done(std::move(resp));
}

void ZhtServer::ExecRebuildData(Shard& shard, Request&& request,
                                ResponseCallback done) {
  Response resp;
  resp.seq = request.seq;
  if (!shard.rebuilding.count(request.partition)) {
    // Begin never arrived, or a restart wiped the mark: refuse so the
    // source's End verification fails and it re-streams from scratch.
    resp.status =
        Status(StatusCode::kInvalidArgument, "no rebuild in progress").raw();
    done(std::move(resp));
    return;
  }
  auto pairs = UnpackPairs(request.value);
  if (!pairs.ok()) {
    resp.status = pairs.status().raw();
    done(std::move(resp));
    return;
  }
  std::shared_ptr<KVStore> shadow = ShadowStoreIn(shard, request.partition);
  if (!shadow) {
    resp.status = Status(StatusCode::kInternal, "store factory failed").raw();
    done(std::move(resp));
    return;
  }
  for (const auto& [key, value] : *pairs) {
    Status put = shadow->Put(key, value);
    if (!put.ok()) {
      resp.status = put.raw();
      done(std::move(resp));
      return;
    }
  }
  // Ack the carrier only once its pairs are durable, exactly like the
  // migration stream: the source treats the ack as "safely received". The
  // capture pins the shadow object past any later End/Begin on the shard.
  const std::uint64_t token = shadow->last_commit_token();
  if (token == 0) {
    done(std::move(resp));
    return;
  }
  KVStore* raw = shadow.get();
  raw->NotifyDurable(
      token, [shadow = std::move(shadow), resp = std::move(resp),
              done = std::move(done)](Status durable) mutable {
        if (!durable.ok()) resp.status = durable.raw();
        done(std::move(resp));
      });
}

void ZhtServer::ExecRebuildEnd(Shard& shard, Request&& request,
                               ResponseCallback done) {
  Response resp;
  resp.seq = request.seq;
  resp.epoch = shard.table.epoch();
  auto expected = PartitionDigest::Decode(request.value);
  if (!expected.ok()) {
    resp.status = expected.status().raw();
    done(std::move(resp));
    return;
  }
  if (shard.rebuilding.erase(request.partition) == 0) {
    // The stream was broken (we restarted, Begin was dropped, or a
    // membership change promoted us mid-stream): report corruption so the
    // source re-streams from scratch.
    resp.status =
        Status(StatusCode::kCorruption, "rebuild stream broken").raw();
    done(std::move(resp));
    return;
  }
  auto shadow_it = shard.shadow_stores.find(request.partition);
  std::shared_ptr<KVStore> shadow = shadow_it != shard.shadow_stores.end()
                                        ? shadow_it->second
                                        : nullptr;
  const PartitionDigest mine = DigestOfStore(shadow.get());
  resp.value = mine.Encode();
  if (!(mine == *expected)) {
    // Canonical store untouched; the shadow is discarded at the next Begin.
    resp.status =
        Status(StatusCode::kCorruption, "rebuild digest mismatch").raw();
    done(std::move(resp));
    return;
  }
  // Verified: replace the canonical copy with the shadow's contents. Both
  // stores are shard-local, so the swap cannot be interrupted by a peer
  // failure — it either happens entirely or the End errors out.
  KVStore* canonical = StoreIn(shard, request.partition);
  if (!canonical) {
    resp.status = Status(StatusCode::kInternal, "store factory failed").raw();
    done(std::move(resp));
    return;
  }
  Status swap = canonical->Clear();
  if (swap.ok() && shadow) {
    shadow->ForEach([&](std::string_view key, std::string_view value) {
      if (swap.ok()) swap = canonical->Put(key, value);
    });
  }
  if (swap.ok() && shadow) swap = shadow->Clear();  // truncate the landing pad
  CacheDropPartition(shard, request.partition);
  if (!swap.ok()) {
    resp.status = swap.raw();
    done(std::move(resp));
    return;
  }
  // Ack End only once the swapped-in pairs are durable in the canonical
  // log — the source counts this replica as rebuilt on that ack.
  const std::uint64_t token = canonical->last_commit_token();
  if (token == 0) {
    done(std::move(resp));
    return;
  }
  std::shared_ptr<KVStore> pinned = shard.stores[request.partition];
  canonical->NotifyDurable(
      token, [pinned = std::move(pinned), resp = std::move(resp),
              done = std::move(done)](Status durable) mutable {
        if (!durable.ok()) resp.status = durable.raw();
        done(std::move(resp));
      });
}

void ZhtServer::StartRebuild(PartitionId partition,
                             std::function<void(Status)> done) {
  Post(ShardForPartition(partition),
       [this, partition, done = std::move(done)](Shard& sh) mutable {
         if (sh.rebuild_out.count(partition)) {
           done(Status(StatusCode::kMigrating, "rebuild already in flight"));
           return;
         }
         const std::vector<InstanceId> chain = sh.table.ReplicaChain(
             partition, options_.cluster.num_replicas);
         if (chain.empty() || chain[0] != options_.self) {
           done(Status(StatusCode::kRedirect, "not the partition owner"));
           return;
         }
         std::vector<RebuildTarget> targets;
         for (std::size_t i = 1; i < chain.size(); ++i) {
           if (chain[i] == options_.self) continue;
           RebuildTarget target;
           target.id = chain[i];
           target.address = chain[i] < sh.table.instance_count()
                                ? sh.table.Instance(chain[i]).address
                                : NodeAddress{};
           target.replica_index = static_cast<std::uint8_t>(i);
           targets.push_back(std::move(target));
         }
         if (targets.empty()) {
           done(Status::Ok());
           return;
         }
         auto it = sh.stores.find(partition);
         const PartitionDigest mine = DigestOfStore(
             it != sh.stores.end() ? it->second.get() : nullptr);
         RebuildOut& out = sh.rebuild_out[partition];
         out.targets = targets;
         out.done = std::move(done);
         // Probe from a finisher (peer I/O); the stale subset posts back
         // into this shard to start the streams.
         EnqueueFinisher([this, partition, mine,
                          targets = std::move(targets)]() mutable {
           ProbeRebuildTargets(partition, mine, std::move(targets));
         });
       });
}

void ZhtServer::ProbeRebuildTargets(PartitionId partition, PartitionDigest mine,
                                    std::vector<RebuildTarget> targets) {
  std::vector<InstanceId> stale;
  for (const RebuildTarget& target : targets) {
    stats_.antientropy_probes.fetch_add(1, kRelaxed);
    bool matched = false;
    if (!target.address.host.empty() || target.address.port != 0) {
      Request probe;
      probe.op = OpCode::kDigest;
      probe.partition = partition;
      probe.server_origin = true;
      auto result = peer_transport_->Call(target.address, probe,
                                          options_.cluster.peer_timeout);
      if (result.ok() && result->ok()) {
        auto theirs = PartitionDigest::Decode(result->value);
        matched = theirs.ok() && *theirs == mine;
      }
    }
    // An unreachable or undecodable member counts as stale: the stream
    // will either repair it or fail its End check and be abandoned.
    if (matched) {
      stats_.antientropy_clean.fetch_add(1, kRelaxed);
    } else {
      stale.push_back(target.id);
    }
  }
  Post(ShardForPartition(partition),
       [this, partition, stale = std::move(stale)](Shard& sh) mutable {
         BeginRebuildStreams(sh, partition, std::move(stale));
       });
}

void ZhtServer::BeginRebuildStreams(Shard& shard, PartitionId partition,
                                    std::vector<InstanceId> stale) {
  auto it = shard.rebuild_out.find(partition);
  if (it == shard.rebuild_out.end()) return;
  RebuildOut& out = it->second;
  // Keep only the stale members; while a member stays listed here, sync
  // replication legs to it divert behind the stream (ApplyRebuildDiversions).
  out.targets.erase(
      std::remove_if(out.targets.begin(), out.targets.end(),
                     [&stale](const RebuildTarget& t) {
                       return std::find(stale.begin(), stale.end(), t.id) ==
                              stale.end();
                     }),
      out.targets.end());
  if (out.targets.empty()) {
    auto done = std::move(out.done);
    Status aggregate = std::move(out.aggregate);
    shard.rebuild_out.erase(it);
    if (done) done(std::move(aggregate));
    return;
  }
  for (RebuildTarget& target : out.targets) {
    StreamRebuildTarget(shard, partition, target);
  }
}

void ZhtServer::StreamRebuildTarget(Shard& shard, PartitionId partition,
                                    RebuildTarget& target) {
  ++target.attempts;
  if (target.attempts == 1) {
    stats_.rebuilds_started.fetch_add(1, kRelaxed);
  } else {
    stats_.rebuild_retries.fetch_add(1, kRelaxed);
  }
  // Snapshot and digest in-shard, then enqueue the whole Begin/Data*/End
  // conversation into the async queue. Every write applied after this
  // shard task enqueues its (diverted) leg after our End — the per-
  // destination FIFO ordering IS the catch-up replay. Writes applied
  // before it are in the snapshot, so their earlier legs are redundant.
  PartitionDigest digest;
  auto pairs =
      std::make_shared<std::vector<std::pair<std::string, std::string>>>();
  auto it = shard.stores.find(partition);
  if (it != shard.stores.end() && it->second) {
    it->second->ForEach(
        [&digest, &pairs](std::string_view k, std::string_view v) {
          ++digest.count;
          digest.crc ^= Crc32c(v, Crc32c(k));
          pairs->emplace_back(std::string(k), std::string(v));
        });
  }

  Request begin;
  begin.op = OpCode::kRebuildBegin;
  begin.partition = partition;
  begin.server_origin = true;
  EnqueueAsyncReplication(std::move(begin), target.address);

  std::vector<std::pair<std::string, std::string>> batch;
  std::size_t batch_bytes = 0;
  std::uint64_t streamed = 0;
  auto flush = [&]() {
    if (batch.empty()) return;
    Request data;
    data.op = OpCode::kRebuildData;
    data.partition = partition;
    data.server_origin = true;
    data.value = PackPairs(batch);
    streamed += batch.size();
    batch.clear();
    batch_bytes = 0;
    EnqueueAsyncReplication(std::move(data), target.address);
  };
  for (auto& pair : *pairs) {
    batch_bytes += pair.first.size() + pair.second.size() + 16;
    batch.push_back(std::move(pair));
    if (batch_bytes >= options_.migrate_batch_bytes) flush();
  }
  flush();
  stats_.rebuild_pairs_streamed.fetch_add(streamed, kRelaxed);

  Request end;
  end.op = OpCode::kRebuildEnd;
  end.partition = partition;
  end.server_origin = true;
  end.value = digest.Encode();
  const InstanceId id = target.id;
  EnqueueAsyncLeg(
      std::move(end), target.address,
      [this, partition, id](const Result<Response>& result) {
        Status status =
            !result.ok() ? result.status() : result->status_as_object();
        Post(ShardForPartition(partition),
             [this, partition, id,
              status = std::move(status)](Shard& sh) mutable {
               FinishRebuildLeg(sh, partition, id, std::move(status));
             });
      });
}

void ZhtServer::FinishRebuildLeg(Shard& shard, PartitionId partition,
                                 InstanceId id, Status status) {
  auto it = shard.rebuild_out.find(partition);
  if (it == shard.rebuild_out.end()) return;
  RebuildOut& out = it->second;
  auto target_it =
      std::find_if(out.targets.begin(), out.targets.end(),
                   [id](const RebuildTarget& t) { return t.id == id; });
  if (target_it == out.targets.end()) return;
  if (!status.ok() && target_it->attempts < kRebuildMaxAttempts) {
    // Any End failure — transport, broken stream, digest mismatch — gets
    // a full re-stream from a fresh snapshot, up to the attempt budget.
    StreamRebuildTarget(shard, partition, *target_it);
    return;
  }
  if (status.ok()) {
    stats_.rebuilds_completed.fetch_add(1, kRelaxed);
  } else {
    ZHT_WARN << "rebuild of partition " << partition << " to instance " << id
             << " abandoned: " << status.ToString();
    if (out.aggregate.ok()) out.aggregate = status;
  }
  out.targets.erase(target_it);
  if (out.targets.empty()) {
    auto done = std::move(out.done);
    Status aggregate = std::move(out.aggregate);
    shard.rebuild_out.erase(it);
    if (done) done(std::move(aggregate));
  }
}

void ZhtServer::ApplyRebuildDiversions(const Shard& shard,
                                       PartitionId partition,
                                       ReplicaPlan* plan) const {
  auto it = shard.rebuild_out.find(partition);
  if (it == shard.rebuild_out.end() || it->second.targets.empty()) return;
  plan->via_async.assign(plan->chain.size(), 0);
  for (std::size_t i = 0; i < plan->chain.size(); ++i) {
    for (const RebuildTarget& target : it->second.targets) {
      if (target.id == plan->chain[i]) plan->via_async[i] = 1;
    }
  }
}

Status ZhtServer::RepairPartition(PartitionId partition) {
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
  };
  auto latch = std::make_shared<Latch>();
  StartRebuild(partition, [latch](Status status) {
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      latch->status = std::move(status);
      latch->done = true;
    }
    latch->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->done; });
  return latch->status;
}

PartitionDigest ZhtServer::PartitionDigestOf(PartitionId partition) {
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    PartitionDigest digest;
  };
  auto latch = std::make_shared<Latch>();
  Post(ShardForPartition(partition), [partition, latch](Shard& sh) {
    auto it = sh.stores.find(partition);
    PartitionDigest digest =
        DigestOfStore(it != sh.stores.end() ? it->second.get() : nullptr);
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      latch->digest = digest;
      latch->done = true;
    }
    latch->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->done; });
  return latch->digest;
}

std::vector<std::pair<std::string, std::string>> ZhtServer::PartitionPairs(
    PartitionId partition) {
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::vector<std::pair<std::string, std::string>> pairs;
  };
  auto latch = std::make_shared<Latch>();
  Post(ShardForPartition(partition), [partition, latch](Shard& sh) {
    std::vector<std::pair<std::string, std::string>> pairs;
    auto it = sh.stores.find(partition);
    if (it != sh.stores.end() && it->second) {
      it->second->ForEach([&pairs](std::string_view k, std::string_view v) {
        pairs.emplace_back(std::string(k), std::string(v));
      });
    }
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      latch->pairs = std::move(pairs);
      latch->done = true;
    }
    latch->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->done; });
  std::sort(latch->pairs.begin(), latch->pairs.end());
  return latch->pairs;
}

void ZhtServer::ExecBroadcast(Shard& shard, Request&& request,
                              ResponseCallback done) {
  const PartitionId partition = shard.table.PartitionOfKey(request.key);
  const std::size_t count = shard.table.instance_count();
  const std::size_t self_index = options_.self;

  KVStore* store = StoreIn(shard, partition);
  Status put = store ? store->Put(request.key, request.value)
                     : Status(StatusCode::kInternal, "store factory failed");
  stats_.broadcasts.fetch_add(1, kRelaxed);

  // Binary spanning tree over instance ids (§VI "Broadcast primitive"):
  // node i forwards to 2i+1 and 2i+2. Children's addresses resolve here,
  // in-shard.
  std::vector<NodeAddress> children;
  for (std::size_t child : {2 * self_index + 1, 2 * self_index + 2}) {
    if (child >= count) continue;
    if (child < shard.table.instance_count()) {
      children.push_back(
          shard.table.Instance(static_cast<InstanceId>(child)).address);
    }
  }

  std::shared_ptr<KVStore> pinned;
  std::uint64_t token = 0;
  if (put.ok()) {
    auto it = shard.stores.find(partition);
    if (it != shard.stores.end() && it->second) {
      pinned = it->second;
      token = pinned->last_commit_token();
    }
  }
  auto fin = [this, seq = request.seq, forward = std::move(request),
              children = std::move(children), put,
              done = std::move(done)](Status durable) mutable {
    Response resp;
    resp.seq = seq;
    resp.status = (put.ok() ? durable : put).raw();
    for (const NodeAddress& child : children) {
      Request hop = forward;
      hop.server_origin = true;
      EnqueueAsyncReplication(std::move(hop), child);
    }
    done(std::move(resp));
  };
  if (token != 0) {
    pinned->NotifyDurable(token, std::move(fin));
  } else {
    fin(Status::Ok());
  }
}

// ---------------------------------------------------------------------------
// Replication (finisher/async-worker threads; addresses pre-resolved)
// ---------------------------------------------------------------------------

void ZhtServer::ReplicateSync(const Request& original, PartitionId partition,
                              const ReplicaPlan& plan) {
  Request forward = original;
  forward.server_origin = true;
  forward.partition = partition;

  // Fan-out of this mutation: every chain member beyond the primary.
  replication_fanout_hist_->Record(
      static_cast<std::int64_t>(plan.chain.size()) - 1);

  // Leg i is synchronous when it is the secondary (with sync_secondary) or
  // the plan demands every leg synchronous (failover accepts). A member
  // mid-rebuild diverts to the async queue regardless, so the leg lands
  // after the stream's End (the queue is FIFO per destination — the
  // catch-up replay ordering).
  const std::size_t sync_end =
      plan.all_sync ? plan.chain.size()
                    : (options_.sync_secondary ? std::size_t{2}
                                               : std::size_t{1});
  for (std::size_t i = 1; i < plan.chain.size(); ++i) {
    Request leg = forward;
    leg.replica_index = static_cast<std::uint8_t>(i);
    const bool diverted = plan.via_async.size() > i && plan.via_async[i];
    if (i < sync_end && !diverted) {
      stats_.replications_sync.fetch_add(1, kRelaxed);
      replication_sync_counter_->Increment();
      auto result = peer_transport_->Call(plan.addresses[i], leg,
                                          options_.cluster.peer_timeout);
      if (!result.ok()) {
        ZHT_WARN << "sync replication to " << plan.addresses[i].ToString()
                 << " failed: " << result.status().ToString();
      }
    } else {
      EnqueueAsyncReplication(std::move(leg), plan.addresses[i]);
      replication_async_counter_->Increment();
      stats_.replications_async.fetch_add(1, kRelaxed);
    }
  }
}

void ZhtServer::ReplicateBatchResolved(
    std::vector<Request> ops, const std::vector<PartitionId>& partitions,
    const std::vector<ReplicaPlan>& plans) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].server_origin = true;
    ops[i].partition = partitions[i];
  }
  for (const ReplicaPlan& plan : plans) {
    replication_fanout_hist_->Record(
        static_cast<std::int64_t>(plan.chain.size()) - 1);
  }

  // Synchronous legs: the secondary of each plan (or every member of an
  // all_sync plan), grouped by target and pushed as one pipelined BATCH
  // call before acknowledging the client. A member mid-rebuild diverts
  // behind its stream instead.
  auto plan_sync_end = [this](const ReplicaPlan& plan) {
    if (plan.all_sync) return plan.chain.size();
    return options_.sync_secondary ? std::size_t{2} : std::size_t{1};
  };
  if (options_.sync_secondary) {
    std::unordered_map<InstanceId,
                       std::pair<NodeAddress, std::vector<Request>>>
        groups;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const ReplicaPlan& plan = plans[i];
      const std::size_t sync_end =
          std::min(plan_sync_end(plan), plan.chain.size());
      for (std::size_t r = 1; r < sync_end; ++r) {
        Request forward = ops[i];
        forward.replica_index = static_cast<std::uint8_t>(r);
        if (plan.via_async.size() > r && plan.via_async[r]) {
          // Member mid-rebuild: divert the leg behind the stream.
          replication_async_counter_->Increment();
          stats_.replications_async.fetch_add(1, kRelaxed);
          EnqueueAsyncReplication(std::move(forward), plan.addresses[r]);
          continue;
        }
        auto& group = groups[plan.chain[r]];
        group.first = plan.addresses[r];
        group.second.push_back(std::move(forward));
      }
    }
    for (auto& [target_id, group] : groups) {
      stats_.replications_sync.fetch_add(group.second.size(), kRelaxed);
      replication_sync_counter_->Increment(group.second.size());
      auto result = peer_transport_->CallBatch(group.first, group.second,
                                               options_.cluster.peer_timeout);
      if (!result.ok()) {
        ZHT_WARN << "sync batch replication to " << group.first.ToString()
                 << " failed: " << result.status().ToString();
      }
    }
  }

  // Asynchronous legs: one queued BATCH carrier per (replica slot, target)
  // group, so further replicas also receive the batch as a unit.
  std::unordered_map<InstanceId, std::pair<NodeAddress, std::vector<Request>>>
      async_groups;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const std::size_t first_async =
        options_.sync_secondary ? plan_sync_end(plans[i]) : std::size_t{1};
    for (std::size_t r = first_async; r < plans[i].chain.size(); ++r) {
      Request forward = ops[i];
      forward.replica_index = static_cast<std::uint8_t>(r);
      auto& group = async_groups[plans[i].chain[r]];
      group.first = plans[i].addresses[r];
      group.second.push_back(std::move(forward));
    }
  }
  for (auto& [target_id, group] : async_groups) {
    Request packed = PackBatchRequest(group.second, group.second.front().seq,
                                      /*server_origin=*/true);
    replication_async_counter_->Increment(group.second.size());
    stats_.replications_async.fetch_add(group.second.size(), kRelaxed);
    EnqueueAsyncReplication(std::move(packed), group.first);
  }
}

void ZhtServer::EnqueueAsyncReplication(Request request,
                                        const NodeAddress& target) {
  EnqueueAsyncLeg(std::move(request), target, nullptr);
}

void ZhtServer::EnqueueAsyncLeg(
    Request request, const NodeAddress& target,
    std::function<void(const Result<Response>&)> on_result) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    async_queue_.push_back(
        AsyncLeg{std::move(request), target, std::move(on_result)});
  }
  queue_cv_.notify_one();
}

void ZhtServer::AsyncReplicationLoop() {
  for (;;) {
    AsyncLeg item;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return async_stop_ || !async_queue_.empty(); });
      if (async_queue_.empty()) return;  // async_stop_ && drained
      item = std::move(async_queue_.front());
      async_queue_.pop_front();
      ++async_inflight_;
    }
    if (!item.target.host.empty() || item.target.port != 0) {
      auto result = peer_transport_->Call(item.target, item.request,
                                          options_.cluster.peer_timeout);
      if (!result.ok()) {
        ZHT_DEBUG << "async replication to " << item.target.ToString()
                  << " failed: " << result.status().ToString();
      }
      if (item.on_result) item.on_result(result);
    } else if (item.on_result) {
      item.on_result(
          Result<Response>(Status(StatusCode::kUnavailable, "no address")));
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --async_inflight_;
    }
    queue_cv_.notify_all();
  }
}

void ZhtServer::FlushAsyncReplication() {
  // Quiesce both pools that carry background peer I/O: the async replication
  // queue AND the finisher pool (rebuild digest probes and checkpoint streams
  // run on finishers, not the async queue). Each pool can enqueue into the
  // other — a probe schedules streams, a stream completion posts follow-up
  // work — so loop until one pass observes both idle.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return async_queue_.empty() && async_inflight_ == 0;
      });
    }
    {
      std::unique_lock<std::mutex> lock(finisher_mu_);
      finisher_idle_cv_.wait(lock, [this] {
        return finisher_queue_.empty() && finisher_busy_ == 0;
      });
    }
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (async_queue_.empty() && async_inflight_ == 0) return;
  }
}

void ZhtServer::EnqueueFinisher(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(finisher_mu_);
    finisher_queue_.push_back(std::move(job));
  }
  finisher_cv_.notify_one();
}

void ZhtServer::FinisherLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(finisher_mu_);
      finisher_cv_.wait(
          lock, [this] { return finishers_stop_ || !finisher_queue_.empty(); });
      if (finisher_queue_.empty()) return;  // finishers_stop_ && drained
      job = std::move(finisher_queue_.front());
      finisher_queue_.pop_front();
      ++finisher_busy_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(finisher_mu_);
      --finisher_busy_;
      if (finisher_queue_.empty() && finisher_busy_ == 0) {
        finisher_idle_cv_.notify_all();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Stats / census (scatter over every shard, gather with completion count)
// ---------------------------------------------------------------------------

ZhtServerStats ZhtServer::stats() const {
  ZhtServerStats s;
  s.ops = stats_.ops.load(kRelaxed);
  s.redirects = stats_.redirects.load(kRelaxed);
  s.replications_sync = stats_.replications_sync.load(kRelaxed);
  s.replications_async = stats_.replications_async.load(kRelaxed);
  s.migrations_out = stats_.migrations_out.load(kRelaxed);
  s.migrations_in = stats_.migrations_in.load(kRelaxed);
  s.migration_pairs_streamed = stats_.migration_pairs_streamed.load(kRelaxed);
  s.migration_bytes_streamed = stats_.migration_bytes_streamed.load(kRelaxed);
  s.broadcasts = stats_.broadcasts.load(kRelaxed);
  s.duplicate_appends_dropped = stats_.duplicate_appends_dropped.load(kRelaxed);
  s.antientropy_probes = stats_.antientropy_probes.load(kRelaxed);
  s.antientropy_clean = stats_.antientropy_clean.load(kRelaxed);
  s.rebuilds_started = stats_.rebuilds_started.load(kRelaxed);
  s.rebuilds_completed = stats_.rebuilds_completed.load(kRelaxed);
  s.rebuild_pairs_streamed = stats_.rebuild_pairs_streamed.load(kRelaxed);
  s.rebuild_retries = stats_.rebuild_retries.load(kRelaxed);
  s.hot_cache_hits = stats_.hot_cache_hits.load(kRelaxed);
  s.hot_cache_misses = stats_.hot_cache_misses.load(kRelaxed);
  s.hot_cache_invalidations = stats_.hot_cache_invalidations.load(kRelaxed);
  s.hot_cache_drops = stats_.hot_cache_drops.load(kRelaxed);
  s.sheds = stats_.sheds.load(kRelaxed);
  return s;
}

void ZhtServer::ScatterCensus(
    std::function<void(std::vector<ShardCensus>)> done) const {
  // Posting census tasks mutates only mailbox state; the census itself
  // reads shard-owned stores inside their drains.
  auto* self = const_cast<ZhtServer*>(this);
  struct Gather {
    std::vector<ShardCensus> per;
    std::atomic<std::size_t> remaining{0};
    std::function<void(std::vector<ShardCensus>)> done;
  };
  auto gather = std::make_shared<Gather>();
  gather->per.resize(shards_.size());
  gather->remaining.store(shards_.size(), kRelaxed);
  gather->done = std::move(done);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    self->Post(*shards_[s], [gather, s](Shard& sh) {
      ShardCensus& census = gather->per[s];
      census.held = sh.stores.size();
      for (const auto& [partition, store] : sh.stores) {
        if (!store) continue;
        census.entries += store->Size();
        StoreDurabilityMetrics one;
        if (store->durability_metrics(&one)) {
          census.durability.group_commit_batch.Merge(one.group_commit_batch);
          census.durability.fsync_micros.Merge(one.fsync_micros);
          census.durability.fsync_errors += one.fsync_errors;
          census.durability.group_commits += one.group_commits;
          census.any_durability = true;
        }
      }
      if (gather->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        gather->done(std::move(gather->per));
      }
    });
  }
}

MetricsSnapshot ZhtServer::BuildSnapshot(
    const std::vector<ShardCensus>& census) const {
  // Legacy counters and instance-level gauges first (stable names the
  // tools print as `name = value`), then everything in the registry.
  MetricsSnapshot snapshot;
  std::uint64_t entries = 0;
  std::size_t held = 0;
  StoreDurabilityMetrics durability;
  bool any_durability = false;
  for (const ShardCensus& c : census) {
    entries += c.entries;
    held += c.held;
    if (c.any_durability) {
      durability.group_commit_batch.Merge(c.durability.group_commit_batch);
      durability.fsync_micros.Merge(c.durability.fsync_micros);
      durability.fsync_errors += c.durability.fsync_errors;
      durability.group_commits += c.durability.group_commits;
      any_durability = true;
    }
  }
  snapshot.AddGauge("instance", static_cast<std::int64_t>(options_.self));
  snapshot.AddGauge("epoch", epoch_.load(kRelaxed));
  snapshot.AddGauge("partitions_held", static_cast<std::int64_t>(held));
  snapshot.AddGauge("entries", static_cast<std::int64_t>(entries));
  snapshot.AddCounter("ops", stats_.ops.load(kRelaxed));
  snapshot.AddCounter("redirects", stats_.redirects.load(kRelaxed));
  snapshot.AddCounter("replications_sync",
                      stats_.replications_sync.load(kRelaxed));
  snapshot.AddCounter("replications_async",
                      stats_.replications_async.load(kRelaxed));
  snapshot.AddCounter("migrations_in", stats_.migrations_in.load(kRelaxed));
  snapshot.AddCounter("migrations_out", stats_.migrations_out.load(kRelaxed));
  snapshot.AddCounter("migration_pairs_streamed",
                      stats_.migration_pairs_streamed.load(kRelaxed));
  snapshot.AddCounter("migration_bytes_streamed",
                      stats_.migration_bytes_streamed.load(kRelaxed));
  snapshot.AddCounter("broadcasts", stats_.broadcasts.load(kRelaxed));
  snapshot.AddCounter("duplicate_appends_dropped",
                      stats_.duplicate_appends_dropped.load(kRelaxed));
  snapshot.AddCounter("hot_cache_hits", stats_.hot_cache_hits.load(kRelaxed));
  snapshot.AddCounter("hot_cache_misses",
                      stats_.hot_cache_misses.load(kRelaxed));
  snapshot.AddCounter("hot_cache_invalidations",
                      stats_.hot_cache_invalidations.load(kRelaxed));
  snapshot.AddCounter("hot_cache_drops", stats_.hot_cache_drops.load(kRelaxed));
  snapshot.AddCounter("sheds", stats_.sheds.load(kRelaxed));
  if (any_durability) {
    snapshot.AddCounter("novoht.fsync_errors", durability.fsync_errors);
    snapshot.AddCounter("novoht.group_commits", durability.group_commits);
    snapshot.AddHistogram("novoht.group_commit.batch_size",
                          durability.group_commit_batch);
    snapshot.AddHistogram("novoht.group_commit.fsync_micros",
                          durability.fsync_micros);
  }
  MetricsSnapshot registry = metrics_.Snapshot();
  snapshot.entries.insert(snapshot.entries.end(),
                          std::make_move_iterator(registry.entries.begin()),
                          std::make_move_iterator(registry.entries.end()));
  return snapshot;
}

MetricsSnapshot ZhtServer::MetricsSnapshotNow() const {
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::vector<ShardCensus> census;
  };
  auto latch = std::make_shared<Latch>();
  ScatterCensus([latch](std::vector<ShardCensus> census) {
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      latch->census = std::move(census);
      latch->done = true;
    }
    latch->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->done; });
  return BuildSnapshot(latch->census);
}

std::uint64_t ZhtServer::TotalEntries() const {
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::uint64_t entries = 0;
  };
  auto latch = std::make_shared<Latch>();
  ScatterCensus([latch](std::vector<ShardCensus> census) {
    std::uint64_t total = 0;
    for (const ShardCensus& c : census) total += c.entries;
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      latch->entries = total;
      latch->done = true;
    }
    latch->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->done; });
  return latch->entries;
}

std::vector<std::size_t> ZhtServer::ShardPartitionCounts() const {
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::vector<std::size_t> counts;
  };
  auto latch = std::make_shared<Latch>();
  ScatterCensus([latch](std::vector<ShardCensus> census) {
    std::vector<std::size_t> counts;
    counts.reserve(census.size());
    for (const ShardCensus& c : census) counts.push_back(c.held);
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      latch->counts = std::move(counts);
      latch->done = true;
    }
    latch->cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(latch->mu);
  latch->cv.wait(lock, [&] { return latch->done; });
  return latch->counts;
}

std::uint64_t ZhtServer::ShardForwardedOps(std::size_t shard) const {
  return shard < shards_.size() ? shards_[shard]->forwarded.load(kRelaxed) : 0;
}

HistogramData ZhtServer::ShardMailboxDepth(std::size_t shard) const {
  return shard < shards_.size() ? shards_[shard]->mailbox_depth.Snapshot()
                                : HistogramData{};
}

std::uint64_t ZhtServer::ShardQueuedNow(std::size_t shard) const {
  return shard < shards_.size()
             ? shards_[shard]->queued.load(std::memory_order_acquire)
             : 0;
}

std::uint64_t ZhtServer::HotCacheEntriesNow() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->hot_cache.size();
  return total;
}

// ---------------------------------------------------------------------------
// Hot-key cache + admission control (DESIGN.md §13)
// ---------------------------------------------------------------------------

bool ZhtServer::CacheLookup(Shard& shard, std::string_view key,
                            std::string* value) {
  if (!shard.hot_cache.enabled()) return false;
  if (shard.hot_cache.TryGet(key, value)) {
    stats_.hot_cache_hits.fetch_add(1, kRelaxed);
    cache_hit_counter_->Increment();
    return true;
  }
  stats_.hot_cache_misses.fetch_add(1, kRelaxed);
  cache_miss_counter_->Increment();
  return false;
}

bool ZhtServer::TryServeFromCache(Shard& shard, const Request& request,
                                  const ResponseCallback& done, Nanos start) {
  // Ingress fast path: a hit skips the mailbox hop, the routing pass, and
  // the store lookup entirely. Safe from any thread — the cache only holds
  // entries for partitions this instance owns and has quiesced (see the
  // staleness contract in hot_key_cache.h).
  if (!shard.hot_cache.enabled() || request.server_origin) return false;
  Response resp;
  resp.seq = request.seq;
  resp.epoch = epoch_.load(kRelaxed);
  if (!CacheLookup(shard, request.key, &resp.value)) return false;
  stats_.ops.fetch_add(1, kRelaxed);
  done(std::move(resp));
  RecordDataOpLatency(OpCode::kLookup, start);
  return true;
}

std::uint32_t ZhtServer::AdmissionRetryHint(Shard& shard) const {
  const std::size_t budget = options_.cluster.shed_queue_budget;
  if (budget == 0) return 0;
  const std::uint64_t depth = shard.queued.load(std::memory_order_acquire);
  const std::uint64_t bytes = shard.inflight_bytes.load(kRelaxed);
  const std::uint64_t byte_budget =
      static_cast<std::uint64_t>(budget) * kShedBytesPerSlot;
  const std::uint64_t over = std::max(depth / budget, bytes / byte_budget);
  if (over == 0) return 0;
  // The hint scales with how far past its budget the shard is, so a deeply
  // backed-up shard spreads its retry storm wider; capped to keep a
  // transient spike from parking clients for a human-visible pause.
  constexpr std::uint64_t kBaseUs = 1000;
  constexpr std::uint64_t kCapUs = 64000;
  return static_cast<std::uint32_t>(std::min(kCapUs, kBaseUs * over));
}

bool ZhtServer::MaybeShed(Shard& shard, const Request& request,
                          const ResponseCallback& done) {
  // Server-origin traffic (replication legs, migration/rebuild streams)
  // is never shed: dropping it would trade overload for inconsistency.
  if (request.server_origin) return false;
  const std::uint32_t hint = AdmissionRetryHint(shard);
  if (hint == 0) return false;
  stats_.sheds.fetch_add(1, kRelaxed);
  shed_counter_->Increment();
  Response resp;
  resp.seq = request.seq;
  resp.epoch = epoch_.load(kRelaxed);
  resp.status =
      Status(StatusCode::kUnavailable, "shard over admission budget").raw();
  resp.retry_after_us = hint;
  done(std::move(resp));
  return true;
}

void ZhtServer::CacheFill(Shard& shard, PartitionId partition,
                          std::string_view key, std::string_view value) {
  shard.hot_cache.Put(key, partition, value);
}

void ZhtServer::CacheInvalidate(Shard& shard, std::string_view key) {
  if (shard.hot_cache.Invalidate(key)) {
    stats_.hot_cache_invalidations.fetch_add(1, kRelaxed);
    cache_invalidate_counter_->Increment();
  }
}

void ZhtServer::CacheDropPartition(Shard& shard, PartitionId partition) {
  const std::size_t dropped = shard.hot_cache.DropPartition(partition);
  if (dropped != 0) {
    stats_.hot_cache_drops.fetch_add(dropped, kRelaxed);
    cache_drop_counter_->Increment(dropped);
  }
}

void ZhtServer::CacheClear(Shard& shard) {
  const std::size_t dropped = shard.hot_cache.Clear();
  if (dropped != 0) {
    stats_.hot_cache_drops.fetch_add(dropped, kRelaxed);
    cache_drop_counter_->Increment(dropped);
  }
}

}  // namespace zht
