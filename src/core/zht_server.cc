#include "core/zht_server.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/log.h"
#include "novoht/novoht.h"
#include "serialize/batch.h"
#include "serialize/metrics_codec.h"
#include "serialize/wire.h"

namespace zht {
namespace {

// Packs key/value pairs for MigrateData batches:
// varint count, then per pair: varint klen, varint vlen, key, value.
std::string PackPairs(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::string out;
  wire::Writer w(&out);
  w.PutVarint(pairs.size());
  for (const auto& [key, value] : pairs) {
    w.PutVarint(key.size());
    w.PutVarint(value.size());
    w.PutBytes(key);
    w.PutBytes(value);
  }
  return out;
}

Result<std::vector<std::pair<std::string, std::string>>> UnpackPairs(
    std::string_view data) {
  wire::Reader r(data);
  std::uint64_t count;
  if (!r.GetVarint(&count)) {
    return Status(StatusCode::kCorruption, "pair batch header");
  }
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t klen, vlen;
    std::string_view key, value;
    if (!r.GetVarint(&klen) || !r.GetVarint(&vlen) ||
        !r.GetBytes(klen, &key) || !r.GetBytes(vlen, &value)) {
      return Status(StatusCode::kCorruption, "pair batch payload");
    }
    pairs.emplace_back(std::string(key), std::string(value));
  }
  return pairs;
}

std::unique_ptr<KVStore> DefaultStoreFactory(InstanceId, PartitionId) {
  auto store = NoVoHT::Open(NoVoHTOptions{});  // in-memory NoVoHT
  return store.ok() ? std::move(*store) : nullptr;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

}  // namespace

StoreFactory MakeNoVoHTStoreFactory(std::string dir,
                                    const ClusterOptions& cluster) {
  return [dir = std::move(dir), cluster](
             InstanceId self,
             PartitionId partition) -> std::unique_ptr<KVStore> {
    NoVoHTOptions options;
    options.path = dir + "/i" + std::to_string(self) + "_p" +
                   std::to_string(partition) + ".novoht";
    options.durability = cluster.durability;
    options.max_commit_latency = cluster.max_commit_latency;
    // The server acks once per request/carrier via WaitDurable; mutators
    // must not also block per-op inside the stripe.
    options.wait_for_durable = false;
    auto store = NoVoHT::Open(options);
    if (!store.ok()) {
      ZHT_WARN << "NoVoHT store factory failed for " << options.path << ": "
               << store.status().ToString();
      return nullptr;
    }
    return std::move(*store);
  };
}

ZhtServer::ZhtServer(MembershipTable table, const ZhtServerOptions& options,
                     ClientTransport* peer_transport)
    : options_(options), peer_transport_(peer_transport),
      table_(std::move(table)) {
  if (!options_.store_factory) options_.store_factory = DefaultStoreFactory;
  // Resolve every hot-path metric handle once; Record()/Increment() through
  // these pointers never acquires a lock.
  static constexpr const char* kDataOpNames[4] = {"insert", "lookup", "remove",
                                                  "append"};
  for (int i = 0; i < 4; ++i) {
    data_op_hist_[i] = metrics_.GetHistogram(
        std::string("server.op.") + kDataOpNames[i] + ".latency_ns");
  }
  batch_hist_ = metrics_.GetHistogram("server.op.batch.latency_ns");
  batch_size_hist_ = metrics_.GetHistogram("server.batch.size");
  replication_fanout_hist_ = metrics_.GetHistogram("server.replication.fanout");
  replication_sync_counter_ = metrics_.GetCounter("server.replication.sync");
  replication_async_counter_ = metrics_.GetCounter("server.replication.async");
  redirect_counter_ = metrics_.GetCounter("server.redirects");
  async_worker_ = std::thread([this] { AsyncReplicationLoop(); });
}

ZhtServer::~ZhtServer() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (async_worker_.joinable()) async_worker_.join();
}

KVStore* ZhtServer::StoreFor(PartitionId partition) {
  // Caller holds StripeFor(partition).mu, which makes the returned pointer
  // safe to use after partitions_mu_ is dropped: stores are only replaced
  // (MigrateBegin) or destroyed (migrate-out) under their stripe.
  std::lock_guard<std::mutex> lock(partitions_mu_);
  auto it = partitions_.find(partition);
  if (it != partitions_.end()) return it->second.get();
  auto store = options_.store_factory(options_.self, partition);
  KVStore* raw = store.get();
  partitions_.emplace(partition, std::move(store));
  return raw;
}

std::shared_ptr<KVStore> ZhtServer::SharedStoreFor(PartitionId partition) {
  std::lock_guard<std::mutex> lock(partitions_mu_);
  auto it = partitions_.find(partition);
  return it != partitions_.end() ? it->second : nullptr;
}

Status ZhtServer::ApplyToStore(OpCode op, PartitionId partition,
                               std::string_view key, std::string_view value,
                               std::string* out) {
  KVStore* store = StoreFor(partition);
  if (!store) return Status(StatusCode::kInternal, "store factory failed");
  switch (op) {
    case OpCode::kInsert:
      return store->Put(key, value);
    case OpCode::kLookup: {
      auto result = store->Get(key);
      if (!result.ok()) return result.status();
      if (out) *out = std::move(*result);
      return Status::Ok();
    }
    case OpCode::kRemove:
      return store->Remove(key);
    case OpCode::kAppend:
      return store->Append(key, value);
    default:
      return Status(StatusCode::kInvalidArgument, "not a data op");
  }
}

bool ZhtServer::IsDuplicateAppend(Stripe& stripe, const Request& request) {
  const std::uint64_t key = request.DedupKey();
  if (key == 0) return false;
  if (stripe.dedup_set.count(key)) return true;
  stripe.dedup_ring.push_back(key);
  stripe.dedup_set.insert(key);
  if (stripe.dedup_ring.size() > kDedupWindowPerStripe) {
    stripe.dedup_set.erase(stripe.dedup_ring.front());
    stripe.dedup_ring.pop_front();
  }
  return false;
}

Response ZhtServer::RedirectTo(InstanceId owner, std::uint64_t seq,
                               std::uint32_t requester_epoch,
                               bool include_membership) {
  // Lazy membership update (§III.C): the wrong-owner reply carries the
  // delta the requester is missing — one message per client per partition
  // move. Caller holds table_mu_ (shared).
  Response resp;
  resp.seq = seq;
  resp.status = Status(StatusCode::kRedirect).raw();
  resp.epoch = table_.epoch();
  if (include_membership) {
    resp.membership = table_.EncodeDelta(requester_epoch);
  }
  if (owner < table_.instance_count()) {
    const auto& info = table_.Instance(owner);
    resp.redirect_host = info.address.host;
    resp.redirect_port = info.address.port;
  }
  return resp;
}

Response ZhtServer::Handle(Request&& request) {
  switch (request.op) {
    case OpCode::kInsert:
    case OpCode::kLookup:
    case OpCode::kRemove:
    case OpCode::kAppend:
      return HandleData(std::move(request));
    case OpCode::kBatch:
      return HandleBatch(std::move(request));
    case OpCode::kPing: {
      Response resp;
      resp.seq = request.seq;
      std::shared_lock<std::shared_mutex> lock(table_mu_);
      resp.epoch = table_.epoch();
      return resp;
    }
    case OpCode::kMembershipPull:
      return HandleMembershipPull(std::move(request));
    case OpCode::kMembershipPush:
      return HandleMembershipPush(std::move(request));
    case OpCode::kMigrateBegin:
      return HandleMigrateBegin(std::move(request));
    case OpCode::kMigrateData:
      return HandleMigrateData(std::move(request));
    case OpCode::kMigrateEnd:
      return HandleMigrateEnd(std::move(request));
    case OpCode::kMigrateOut:
      return HandleMigrateOut(std::move(request));
    case OpCode::kRepair:
      return HandleRepair(std::move(request));
    case OpCode::kBroadcast:
      return HandleBroadcast(std::move(request));
    case OpCode::kStats: {
      // Admin introspection: a versioned structured snapshot (counters,
      // gauges, per-opcode latency histograms) encoded with
      // serialize/metrics_codec.h. Tools decode and render; unknown
      // entries/fields are skipped by old readers.
      Response resp;
      resp.seq = request.seq;
      {
        std::shared_lock<std::shared_mutex> lock(table_mu_);
        resp.epoch = table_.epoch();
      }
      resp.value = EncodeMetricsSnapshot(MetricsSnapshotNow());
      return resp;
    }
    default: {
      Response resp;
      resp.seq = request.seq;
      resp.status = Status(StatusCode::kInvalidArgument).raw();
      return resp;
    }
  }
}

ZhtServer::DataRoute ZhtServer::RouteDataOpLocked(const Request& request,
                                                  bool include_redirect_delta) {
  DataRoute route;
  route.partition = table_.PartitionOfKey(request.key);
  route.epoch = table_.epoch();
  route.chain =
      table_.ReplicaChain(route.partition, options_.cluster.num_replicas);

  const bool is_replica_traffic =
      request.server_origin && request.replica_index > 0;
  const bool is_client_failover =
      !request.server_origin && request.replica_index > 0;

  if (!is_replica_traffic) {
    bool in_chain = false;
    for (InstanceId member : route.chain) {
      if (member == options_.self) {
        in_chain = true;
        break;
      }
    }
    const bool is_primary =
        !route.chain.empty() && route.chain[0] == options_.self;
    if (!is_primary && !(is_client_failover && in_chain)) {
      stats_.redirects.fetch_add(1, kRelaxed);
      redirect_counter_->Increment();
      route.redirect =
          RedirectTo(route.chain.empty() ? 0 : route.chain[0], request.seq,
                     request.epoch, include_redirect_delta);
    }
  }
  return route;
}

Response ZhtServer::ApplyDataOpStriped(const Request& request,
                                       const DataRoute& route,
                                       bool* replicate) {
  Response resp;
  resp.seq = request.seq;
  resp.epoch = route.epoch;
  *replicate = false;

  Stripe& stripe = StripeFor(route.partition);  // mutex held by caller
  if (stripe.migrating.count(route.partition)) {
    // Partition is locked mid-migration (§III.C "Data Migration"): state
    // cannot be modified; the client backs off and retries, which
    // realizes the paper's request queueing at the sender.
    resp.status = Status(StatusCode::kMigrating).raw();
    return resp;
  }

  if (request.op == OpCode::kAppend && IsDuplicateAppend(stripe, request)) {
    // Retransmission of an append we already applied: acknowledge
    // success without re-applying.
    stats_.duplicate_appends_dropped.fetch_add(1, kRelaxed);
    resp.status = Status::Ok().raw();
    return resp;
  }

  std::string lookup_value;
  Status status = ApplyToStore(request.op, route.partition, request.key,
                               request.value, &lookup_value);
  stats_.ops.fetch_add(1, kRelaxed);

  *replicate = status.ok() && request.op != OpCode::kLookup &&
               options_.cluster.num_replicas > 0 && !request.server_origin &&
               request.replica_index == 0 && route.chain.size() > 1;

  resp.status = status.raw();
  resp.value = std::move(lookup_value);
  return resp;
}

Response ZhtServer::HandleData(Request&& request) {
  const Stopwatch watch(SystemClock::Instance());
  DataRoute route;
  {
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    route = RouteDataOpLocked(request, /*include_redirect_delta=*/true);
  }

  Response resp;
  bool replicate = false;
  DurableWait wait;
  if (route.redirect) {
    resp = std::move(*route.redirect);
  } else {
    Stripe& stripe = StripeFor(route.partition);
    std::lock_guard<std::mutex> lock(stripe.mu);
    resp = ApplyDataOpStriped(request, route, &replicate);
    if (resp.ok() && request.op != OpCode::kLookup) {
      // Capture the commit token while the stripe still orders this store:
      // it covers exactly the mutations applied so far, including ours.
      wait.store = SharedStoreFor(route.partition);
      if (wait.store) wait.token = wait.store->last_commit_token();
    }
  }
  if (wait.token != 0) {
    // Ack only once the owning store reports the op durable. Outside the
    // stripe, so concurrent writers join the same group-commit window.
    Status durable = wait.store->WaitDurable(wait.token);
    if (!durable.ok()) {
      resp.status = durable.raw();
      replicate = false;
    }
  }
  if (replicate) {
    // Outside every lock: a synchronous hop to the secondary keeps
    // primary+secondary strongly consistent; further replicas go through
    // the asynchronous queue (§III.J).
    ReplicateSync(request, route.partition, route.chain);
  }
  // Service time including the synchronous replication leg — what a client
  // waits for. Lock-free (atomic bucket increments).
  const auto op_index = static_cast<std::size_t>(request.op) - 1;
  if (op_index < 4) data_op_hist_[op_index]->Record(watch.Elapsed());
  return resp;
}

Response ZhtServer::HandleBatch(Request&& request) {
  const Stopwatch watch(SystemClock::Instance());
  Response carrier;
  carrier.seq = request.seq;
  auto batch = BatchRequest::Decode(request.value);
  if (!batch.ok()) {
    carrier.status = batch.status().raw();
    return carrier;
  }
  batch_size_hist_->Record(static_cast<std::int64_t>(batch->ops.size()));

  const std::size_t n = batch->ops.size();
  std::vector<DataRoute> routes(n);
  std::vector<char> is_data(n, 0);
  std::uint32_t epoch = 0;

  // Route every sub-op under one shared table acquisition.
  {
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    epoch = table_.epoch();
    bool delta_sent = false;
    for (std::size_t i = 0; i < n; ++i) {
      const Request& op = batch->ops[i];
      switch (op.op) {
        case OpCode::kInsert:
        case OpCode::kLookup:
        case OpCode::kRemove:
        case OpCode::kAppend:
          is_data[i] = 1;
          routes[i] = RouteDataOpLocked(op, !delta_sent);
          if (routes[i].redirect && !routes[i].redirect->membership.empty()) {
            delta_sent = true;
          }
          break;
        default:
          break;
      }
    }
  }

  // Take every stripe the batch touches, in ascending index order
  // (deadlock-free against concurrent batches), and hold them across the
  // whole apply: the batch lands as a unit on its partitions, with no
  // interleaved single-op traffic on those keys.
  std::vector<std::size_t> stripe_order;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_data[i] && !routes[i].redirect) {
      stripe_order.push_back(StripeIndexFor(routes[i].partition));
    }
  }
  std::sort(stripe_order.begin(), stripe_order.end());
  stripe_order.erase(std::unique(stripe_order.begin(), stripe_order.end()),
                     stripe_order.end());
  std::vector<std::unique_lock<std::mutex>> held;
  held.reserve(stripe_order.size());
  for (std::size_t idx : stripe_order) held.emplace_back(stripes_[idx].mu);

  BatchResponse out;
  out.responses.reserve(n);
  std::vector<Request> replicate_ops;
  std::vector<PartitionId> replicate_partitions;
  std::vector<std::vector<InstanceId>> replicate_chains;

  for (std::size_t i = 0; i < n; ++i) {
    Request& op = batch->ops[i];
    if (!is_data[i]) {
      // Batches carry data operations only; nested batches and control
      // messages are rejected per sub-op, not per batch.
      Response sub;
      sub.seq = op.seq;
      sub.status = Status(StatusCode::kInvalidArgument).raw();
      out.responses.push_back(std::move(sub));
      continue;
    }
    if (routes[i].redirect) {
      out.responses.push_back(std::move(*routes[i].redirect));
      continue;
    }
    bool replicate = false;
    Response sub = ApplyDataOpStriped(op, routes[i], &replicate);
    if (replicate) {
      replicate_ops.push_back(op);
      replicate_partitions.push_back(routes[i].partition);
      replicate_chains.push_back(std::move(routes[i].chain));
    }
    out.responses.push_back(std::move(sub));
  }

  // Durable ack, once per carrier: capture one commit token per store the
  // batch mutated (the token is monotone, so the latest covers every sub-op
  // on that store) while the stripes are still held, wait after release.
  std::unordered_map<PartitionId, DurableWait> waits;
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_data[i] || routes[i].redirect ||
        batch->ops[i].op == OpCode::kLookup || !out.responses[i].ok()) {
      continue;
    }
    DurableWait& wait = waits[routes[i].partition];
    if (!wait.store) {
      wait.store = SharedStoreFor(routes[i].partition);
      if (wait.store) wait.token = wait.store->last_commit_token();
    }
  }
  held.clear();  // release the stripes before the durable wait + replication

  std::unordered_set<PartitionId> not_durable;
  for (auto& [partition, wait] : waits) {
    if (wait.token == 0) continue;
    if (!wait.store->WaitDurable(wait.token).ok()) not_durable.insert(partition);
  }
  if (!not_durable.empty()) {
    // Sub-ops on a store that failed to sync were never durable: fail them
    // and drop their replication legs.
    for (std::size_t i = 0; i < n; ++i) {
      if (is_data[i] && !routes[i].redirect &&
          batch->ops[i].op != OpCode::kLookup &&
          not_durable.count(routes[i].partition) && out.responses[i].ok()) {
        out.responses[i].status = Status(StatusCode::kInternal).raw();
      }
    }
    std::vector<Request> kept_ops;
    std::vector<PartitionId> kept_partitions;
    std::vector<std::vector<InstanceId>> kept_chains;
    for (std::size_t i = 0; i < replicate_ops.size(); ++i) {
      if (not_durable.count(replicate_partitions[i])) continue;
      kept_ops.push_back(std::move(replicate_ops[i]));
      kept_partitions.push_back(replicate_partitions[i]);
      kept_chains.push_back(std::move(replicate_chains[i]));
    }
    replicate_ops = std::move(kept_ops);
    replicate_partitions = std::move(kept_partitions);
    replicate_chains = std::move(kept_chains);
  }

  if (!replicate_ops.empty()) {
    ReplicateBatch(std::move(replicate_ops), replicate_partitions,
                   replicate_chains);
  }
  Response packed = PackBatchResponse(out, request.seq, epoch);
  batch_hist_->Record(watch.Elapsed());
  return packed;
}

void ZhtServer::ReplicateSync(const Request& original, PartitionId partition,
                              const std::vector<InstanceId>& chain) {
  Request forward = original;
  forward.server_origin = true;
  forward.partition = partition;

  // Fan-out of this mutation: every chain member beyond the primary.
  replication_fanout_hist_->Record(
      static_cast<std::int64_t>(chain.size()) - 1);

  if (options_.sync_secondary && chain.size() > 1) {
    forward.replica_index = 1;
    NodeAddress secondary;
    {
      std::shared_lock<std::shared_mutex> lock(table_mu_);
      secondary = table_.Instance(chain[1]).address;
    }
    stats_.replications_sync.fetch_add(1, kRelaxed);
    replication_sync_counter_->Increment();
    auto result =
        peer_transport_->Call(secondary, forward, options_.cluster.peer_timeout);
    if (!result.ok()) {
      ZHT_WARN << "sync replication to " << secondary.ToString()
               << " failed: " << result.status().ToString();
    }
  }
  std::size_t first_async = options_.sync_secondary ? 2 : 1;
  for (std::size_t i = first_async; i < chain.size(); ++i) {
    Request async = forward;
    async.replica_index = static_cast<std::uint8_t>(i);
    EnqueueAsyncReplication(std::move(async), chain[i]);
    replication_async_counter_->Increment();
    stats_.replications_async.fetch_add(1, kRelaxed);
  }
}

void ZhtServer::ReplicateBatch(
    std::vector<Request> ops, const std::vector<PartitionId>& partitions,
    const std::vector<std::vector<InstanceId>>& chains) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].server_origin = true;
    ops[i].partition = partitions[i];
  }

  for (const auto& chain : chains) {
    replication_fanout_hist_->Record(static_cast<std::int64_t>(chain.size()) -
                                     1);
  }

  // Synchronous leg: group sub-ops by their secondary and push each group
  // as one pipelined BATCH call before acknowledging the client.
  if (options_.sync_secondary) {
    std::unordered_map<InstanceId, std::vector<Request>> groups;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (chains[i].size() > 1) {
        Request forward = ops[i];
        forward.replica_index = 1;
        groups[chains[i][1]].push_back(std::move(forward));
      }
    }
    for (auto& [target_id, group] : groups) {
      NodeAddress target;
      bool have_target = false;
      {
        std::shared_lock<std::shared_mutex> lock(table_mu_);
        if (target_id < table_.instance_count()) {
          target = table_.Instance(target_id).address;
          have_target = true;
        }
      }
      if (!have_target) continue;
      stats_.replications_sync.fetch_add(group.size(), kRelaxed);
      replication_sync_counter_->Increment(group.size());
      auto result =
          peer_transport_->CallBatch(target, group, options_.cluster.peer_timeout);
      if (!result.ok()) {
        ZHT_WARN << "sync batch replication to " << target.ToString()
                 << " failed: " << result.status().ToString();
      }
    }
  }

  // Asynchronous legs: one queued BATCH carrier per (replica slot, target)
  // group, so further replicas also receive the batch as a unit.
  std::size_t first_async = options_.sync_secondary ? 2 : 1;
  std::unordered_map<InstanceId, std::vector<Request>> async_groups;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t r = first_async; r < chains[i].size(); ++r) {
      Request forward = ops[i];
      forward.replica_index = static_cast<std::uint8_t>(r);
      async_groups[chains[i][r]].push_back(std::move(forward));
    }
  }
  for (auto& [target_id, group] : async_groups) {
    Request packed =
        PackBatchRequest(group, group.front().seq, /*server_origin=*/true);
    replication_async_counter_->Increment(group.size());
    stats_.replications_async.fetch_add(group.size(), kRelaxed);
    EnqueueAsyncReplication(std::move(packed), target_id);
  }
}

void ZhtServer::EnqueueAsyncReplication(Request request, InstanceId target) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    async_queue_.emplace_back(std::move(request), target);
  }
  queue_cv_.notify_one();
}

void ZhtServer::AsyncReplicationLoop() {
  for (;;) {
    std::pair<Request, InstanceId> item;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || !async_queue_.empty(); });
      if (stopping_ && async_queue_.empty()) return;
      item = std::move(async_queue_.front());
      async_queue_.pop_front();
      ++async_inflight_;
    }
    NodeAddress target;
    bool have_target = false;
    {
      std::shared_lock<std::shared_mutex> lock(table_mu_);
      if (item.second < table_.instance_count()) {
        target = table_.Instance(item.second).address;
        have_target = true;
      }
    }
    if (have_target) {
      auto result =
          peer_transport_->Call(target, item.first, options_.cluster.peer_timeout);
      if (!result.ok()) {
        ZHT_DEBUG << "async replication to " << target.ToString()
                  << " failed: " << result.status().ToString();
      }
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --async_inflight_;
    }
    queue_cv_.notify_all();
  }
}

void ZhtServer::FlushAsyncReplication() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock, [this] {
    return async_queue_.empty() && async_inflight_ == 0;
  });
}

Response ZhtServer::HandleMembershipPull(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  resp.epoch = table_.epoch();
  resp.membership = request.epoch == 0 ? table_.EncodeFull()
                                       : table_.EncodeDelta(request.epoch);
  return resp;
}

Response ZhtServer::HandleMembershipPush(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  std::unique_lock<std::shared_mutex> lock(table_mu_);
  Status status = table_.ApplyUpdate(request.value);
  resp.status = status.raw();
  resp.epoch = table_.epoch();
  return resp;
}

Response ZhtServer::HandleMigrateBegin(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  // Fresh store for the incoming partition (replaces any stale replica
  // copy; the authoritative data is what the source streams to us). The
  // stripe hold fences out readers of the old store; the retired store is
  // destroyed inside it.
  auto store = options_.store_factory(options_.self, request.partition);
  {
    Stripe& stripe = StripeFor(request.partition);
    std::lock_guard<std::mutex> stripe_lock(stripe.mu);
    std::shared_ptr<KVStore> retired;
    {
      std::lock_guard<std::mutex> map_lock(partitions_mu_);
      auto it = partitions_.find(request.partition);
      if (it != partitions_.end()) retired = std::move(it->second);
      partitions_[request.partition] = std::move(store);
    }
  }
  {
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    resp.epoch = table_.epoch();
  }
  return resp;
}

Response ZhtServer::HandleMigrateData(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  auto pairs = UnpackPairs(request.value);
  if (!pairs.ok()) {
    resp.status = pairs.status().raw();
    return resp;
  }
  Stripe& stripe = StripeFor(request.partition);
  std::lock_guard<std::mutex> lock(stripe.mu);
  KVStore* store = StoreFor(request.partition);
  for (const auto& [key, value] : *pairs) {
    store->Put(key, value);
  }
  // Ack the carrier only once its pairs are durable (one wait per carrier);
  // the source treats the ack as "these pairs are safely moved".
  Status durable = store->WaitDurable(store->last_commit_token());
  if (!durable.ok()) resp.status = durable.raw();
  return resp;
}

Response ZhtServer::HandleMigrateEnd(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  stats_.migrations_in.fetch_add(1, kRelaxed);
  std::shared_lock<std::shared_mutex> lock(table_mu_);
  resp.epoch = table_.epoch();
  return resp;
}

Status ZhtServer::MigratePartitionTo(PartitionId partition,
                                     const NodeAddress& target) {
  // Mark the partition migrating and snapshot it under one stripe hold:
  // no write can land between the lock and the snapshot, so the stream is
  // exact. Writers arriving after see kMigrating and retry (§III.C "Data
  // Migration"); readers/writers of other partitions proceed unhindered.
  std::vector<std::pair<std::string, std::string>> pairs;
  {
    Stripe& stripe = StripeFor(partition);
    std::lock_guard<std::mutex> stripe_lock(stripe.mu);
    if (stripe.migrating.count(partition)) {
      return Status(StatusCode::kMigrating, "partition already migrating");
    }
    stripe.migrating.insert(partition);
    KVStore* store = nullptr;
    {
      std::lock_guard<std::mutex> map_lock(partitions_mu_);
      auto it = partitions_.find(partition);
      if (it != partitions_.end()) store = it->second.get();
    }
    if (store) {
      store->ForEach([&pairs](std::string_view k, std::string_view v) {
        pairs.emplace_back(std::string(k), std::string(v));
      });
    }
  }

  auto fail = [this, partition](Status status) {
    Stripe& stripe = StripeFor(partition);
    std::lock_guard<std::mutex> stripe_lock(stripe.mu);
    stripe.migrating.erase(partition);
    return status;
  };

  Request begin;
  begin.op = OpCode::kMigrateBegin;
  begin.partition = partition;
  begin.server_origin = true;
  auto begin_result =
      peer_transport_->Call(target, begin, options_.cluster.peer_timeout);
  if (!begin_result.ok()) return fail(begin_result.status());
  if (!begin_result->ok()) return fail(begin_result->status_as_object());

  // Stream in batches ("moving a partition is as easy as moving a file").
  std::vector<std::pair<std::string, std::string>> batch;
  std::size_t batch_bytes = 0;
  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::Ok();
    Request data;
    data.op = OpCode::kMigrateData;
    data.partition = partition;
    data.server_origin = true;
    data.value = PackPairs(batch);
    batch.clear();
    batch_bytes = 0;
    auto result = peer_transport_->Call(target, data, options_.cluster.peer_timeout);
    if (!result.ok()) return result.status();
    if (!result->ok()) return result->status_as_object();
    return Status::Ok();
  };
  for (auto& pair : pairs) {
    batch_bytes += pair.first.size() + pair.second.size() + 16;
    batch.push_back(std::move(pair));
    if (batch_bytes >= options_.migrate_batch_bytes) {
      Status status = flush();
      if (!status.ok()) return fail(status);
    }
  }
  Status status = flush();
  if (!status.ok()) return fail(status);

  Request end;
  end.op = OpCode::kMigrateEnd;
  end.partition = partition;
  end.server_origin = true;
  auto end_result = peer_transport_->Call(target, end, options_.cluster.peer_timeout);
  if (!end_result.ok()) return fail(end_result.status());
  if (!end_result->ok()) return fail(end_result->status_as_object());

  {
    Stripe& stripe = StripeFor(partition);
    std::lock_guard<std::mutex> stripe_lock(stripe.mu);
    std::shared_ptr<KVStore> retired;
    {
      std::lock_guard<std::mutex> map_lock(partitions_mu_);
      auto it = partitions_.find(partition);
      if (it != partitions_.end()) {
        retired = std::move(it->second);
        partitions_.erase(it);
      }
    }
    stripe.migrating.erase(partition);
  }
  stats_.migrations_out.fetch_add(1, kRelaxed);
  return Status::Ok();
}

Response ZhtServer::HandleMigrateOut(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  auto target = NodeAddress::Parse(request.value);
  if (!target.ok()) {
    resp.status = target.status().raw();
    return resp;
  }
  Status status = MigratePartitionTo(request.partition, *target);
  resp.status = status.raw();
  {
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    resp.epoch = table_.epoch();
  }
  return resp;
}

Status ZhtServer::RepairPartition(PartitionId partition) {
  // Push every pair to every chain member (idempotent puts restore the
  // replication level after a failure, §III.C "Node departures").
  std::vector<InstanceId> chain;
  {
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    chain = table_.ReplicaChain(partition, options_.cluster.num_replicas);
  }
  std::vector<std::pair<std::string, std::string>> pairs;
  {
    Stripe& stripe = StripeFor(partition);
    std::lock_guard<std::mutex> stripe_lock(stripe.mu);
    KVStore* store = nullptr;
    {
      std::lock_guard<std::mutex> map_lock(partitions_mu_);
      auto it = partitions_.find(partition);
      if (it != partitions_.end()) store = it->second.get();
    }
    if (store) {
      store->ForEach([&pairs](std::string_view k, std::string_view v) {
        pairs.emplace_back(std::string(k), std::string(v));
      });
    }
  }
  for (const auto& [key, value] : pairs) {
    for (std::size_t i = 1; i < chain.size(); ++i) {
      if (chain[i] == options_.self) continue;
      Request request;
      request.op = OpCode::kInsert;
      request.key = key;
      request.value = value;
      request.partition = partition;
      request.server_origin = true;
      request.replica_index = static_cast<std::uint8_t>(i);
      EnqueueAsyncReplication(std::move(request), chain[i]);
    }
  }
  return Status::Ok();
}

Response ZhtServer::HandleRepair(Request&& request) {
  Response resp;
  resp.seq = request.seq;
  resp.status = RepairPartition(request.partition).raw();
  return resp;
}

Response ZhtServer::HandleBroadcast(Request&& request) {
  Response resp;
  resp.seq = request.seq;

  PartitionId partition = 0;
  std::size_t count = 0;
  const std::size_t self_index = options_.self;
  {
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    partition = table_.PartitionOfKey(request.key);
    count = table_.instance_count();
  }
  {
    Stripe& stripe = StripeFor(partition);
    std::lock_guard<std::mutex> stripe_lock(stripe.mu);
    KVStore* store = StoreFor(partition);
    Status status = store->Put(request.key, request.value);
    if (status.ok()) status = store->WaitDurable(store->last_commit_token());
    resp.status = status.raw();
  }
  stats_.broadcasts.fetch_add(1, kRelaxed);

  // Binary spanning tree over instance ids (§VI "Broadcast primitive"):
  // node i forwards to 2i+1 and 2i+2.
  for (std::size_t child : {2 * self_index + 1, 2 * self_index + 2}) {
    if (child >= count) continue;
    Request forward = request;
    forward.server_origin = true;
    EnqueueAsyncReplication(std::move(forward),
                            static_cast<InstanceId>(child));
  }
  return resp;
}

ZhtServerStats ZhtServer::stats() const {
  ZhtServerStats s;
  s.ops = stats_.ops.load(kRelaxed);
  s.redirects = stats_.redirects.load(kRelaxed);
  s.replications_sync = stats_.replications_sync.load(kRelaxed);
  s.replications_async = stats_.replications_async.load(kRelaxed);
  s.migrations_out = stats_.migrations_out.load(kRelaxed);
  s.migrations_in = stats_.migrations_in.load(kRelaxed);
  s.broadcasts = stats_.broadcasts.load(kRelaxed);
  s.duplicate_appends_dropped = stats_.duplicate_appends_dropped.load(kRelaxed);
  return s;
}

std::uint64_t ZhtServer::CountEntries(std::size_t* held) const {
  // Snapshot the partition ids, then size each store under its stripe (a
  // store pointer is only safe to dereference with the stripe held).
  std::vector<PartitionId> ids;
  {
    std::lock_guard<std::mutex> lock(partitions_mu_);
    ids.reserve(partitions_.size());
    for (const auto& [partition, store] : partitions_) ids.push_back(partition);
  }
  if (held) *held = ids.size();
  std::uint64_t entries = 0;
  for (PartitionId partition : ids) {
    Stripe& stripe = StripeFor(partition);
    std::lock_guard<std::mutex> stripe_lock(stripe.mu);
    std::lock_guard<std::mutex> map_lock(partitions_mu_);
    auto it = partitions_.find(partition);
    if (it != partitions_.end()) entries += it->second->Size();
  }
  return entries;
}

bool ZhtServer::AggregateDurability(StoreDurabilityMetrics* out) const {
  // Same discipline as CountEntries: snapshot partition ids, then visit
  // each store under its stripe.
  std::vector<PartitionId> ids;
  {
    std::lock_guard<std::mutex> lock(partitions_mu_);
    ids.reserve(partitions_.size());
    for (const auto& [partition, store] : partitions_) ids.push_back(partition);
  }
  bool any = false;
  for (PartitionId partition : ids) {
    Stripe& stripe = StripeFor(partition);
    std::lock_guard<std::mutex> stripe_lock(stripe.mu);
    std::lock_guard<std::mutex> map_lock(partitions_mu_);
    auto it = partitions_.find(partition);
    if (it == partitions_.end()) continue;
    StoreDurabilityMetrics one;
    if (!it->second->durability_metrics(&one)) continue;
    out->group_commit_batch.Merge(one.group_commit_batch);
    out->fsync_micros.Merge(one.fsync_micros);
    out->fsync_errors += one.fsync_errors;
    out->group_commits += one.group_commits;
    any = true;
  }
  return any;
}

MetricsSnapshot ZhtServer::MetricsSnapshotNow() const {
  // Legacy counters and instance-level gauges first (stable names the
  // tools print as `name = value`), then everything in the registry.
  MetricsSnapshot snapshot;
  std::size_t held = 0;
  const std::uint64_t entries = CountEntries(&held);
  std::uint32_t epoch = 0;
  {
    std::shared_lock<std::shared_mutex> lock(table_mu_);
    epoch = table_.epoch();
  }
  snapshot.AddGauge("instance", static_cast<std::int64_t>(options_.self));
  snapshot.AddGauge("epoch", epoch);
  snapshot.AddGauge("partitions_held", static_cast<std::int64_t>(held));
  snapshot.AddGauge("entries", static_cast<std::int64_t>(entries));
  snapshot.AddCounter("ops", stats_.ops.load(kRelaxed));
  snapshot.AddCounter("redirects", stats_.redirects.load(kRelaxed));
  snapshot.AddCounter("replications_sync",
                      stats_.replications_sync.load(kRelaxed));
  snapshot.AddCounter("replications_async",
                      stats_.replications_async.load(kRelaxed));
  snapshot.AddCounter("migrations_in", stats_.migrations_in.load(kRelaxed));
  snapshot.AddCounter("migrations_out", stats_.migrations_out.load(kRelaxed));
  snapshot.AddCounter("broadcasts", stats_.broadcasts.load(kRelaxed));
  snapshot.AddCounter("duplicate_appends_dropped",
                      stats_.duplicate_appends_dropped.load(kRelaxed));
  StoreDurabilityMetrics durability;
  if (AggregateDurability(&durability)) {
    snapshot.AddCounter("novoht.fsync_errors", durability.fsync_errors);
    snapshot.AddCounter("novoht.group_commits", durability.group_commits);
    snapshot.AddHistogram("novoht.group_commit.batch_size",
                          durability.group_commit_batch);
    snapshot.AddHistogram("novoht.group_commit.fsync_micros",
                          durability.fsync_micros);
  }
  MetricsSnapshot registry = metrics_.Snapshot();
  snapshot.entries.insert(snapshot.entries.end(),
                          std::make_move_iterator(registry.entries.begin()),
                          std::make_move_iterator(registry.entries.end()));
  return snapshot;
}

std::uint64_t ZhtServer::TotalEntries() const { return CountEntries(nullptr); }

}  // namespace zht
