#include "core/indexer.h"

#include <algorithm>

namespace zht {

Status Indexer::ValidateTag(const std::string& tag) {
  if (tag.empty() || tag.find(';') != std::string::npos ||
      tag.find('/') != std::string::npos) {
    return Status(StatusCode::kInvalidArgument, "bad tag: " + tag);
  }
  return Status::Ok();
}

std::vector<std::string> Indexer::FoldPostings(const std::string& log) {
  std::vector<std::string> keys;
  std::size_t pos = 0;
  while (pos < log.size()) {
    std::size_t semi = log.find(';', pos);
    if (semi == std::string::npos) break;
    char op = log[pos];
    std::string key = log.substr(pos + 1, semi - pos - 1);
    pos = semi + 1;
    if (op == '+') {
      if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
        keys.push_back(key);
      }
    } else if (op == '-') {
      keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
    }
  }
  return keys;
}

Status Indexer::PutIndexed(const std::string& key, std::string_view value,
                           const std::vector<std::string>& tags) {
  for (const auto& tag : tags) {
    Status status = ValidateTag(tag);
    if (!status.ok()) return status;
  }
  if (key.find(';') != std::string::npos) {
    return Status(StatusCode::kInvalidArgument, "key contains ';'");
  }
  Status status = client_->Insert(key, value);
  if (!status.ok()) return status;
  // Lock-free concurrent index maintenance: each tag is one append.
  for (const auto& tag : tags) {
    status = client_->Append(TagKey(tag), "+" + key + ";");
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status Indexer::RemoveIndexed(const std::string& key,
                              const std::vector<std::string>& tags) {
  Status status = client_->Remove(key);
  if (!status.ok()) return status;
  for (const auto& tag : tags) {
    Status appended = client_->Append(TagKey(tag), "-" + key + ";");
    if (!appended.ok()) return appended;
  }
  return Status::Ok();
}

Result<std::vector<std::string>> Indexer::FindByTag(const std::string& tag) {
  Status status = ValidateTag(tag);
  if (!status.ok()) return status;
  auto log = client_->Lookup(TagKey(tag));
  if (!log.ok()) {
    if (log.status().code() == StatusCode::kNotFound) {
      return std::vector<std::string>{};
    }
    return log.status();
  }
  return FoldPostings(*log);
}

Result<std::vector<std::string>> Indexer::FindByAllTags(
    const std::vector<std::string>& tags) {
  if (tags.empty()) return std::vector<std::string>{};
  auto result = FindByTag(tags[0]);
  if (!result.ok()) return result.status();
  std::vector<std::string> intersection = *result;
  for (std::size_t i = 1; i < tags.size() && !intersection.empty(); ++i) {
    auto next = FindByTag(tags[i]);
    if (!next.ok()) return next.status();
    std::vector<std::string> kept;
    for (const auto& key : intersection) {
      if (std::find(next->begin(), next->end(), key) != next->end()) {
        kept.push_back(key);
      }
    }
    intersection = std::move(kept);
  }
  return intersection;
}

Status Indexer::CompactTag(const std::string& tag) {
  auto keys = FindByTag(tag);
  if (!keys.ok()) return keys.status();
  std::string folded;
  for (const auto& key : *keys) {
    folded += "+" + key + ";";
  }
  if (folded.empty()) return client_->Remove(TagKey(tag));
  return client_->Insert(TagKey(tag), folded);
}

}  // namespace zht
