// FailureDetector (§III.H): ZHT "lazily tags nodes that do not respond to
// requests repeatedly as failed (using exponential back off)". This tracks
// consecutive failures per destination and computes the retry back-off; the
// client marks the node dead once the threshold is crossed.
//
// Tracked state is bounded two ways: PruneExcept drops entries for nodes
// that left the membership table (a long-lived client across many
// departures/joins would otherwise grow without limit), and max_tracked
// caps the map even if the caller never prunes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/clock.h"
#include "net/address.h"

namespace zht {

struct FailureDetectorOptions {
  int failures_to_mark_dead = 3;
  Nanos initial_backoff = 1 * kNanosPerMilli;
  Nanos max_backoff = 256 * kNanosPerMilli;
  // Hard cap on tracked destinations; an arbitrary entry is evicted when a
  // new destination would exceed it (safety net behind PruneExcept).
  std::size_t max_tracked = 1024;
};

class FailureDetector {
 public:
  explicit FailureDetector(FailureDetectorOptions options = {})
      : options_(options) {
    if (options_.max_tracked == 0) options_.max_tracked = 1;
  }

  // Records a failed request. Returns true if the node should now be
  // considered dead.
  bool RecordFailure(const NodeAddress& node) {
    auto it = states_.find(node);
    if (it == states_.end()) {
      if (states_.size() >= options_.max_tracked) {
        states_.erase(states_.begin());
      }
      it = states_.emplace(node, State{}).first;
    }
    State& state = it->second;
    ++state.consecutive_failures;
    state.backoff = state.backoff == 0
                        ? options_.initial_backoff
                        : std::min(state.backoff * 2, options_.max_backoff);
    return state.consecutive_failures >= options_.failures_to_mark_dead;
  }

  void RecordSuccess(const NodeAddress& node) { states_.erase(node); }

  // Drops state for every node not in `keep` — call after a membership
  // update so departed nodes stop occupying the table.
  void PruneExcept(const std::unordered_set<NodeAddress>& keep) {
    std::erase_if(states_,
                  [&keep](const auto& entry) { return !keep.count(entry.first); });
  }

  // Back-off to wait before the next attempt at this node.
  Nanos BackoffFor(const NodeAddress& node) const {
    auto it = states_.find(node);
    return it == states_.end() ? 0 : it->second.backoff;
  }

  int ConsecutiveFailures(const NodeAddress& node) const {
    auto it = states_.find(node);
    return it == states_.end() ? 0 : it->second.consecutive_failures;
  }

  std::size_t tracked_count() const { return states_.size(); }

 private:
  struct State {
    int consecutive_failures = 0;
    Nanos backoff = 0;
  };

  FailureDetectorOptions options_;
  std::unordered_map<NodeAddress, State> states_;
};

}  // namespace zht
