// FailureDetector (§III.H): ZHT "lazily tags nodes that do not respond to
// requests repeatedly as failed (using exponential back off)". This tracks
// consecutive failures per destination and computes the retry back-off; the
// client marks the node dead once the threshold is crossed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/clock.h"
#include "net/address.h"

namespace zht {

struct FailureDetectorOptions {
  int failures_to_mark_dead = 3;
  Nanos initial_backoff = 1 * kNanosPerMilli;
  Nanos max_backoff = 256 * kNanosPerMilli;
};

class FailureDetector {
 public:
  explicit FailureDetector(FailureDetectorOptions options = {})
      : options_(options) {}

  // Records a failed request. Returns true if the node should now be
  // considered dead.
  bool RecordFailure(const NodeAddress& node) {
    auto& state = states_[node];
    ++state.consecutive_failures;
    state.backoff = state.backoff == 0
                        ? options_.initial_backoff
                        : std::min(state.backoff * 2, options_.max_backoff);
    return state.consecutive_failures >= options_.failures_to_mark_dead;
  }

  void RecordSuccess(const NodeAddress& node) { states_.erase(node); }

  // Back-off to wait before the next attempt at this node.
  Nanos BackoffFor(const NodeAddress& node) const {
    auto it = states_.find(node);
    return it == states_.end() ? 0 : it->second.backoff;
  }

  int ConsecutiveFailures(const NodeAddress& node) const {
    auto it = states_.find(node);
    return it == states_.end() ? 0 : it->second.consecutive_failures;
  }

 private:
  struct State {
    int consecutive_failures = 0;
    Nanos backoff = 0;
  };

  FailureDetectorOptions options_;
  std::unordered_map<NodeAddress, State> states_;
};

}  // namespace zht
