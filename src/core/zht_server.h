// ZhtServer: one ZHT instance (§III.B). Owns the partition stores for the
// partitions it serves (as primary or replica), validates ownership against
// its membership table (answering REDIRECT with a piggybacked table for the
// lazy client update), applies operations, and drives replication:
// synchronous to the secondary, asynchronous to further replicas (§III.J).
//
// The request API is asynchronous and ownership-routed (DESIGN.md §9):
// HandleAsync(Request&&, ResponseCallback) routes each request to the shard
// that owns its partition and completes via callback. A shard owns a
// disjoint set of partitions end-to-end — stores, membership-table copy,
// append-dedup window, migration locks — and only ever executes on one
// thread at a time, so the single-key hot path acquires ZERO mutexes:
// ingress computes the partition from an immutable PartitionSpace copy,
// posts a task into the shard's mailbox, and the owning reactor drains it.
//
// Shard mailboxes: one bounded SPSC ring per bound executor (reactor) plus
// a lock-free MPSC queue for every other producer (finishers, durability
// flushers, external threads) and for ring overflow. A request arriving on
// the wrong reactor is forwarded through the target shard's mailbox — a
// message, not a lock (`reactor.forwards` counts these; `reactor.
// mailbox_full` counts ring overflows that spilled to the MPSC queue).
//
// Execution model:
//   * bound shard (BindShardExecutor): only the owning reactor thread runs
//     shard tasks — it drains after enqueueing its own posts and when its
//     waker (eventfd) fires for cross-thread posts;
//   * unbound shard (loopback clusters, unit tests): whichever thread
//     posts drains, serialized by a CAS on the shard's `active` flag.
//
// Cross-partition operations are explicit scatter/gather messages with
// completion counting: a BATCH spanning owners scatters per-shard groups
// and the last group's durability callback finalizes the carrier; a
// membership push applies on shard 0 (the epoch authority) then fans the
// payload to every other shard before acking. Durability acks park on the
// store's flusher via KVStore::NotifyDurable — no thread blocks in the
// server for a group commit. Synchronous replication legs and migration
// streaming run on a small finisher pool so shard drains never do network
// I/O.
//
// Blocking adapters (Handle, MigratePartitionTo, RepairPartition,
// TotalEntries, MetricsSnapshotNow) exist for tests, tools, and managers.
// Never call them from a reactor thread that drives this server's shards —
// they wait on work those shards must execute.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "core/cluster_options.h"
#include "core/hot_key_cache.h"
#include "hashing/partition_space.h"
#include "membership/membership_table.h"
#include "net/transport.h"
#include "novoht/kv_store.h"

namespace zht {

// Builds the store for one partition held by one instance. The instance id
// is part of the identity: with replication (or after a migration) several
// instances hold stores for the same partition, and persistent factories
// must give each its own path or they would share one file.
using StoreFactory = std::function<std::unique_ptr<KVStore>(
    InstanceId self, PartitionId partition)>;

// Persistent NoVoHT partition stores: one log file per (instance, partition)
// under `dir`, with durability taken from `cluster`. The stores defer the
// group-commit wait (wait_for_durable = false): ZhtServer acks each request
// — or each BATCH carrier — exactly once, from the flusher's NotifyDurable
// callback, after its mutations are durable.
StoreFactory MakeNoVoHTStoreFactory(std::string dir,
                                    const ClusterOptions& cluster);

struct ZhtServerOptions {
  InstanceId self = 0;
  ClusterOptions cluster;        // deployment-wide: replicas + timeouts
  bool sync_secondary = true;    // primary+secondary strong consistency
  std::size_t migrate_batch_bytes = 256 * 1024;
  // Factory for partition stores. Defaults to in-memory NoVoHT.
  StoreFactory store_factory;
  // Partition-ownership shards. 0 = auto (min(4, hardware_concurrency)).
  // A multi-reactor front-end passes its reactor count so shards and
  // reactors pair 1:1 (shard s bound to executor s % num_reactors).
  std::size_t num_shards = 0;
  // Capacity of each bounded SPSC cross-reactor mailbox ring. Overflow
  // spills to the shard's MPSC queue and bumps `reactor.mailbox_full`.
  std::size_t mailbox_ring_capacity = 1024;
};

struct ZhtServerStats {
  std::uint64_t ops = 0;              // data operations served
  std::uint64_t redirects = 0;        // wrong-owner requests answered
  std::uint64_t replications_sync = 0;
  std::uint64_t replications_async = 0;
  std::uint64_t migrations_out = 0;
  std::uint64_t migrations_in = 0;
  // Pair/byte volume of completed outbound partition migrations (key+value
  // payload, pre-framing) — the churn bench's bytes-moved-per-event source.
  std::uint64_t migration_pairs_streamed = 0;
  std::uint64_t migration_bytes_streamed = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t duplicate_appends_dropped = 0;
  // Anti-entropy / rebuild (source side). A "probe" is one kDigest RPC; a
  // clean probe moves no pair data. A rebuild leg is one (partition,
  // target) checkpoint stream; retries re-stream after a digest mismatch.
  std::uint64_t antientropy_probes = 0;
  std::uint64_t antientropy_clean = 0;
  std::uint64_t rebuilds_started = 0;
  std::uint64_t rebuilds_completed = 0;
  std::uint64_t rebuild_pairs_streamed = 0;
  std::uint64_t rebuild_retries = 0;
  // Hot-key read cache + admission control (DESIGN.md §13).
  std::uint64_t hot_cache_hits = 0;          // lookups served from cache
  std::uint64_t hot_cache_misses = 0;        // cache-eligible lookup misses
  std::uint64_t hot_cache_invalidations = 0; // mutations that evicted a key
  std::uint64_t hot_cache_drops = 0;         // entries dropped by partition/
                                             // membership events
  std::uint64_t sheds = 0;                   // data ops shed kUnavailable
};

class ZhtServer {
 public:
  // Admission control counts each queued data op as one mailbox slot OR
  // this many in-flight payload bytes, whichever is larger — so a budget
  // of N slots also caps queued bytes at N * 128 KiB (a burst of 1 MB
  // values hits the byte ceiling long before the slot ceiling).
  static constexpr std::size_t kShedBytesPerSlot = 128 * 1024;

  ZhtServer(MembershipTable table, const ZhtServerOptions& options,
            ClientTransport* peer_transport);
  ~ZhtServer();

  ZhtServer(const ZhtServer&) = delete;
  ZhtServer& operator=(const ZhtServer&) = delete;

  // The transport-facing entry point: routes to the owning shard and
  // invokes `done` exactly once — inline for redirects/rejections and the
  // no-durability hot path, from a flusher or finisher thread otherwise.
  // Safe to call from any thread, including reactor threads.
  void HandleAsync(Request&& request, ResponseCallback done);
  AsyncRequestHandler AsyncHandler() {
    return [this](Request&& request, ResponseCallback done) {
      HandleAsync(std::move(request), std::move(done));
    };
  }
  // Thin blocking adapter over HandleAsync for tests and simple callers.
  Response Handle(Request&& request);

  // Anti-entropy + online rebuild: digest-probes every member of
  // `partition`'s replica chain and streams a fresh checkpoint
  // (kRebuildBegin/Data/End through the ordered async-replication queue)
  // to each member whose digest mismatches — clean members exchange only
  // digests. `done` fires once, after every leg completed or was abandoned
  // (bounded re-stream retries on digest mismatch). No-op unless this
  // instance owns the partition. Safe from any thread; the manager's
  // kRepair handler acks before the rebuild finishes.
  void StartRebuild(PartitionId partition, std::function<void(Status)> done);
  // Blocking adapter over StartRebuild (tests/tools): returns when the
  // replication level is actually restored.
  Status RepairPartition(PartitionId partition);

  // Blocking introspection for tests/benches: the digest ({0, 0} when the
  // partition is not held) and a snapshot of the pairs this instance holds
  // for `partition`. Not for reactor threads.
  PartitionDigest PartitionDigestOf(PartitionId partition);
  std::vector<std::pair<std::string, std::string>> PartitionPairs(
      PartitionId partition);

  // Pushes `partition` to `target` (MigrateBegin/Data/End) and relinquishes
  // it. The caller (manager) updates and broadcasts membership afterwards.
  Status MigratePartitionTo(PartitionId partition, const NodeAddress& target);

  // Unsynchronized view of shard 0's table for single-threaded tests/admin
  // introspection; do not call concurrently with membership pushes.
  const MembershipTable& table() const { return shards_.front()->table; }
  InstanceId self() const { return options_.self; }
  ZhtServerStats stats() const;

  // --- shard/executor topology (wired by the hosting front-end) ---

  std::size_t num_shards() const { return shards_.size(); }
  // Executor that owns the shard of `request`'s key (-1 for control ops or
  // unbound shards). The EpollServer uses this as its connection-placement
  // hint so a well-sharded client's requests arrive on the owning reactor.
  int PreferredExecutor(const Request& request) const;
  // Binds shard `shard` to executor `executor` (a reactor index); `waker`
  // must wake that executor's event loop so it drains the shard. Call
  // before traffic starts, from the setup thread.
  void BindShardExecutor(std::size_t shard, int executor,
                         std::function<void()> waker);
  // Registers the calling thread as executor `executor` for this server.
  // Reactor on-start hook.
  void EnterExecutorThread(int executor);
  // Drains every shard bound to `executor`. Reactor on-wake hook; must be
  // called from the thread that entered as `executor`.
  void RunExecutor(int executor);

  // --- per-shard telemetry (bench/tooling) ---

  // Cross-executor posts into each shard's mailbox ("forwarded ops").
  std::uint64_t ShardForwardedOps(std::size_t shard) const;
  // Mailbox depth observed at each drain of `shard`.
  HistogramData ShardMailboxDepth(std::size_t shard) const;
  // Instantaneous mailbox depth / live hot-cache entry count (tests/bench:
  // overload and invalidation assertions). Any thread; approximate.
  std::uint64_t ShardQueuedNow(std::size_t shard) const;
  std::uint64_t HotCacheEntriesNow() const;
  // Partition-store count per shard ("owned partitions"). Blocking scatter.
  std::vector<std::size_t> ShardPartitionCounts() const;

  // Structured observability (§8 of DESIGN.md): per-opcode service-time
  // histograms, batch sizes, replication fan-out, mailbox counters.
  // Recording is lock-free; the registry mutex is touched only here and at
  // construction.
  const MetricsRegistry& metrics() const { return metrics_; }
  // The full STATS payload: registry metrics plus the legacy counters and
  // instance-level gauges, as encoded by serialize/metrics_codec.h.
  // Blocking (census scatter); not for reactor threads.
  MetricsSnapshot MetricsSnapshotNow() const;

  // Total pairs held (all partitions, primary and replica). Blocking.
  std::uint64_t TotalEntries() const;

  // Waits until the async replication queue drains (tests/benches).
  void FlushAsyncReplication();

 private:
  struct Shard;
  // A unit of shard work. Runs with exclusive ownership of the shard's
  // state; must not block on I/O, locks held elsewhere, or other shards.
  using ShardTask = std::function<void(Shard&)>;

  // Intrusive MPSC queue (Vyukov): wait-free multi-producer push; the
  // single consumer is whichever thread holds the shard's drain ownership.
  // Pop can transiently observe an empty queue while a producer is between
  // the exchange and the next-pointer store; drain loops reconcile against
  // the shard's `queued` counter.
  class MpscTaskQueue {
   public:
    MpscTaskQueue() {
      Node* stub = new Node();
      head_.store(stub, std::memory_order_relaxed);
      tail_ = stub;
    }
    ~MpscTaskQueue() {
      Node* node = tail_;
      while (node) {
        Node* next = node->next.load(std::memory_order_relaxed);
        delete node;
        node = next;
      }
    }
    void Push(ShardTask&& task) {
      Node* node = new Node();
      node->task = std::move(task);
      Node* prev = head_.exchange(node, std::memory_order_acq_rel);
      prev->next.store(node, std::memory_order_release);
    }
    bool Pop(ShardTask* out) {
      Node* tail = tail_;
      Node* next = tail->next.load(std::memory_order_acquire);
      if (!next) return false;
      *out = std::move(next->task);
      next->task = nullptr;
      tail_ = next;
      delete tail;
      return true;
    }

   private:
    struct Node {
      ShardTask task;
      std::atomic<Node*> next{nullptr};
    };
    alignas(64) std::atomic<Node*> head_;  // producers
    alignas(64) Node* tail_;               // consumer
  };

  // Bounded SPSC ring: the producer is one specific executor thread, the
  // consumer is the shard drain. Lock-free; Push fails (ring full) rather
  // than blocking — the caller spills to the MPSC queue.
  class SpscTaskRing {
   public:
    explicit SpscTaskRing(std::size_t capacity)
        : slots_(capacity == 0 ? 1 : capacity) {}
    bool Push(ShardTask&& task) {
      const std::uint64_t head = head_.load(std::memory_order_relaxed);
      if (head - tail_.load(std::memory_order_acquire) == slots_.size()) {
        return false;
      }
      slots_[head % slots_.size()] = std::move(task);
      head_.store(head + 1, std::memory_order_release);
      return true;
    }
    bool Pop(ShardTask* out) {
      const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
      if (tail == head_.load(std::memory_order_acquire)) return false;
      *out = std::move(slots_[tail % slots_.size()]);
      slots_[tail % slots_.size()] = nullptr;
      tail_.store(tail + 1, std::memory_order_release);
      return true;
    }

   private:
    std::vector<ShardTask> slots_;
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};
  };

  // One (partition, chain member) leg of an in-flight rebuild.
  struct RebuildTarget {
    InstanceId id = 0;
    NodeAddress address;
    std::uint8_t replica_index = 0;
    int attempts = 0;  // streams issued so far (retries on mismatch)
  };

  // Source-side state of one anti-entropy round: the owner probed the
  // chain and is streaming to the targets that mismatched. While a target
  // is listed here, synchronous replication legs to it divert into the
  // async queue so post-snapshot writes land after the stream's End (the
  // queue is FIFO per destination — that ordering IS the catch-up replay).
  struct RebuildOut {
    std::vector<RebuildTarget> targets;
    std::function<void(Status)> done;
    Status aggregate;  // first abandoned leg's failure, reported to done
  };

  // One partition-ownership shard: shard s owns every partition p with
  // p % num_shards() == s. All non-mailbox members are touched only inside
  // the shard's drain (single-threaded by construction), so none of this
  // state is locked.
  struct alignas(64) Shard {
    std::size_t index = 0;

    // --- shard-owned state (drain-exclusive, no locks) ---
    MembershipTable table;  // private copy; updated by membership scatter
    std::unordered_map<PartitionId, std::shared_ptr<KVStore>> stores;
    std::deque<std::uint64_t> dedup_ring;  // at-most-once append window
    std::unordered_set<std::uint64_t> dedup_set;
    std::unordered_set<PartitionId> migrating;  // locked mid-migration
    // Source side: partitions whose outbound stream completed but whose
    // new ownership this shard has not yet seen in a membership update.
    // They stay in `migrating` (data ops answer kMigrating) until the
    // table names the new owner — serving in that window would read an
    // erased store (NotFound) and ack writes the recipient never sees.
    // The value records whether the handed-off partition held data: a
    // former owner staying in the replica chain must then keep refusing
    // failover reads (rebuilding mark) until the manager-commanded repair
    // streams it a fresh copy.
    std::unordered_map<PartitionId, bool> handed_off;
    // Destination side: partitions between kRebuildBegin and kRebuildEnd.
    // Data ops answer kMigrating while set, so the End digest check sees
    // exactly the streamed pairs (no interleaved writes, no stale reads).
    std::unordered_set<PartitionId> rebuilding;
    // Destination side: the stream lands in a per-partition shadow store
    // and is swapped into the canonical store only after the End digest
    // verifies, so a source dying mid-stream never costs the destination
    // its existing copy. Objects are created once and reused across
    // rebuilds (Clear()ed at each Begin) so a persistent store is never
    // opened twice at the same path.
    std::unordered_map<PartitionId, std::shared_ptr<KVStore>> shadow_stores;
    // Source side: partitions this owner is currently rebuilding.
    std::unordered_map<PartitionId, RebuildOut> rebuild_out;
    // Hot-key read cache. Fills/invalidations/drops are drain-exclusive
    // (single writer); ingress threads only probe (TryGet), which is why
    // it may be read outside the drain — see hot_key_cache.h.
    HotKeyCache hot_cache;

    // Admission control: payload bytes of data ops queued but not yet
    // executed (charged at ingress, discharged when the op runs).
    std::atomic<std::uint64_t> inflight_bytes{0};

    // --- mailbox ---
    std::vector<std::unique_ptr<SpscTaskRing>> rings;  // [producer executor]
    MpscTaskQueue overflow;  // non-executor producers + ring spill
    std::atomic<std::uint64_t> queued{0};
    std::atomic<bool> active{false};  // unbound-drain exclusivity (CAS)
    bool draining = false;            // bound: owner-thread reentrancy guard
    // Owning executor; -1 = unbound. Written before traffic starts
    // (BindShardExecutor) and at unbind (~ZhtServer); atomic because
    // finisher and flusher threads may Post concurrently with the unbind.
    std::atomic<int> executor{-1};
    // Wakes the owning executor's loop. Set before traffic, never cleared:
    // the front-end outlives this server (its fds stay open through Stop),
    // so a straggler wake after unbind is a harmless eventfd write.
    std::function<void()> waker;

    // --- telemetry ---
    std::atomic<std::uint64_t> forwarded{0};  // cross-executor posts
    Histogram mailbox_depth;                  // depth seen at each drain

    Shard(MembershipTable t, std::size_t cache_entries)
        : table(std::move(t)), hot_cache(cache_entries) {}
  };

  // Routing decision for one data op, computed against the shard's table:
  // target partition, replica chain, epoch, and — when this instance is
  // the wrong owner — the ready-made REDIRECT response.
  struct DataRoute {
    PartitionId partition = 0;
    std::uint32_t epoch = 0;
    std::vector<InstanceId> chain;
    std::optional<Response> redirect;
  };

  // Replica chain with its addresses resolved in-shard, so replication
  // finishers never touch a membership table.
  struct ReplicaPlan {
    std::vector<InstanceId> chain;
    std::vector<NodeAddress> addresses;  // parallel to chain
    // Parallel to chain when non-empty: members whose sync leg must go
    // through the async queue because a rebuild stream to them is in
    // flight (computed in-shard; consumed on finisher threads).
    std::vector<char> via_async;
    // Every leg synchronous (not just the secondary). Set for failover
    // writes accepted off-primary: the members the client skipped may in
    // fact be alive (a spurious detector mark) and serving reads, so the
    // write must land on them before the ack. Legs to genuinely dead
    // members fail fast and cost nothing.
    bool all_sync = false;
  };

  // Scatter/gather state for a BATCH spanning shard owners. Each shard
  // group fills its own disjoint response slots; the last group to finish
  // its durability wait finalizes the carrier.
  struct BatchGather {
    std::uint64_t seq = 0;
    std::uint32_t epoch = 0;
    Nanos start = 0;
    std::vector<Request> ops;
    std::vector<Response> responses;
    std::vector<char> replicate;        // sub-op needs a replication leg
    std::vector<PartitionId> partitions;
    std::vector<ReplicaPlan> plans;
    std::atomic<bool> delta_sent{false};  // one membership delta per batch
    std::atomic<std::size_t> remaining{0};  // shard groups still running
    ResponseCallback done;
  };

  // Gather state for a membership push fanned out to every shard.
  struct PushGather {
    std::uint64_t seq = 0;
    std::uint32_t epoch = 0;
    Status status;
    std::atomic<std::size_t> remaining{0};
    ResponseCallback done;
  };

  // Per-shard census slice for stats/metrics scatter.
  struct ShardCensus {
    std::uint64_t entries = 0;
    std::size_t held = 0;
    StoreDurabilityMetrics durability;
    bool any_durability = false;
  };

  Shard& ShardForPartition(PartitionId partition) const {
    return *shards_[partition % shards_.size()];
  }

  // --- mailbox machinery ---
  int CurrentExecutor() const;  // this thread's executor for this server
  void Post(Shard& shard, ShardTask task);
  void Enqueue(Shard& shard, ShardTask task);
  void Kick(Shard& shard);
  void DrainBound(Shard& shard);   // owner executor thread only
  void DrainShared(Shard& shard);  // unbound shards: CAS-serialized
  std::size_t DrainAll(Shard& shard);

  // --- request execution (inside shard drains unless noted) ---
  void ExecDataOp(Shard& shard, Request&& request, ResponseCallback done,
                  Nanos start);
  DataRoute RouteDataOp(Shard& shard, const Request& request,
                        std::atomic<bool>* delta_gate);
  Response RedirectTo(const Shard& shard, InstanceId owner, std::uint64_t seq,
                      std::uint32_t requester_epoch, bool include_membership);
  bool IsDuplicateAppend(Shard& shard, const Request& request);
  Status ApplyToStore(Shard& shard, OpCode op, PartitionId partition,
                      std::string_view key, std::string_view value,
                      std::string* out);
  KVStore* StoreIn(Shard& shard, PartitionId partition);  // creates on demand
  // Rebuild landing pad for `partition` (offset path, reused across rebuilds).
  std::shared_ptr<KVStore> ShadowStoreIn(Shard& shard, PartitionId partition);
  // Drops destination-side rebuild marks for partitions this instance now
  // owns: the stream that fed them is moot (its source lost ownership, or
  // died), and the canonical store — never wiped mid-stream — is the copy
  // promotion elected. Called after every membership update.
  void ReleaseStuckRebuilds(Shard& shard);
  // Lifts the source-side migration lock for handed-off partitions once a
  // membership update names their new owner (subsequent requests redirect).
  void ReleaseCompletedHandoffs(Shard& shard);
  ReplicaPlan MakeReplicaPlan(const Shard& shard,
                              const std::vector<InstanceId>& chain) const;

  void StartBatch(Request&& request, ResponseCallback done);  // ingress
  void ExecBatchGroup(Shard& shard, const std::shared_ptr<BatchGather>& gather,
                      std::vector<std::size_t> indices);
  void CompleteBatchGroup(const std::shared_ptr<BatchGather>& gather);
  void FinalizeBatch(const std::shared_ptr<BatchGather>& gather);

  void StartMembershipPush(Request&& request, ResponseCallback done);
  void ExecMigrateBegin(Shard& shard, Request&& request, ResponseCallback done);
  void ExecMigrateData(Shard& shard, Request&& request, ResponseCallback done);
  void ExecMigrateEnd(Shard& shard, Request&& request, ResponseCallback done);
  void ExecBroadcast(Shard& shard, Request&& request, ResponseCallback done);
  // --- rebuild / anti-entropy (tentpole of the recovery model) ---
  // Destination handlers (in-shard).
  void ExecDigest(Shard& shard, Request&& request, ResponseCallback done);
  void ExecRebuildBegin(Shard& shard, Request&& request,
                        ResponseCallback done);
  void ExecRebuildData(Shard& shard, Request&& request, ResponseCallback done);
  void ExecRebuildEnd(Shard& shard, Request&& request, ResponseCallback done);
  // Finisher-thread body: one kDigest call per target; posts the stale
  // subset back into the shard.
  void ProbeRebuildTargets(PartitionId partition, PartitionDigest mine,
                           std::vector<RebuildTarget> targets);
  // In-shard: drop clean targets, stream to the stale ones (or finish).
  void BeginRebuildStreams(Shard& shard, PartitionId partition,
                           std::vector<InstanceId> stale);
  // In-shard: snapshot the partition and enqueue Begin/Data*/End for one
  // target into the async queue; End's result posts FinishRebuildLeg.
  void StreamRebuildTarget(Shard& shard, PartitionId partition,
                           RebuildTarget& target);
  void FinishRebuildLeg(Shard& shard, PartitionId partition, InstanceId id,
                        Status status);
  // In-shard digest of the partition's store ({0, 0} when absent).
  static PartitionDigest DigestOfStore(const KVStore* store);
  // Flags chain members with an in-flight rebuild stream in plan.via_async.
  void ApplyRebuildDiversions(const Shard& shard, PartitionId partition,
                              ReplicaPlan* plan) const;
  // Marks `partition` migrating in its shard, snapshots it, then streams
  // Begin/Data/End from a finisher; completion posts back to the shard.
  void StartMigrateOut(PartitionId partition, const NodeAddress& target,
                       std::function<void(Status)> done);
  // Finisher-thread body: the Begin/Data/End peer conversation.
  Status StreamPartition(
      PartitionId partition, const NodeAddress& target,
      const std::vector<std::pair<std::string, std::string>>& pairs);
  void FinishMigrateOut(PartitionId partition, Status status, bool had_data,
                        std::function<void(Status)> done);
  // Drops the source-side migration lock once the new owner is in the
  // table. A former owner that stays in the partition's replica chain
  // re-enters service via the rebuilding mark instead: its store was
  // erased by the handoff, so it must refuse failover reads until the
  // repair stream delivers a fresh copy.
  void ReleaseHandoff(Shard& shard, PartitionId partition, bool had_data);

  // Scatters a census task across every shard; `done` runs on the shard
  // that finishes last (or inline when a shard chain completes inline).
  void ScatterCensus(
      std::function<void(std::vector<ShardCensus>)> done) const;
  MetricsSnapshot BuildSnapshot(const std::vector<ShardCensus>& census) const;

  // --- replication (finisher/async threads; addresses pre-resolved) ---
  void ReplicateSync(const Request& original, PartitionId partition,
                     const ReplicaPlan& plan);
  void ReplicateBatchResolved(std::vector<Request> ops,
                              const std::vector<PartitionId>& partitions,
                              const std::vector<ReplicaPlan>& plans);
  void EnqueueAsyncReplication(Request request, const NodeAddress& target);
  // As above, plus a completion hook run on the async worker with the
  // peer's result (rebuild End verification). Null hook = fire-and-forget.
  void EnqueueAsyncLeg(Request request, const NodeAddress& target,
                       std::function<void(const Result<Response>&)> on_result);
  void AsyncReplicationLoop();

  void EnqueueFinisher(std::function<void()> job);
  void FinisherLoop();

  void RecordDataOpLatency(OpCode op, Nanos start);
  void OnRequestComplete();

  // --- hot-key cache + admission control (DESIGN.md §13) ---
  // Counting cache probe: hit/miss counters plus the shared-state read.
  // Ingress threads and shard drains both use it; the cache itself is
  // safe for concurrent readers.
  bool CacheLookup(Shard& shard, std::string_view key, std::string* value);
  // Ingress fast path: answer a client lookup from the owning shard's
  // cache without posting into the mailbox. True = `done` was called.
  bool TryServeFromCache(Shard& shard, const Request& request,
                         const ResponseCallback& done, Nanos start);
  // Admission decision: 0 = admit; otherwise the retry-after hint (µs) to
  // return with kUnavailable. Shared by the single-op and batch paths.
  std::uint32_t AdmissionRetryHint(Shard& shard) const;
  // Ingress admission control: when the shard's mailbox depth or queued
  // payload bytes exceed the budget, answer kUnavailable + retry-after
  // inline instead of queueing. True = the op was shed (`done` called).
  bool MaybeShed(Shard& shard, const Request& request,
                 const ResponseCallback& done);
  // In-shard, synchronous with the mutation that triggers them:
  void CacheFill(Shard& shard, PartitionId partition, std::string_view key,
                 std::string_view value);
  void CacheInvalidate(Shard& shard, std::string_view key);
  void CacheDropPartition(Shard& shard, PartitionId partition);
  void CacheClear(Shard& shard);

  ZhtServerOptions options_;
  ClientTransport* peer_transport_;

  // Ingress routing state: an immutable copy of the partition space (key →
  // partition needs no ownership data) plus the latest epoch. The hot-path
  // ingress reads only these — no lock, no shared table.
  PartitionSpace space_;
  std::atomic<std::uint32_t> epoch_;

  // Metrics registry plus hot-path handles resolved at construction, so the
  // request path records through raw pointers (atomic ops, no lock, no
  // lookup). data_op_hist_[op-1] covers kInsert..kAppend.
  MetricsRegistry metrics_;
  Histogram* data_op_hist_[4] = {};
  Histogram* batch_hist_ = nullptr;       // whole-batch service time
  Histogram* batch_size_hist_ = nullptr;  // sub-ops per BATCH envelope
  Histogram* replication_fanout_hist_ = nullptr;  // replicas per mutation
  Histogram* mailbox_depth_hist_ = nullptr;       // all shards merged
  Counter* replication_sync_counter_ = nullptr;
  Counter* replication_async_counter_ = nullptr;
  Counter* redirect_counter_ = nullptr;
  Counter* forwards_counter_ = nullptr;      // reactor.forwards
  Counter* mailbox_full_counter_ = nullptr;  // reactor.mailbox_full
  Counter* cache_hit_counter_ = nullptr;         // server.cache.hit
  Counter* cache_miss_counter_ = nullptr;        // server.cache.miss
  Counter* cache_invalidate_counter_ = nullptr;  // server.cache.invalidate
  Counter* cache_drop_counter_ = nullptr;        // server.cache.drop
  Counter* shed_counter_ = nullptr;              // server.admission.shed

  std::vector<std::unique_ptr<Shard>> shards_;

  // Monotonic counters; relaxed atomics (read via stats()).
  struct StatsCounters {
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> redirects{0};
    std::atomic<std::uint64_t> replications_sync{0};
    std::atomic<std::uint64_t> replications_async{0};
    std::atomic<std::uint64_t> migrations_out{0};
    std::atomic<std::uint64_t> migrations_in{0};
    std::atomic<std::uint64_t> migration_pairs_streamed{0};
    std::atomic<std::uint64_t> migration_bytes_streamed{0};
    std::atomic<std::uint64_t> broadcasts{0};
    std::atomic<std::uint64_t> duplicate_appends_dropped{0};
    std::atomic<std::uint64_t> antientropy_probes{0};
    std::atomic<std::uint64_t> antientropy_clean{0};
    std::atomic<std::uint64_t> rebuilds_started{0};
    std::atomic<std::uint64_t> rebuilds_completed{0};
    std::atomic<std::uint64_t> rebuild_pairs_streamed{0};
    std::atomic<std::uint64_t> rebuild_retries{0};
    std::atomic<std::uint64_t> hot_cache_hits{0};
    std::atomic<std::uint64_t> hot_cache_misses{0};
    std::atomic<std::uint64_t> hot_cache_invalidations{0};
    std::atomic<std::uint64_t> hot_cache_drops{0};
    std::atomic<std::uint64_t> sheds{0};
  };
  mutable StatsCounters stats_;

  // Lifecycle: every HandleAsync holds an in-flight reference until its
  // callback fires; the destructor drains the mailboxes and waits for zero.
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<bool> stopping_{false};
  mutable std::mutex idle_mu_;
  mutable std::condition_variable idle_cv_;

  // Finisher pool: synchronous replication legs, migration streaming,
  // batch replication — peer I/O that must never run inside a shard drain.
  std::mutex finisher_mu_;
  std::condition_variable finisher_cv_;
  // Separate CV for idle waiters (FlushAsyncReplication): EnqueueFinisher's
  // notify_one must always wake a worker, never a flusher.
  std::condition_variable finisher_idle_cv_;
  std::deque<std::function<void()>> finisher_queue_;
  std::size_t finisher_busy_ = 0;
  bool finishers_stop_ = false;
  std::vector<std::thread> finishers_;

  // Asynchronous replication worker (replicas beyond the secondary).
  // Targets carry addresses resolved in-shard at enqueue time.
  struct AsyncLeg {
    Request request;
    NodeAddress target;
    std::function<void(const Result<Response>&)> on_result;  // may be null
  };
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<AsyncLeg> async_queue_;
  std::size_t async_inflight_ = 0;
  bool async_stop_ = false;
  std::thread async_worker_;
};

}  // namespace zht
