// ZhtServer: one ZHT instance (§III.B). Owns the partition stores for the
// partitions it serves (as primary or replica), validates ownership against
// its membership table (answering REDIRECT with a piggybacked table for the
// lazy client update), applies operations, and drives replication:
// synchronous to the secondary, asynchronous to further replicas (§III.J).
//
// The request handler is transport-agnostic: bind Handle() to an
// EpollServer (live TCP/UDP), a LoopbackNetwork (in-process clusters), or
// call it directly in unit tests.
//
// Handle() is thread-safe and striped (DESIGN.md §9): the multi-reactor
// EpollServer calls it concurrently from every reactor. Concurrency is
// partition-grained — operations on different partitions proceed in
// parallel; operations on the same partition serialize on that partition's
// stripe mutex. The membership table sits behind a shared_mutex (routing
// takes it shared; pushes take it exclusive), and the append-dedup window
// is sharded per stripe so it needs no extra lock.
//
// Lock order (acquire strictly left to right, release before going left):
//   table_mu_  →  stripe mutexes (ascending index)  →  partitions_mu_
//   →  queue_mu_
// No code path acquires table_mu_ while holding a stripe, or a lower
// stripe while holding a higher one.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/metrics.h"
#include "common/status.h"
#include "core/cluster_options.h"
#include "membership/membership_table.h"
#include "net/transport.h"
#include "novoht/kv_store.h"

namespace zht {

// Builds the store for one partition held by one instance. The instance id
// is part of the identity: with replication (or after a migration) several
// instances hold stores for the same partition, and persistent factories
// must give each its own path or they would share one file.
using StoreFactory = std::function<std::unique_ptr<KVStore>(
    InstanceId self, PartitionId partition)>;

// Persistent NoVoHT partition stores: one log file per (instance, partition)
// under `dir`, with durability taken from `cluster`. The stores defer the
// group-commit wait (wait_for_durable = false): ZhtServer pairs
// last_commit_token() with WaitDurable() so each request — or each BATCH
// carrier — is acked exactly once, after its mutations are durable.
StoreFactory MakeNoVoHTStoreFactory(std::string dir,
                                    const ClusterOptions& cluster);

struct ZhtServerOptions {
  InstanceId self = 0;
  ClusterOptions cluster;        // deployment-wide: replicas + timeouts
  bool sync_secondary = true;    // primary+secondary strong consistency
  std::size_t migrate_batch_bytes = 256 * 1024;
  // Factory for partition stores. Defaults to in-memory NoVoHT.
  StoreFactory store_factory;
};

struct ZhtServerStats {
  std::uint64_t ops = 0;              // data operations served
  std::uint64_t redirects = 0;        // wrong-owner requests answered
  std::uint64_t replications_sync = 0;
  std::uint64_t replications_async = 0;
  std::uint64_t migrations_out = 0;
  std::uint64_t migrations_in = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t duplicate_appends_dropped = 0;
};

class ZhtServer {
 public:
  ZhtServer(MembershipTable table, const ZhtServerOptions& options,
            ClientTransport* peer_transport);
  ~ZhtServer();

  ZhtServer(const ZhtServer&) = delete;
  ZhtServer& operator=(const ZhtServer&) = delete;

  // The transport-facing entry point. Thread-safe; see the lock-order note
  // at the top of this header.
  Response Handle(Request&& request);
  RequestHandler AsHandler() {
    return [this](Request&& req) { return Handle(std::move(req)); };
  }

  // Re-replicates every pair of `partition` to the replica chain (used by
  // the manager to restore the replication level after a failure).
  Status RepairPartition(PartitionId partition);

  // Pushes `partition` to `target` (MigrateBegin/Data/End) and relinquishes
  // it. The caller (manager) updates and broadcasts membership afterwards.
  Status MigratePartitionTo(PartitionId partition, const NodeAddress& target);

  // Unsynchronized view for single-threaded tests/admin introspection; do
  // not call concurrently with membership pushes.
  const MembershipTable& table() const { return table_; }
  InstanceId self() const { return options_.self; }
  ZhtServerStats stats() const;

  // Structured observability (§8 of DESIGN.md): per-opcode service-time
  // histograms, batch sizes, replication fan-out. Recording is lock-free;
  // the registry mutex is touched only here and at construction.
  const MetricsRegistry& metrics() const { return metrics_; }
  // The full STATS payload: registry metrics plus the legacy counters and
  // instance-level gauges, as encoded by serialize/metrics_codec.h.
  MetricsSnapshot MetricsSnapshotNow() const;

  // Total pairs held (all partitions, primary and replica).
  std::uint64_t TotalEntries() const;

  // Waits until the async replication queue drains (tests/benches).
  void FlushAsyncReplication();

 private:
  // Partition-grained lock striping: partition p is guarded by stripe
  // p % kNumStripes. A stripe's mutex covers its partitions' store
  // contents, migration locks, and dedup shard.
  static constexpr std::size_t kNumStripes = 64;
  // Per-stripe at-most-once window for the non-idempotent append
  // (retransmitted UDP requests must not double-apply, §III.F ack-based
  // retries). Sharding the window with the stripes keeps dedup lookups
  // under the lock the request already holds.
  static constexpr std::size_t kDedupWindowPerStripe = 1024;
  struct alignas(64) Stripe {
    std::mutex mu;
    std::deque<std::uint64_t> dedup_ring;
    std::unordered_set<std::uint64_t> dedup_set;
    // This stripe's partitions locked mid-migration (§III.C).
    std::unordered_set<PartitionId> migrating;
  };
  static std::size_t StripeIndexFor(PartitionId partition) {
    return static_cast<std::size_t>(partition) % kNumStripes;
  }
  Stripe& StripeFor(PartitionId partition) const {
    return stripes_[StripeIndexFor(partition)];
  }

  // Routing decision for one data op, computed under table_mu_ (shared):
  // target partition, replica chain, epoch, and — when this instance is
  // the wrong owner — the ready-made REDIRECT response.
  struct DataRoute {
    PartitionId partition = 0;
    std::uint32_t epoch = 0;
    std::vector<InstanceId> chain;
    std::optional<Response> redirect;
  };

  Response HandleData(Request&& request);
  Response HandleBatch(Request&& request);
  Response HandleMigrateBegin(Request&& request);
  Response HandleMigrateData(Request&& request);
  Response HandleMigrateEnd(Request&& request);
  Response HandleMigrateOut(Request&& request);
  Response HandleRepair(Request&& request);
  Response HandleBroadcast(Request&& request);
  Response HandleMembershipPull(Request&& request);
  Response HandleMembershipPush(Request&& request);

  // Caller holds StripeFor(partition).mu (store contents are stripe-
  // guarded; StoreFor itself takes partitions_mu_ for the map).
  Status ApplyToStore(OpCode op, PartitionId partition, std::string_view key,
                      std::string_view value, std::string* out);
  KVStore* StoreFor(PartitionId partition);  // creates on demand

  // Durable-ack plumbing. A mutation's commit token is captured under the
  // stripe that ordered it; the wait happens after the stripe is released,
  // with the shared_ptr keeping the store alive across a concurrent
  // migrate-out. Stores without a commit pipeline yield token 0 (no wait).
  struct DurableWait {
    std::shared_ptr<KVStore> store;
    std::uint64_t token = 0;
  };
  // Existing stores only (never creates). Caller holds the stripe.
  std::shared_ptr<KVStore> SharedStoreFor(PartitionId partition);
  // Merges durability metrics across every partition store; false when no
  // store reports any.
  bool AggregateDurability(StoreDurabilityMetrics* out) const;
  Response RedirectTo(InstanceId owner, std::uint64_t seq,
                      std::uint32_t requester_epoch,
                      bool include_membership = true);

  // Ownership check + chain/epoch snapshot for one data op. Caller holds
  // table_mu_ (shared suffices). `include_redirect_delta` controls whether
  // a REDIRECT reply carries the membership delta (a batch piggybacks it
  // once, on its first redirected sub-op, not on every sub-response).
  DataRoute RouteDataOpLocked(const Request& request,
                              bool include_redirect_delta);
  // Applies one routed data operation: migration lock, append dedup, store
  // mutation. Caller holds StripeFor(route.partition).mu and must have
  // already answered route.redirect if set. Shared by the single-op and
  // BATCH paths.
  Response ApplyDataOpStriped(const Request& request, const DataRoute& route,
                              bool* replicate);

  void ReplicateSync(const Request& original, PartitionId partition,
                     const std::vector<InstanceId>& chain);
  // Replicates a batch's mutating sub-ops as units: sub-ops are grouped by
  // chain target and each group crosses the wire as one BATCH message
  // (synchronously to secondaries, queued for further replicas).
  void ReplicateBatch(std::vector<Request> ops,
                      const std::vector<PartitionId>& partitions,
                      const std::vector<std::vector<InstanceId>>& chains);
  void EnqueueAsyncReplication(Request request, InstanceId target);
  void AsyncReplicationLoop();

  // Returns true when this (client_id, seq, replica_index) append was seen
  // recently — a retransmission whose first copy already applied. Caller
  // holds stripe.mu.
  bool IsDuplicateAppend(Stripe& stripe, const Request& request);

  // Entry/partition census for metrics: snapshots the partition ids, then
  // visits each store under its stripe. `held` gets the partition count.
  std::uint64_t CountEntries(std::size_t* held) const;

  ZhtServerOptions options_;
  ClientTransport* peer_transport_;

  // Metrics registry plus hot-path handles resolved at construction, so the
  // request path records through raw pointers (atomic ops, no lock, no
  // lookup). data_op_hist_[op-1] covers kInsert..kAppend.
  MetricsRegistry metrics_;
  Histogram* data_op_hist_[4] = {};
  Histogram* batch_hist_ = nullptr;       // whole-batch service time
  Histogram* batch_size_hist_ = nullptr;  // sub-ops per BATCH envelope
  Histogram* replication_fanout_hist_ = nullptr;  // replicas per mutation
  Counter* replication_sync_counter_ = nullptr;
  Counter* replication_async_counter_ = nullptr;
  Counter* redirect_counter_ = nullptr;

  // Membership snapshot: read-mostly. Routing/epoch reads take it shared;
  // membership pushes take it exclusive.
  mutable std::shared_mutex table_mu_;
  MembershipTable table_;

  // Guards the partition → store *map* only (which partitions exist).
  // Store contents are guarded by the owning stripe, and a store is only
  // created, replaced, or destroyed with its stripe held. Entries are
  // shared_ptr so a durable-ack wait can pin a store after releasing the
  // stripe (destruction then happens at the last release, outside locks).
  mutable std::mutex partitions_mu_;
  std::unordered_map<PartitionId, std::shared_ptr<KVStore>> partitions_;

  mutable std::array<Stripe, kNumStripes> stripes_;

  // Monotonic counters; relaxed atomics (read via stats()).
  struct StatsCounters {
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> redirects{0};
    std::atomic<std::uint64_t> replications_sync{0};
    std::atomic<std::uint64_t> replications_async{0};
    std::atomic<std::uint64_t> migrations_out{0};
    std::atomic<std::uint64_t> migrations_in{0};
    std::atomic<std::uint64_t> broadcasts{0};
    std::atomic<std::uint64_t> duplicate_appends_dropped{0};
  };
  mutable StatsCounters stats_;

  // Asynchronous replication worker (replicas beyond the secondary).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::pair<Request, InstanceId>> async_queue_;
  std::size_t async_inflight_ = 0;
  bool stopping_ = false;
  std::thread async_worker_;
};

}  // namespace zht
