// LocalCluster: spins up a complete ZHT deployment in one process —
// N instances (grouped onto physical nodes), one manager per node, clients
// on demand — over either the in-process loopback network (fast, failure
// injection) or real TCP/UDP sockets on localhost. This is the harness the
// integration tests, examples, and live benchmarks run on.
#pragma once

#include <memory>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "core/manager.h"
#include "core/zht_client.h"
#include "core/zht_server.h"
#include "net/epoll_server.h"
#include "net/fault_injection.h"
#include "net/loopback.h"

namespace zht {

enum class ClusterTransport { kLoopback, kTcp, kUdp };

struct LocalClusterOptions {
  std::uint32_t num_instances = 4;
  std::uint32_t instances_per_node = 1;
  std::uint32_t num_partitions = 0;  // 0 → 64 per initial instance
  // Shared replica/timeout settings handed to every server, manager, and
  // client of the cluster (validated at Boot).
  ClusterOptions cluster;
  ClusterTransport transport = ClusterTransport::kLoopback;
  bool tcp_connection_cache = true;  // for kTcp client transports
  // Event-loop threads per EpollServer (kTcp/kUdp only). With > 1, each
  // instance runs one shard (disjoint partition set + mailbox) per reactor
  // and connections are re-homed to the reactor owning their first key's
  // partition (DESIGN.md §9).
  int num_reactors = 1;
  StoreFactory store_factory;       // default: in-memory NoVoHT
  HashKind hash_kind = HashKind::kFnv1a;
  // When set, every transport of the cluster (clients, server peer links,
  // managers) is wrapped in a FaultInjectingTransport sharing this plan.
  // An empty plan injects nothing, so existing behavior is unchanged until
  // the test scripts faults.
  std::shared_ptr<FaultPlan> fault_plan;
  // Restart support (loopback only): boot from a previously captured
  // membership snapshot instead of a fresh uniform layout. Instances are
  // re-registered at their recorded addresses with their recorded ids and
  // partition ownership, so persistent store factories reload the data a
  // prior incarnation wrote — including ownership moved by migrations and
  // failovers. Overrides num_instances/num_partitions/hash settings.
  std::optional<MembershipTable> initial_table;
};

// A client plus the transport it owns.
class ClientHandle {
 public:
  ClientHandle(std::unique_ptr<ClientTransport> transport,
               std::unique_ptr<ZhtClient> client)
      : transport_(std::move(transport)), client_(std::move(client)) {}

  ZhtClient* operator->() { return client_.get(); }
  ZhtClient& operator*() { return *client_; }
  ZhtClient* get() { return client_.get(); }

 private:
  std::unique_ptr<ClientTransport> transport_;
  std::unique_ptr<ZhtClient> client_;
};

class LocalCluster {
 public:
  static Result<std::unique_ptr<LocalCluster>> Start(
      const LocalClusterOptions& options);

  ~LocalCluster();

  LocalCluster(const LocalCluster&) = delete;
  LocalCluster& operator=(const LocalCluster&) = delete;

  // A fresh client bootstrapped with the current membership table.
  ClientHandle CreateClient(ZhtClientOptions overrides = {});

  std::size_t instance_count() const { return servers_.size(); }
  ZhtServer* server(std::size_t i) { return servers_[i].get(); }
  Manager* manager(std::size_t node) { return managers_[node].get(); }
  std::size_t manager_count() const { return managers_.size(); }
  const NodeAddress& manager_address(std::size_t node) const {
    return manager_addresses_[node];
  }
  const NodeAddress& instance_address(std::size_t i) const {
    return instance_addresses_[i];
  }

  // Loopback-only failure injection.
  LoopbackNetwork& network() { return network_; }
  void KillInstance(std::size_t i);
  void ReviveInstance(std::size_t i);

  // Dynamically joins a fresh instance on a new physical node through the
  // manager of `via_node` (Figure 15's operation). Returns the new id.
  Result<InstanceId> JoinNewInstance(std::size_t via_node = 0);

  // Revives a previously killed instance and re-admits it at its original
  // address: the manager re-uses its old instance id (no duplicate table
  // entry) and migrates back whatever the placement policy assigns it.
  Result<InstanceId> RejoinInstance(std::size_t i, std::size_t via_node = 0);

  // Authoritative table (from manager 0).
  MembershipTable TableSnapshot() const;

  void FlushAllAsyncReplication();

  // Binds a server's shard mailboxes to an epoll server's reactors
  // (executor identity, wakers, connection placement) and starts the
  // loops. Also used by the standalone zht-server binary.
  static void WireReactors(ZhtServer& server, EpollServer& es);

 private:
  explicit LocalCluster(const LocalClusterOptions& options);
  Status Boot();
  // `self` identifies whose traffic the transport carries (fault-plan
  // partitions match on it); clients pass nullopt.
  std::unique_ptr<ClientTransport> MakeTransport(
      std::optional<NodeAddress> self = std::nullopt);

  // Registers a handler slot; returns the reachable address. A fixed
  // address (loopback only) re-registers a restarted instance where its
  // previous incarnation lived. With start_now = false (kTcp/kUdp only)
  // the EpollServer is created and bound but not started, so the caller
  // can wire reactor hooks / placement before the loops spin up.
  struct HandlerSlot {
    // Guards `target` between delivery threads and the cluster destructor:
    // deliveries hold it shared across the check + invoke, teardown takes it
    // exclusive to null the target, so once the clear returns no call can
    // still be entering a server that is about to be destroyed.
    std::shared_mutex mu;
    AsyncRequestHandler target;  // set once the component exists
  };
  Result<NodeAddress> Expose(std::shared_ptr<HandlerSlot> slot,
                             std::optional<NodeAddress> fixed = std::nullopt,
                             bool start_now = true);

  LocalClusterOptions options_;
  LoopbackNetwork network_;

  std::vector<std::shared_ptr<HandlerSlot>> slots_;
  std::vector<std::unique_ptr<EpollServer>> epoll_servers_;  // kTcp/kUdp
  std::vector<std::unique_ptr<ClientTransport>> peer_transports_;

  std::vector<std::unique_ptr<ZhtServer>> servers_;
  std::vector<NodeAddress> instance_addresses_;
  std::vector<std::unique_ptr<Manager>> managers_;
  std::vector<NodeAddress> manager_addresses_;
  std::uint32_t next_physical_node_ = 0;
};

}  // namespace zht
