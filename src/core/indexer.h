// Data indexing on ZHT (§VI "Data Indexing: we will explore the
// possibility of using ZHT to index data (not just metadata) based on its
// content"). A content index needs concurrent multi-writer updates to
// shared posting lists — exactly what ZHT's lock-free append provides:
// each posting list is one ZHT value extended with "+key;" / "-key;"
// entries, folded at query time (same discipline as FusionFS directories).
#pragma once

#include <string>
#include <vector>

#include "core/zht_client.h"

namespace zht {

class Indexer {
 public:
  explicit Indexer(ZhtClient* client) : client_(client) {}

  // Stores the value and indexes it under each tag. Tags must not contain
  // ';' or '/'.
  Status PutIndexed(const std::string& key, std::string_view value,
                    const std::vector<std::string>& tags);

  // Removes the value and its postings.
  Status RemoveIndexed(const std::string& key,
                       const std::vector<std::string>& tags);

  // Keys currently indexed under `tag` (tombstone-folded, deduplicated).
  Result<std::vector<std::string>> FindByTag(const std::string& tag);

  // Keys indexed under ALL of the given tags (client-side intersection;
  // domain-specific indexes would push this server-side, as the paper
  // notes domain knowledge is needed).
  Result<std::vector<std::string>> FindByAllTags(
      const std::vector<std::string>& tags);

  // Rewrites a posting list to drop tombstones (append logs grow with
  // churn; compaction folds them, like NoVoHT's GC but at the index
  // level). Concurrency-safe only against readers.
  Status CompactTag(const std::string& tag);

 private:
  static Status ValidateTag(const std::string& tag);
  static std::string TagKey(const std::string& tag) { return "tag:" + tag; }
  static std::vector<std::string> FoldPostings(const std::string& log);

  ZhtClient* client_;
};

}  // namespace zht
