// ClusterOptions: the knobs every participant of one ZHT deployment must
// agree on. Clients, servers, and managers each embed the same struct, so a
// deployment configures replication and timeouts once instead of keeping
// three copies in sync (a mismatched num_replicas silently breaks the
// replica-chain routing both sides derive from the membership table).
#pragma once

#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "novoht/kv_store.h"

namespace zht {

struct ClusterOptions {
  // Replicas beyond the primary. Must match across every client, server,
  // and manager of the deployment: the replica chain is derived, not
  // negotiated (§III.J).
  int num_replicas = 0;

  // Budget for one client-facing operation, covering a whole BATCH call.
  Nanos op_timeout = 200 * kNanosPerMilli;

  // Budget for one server-to-server hop (replication, migration, repair).
  Nanos peer_timeout = 500 * kNanosPerMilli;

  // Durability of acked mutations on persistent partition stores. Servers
  // ack insert/remove/append only after the owning store reports the op
  // durable under this mode; in-memory deployments ignore it.
  DurabilityMode durability = DurabilityMode::kNone;

  // Group commit only: how long the store's flusher waits for more writers
  // to join a commit window before issuing the shared fdatasync. 0 = sync
  // as soon as the flusher wakes.
  Nanos max_commit_latency = 0;

  Status Validate() const {
    if (num_replicas < 0 || num_replicas > 254) {
      // replica_index travels as one byte on the wire.
      return Status(StatusCode::kInvalidArgument,
                    "num_replicas out of range [0, 254]: " +
                        std::to_string(num_replicas));
    }
    if (op_timeout <= 0) {
      return Status(StatusCode::kInvalidArgument, "op_timeout must be > 0");
    }
    if (peer_timeout <= 0) {
      return Status(StatusCode::kInvalidArgument, "peer_timeout must be > 0");
    }
    if (max_commit_latency < 0) {
      return Status(StatusCode::kInvalidArgument,
                    "max_commit_latency must be >= 0");
    }
    return Status::Ok();
  }
};

}  // namespace zht
