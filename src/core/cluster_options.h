// ClusterOptions: the knobs every participant of one ZHT deployment must
// agree on. Clients, servers, and managers each embed the same struct, so a
// deployment configures replication and timeouts once instead of keeping
// three copies in sync (a mismatched num_replicas silently breaks the
// replica-chain routing both sides derive from the membership table).
#pragma once

#include <string>

#include "common/clock.h"
#include "common/status.h"
#include "hashing/placement_policy.h"
#include "novoht/kv_store.h"

namespace zht {

struct ClusterOptions {
  // Replicas beyond the primary. Must match across every client, server,
  // and manager of the deployment: the replica chain is derived, not
  // negotiated (§III.J).
  int num_replicas = 0;

  // Budget for one client-facing operation, covering a whole BATCH call.
  Nanos op_timeout = 200 * kNanosPerMilli;

  // Budget for one server-to-server hop (replication, migration, repair).
  Nanos peer_timeout = 500 * kNanosPerMilli;

  // Durability of acked mutations on persistent partition stores. Servers
  // ack insert/remove/append only after the owning store reports the op
  // durable under this mode; in-memory deployments ignore it.
  DurabilityMode durability = DurabilityMode::kNone;

  // Group commit only: how long the store's flusher waits for more writers
  // to join a commit window before issuing the shared fdatasync. 0 = sync
  // as soon as the flusher wakes.
  Nanos max_commit_latency = 0;

  // Per-shard hot-key read cache capacity, in entries. Lookups of
  // frequently-read keys are served from a small set-associative cache in
  // front of the partition stores; every applied insert/remove/append
  // invalidates its key synchronously, and migration/rebuild/membership
  // changes drop the affected partitions, so the cache can never serve a
  // stale acked write. 0 disables the cache.
  std::size_t hot_cache_entries = 0;

  // Admission control: when a shard's mailbox holds this many queued tasks
  // (or the equivalent in in-flight data-op bytes — see
  // kShedBytesPerSlot in zht_server.h), new client data ops are shed with
  // kUnavailable plus a retry-after hint instead of queueing unboundedly.
  // Server-origin traffic (replication legs, migration, rebuild) is never
  // shed. 0 disables shedding.
  std::size_t shed_queue_budget = 0;

  // Partition→instance placement policy: "contiguous" (the paper's §III.C
  // even ranges), "memento" (minimal-churn consistent hashing), or
  // "rendezvous" (highest-random-weight). Chosen at bootstrap; the kind is
  // recorded in the membership table and travels in full snapshots, so
  // managers, servers, and clients all follow the same policy without
  // separate configuration. Routing is unaffected — only which partitions
  // managers migrate on join/departure changes.
  std::string placement_policy = "contiguous";

  // Parsed form of placement_policy (call Validate() first).
  PlacementKind placement_kind() const {
    auto kind = ParsePlacementKind(placement_policy);
    return kind.ok() ? *kind : PlacementKind::kContiguous;
  }

  Status Validate() const {
    if (num_replicas < 0 || num_replicas > 254) {
      // replica_index travels as one byte on the wire.
      return Status(StatusCode::kInvalidArgument,
                    "num_replicas out of range [0, 254]: " +
                        std::to_string(num_replicas));
    }
    if (op_timeout <= 0) {
      return Status(StatusCode::kInvalidArgument, "op_timeout must be > 0");
    }
    if (peer_timeout <= 0) {
      return Status(StatusCode::kInvalidArgument, "peer_timeout must be > 0");
    }
    if (max_commit_latency < 0) {
      return Status(StatusCode::kInvalidArgument,
                    "max_commit_latency must be >= 0");
    }
    auto placement = ParsePlacementKind(placement_policy);
    if (!placement.ok()) return placement.status();
    return Status::Ok();
  }
};

}  // namespace zht
