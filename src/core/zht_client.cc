#include "core/zht_client.h"

#include <random>
#include <thread>

#include "common/log.h"

namespace zht {

ZhtClient::ZhtClient(MembershipTable table, const ZhtClientOptions& options,
                     ClientTransport* transport)
    : table_(std::move(table)),
      options_(options),
      transport_(transport),
      detector_(options.failure_detector) {
  if (options.client_id != 0) {
    client_id_ = options.client_id;
  } else {
    std::random_device device;
    client_id_ = (static_cast<std::uint64_t>(device()) << 32) | device();
    if (client_id_ == 0) client_id_ = 1;
  }
}

void ZhtClient::Backoff(Nanos duration) {
  if (duration > 0 && options_.sleep_on_backoff) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(duration));
  }
}

void ZhtClient::ReportFailure(InstanceId instance) {
  ++stats_.nodes_reported_dead;
  table_.MarkDead(instance);
  if (!options_.manager) return;
  // Inform a manager (§III.C): it rebroadcasts membership and triggers
  // replica rebuilding. Best effort.
  Request report;
  report.op = OpCode::kDepartRequest;
  report.seq = next_seq_++;
  report.key = std::to_string(instance);
  report.value = "failed";
  report.epoch = table_.epoch();
  auto result =
      transport_->Call(*options_.manager, report, options_.op_timeout);
  if (!result.ok()) {
    ZHT_WARN << "failure report to manager failed: "
             << result.status().ToString();
  }
}

Result<Response> ZhtClient::Execute(OpCode op, std::string_view key,
                                    std::string_view value) {
  ++stats_.ops;
  int replica_try = 0;
  // One sequence number per logical operation: retries and transport
  // retransmissions carry the same (client_id, seq), so the server's
  // dedup window makes append at-most-once.
  const std::uint64_t op_seq = next_seq_++;

  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    PartitionId partition = table_.PartitionOfKey(key);
    auto chain = table_.ReplicaChain(partition, options_.num_replicas);
    if (chain.empty()) {
      return Status(StatusCode::kUnavailable, "no alive instance for key");
    }
    if (replica_try >= static_cast<int>(chain.size())) {
      return Status(StatusCode::kUnavailable,
                    "all replicas of partition " + std::to_string(partition) +
                        " unreachable");
    }
    InstanceId target = chain[static_cast<std::size_t>(replica_try)];
    if (!table_.Instance(target).alive) {
      // Known-dead (locally marked) node still heads the chain until a
      // membership update reassigns ownership; skip without a network hop.
      ++replica_try;
      continue;
    }
    const NodeAddress& address = table_.Instance(target).address;

    Request request;
    request.op = op;
    request.seq = op_seq;
    request.key.assign(key);
    request.value.assign(value);
    request.epoch = table_.epoch();
    request.replica_index = static_cast<std::uint8_t>(replica_try);
    request.client_id = client_id_;

    auto result = transport_->Call(address, request, options_.op_timeout);

    if (!result.ok()) {
      // Transport failure: exponential back-off, then either retry the
      // same node or fail over to the next replica once the detector
      // declares it dead.
      ++stats_.retries;
      Backoff(detector_.BackoffFor(address));
      if (detector_.RecordFailure(address)) {
        ReportFailure(target);
        transport_->Invalidate(address);
        ++stats_.failovers;
        ++replica_try;
      }
      continue;
    }
    detector_.RecordSuccess(address);

    StatusCode code = static_cast<StatusCode>(result->status);
    if (code == StatusCode::kRedirect) {
      ++stats_.redirects_followed;
      if (!result->membership.empty()) {
        Status applied = table_.ApplyUpdate(result->membership);
        if (!applied.ok()) {
          // Delta did not apply (e.g. we were too far behind): pull a
          // snapshot from the node that redirected us.
          Request pull;
          pull.op = OpCode::kMembershipPull;
          pull.seq = next_seq_++;
          auto snapshot =
              transport_->Call(address, pull, options_.op_timeout);
          if (snapshot.ok() && !snapshot->membership.empty()) {
            table_.ApplyUpdate(snapshot->membership);
          }
        }
      }
      replica_try = 0;
      continue;
    }
    if (code == StatusCode::kMigrating) {
      ++stats_.retries;
      Backoff(options_.migrating_backoff);
      continue;
    }
    return *result;
  }
  return Status(StatusCode::kTimeout, "attempts exhausted");
}

Status ZhtClient::Insert(std::string_view key, std::string_view value) {
  auto result = Execute(OpCode::kInsert, key, value);
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

Result<std::string> ZhtClient::Lookup(std::string_view key) {
  auto result = Execute(OpCode::kLookup, key, "");
  if (!result.ok()) return result.status();
  if (!result->ok()) return result->status_as_object();
  return std::move(result->value);
}

Status ZhtClient::Remove(std::string_view key) {
  auto result = Execute(OpCode::kRemove, key, "");
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

Status ZhtClient::Append(std::string_view key, std::string_view value) {
  auto result = Execute(OpCode::kAppend, key, value);
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

Status ZhtClient::Ping(InstanceId instance) {
  if (instance >= table_.instance_count()) {
    return Status(StatusCode::kInvalidArgument, "no such instance");
  }
  Request request;
  request.op = OpCode::kPing;
  request.seq = next_seq_++;
  request.epoch = table_.epoch();
  auto result = transport_->Call(table_.Instance(instance).address, request,
                                 options_.op_timeout);
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

Status ZhtClient::Broadcast(std::string_view key, std::string_view value) {
  Request request;
  request.op = OpCode::kBroadcast;
  request.seq = next_seq_++;
  request.key.assign(key);
  request.value.assign(value);
  request.epoch = table_.epoch();
  // Root of the spanning tree is instance 0.
  auto result = transport_->Call(table_.Instance(0).address, request,
                                 options_.op_timeout);
  if (!result.ok()) return result.status();
  return result->status_as_object();
}

Status ZhtClient::RefreshMembership(std::optional<InstanceId> from) {
  InstanceId source = from.value_or(0);
  if (source >= table_.instance_count()) {
    return Status(StatusCode::kInvalidArgument, "no such instance");
  }
  Request pull;
  pull.op = OpCode::kMembershipPull;
  pull.seq = next_seq_++;
  pull.epoch = table_.epoch();
  auto result = transport_->Call(table_.Instance(source).address, pull,
                                 options_.op_timeout);
  if (!result.ok()) return result.status();
  if (result->membership.empty()) {
    return Status(StatusCode::kInternal, "empty membership response");
  }
  return table_.ApplyUpdate(result->membership);
}

}  // namespace zht
